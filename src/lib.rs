//! # temporal-motifs
//!
//! A full reproduction of *Temporal Network Motifs: Models, Limitations,
//! Evaluation* (Liu, Guarrasi, Sarıyüce; ICDE 2022 / arXiv:2005.11817) as
//! a reusable Rust workspace:
//!
//! * [`graph`] — the temporal network substrate (events, time indexes,
//!   statistics, transforms, SNAP-style I/O);
//! * [`motifs`] — the four surveyed motif models (Kovanen, Song,
//!   Hulovatyy, Paranjape), the digit-pair notation, the event-pair lens,
//!   counting engines, validity checking, streaming pattern matching,
//!   sampling, and temporal cycles;
//! * [`datasets`] — seeded synthetic networks calibrated to the paper's
//!   nine datasets, plus the Figure 1/2 toy graphs;
//! * [`analysis`] — experiment runners regenerating every table and
//!   figure.
//!
//! ## Quickstart
//!
//! ```
//! use temporal_motifs::graph::TemporalGraphBuilder;
//! use temporal_motifs::motifs::prelude::*;
//!
//! // A tiny temporal network: a triangle closed within 4 seconds.
//! let g = TemporalGraphBuilder::new()
//!     .event(0, 1, 7)
//!     .event(1, 2, 9)
//!     .event(0, 2, 11)
//!     .build()
//!     .unwrap();
//!
//! // Count 3-event motifs under Paranjape et al.'s model (ΔW = 10 s):
//! let model = MotifModel::paranjape(10);
//! let cfg = EnumConfig::for_model(&model, 3, 3);
//! let counts = count_motifs(&g, &cfg);
//! assert_eq!(counts.get(sig("011202")), 1);
//! ```
//!
//! See `examples/` for realistic scenarios and `tnm --help` (the
//! `tnm-cli` crate) for the experiment driver.

pub use tnm_analysis as analysis;
pub use tnm_datasets as datasets;
pub use tnm_graph as graph;
pub use tnm_motifs as motifs;

/// Everything most programs need, re-exported flat.
pub mod prelude {
    pub use tnm_datasets::{generate, generate_default, DatasetSpec};
    pub use tnm_graph::{Edge, Event, EventIdx, NodeId, TemporalGraph, TemporalGraphBuilder, Time};
    pub use tnm_motifs::prelude::*;
}
