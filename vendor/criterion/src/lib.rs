//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Source-compatible with the subset of the criterion 0.5 API the
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! `Bencher::iter`, `Bencher::iter_custom`), but with a deliberately
//! simple measurement model:
//! each benchmark runs one untimed warm-up iteration followed by
//! `min(sample_size, TNM_BENCH_ITERS)` timed iterations, and reports
//! min / mean / max wall-clock time per iteration.
//!
//! **Fast-body boost:** a body whose warm-up finishes under
//! [`FAST_BODY_THRESHOLD`] (5 ms) is too quick for a handful of samples
//! to be stable — scheduler noise alone can swing the minimum by tens
//! of percent and trip the BENCH history's regression gate. Such bodies
//! get extra timed iterations, enough to fill roughly
//! [`FAST_BODY_BUDGET`] (25 ms) of measurement, capped at
//! [`MAX_BOOSTED_ITERS`] (40). The boost deliberately overrides the
//! `TNM_BENCH_ITERS` cap: the cap exists to bound *expensive* benches,
//! and the boost only ever triggers where iterations are cheap.
//!
//! Every completed benchmark is appended to a process-global registry;
//! `criterion_main!` ends by printing a machine-readable JSON summary to
//! stdout (one object per benchmark under a `"benchmarks"` array) and, if
//! the `TNM_BENCH_JSON` environment variable names a path, writes the
//! same document there. This feeds the repo's `BENCH_*.json` trajectory
//! without any external dependency.
//!
//! Environment knobs:
//!
//! * `TNM_BENCH_ITERS` — cap on timed iterations per benchmark (default 3);
//! * `TNM_BENCH_JSON` — file path for the JSON summary (default: none).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished measurement, as stored in the global registry.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Timed iterations.
    pub iters: u64,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Declared throughput denominator, if any.
    pub throughput: Option<Throughput>,
}

fn registry() -> &'static Mutex<Vec<Record>> {
    static REGISTRY: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn iter_cap() -> u64 {
    std::env::var("TNM_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1)
}

/// Top-level harness handle, one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Registers and times one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Identifier of one benchmark: a function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's two-part id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{name}/{parameter}") }
    }

    /// Id that is just the parameter (used inside parameterised groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Throughput denominator for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Requested sample count (upper bound on timed iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::new(iter_cap().min(self.sample_size as u64));
        f(&mut b);
        self.record(id, b);
    }

    /// Times `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        let mut b = Bencher::new(iter_cap().min(self.sample_size as u64));
        f(&mut b, input);
        self.record(id, b);
    }

    /// Ends the group (kept for API compatibility; recording is eager).
    pub fn finish(self) {}

    fn record(&mut self, id: BenchmarkId, b: Bencher) {
        if b.times.is_empty() {
            return; // the closure never called `iter`
        }
        let min = *b.times.iter().min().expect("non-empty");
        let max = *b.times.iter().max().expect("non-empty");
        let mean = b.times.iter().sum::<Duration>() / b.times.len() as u32;
        let rec = Record {
            group: self.name.clone(),
            id: id.full,
            iters: b.times.len() as u64,
            min,
            mean,
            max,
            throughput: self.throughput,
        };
        eprintln!(
            "bench {:<40} {:>12?} min {:>12?} mean ({} iters{})",
            rec.qualified(),
            rec.min,
            rec.mean,
            rec.iters,
            match rec.throughput {
                Some(Throughput::Elements(n)) => format!(
                    ", {:.0} elem/s",
                    n as f64 / rec.mean.as_secs_f64().max(f64::MIN_POSITIVE)
                ),
                Some(Throughput::Bytes(n)) =>
                    format!(", {:.0} B/s", n as f64 / rec.mean.as_secs_f64().max(f64::MIN_POSITIVE)),
                None => String::new(),
            }
        );
        registry().lock().expect("registry poisoned").push(rec);
    }
}

impl Record {
    fn qualified(&self) -> String {
        if self.group.is_empty() {
            self.id.clone()
        } else {
            format!("{}/{}", self.group, self.id)
        }
    }

    fn to_json(&self) -> String {
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        format!(
            "{{\"group\":{},\"id\":{},\"iters\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}{}}}",
            json_string(&self.group),
            json_string(&self.id),
            self.iters,
            self.min.as_nanos(),
            self.mean.as_nanos(),
            self.max.as_nanos(),
            tp
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Measures the benchmark body passed to [`Bencher::iter`].
///
/// Unlike real criterion the measurement happens eagerly inside `iter`
/// (one untimed warm-up iteration, then `iters` timed ones), which lets
/// the body borrow from the enclosing scope without `'static` gymnastics.
pub struct Bencher {
    iters: u64,
    times: Vec<Duration>,
}

/// Bodies whose warm-up finishes under this are "fast": too quick for a
/// handful of samples to beat scheduler noise, so they get extra timed
/// iterations.
pub const FAST_BODY_THRESHOLD: Duration = Duration::from_millis(5);

/// Total timed measurement the fast-body boost aims to fill.
pub const FAST_BODY_BUDGET: Duration = Duration::from_millis(25);

/// Upper bound on boosted iterations for fast bodies.
pub const MAX_BOOSTED_ITERS: u64 = 40;

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher { iters, times: Vec::with_capacity(iters as usize) }
    }

    /// Runs and times the benchmark body. The closure's return value is
    /// black-boxed so computations are not optimised away. The warm-up
    /// doubles as a cost probe: fast bodies (see [`FAST_BODY_THRESHOLD`])
    /// run enough extra iterations to fill [`FAST_BODY_BUDGET`] of
    /// measurement so their reported min/mean is noise-stable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let probe = Instant::now();
        std::hint::black_box(f()); // warm-up, untimed
        let warm = probe.elapsed();
        for _ in 0..self.boosted_iters(warm) {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
        }
    }

    /// Runs a body that measures itself. The closure receives an
    /// iteration count (always 1 under this harness's eager model) and
    /// returns the duration it measured — use it when only part of the
    /// body should count, e.g. timing one phase of a larger run. The
    /// warm-up call's reported duration drives the same fast-body boost
    /// as [`Bencher::iter`].
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let warm = f(1); // warm-up; its self-reported time is the cost probe
        for _ in 0..self.boosted_iters(warm) {
            self.times.push(f(1));
        }
    }

    fn boosted_iters(&self, warm: Duration) -> u64 {
        let mut iters = self.iters;
        if warm < FAST_BODY_THRESHOLD {
            let per_ns = warm.as_nanos().max(1);
            let fill = (FAST_BODY_BUDGET.as_nanos() / per_ns).min(MAX_BOOSTED_ITERS as u128) as u64;
            iters = iters.max(fill);
        }
        iters
    }
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Prints the JSON summary of every recorded benchmark and optionally
/// writes it to `$TNM_BENCH_JSON`. Called by `criterion_main!`.
pub fn finish() {
    let records = registry().lock().expect("registry poisoned");
    let body: Vec<String> = records.iter().map(Record::to_json).collect();
    let doc = format!("{{\"benchmarks\":[{}]}}", body.join(","));
    println!("{doc}");
    if let Ok(path) = std::env::var("TNM_BENCH_JSON") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Entry point running every group then printing the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            $( $g(); )+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_json_escaping() {
        assert_eq!(BenchmarkId::new("a", 3).full, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").full, "x");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn fast_bodies_get_boosted_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("boost");
        g.bench_function("fast", |b| b.iter(|| 1 + 1));
        g.finish();
        let recs = registry().lock().unwrap();
        let rec = recs.iter().find(|r| r.group == "boost" && r.id == "fast").unwrap();
        // A no-op body fills the budget instantly and hits the cap.
        assert_eq!(rec.iters, MAX_BOOSTED_ITERS, "sub-threshold bodies must be boosted");
    }

    #[test]
    fn slow_bodies_keep_the_configured_cap() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("boost");
        g.bench_function("slow", |b| b.iter(|| std::thread::sleep(Duration::from_millis(6))));
        g.finish();
        let recs = registry().lock().unwrap();
        let rec = recs.iter().find(|r| r.group == "boost" && r.id == "slow").unwrap();
        assert_eq!(rec.iters, iter_cap().min(10), "past-threshold bodies keep the cap");
    }

    #[test]
    fn iter_custom_uses_reported_durations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("custom");
        g.sample_size(2);
        // Report a fixed 10ms per call: past the fast-body threshold, so
        // the configured cap holds and min == mean == max == 10ms even
        // though the closure itself returns instantly.
        g.bench_function("fixed", |b| b.iter_custom(|_iters| Duration::from_millis(10)));
        g.finish();
        let recs = registry().lock().unwrap();
        let rec = recs.iter().find(|r| r.group == "custom" && r.id == "fixed").unwrap();
        assert_eq!(rec.iters, iter_cap().min(2));
        assert_eq!(rec.min, Duration::from_millis(10));
        assert_eq!(rec.max, Duration::from_millis(10));
    }

    #[test]
    fn bench_records_and_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        let recs = registry().lock().unwrap();
        let rec = recs.iter().find(|r| r.group == "g" && r.id == "noop").unwrap();
        assert!(rec.iters >= 1);
        assert!(rec.to_json().contains("\"elements\":10"));
    }
}
