//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate supplies `#[derive(Serialize)]` / `#[derive(Deserialize)]` as
//! no-ops: they accept the same derive syntax (including `#[serde(...)]`
//! helper attributes) and expand to nothing. The workspace only uses the
//! derives as annotations — nothing serializes through serde at runtime —
//! so dropping the impls keeps every type definition source-compatible
//! with the real crate.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
