//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses — [`Rng::gen_range`]
//! over integer/float ranges, [`Rng::gen_bool`], and
//! [`SeedableRng::seed_from_u64`] for [`rngs::StdRng`] — on top of a
//! xoshiro256** generator seeded through SplitMix64 (the same seeding
//! scheme the real `rand` uses for small seeds). Sequences are
//! deterministic per seed but intentionally **not** bit-compatible with
//! upstream `rand`; everything downstream treats the generator as an
//! opaque seeded source.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` half-open, `lo..=hi` closed).
    ///
    /// Panics on empty ranges, like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 uniform mantissa bits, exactly the real crate's construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample; panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform value in `[0, span)` by 128-bit widening multiply (Lemire);
/// the modulo bias is below 2^-64, well under anything observable here.
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix_stream(mut x: u64) -> impl FnMut() -> u64 {
            move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut next = Self::splitmix_stream(state);
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..64).all(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40));
        assert!(!equal, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5i64..60);
            assert!((5..60).contains(&v));
            let w = rng.gen_range(3u32..=7);
            assert!((3..=7).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn usize_full_span_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = rng.gen_range(0usize..usize::MAX);
        assert!(v < usize::MAX);
    }
}
