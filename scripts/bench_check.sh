#!/usr/bin/env bash
# Gate a fresh bench summary against the repo's BENCH_*.json history.
#
# usage: scripts/bench_check.sh <new.json> [baseline-dir] [threshold]
#
# Runs the tnm-bench `bench_check` binary (built offline) comparing
# <new.json> against the highest-numbered BENCH_<n>.json in
# [baseline-dir] (default: repo root). Exits non-zero when any benchmark
# regresses beyond [threshold] (default 0.25 = +25%).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
new_json="${1:?usage: bench_check.sh <new.json> [baseline-dir] [threshold]}"
baseline_dir="${2:-$repo_root}"
threshold="${3:-0.25}"

exec cargo run --offline --release -p tnm-bench --bin bench_check -- \
    "$baseline_dir" "$new_json" --threshold "$threshold"
