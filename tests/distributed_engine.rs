//! Distributed-engine integration suite: real coordinator/worker
//! process pairs over the framed wire protocol.
//!
//! Three contracts are pinned here:
//!
//! * **Exactness across the process boundary** — counts from spawned
//!   `tnm worker` children merge to bit-identical totals vs the
//!   in-process [`WindowedEngine`], across shard sizes, worker counts,
//!   restriction flags (including the static-inducedness recheck that
//!   runs on the coordinator), and signature targeting.
//! * **Crash rescheduling** — a worker killed mid-run (fault-injected
//!   via `TNM_WORKER_EXIT_AFTER`) loses nothing: its in-flight shard is
//!   rescheduled onto the surviving worker and the final counts stay
//!   bit-identical.
//! * **Wire robustness** — the public framing and event-block decoders
//!   reject a corpus of corruptions (truncation at every prefix, bad
//!   magic, bad version, oversized length headers, trailing bytes)
//!   with errors, never panics, OOM-sized allocations, or silent
//!   short reads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_motifs::prelude::*;
use tnm_datasets::{generate, DatasetSpec};
use tnm_motifs::engine::{CountEngine, DistributedEngine, WindowedEngine};

/// Seeded random graph with duplicate timestamps (ties straddle shard
/// cuts on purpose).
fn random_graph(seed: u64, nodes: u32, events: usize, horizon: i64) -> TemporalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(events);
    while batch.len() < events {
        let u: u32 = rng.gen_range(0..nodes);
        let v: u32 = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        batch.push(Event::new(u, v, rng.gen_range(0i64..horizon)));
    }
    TemporalGraph::from_events(batch).expect("non-empty batch")
}

/// The worker binary must resolve in the test environment — without
/// it, every other test in this file would silently exercise the
/// in-process fallback instead of the wire.
#[test]
fn worker_binary_resolves() {
    let bin = DistributedEngine::worker_binary()
        .expect("`tnm` binary not found next to the test executable — build the workspace");
    assert!(bin.is_file());
}

#[test]
fn matches_windowed_across_shard_sizes_and_workers() {
    let _obs = tnm_obs::test_guard();
    tnm_obs::set_enabled(true);
    tnm_obs::global().reset();
    let g = random_graph(501, 12, 260, 300);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(20, 45));
    let reference = WindowedEngine.count(&g, &cfg);
    for shard_events in [1usize, 9, 50] {
        for workers in [1usize, 2, 3] {
            let engine = DistributedEngine::new(workers).with_shard_events(shard_events);
            let (counts, stats) = engine.count_with_stats(&g, &cfg);
            assert_eq!(counts, reference, "shard_events={shard_events}, workers={workers}");
            assert!(stats.shards > 1, "plan must actually shard");
            assert_eq!(
                stats.workers_spawned,
                workers.min(stats.shards),
                "every configured worker must actually spawn"
            );
        }
    }
    // Healthy runs: the registry's loss/reschedule counters stay
    // untouched across the whole sweep.
    let snap = tnm_obs::global().snapshot();
    tnm_obs::set_enabled(false);
    assert_eq!(snap.counters.get("distributed.workers_lost"), None);
    assert_eq!(snap.counters.get("distributed.jobs_rescheduled"), None);
}

/// Within-worker threading: the job descriptor carries a thread budget
/// and each worker runs the shared work-stealing walk over its shard —
/// counts (and aggregated induced groups) must stay bit-identical.
#[test]
fn worker_threads_are_exact() {
    let g = random_graph(506, 10, 240, 200);
    for cfg in [
        EnumConfig::new(3, 3).with_timing(Timing::both(15, 35)),
        EnumConfig::new(3, 3).with_timing(Timing::only_w(30)).with_static_induced(true),
    ] {
        let reference = WindowedEngine.count(&g, &cfg);
        let engine = DistributedEngine::new(2).with_shard_events(40).with_worker_threads(3);
        let (counts, stats) = engine.count_with_stats(&g, &cfg);
        assert_eq!(counts, reference);
        assert_eq!(stats.workers_spawned, 2);
    }
}

/// The one whole-timeline predicate: static inducedness is stripped in
/// the workers and re-checked on the coordinator against the parent
/// graph. Counts must match the in-process engines exactly — on the
/// full Paranjape and Hulovatyy models and a signature-targeted run.
#[test]
fn coordinator_recheck_keeps_induced_models_exact() {
    let g = random_graph(502, 9, 200, 150);
    for (label, cfg) in [
        ("paranjape", EnumConfig::for_model(&MotifModel::paranjape(40), 3, 3)),
        ("hulovatyy", EnumConfig::for_model(&MotifModel::hulovatyy(12), 3, 3)),
        (
            "induced+consecutive",
            EnumConfig::new(3, 3)
                .with_timing(Timing::both(15, 40))
                .with_static_induced(true)
                .with_consecutive(true),
        ),
        (
            "targeted",
            EnumConfig::for_signature(sig("011202"))
                .with_timing(Timing::only_w(30))
                .with_static_induced(true),
        ),
    ] {
        let reference = WindowedEngine.count(&g, &cfg);
        let (counts, stats) =
            DistributedEngine::new(2).with_shard_events(15).count_with_stats(&g, &cfg);
        assert_eq!(counts, reference, "{label}");
        assert!(stats.workers_spawned > 0, "{label}: must cross the process boundary");
    }
}

/// Kill a worker mid-run: worker 0 exits after serving exactly one
/// job, the coordinator detects the dead pipes, requeues the in-flight
/// shard onto the survivor, and the totals come out bit-identical.
#[test]
fn worker_crash_mid_run_is_rescheduled_exactly() {
    let _obs = tnm_obs::test_guard();
    tnm_obs::set_enabled(true);
    let g = random_graph(503, 11, 300, 260);
    for cfg in [
        EnumConfig::new(3, 3).with_timing(Timing::both(18, 40)),
        // Induced variant: the crash interleaves with instance replies.
        EnumConfig::new(3, 3).with_timing(Timing::only_w(35)).with_static_induced(true),
    ] {
        tnm_obs::global().reset();
        let reference = WindowedEngine.count(&g, &cfg);
        let engine = DistributedEngine::new(2).with_shard_events(12).with_fault_after(0, 1);
        let (counts, stats) = engine.count_with_stats(&g, &cfg);
        let snap = tnm_obs::global().snapshot();
        assert_eq!(counts, reference, "counts must survive the crash bit-identically");
        assert!(stats.shards >= 4, "need enough shards for a mid-run crash");
        assert_eq!(stats.workers_spawned, 2);
        // Loss and reschedule are read from the obs registry.
        assert_eq!(
            snap.counters.get("distributed.workers_lost"),
            Some(&1),
            "the faulted worker must be detected as dead"
        );
        assert!(
            snap.counters.get("distributed.jobs_rescheduled").copied().unwrap_or(0) >= 1,
            "its in-flight shard must be requeued"
        );
    }
    tnm_obs::set_enabled(false);
}

/// The crash path is not a lucky accident: repeated faulted runs all
/// detect the loss and all produce the same exact counts (merging is
/// commutative, so rescheduling order can never leak into totals).
#[test]
fn rescheduling_is_deterministic_across_runs() {
    let _obs = tnm_obs::test_guard();
    tnm_obs::set_enabled(true);
    let g = random_graph(504, 8, 180, 120);
    let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(25));
    let reference = WindowedEngine.count(&g, &cfg);
    for run in 0..3 {
        tnm_obs::global().reset();
        let engine = DistributedEngine::new(2).with_shard_events(10).with_fault_after(0, 2);
        let (counts, _) = engine.count_with_stats(&g, &cfg);
        let snap = tnm_obs::global().snapshot();
        assert_eq!(counts, reference, "run {run}");
        assert_eq!(snap.counters.get("distributed.workers_lost"), Some(&1), "run {run}");
    }
    tnm_obs::set_enabled(false);
}

/// A generator corpus run: realistic burstiness, 2 workers, tiny
/// shards — the same shape as the CI smoke step, pinned here so it
/// also runs offline in the test suite.
#[test]
fn college_msg_corpus_is_bit_identical() {
    let mut spec = DatasetSpec::by_name("CollegeMsg").expect("known dataset");
    spec.num_events = 1_200;
    let g = generate(&spec, 13);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3_000));
    let reference = WindowedEngine.count(&g, &cfg);
    let (counts, stats) =
        DistributedEngine::new(2).with_shard_events(200).count_with_stats(&g, &cfg);
    assert_eq!(counts, reference);
    assert!(stats.workers_spawned == 2 && stats.shards >= 4);
}

/// Wire-format corruption corpus over the public framing API: every
/// prefix truncation errors, and each targeted corruption maps to its
/// specific error.
#[test]
fn wire_corruption_corpus() {
    use tnm_graph::wire::{self, WireError};
    let mut stream = Vec::new();
    wire::write_frame(&mut stream, 7, b"distributed-shard-payload").unwrap();
    // Truncation at every prefix must error (clean EOF only at zero).
    for cut in 1..stream.len() {
        assert!(
            matches!(wire::read_frame(&stream[..cut], 1 << 20), Err(WireError::Truncated { .. })),
            "prefix {cut} did not error"
        );
    }
    assert!(wire::read_frame(&stream[..0], 1 << 20).unwrap().is_none(), "empty stream = clean EOF");
    // Bad version.
    let mut bad = stream.clone();
    bad[4..6].copy_from_slice(&42u16.to_le_bytes());
    assert!(matches!(
        wire::read_frame(bad.as_slice(), 1 << 20),
        Err(WireError::BadVersion { got: 42 })
    ));
    // Bad magic.
    let mut bad = stream.clone();
    bad[..4].copy_from_slice(b"EVIL");
    assert!(matches!(wire::read_frame(bad.as_slice(), 1 << 20), Err(WireError::BadMagic { .. })));
    // Oversized payload claim: rejected before allocation.
    let mut bad = stream.clone();
    bad[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(wire::read_frame(bad.as_slice(), 1 << 20), Err(WireError::Oversized { .. })));
    // Trailing garbage after a well-formed frame surfaces on the next
    // read as a framing error, not as silent acceptance.
    let mut padded = stream.clone();
    padded.extend_from_slice(b"junk-after-frame");
    let mut cursor = padded.as_slice();
    assert!(wire::read_frame(&mut cursor, 1 << 20).unwrap().is_some());
    assert!(wire::read_frame(&mut cursor, 1 << 20).is_err());
}

/// Spilled shard files cross process boundaries: the event-block
/// decoder must reject truncation and padding rather than feeding a
/// worker short data.
#[test]
fn shard_file_corruption_is_detected() {
    use tnm_graph::io::{read_events_raw, write_events_raw};
    let g = random_graph(505, 6, 64, 50);
    let mut block = Vec::new();
    write_events_raw(g.events(), &mut block).unwrap();
    assert_eq!(read_events_raw(block.as_slice()).unwrap(), g.events());
    for cut in [3usize, 13, 14, 33] {
        assert!(
            read_events_raw(&block[..block.len().saturating_sub(cut)]).is_err(),
            "cut {cut} accepted"
        );
    }
    let mut padded = block.clone();
    padded.extend_from_slice(&[1, 2, 3]);
    assert!(read_events_raw(padded.as_slice()).is_err());
}

/// Trace propagation across the process boundary, under fault
/// injection: with a request trace active, kill worker 0 after one job
/// and the coordinator must still hand back one *well-formed* stitched
/// span tree — a single trace id, unique span ids (worker ids are
/// re-minted on injection), every coordinator phase present, shipped
/// `walk.shard` spans from the survivor stitched in, and every parent
/// edge resolving inside the tree. The crashed worker's unsent spans
/// are allowed to be lost; a dangling parent is not.
#[test]
fn traces_stitch_into_one_well_formed_tree_even_under_worker_crashes() {
    let _obs = tnm_obs::test_guard();
    tnm_obs::set_enabled(false);
    tnm_obs::drain_spans();
    let g = random_graph(507, 11, 300, 260);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(18, 40));
    let reference = WindowedEngine.count(&g, &cfg);

    // Open a request-scoped trace the way `tnm serve` does: mint a
    // context, start the root span, re-point the ambient parent at it.
    let ctx = tnm_obs::TraceCtx::new();
    tnm_obs::set_trace(Some(ctx));
    let root = tnm_obs::Span::start("test.distributed");
    tnm_obs::set_trace(Some(tnm_obs::TraceCtx { trace_id: ctx.trace_id, parent_span: root.id() }));
    let engine = DistributedEngine::new(2).with_shard_events(12).with_fault_after(0, 1);
    let counts = engine.count(&g, &cfg);
    drop(root);
    tnm_obs::set_trace(None);
    let spans = tnm_obs::take_trace_spans(ctx.trace_id);

    assert_eq!(counts, reference, "counts must survive the crash bit-identically");
    assert!(spans.iter().all(|s| s.trace_id == ctx.trace_id), "one trace id across the tree");
    for phase in [
        "distributed.plan",
        "distributed.spill",
        "distributed.spawn",
        "distributed.walk",
        "distributed.merge",
    ] {
        assert!(spans.iter().any(|s| s.name == phase), "coordinator phase `{phase}` missing");
    }
    assert!(
        spans.iter().any(|s| s.name == "walk.shard"),
        "surviving worker's shipped spans must stitch into the coordinator trace"
    );
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    assert_eq!(ids.len(), spans.len(), "span ids must stay unique after re-minting");
    assert_eq!(
        spans.iter().filter(|s| s.parent_id == 0).count(),
        1,
        "exactly one root span in the stitched tree"
    );
    for s in &spans {
        assert!(
            s.parent_id == 0 || ids.contains(&s.parent_id),
            "span `{}` has a dangling parent id",
            s.name
        );
    }
    // The stitched tree exports as one Chrome-trace JSON document.
    let json = tnm_obs::chrome_trace(&spans);
    assert!(json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"));
}
