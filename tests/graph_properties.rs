//! Property tests for the temporal-graph substrate: structural
//! invariants, I/O round-trips, transform laws, and statistics sanity.
//!
//! These used to run under `proptest`; the build environment has no
//! crates.io access, so the same properties are now exercised over a
//! deterministic seeded-random case corpus (64 graphs per property,
//! fixed seeds — failures are exactly reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_motifs::prelude::*;
use tnm_graph::stats::GraphStats;
use tnm_graph::transform;

const CASES: u64 = 64;

/// Random event batch mirroring the old `arb_events` strategy: up to 60
/// events on up to 20 nodes, times in -100..1000, durations in 0..50.
fn random_events(rng: &mut StdRng) -> Vec<Event> {
    let len = rng.gen_range(1usize..60);
    let mut events = Vec::with_capacity(len);
    for _ in 0..len {
        let u: u32 = rng.gen_range(0..20);
        let v: u32 = rng.gen_range(0..20);
        if u == v {
            continue; // mirror the strategy's self-loop filter
        }
        let t: i64 = rng.gen_range(-100i64..1000);
        let d: u32 = rng.gen_range(0..50);
        events.push(Event::with_duration(u, v, t, d));
    }
    events
}

/// Runs `body` over the deterministic case corpus, skipping the rare
/// all-self-loop draws (as the old `prop_filter` did).
fn for_each_case(test_seed: u64, mut body: impl FnMut(&mut StdRng, Vec<Event>)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(test_seed * 10_000 + case);
        let events = random_events(&mut rng);
        if events.is_empty() {
            continue;
        }
        body(&mut rng, events);
    }
}

#[test]
fn built_graphs_satisfy_invariants() {
    for_each_case(1, |_, events| {
        let g = TemporalGraph::from_events(events.clone()).unwrap();
        g.check_invariants().unwrap();
        assert_eq!(g.num_events(), events.len());
        // Node index covers every event twice; edge index once.
        let node_entries: usize = (0..g.num_nodes()).map(|n| g.node_events(NodeId(n)).len()).sum();
        assert_eq!(node_entries, 2 * g.num_events());
        let edge_entries: usize = g.static_edges().map(|e| g.edge_events(e).len()).sum();
        assert_eq!(edge_entries, g.num_events());
    });
}

#[test]
fn window_counts_match_scan() {
    for_each_case(2, |rng, events| {
        let g = TemporalGraph::from_events(events).unwrap();
        let t0: i64 = rng.gen_range(-100i64..1000);
        let t1 = t0 + rng.gen_range(0i64..500);
        for n in 0..g.num_nodes() {
            let node = NodeId(n);
            let expected = g
                .events()
                .iter()
                .filter(|e| e.touches(node) && e.time >= t0 && e.time <= t1)
                .count();
            assert_eq!(g.count_node_events_between(node, t0, t1), expected);
        }
        let (_, window) = g.events_in_window(t0, t1);
        let expected = g.events().iter().filter(|e| e.time >= t0 && e.time <= t1).count();
        assert_eq!(window.len(), expected);
    });
}

#[test]
fn io_roundtrip_preserves_everything_but_ids() {
    for_each_case(3, |_, events| {
        let g = TemporalGraph::from_events(events).unwrap();
        let mut buf = Vec::new();
        tnm_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = tnm_graph::io::read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_events(), g2.num_events());
        assert_eq!(g.num_static_edges(), g2.num_static_edges());
        // Times and durations survive verbatim as a multiset (ids are
        // compacted, which can reorder events at tied timestamps).
        let td = |g: &TemporalGraph| {
            let mut v: Vec<(i64, u32)> = g.events().iter().map(|e| (e.time, e.duration)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(td(&g), td(&g2));
        // Motif spectra are isomorphism-invariant, hence identical.
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(50));
        assert_eq!(count_motifs(&g, &cfg), count_motifs(&g2, &cfg));
    });
}

#[test]
fn degrade_resolution_is_idempotent() {
    for_each_case(4, |rng, events| {
        let g = TemporalGraph::from_events(events).unwrap();
        let bucket: i64 = rng.gen_range(1i64..400);
        let once = transform::degrade_resolution(&g, bucket);
        let twice = transform::degrade_resolution(&once, bucket);
        assert_eq!(once.events(), twice.events());
        // Every degraded timestamp is a multiple of the bucket.
        assert!(once.events().iter().all(|e| e.time.rem_euclid(bucket) == 0));
        assert_eq!(once.num_events(), g.num_events());
    });
}

#[test]
fn stats_are_sane() {
    for_each_case(5, |_, events| {
        let g = TemporalGraph::from_events(events).unwrap();
        let s = GraphStats::compute(&g);
        assert!(s.unique_timestamp_fraction >= 0.0 && s.unique_timestamp_fraction <= 1.0);
        assert!(s.median_inter_event_time >= 0.0);
        assert!(s.unique_timestamps <= s.events);
        assert!(s.static_edges <= s.events);
        assert_eq!(s.timespan, g.timespan());
    });
}

#[test]
fn rebase_preserves_gaps() {
    for_each_case(6, |rng, events| {
        let g = TemporalGraph::from_events(events).unwrap();
        let origin: i64 = rng.gen_range(-500i64..500);
        let r = transform::rebase_time(&g, origin);
        assert_eq!(r.first_time(), Some(origin));
        assert_eq!(r.timespan(), g.timespan());
        let gaps = |g: &TemporalGraph| -> Vec<i64> {
            g.events().windows(2).map(|w| w[1].time - w[0].time).collect()
        };
        assert_eq!(gaps(&g), gaps(&r));
    });
}

#[test]
fn compact_nodes_preserves_motif_spectra() {
    for_each_case(7, |_, events| {
        let g = TemporalGraph::from_events(events).unwrap();
        let c = transform::compact_nodes(&g);
        assert!(c.num_nodes() <= g.num_nodes());
        let cfg = EnumConfig::new(2, 4).with_timing(Timing::only_w(100));
        assert_eq!(count_motifs(&g, &cfg), count_motifs(&c, &cfg));
    });
}

#[test]
fn null_models_preserve_size() {
    for_each_case(8, |rng, events| {
        use tnm_datasets::null_model::*;
        let g = TemporalGraph::from_events(events).unwrap();
        let seed: u64 = rng.gen_range(0u64..1000);
        for shuffled in [
            shuffle_timestamps(&g, seed),
            shuffle_inter_event_gaps(&g, seed),
            rewire_links(&g, seed, 2),
        ] {
            assert_eq!(shuffled.num_events(), g.num_events());
            assert!(shuffled.events().iter().all(|e| !e.is_self_loop()));
        }
    });
}
