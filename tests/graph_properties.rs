//! Property tests for the temporal-graph substrate: structural
//! invariants, I/O round-trips, transform laws, and statistics sanity.

use proptest::prelude::*;
use temporal_motifs::prelude::*;
use tnm_graph::stats::GraphStats;
use tnm_graph::transform;

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u32..20, 0u32..20, -100i64..1000, 0u32..50), 1..60)
        .prop_map(|raw| {
            raw.into_iter()
                .filter(|(u, v, _, _)| u != v)
                .map(|(u, v, t, d)| Event::with_duration(u, v, t, d))
                .collect::<Vec<Event>>()
        })
        .prop_filter("need at least one event", |v| !v.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_graphs_satisfy_invariants(events in arb_events()) {
        let g = TemporalGraph::from_events(events.clone()).unwrap();
        g.check_invariants().unwrap();
        prop_assert_eq!(g.num_events(), events.len());
        // Node index covers every event twice; edge index once.
        let node_entries: usize =
            (0..g.num_nodes()).map(|n| g.node_events(NodeId(n)).len()).sum();
        prop_assert_eq!(node_entries, 2 * g.num_events());
        let edge_entries: usize =
            g.static_edges().map(|e| g.edge_events(e).len()).sum();
        prop_assert_eq!(edge_entries, g.num_events());
    }

    #[test]
    fn window_counts_match_scan(events in arb_events(), t0 in -100i64..1000, len in 0i64..500) {
        let g = TemporalGraph::from_events(events).unwrap();
        let t1 = t0 + len;
        for n in 0..g.num_nodes() {
            let node = NodeId(n);
            let expected = g
                .events()
                .iter()
                .filter(|e| e.touches(node) && e.time >= t0 && e.time <= t1)
                .count();
            prop_assert_eq!(g.count_node_events_between(node, t0, t1), expected);
        }
        let (_, window) = g.events_in_window(t0, t1);
        let expected = g.events().iter().filter(|e| e.time >= t0 && e.time <= t1).count();
        prop_assert_eq!(window.len(), expected);
    }

    #[test]
    fn io_roundtrip_preserves_everything_but_ids(events in arb_events()) {
        let g = TemporalGraph::from_events(events).unwrap();
        let mut buf = Vec::new();
        tnm_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = tnm_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g.num_events(), g2.num_events());
        prop_assert_eq!(g.num_static_edges(), g2.num_static_edges());
        // Times and durations survive verbatim as a multiset (ids are
        // compacted, which can reorder events at tied timestamps).
        let td = |g: &TemporalGraph| {
            let mut v: Vec<(i64, u32)> =
                g.events().iter().map(|e| (e.time, e.duration)).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(td(&g), td(&g2));
        // Motif spectra are isomorphism-invariant, hence identical.
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(50));
        prop_assert_eq!(count_motifs(&g, &cfg), count_motifs(&g2, &cfg));
    }

    #[test]
    fn degrade_resolution_is_idempotent(events in arb_events(), bucket in 1i64..400) {
        let g = TemporalGraph::from_events(events).unwrap();
        let once = transform::degrade_resolution(&g, bucket);
        let twice = transform::degrade_resolution(&once, bucket);
        prop_assert_eq!(once.events(), twice.events());
        // Every degraded timestamp is a multiple of the bucket.
        prop_assert!(once.events().iter().all(|e| e.time.rem_euclid(bucket) == 0));
        prop_assert_eq!(once.num_events(), g.num_events());
    }

    #[test]
    fn stats_are_sane(events in arb_events()) {
        let g = TemporalGraph::from_events(events).unwrap();
        let s = GraphStats::compute(&g);
        prop_assert!(s.unique_timestamp_fraction >= 0.0 && s.unique_timestamp_fraction <= 1.0);
        prop_assert!(s.median_inter_event_time >= 0.0);
        prop_assert!(s.unique_timestamps <= s.events);
        prop_assert!(s.static_edges <= s.events);
        prop_assert_eq!(s.timespan, g.timespan());
    }

    #[test]
    fn rebase_preserves_gaps(events in arb_events(), origin in -500i64..500) {
        let g = TemporalGraph::from_events(events).unwrap();
        let r = transform::rebase_time(&g, origin);
        prop_assert_eq!(r.first_time(), Some(origin));
        prop_assert_eq!(r.timespan(), g.timespan());
        let gaps = |g: &TemporalGraph| -> Vec<i64> {
            g.events().windows(2).map(|w| w[1].time - w[0].time).collect()
        };
        prop_assert_eq!(gaps(&g), gaps(&r));
    }

    #[test]
    fn compact_nodes_preserves_motif_spectra(events in arb_events()) {
        let g = TemporalGraph::from_events(events).unwrap();
        let c = transform::compact_nodes(&g);
        prop_assert!(c.num_nodes() <= g.num_nodes());
        let cfg = EnumConfig::new(2, 4).with_timing(Timing::only_w(100));
        prop_assert_eq!(count_motifs(&g, &cfg), count_motifs(&c, &cfg));
    }

    #[test]
    fn null_models_preserve_size(events in arb_events(), seed in 0u64..1000) {
        use tnm_datasets::null_model::*;
        let g = TemporalGraph::from_events(events).unwrap();
        for shuffled in [
            shuffle_timestamps(&g, seed),
            shuffle_inter_event_gaps(&g, seed),
            rewire_links(&g, seed, 2),
        ] {
            prop_assert_eq!(shuffled.num_events(), g.num_events());
            prop_assert!(shuffled.events().iter().all(|e| !e.is_self_loop()));
        }
    }
}
