//! Window-index reuse correctness: counting through a cached index must
//! be indistinguishable from counting with freshly built indexes, and
//! the cache must never serve one graph's index for another.

use std::sync::Arc;
use temporal_motifs::prelude::*;
use tnm_datasets::{generate, DatasetSpec};
use tnm_graph::{WindowIndex, WindowIndexCache};

fn dataset(name: &str, events: usize, seed: u64) -> TemporalGraph {
    let mut spec = DatasetSpec::by_name(name).expect("known dataset");
    spec.num_events = events;
    generate(&spec, seed)
}

/// Counting the same graph twice — the second time through the warm
/// global cache — must yield identical results to the cold run and to
/// the cache-free backtrack reference.
#[test]
fn repeated_counts_through_cache_are_identical() {
    let g = dataset("CollegeMsg", 2_000, 3);
    for cfg in [
        EnumConfig::new(3, 3).with_timing(Timing::only_w(3_000)),
        EnumConfig::new(2, 2).with_timing(Timing::both(600, 1_200)),
        EnumConfig::new(3, 3).with_timing(Timing::only_c(1_500)).with_consecutive(true),
    ] {
        let reference = BacktrackEngine.count(&g, &cfg);
        let cold = WindowedEngine.count(&g, &cfg);
        let warm = WindowedEngine.count(&g, &cfg);
        let warm_parallel = ParallelEngine::new(4).count(&g, &cfg);
        assert_eq!(cold, reference);
        assert_eq!(warm, reference);
        assert_eq!(warm_parallel, reference);
    }
}

/// The cached index is the same object across calls for the same graph,
/// equals a fresh build, and a different graph gets its own entry.
#[test]
fn cache_hits_same_graph_and_misses_other() {
    let cache = WindowIndexCache::new(4);
    let g1 = dataset("Email", 1_000, 1);
    let g2 = dataset("Email", 1_000, 2); // same spec, different content
    let first = cache.get_or_build(&g1);
    let second = cache.get_or_build(&g1);
    assert!(Arc::ptr_eq(&first, &second), "same graph must hit");
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().misses, 1);

    let other = cache.get_or_build(&g2);
    assert!(!Arc::ptr_eq(&first, &other), "different graph must get its own index");
    assert_eq!(cache.stats().misses, 2);
    assert!(other.matches(&g2) && !other.matches(&g1));

    // Both cached indexes agree with fresh builds in every query.
    for (g, ix) in [(&g1, &first), (&g2, &other)] {
        let fresh = WindowIndex::build(g);
        assert!(ix.matches(g));
        for node in 0..g.num_nodes() {
            let n = tnm_graph::NodeId(node);
            assert_eq!(ix.node_slices(n), fresh.node_slices(n));
        }
    }
}

/// A clone carries the same content but a different event buffer, so it
/// must *miss* — graph identity, not content equality, keys the cache.
#[test]
fn clone_is_a_different_graph_to_the_cache() {
    let cache = WindowIndexCache::new(4);
    let g = dataset("SMS-A", 800, 9);
    let copy = g.clone();
    let a = cache.get_or_build(&g);
    let b = cache.get_or_build(&copy);
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().hits, 0);
    // Content-equal, so both indexes match both graphs.
    assert!(a.matches(&copy) && b.matches(&g));
}

/// Dropping a graph and building new ones must never produce a stale
/// hit: even when an event buffer address is recycled, verification
/// rejects an index that does not describe the new graph exactly.
#[test]
fn recycled_graphs_never_get_stale_indexes() {
    let cache = WindowIndexCache::new(8);
    // Churn through many same-sized graphs, dropping each before the
    // next allocation so the allocator is encouraged to reuse buffers.
    for round in 0..50u64 {
        let g = dataset("Calls-Copenhagen", 500, round);
        let ix = cache.get_or_build(&g);
        assert!(
            ix.matches(&g),
            "round {round}: cache returned an index that does not describe the graph"
        );
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(600));
        assert_eq!(WindowedEngine.count(&g, &cfg), BacktrackEngine.count(&g, &cfg));
    }
    let s = cache.stats();
    assert_eq!(s.hits, 0, "distinct graphs must never hit ({s:?})");
    assert_eq!(s.misses, 50, "every distinct graph is a miss ({s:?})");
    // `s.rejected` counts recycled-address collisions caught by
    // verification; it is allocator-dependent, so any value is fine —
    // what matters is that none of them became a hit.
}

/// The sampler leans hardest on reuse: every one of its window draws
/// walks the shared index. Its estimates must agree with exact counts
/// whether the cache is cold or warm.
#[test]
fn sampling_engine_reuses_index_correctly() {
    let g = dataset("CollegeMsg", 2_000, 5);
    let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(1_000));
    let cold = SamplingEngine::new(300, 8).report(&g, &cfg);
    // Warm the cache via an exact count, then sample again.
    let exact = WindowedEngine.count(&g, &cfg).total() as f64;
    let warm = SamplingEngine::new(300, 8).report(&g, &cfg);
    assert_eq!(cold.total, warm.total, "cache state must not affect sampling results");
    let rel = (warm.total.point - exact).abs() / exact.max(1.0);
    assert!(rel < 0.25, "estimate {} vs exact {exact} (rel {rel:.3})", warm.total.point);
}
