//! `tnm serve` integration suite: real client/server sessions over TCP
//! sockets.
//!
//! Four contracts are pinned here:
//!
//! * **Query fidelity across the wire** — count / report / enumerate /
//!   batch queries answered by the daemon are bit-identical to running
//!   the same [`Query`] locally, across engine kinds (including the
//!   sampler's f64 interval estimates, which travel as raw bits).
//! * **Incremental appends** — after any sequence of AppendEvents
//!   batches, every subscription's live counts are bit-identical to a
//!   from-scratch recount of the full graph; queries observe the
//!   appended events too.
//! * **Robustness** — wire-level garbage (bad magic, oversized length
//!   headers, truncation mid-frame) costs the offending connection
//!   only; application-level errors (unknown graph, duplicate load,
//!   ineligible subscription, regressing append) answer an error frame
//!   and the connection stays usable. The daemon survives all of it.
//! * **Isolation** — concurrent clients loading and querying distinct
//!   graphs never observe each other's data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use temporal_motifs::prelude::*;
use tnm_graph::wire::{read_frame, write_frame, FRAME_MAGIC, MAX_FRAME_PAYLOAD, WIRE_VERSION};
use tnm_motifs::engine::{ClientError, ServerHandle};

/// The serve protocol's error-response frame kind (documented in the
/// `tnm_motifs::engine` module docs alongside the request kinds).
const KIND_RESP_ERR: u8 = 63;

/// Seeded random event batch with duplicate timestamps, so appended
/// chunks regularly share boundary timestamps with the resident log.
fn random_events(seed: u64, nodes: u32, events: usize, horizon: i64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(events);
    while batch.len() < events {
        let u: u32 = rng.gen_range(0..nodes);
        let v: u32 = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        batch.push(Event::new(u, v, rng.gen_range(0i64..horizon)));
    }
    batch
}

fn spawn_server() -> (ServerHandle, SocketAddr) {
    let server = MotifServer::bind("127.0.0.1:0").expect("bind").spawn();
    let addr = server.addr();
    (server, addr)
}

#[test]
fn queries_round_trip_across_engine_kinds() {
    let events = random_events(11, 40, 1200, 4000);
    let graph = TemporalGraph::from_events(events.clone()).unwrap();
    let (server, addr) = spawn_server();
    let mut client = ServeClient::connect(addr).unwrap();
    let (total, nodes) = client.load_graph("g", &events, 0).unwrap();
    assert_eq!(total, graph.num_events() as u64);
    assert_eq!(nodes, graph.num_nodes());

    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(300));
    for engine in
        [EngineKind::Backtrack, EngineKind::Windowed, EngineKind::Parallel, EngineKind::Stream]
    {
        let q = Query::Count { cfg: cfg.clone(), engine, threads: 2 };
        let QueryResponse::Counts(counts) = client.query("g", &q).unwrap() else { panic!("shape") };
        assert_eq!(counts, engine.count(&graph, &cfg, 2), "engine {engine}");
    }

    // The sampler's report survives the wire bit-identically: interval
    // estimates are f64s shipped as raw bits.
    let sampler = EngineKind::sampling(64, 7);
    let q = Query::Report { cfg: cfg.clone(), engine: sampler, threads: 2 };
    let QueryResponse::Report(served) = client.query("g", &q).unwrap() else { panic!("shape") };
    let local = sampler.report(&graph, &cfg, 2);
    assert!(!served.exact);
    assert_eq!(served.samples, local.samples);
    assert_eq!(served.counts, local.counts);
    assert_eq!(served.total.point.to_bits(), local.total.point.to_bits());
    assert_eq!(served.total.half_width.to_bits(), local.total.half_width.to_bits());

    // Enumeration truncates at the limit but keeps counting the total.
    let q =
        Query::Enumerate { cfg: cfg.clone(), engine: EngineKind::Windowed, threads: 1, limit: 5 };
    let QueryResponse::Instances { total, instances, truncated } = client.query("g", &q).unwrap()
    else {
        panic!("shape")
    };
    assert_eq!(total, EngineKind::Windowed.count(&graph, &cfg, 1).total());
    assert!(instances.len() <= 5);
    assert_eq!(truncated, total as usize > instances.len());

    // Batches answer every config, bit-identical to solo runs.
    let cfgs = vec![cfg.clone(), EnumConfig::new(2, 3).with_timing(Timing::only_w(100))];
    let q = Query::Batch { cfgs: cfgs.clone(), engine: EngineKind::Auto, threads: 2 };
    let QueryResponse::Batch(tables) = client.query("g", &q).unwrap() else { panic!("shape") };
    assert_eq!(tables.len(), cfgs.len());
    for (c, t) in cfgs.iter().zip(&tables) {
        assert_eq!(*t, EngineKind::Auto.count(&graph, c, 2));
    }

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn incremental_appends_match_recount_over_the_socket() {
    let mut all = random_events(23, 30, 900, 3000);
    all.sort_unstable();
    let (base, tail) = all.split_at(500);
    let (server, addr) = spawn_server();
    let mut client = ServeClient::connect(addr).unwrap();
    client.load_graph("live", base, 0).unwrap();

    let cfgs = [
        EnumConfig::new(3, 3).with_timing(Timing::only_w(250)),
        EnumConfig::new(2, 2).with_timing(Timing::only_w(40)),
        EnumConfig::for_signature(sig("010102")).with_timing(Timing::only_w(500)),
    ];
    let base_graph = TemporalGraph::from_events(base.to_vec()).unwrap();
    let mut subs = Vec::new();
    for cfg in &cfgs {
        let (id, counts) = client.subscribe("live", cfg).unwrap();
        assert_eq!(counts, EngineKind::Stream.count(&base_graph, cfg, 1), "initial counts");
        subs.push(id);
    }

    // Odd batch sizes, including a single event and a run that shares
    // its first timestamp with the resident log's tail.
    let mut sent: Vec<Event> = base.to_vec();
    for chunk in [&tail[..1], &tail[1..8], &tail[8..72], &tail[72..]] {
        let ack = client.append_events("live", chunk).unwrap();
        sent.extend_from_slice(chunk);
        assert_eq!(ack.total_events, sent.len() as u64);
        let full = TemporalGraph::from_events(sent.clone()).unwrap();
        for (i, cfg) in cfgs.iter().enumerate() {
            let (_, live) =
                ack.subscriptions.iter().find(|(id, _)| *id == subs[i]).expect("sub in ack");
            assert_eq!(
                *live,
                EngineKind::Stream.count(&full, cfg, 1),
                "subscription {i} after {} events",
                sent.len()
            );
        }
    }

    // Queries see the appended events too (the rebuilt graph).
    let q = Query::Count { cfg: cfgs[0].clone(), engine: EngineKind::Windowed, threads: 1 };
    let QueryResponse::Counts(counts) = client.query("live", &q).unwrap() else { panic!("shape") };
    let full = TemporalGraph::from_events(sent).unwrap();
    assert_eq!(counts, EngineKind::Windowed.count(&full, &cfgs[0], 1));

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn bad_peers_do_not_kill_the_daemon() {
    let events = random_events(37, 20, 400, 1500);
    let graph = TemporalGraph::from_events(events.clone()).unwrap();
    let (server, addr) = spawn_server();
    let mut good = ServeClient::connect(addr).unwrap();
    good.load_graph("g", &events, 0).unwrap();

    // Wire-level garbage: each gets an error frame (best effort) and
    // its connection closed — never the daemon.
    {
        // Bad magic (11 bytes = exactly one frame header).
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"XXXXGARBAGE").unwrap();
        assert!(read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().is_some(), "error frame");
        assert!(read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().is_none(), "then EOF");
    }
    {
        // Oversized length header: rejected before any allocation.
        let mut s = TcpStream::connect(addr).unwrap();
        let mut h = Vec::new();
        h.extend_from_slice(&FRAME_MAGIC);
        h.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        h.push(18);
        h.extend_from_slice(&u32::MAX.to_le_bytes());
        s.write_all(&h).unwrap();
        assert!(read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().is_some(), "error frame");
        assert!(read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().is_none(), "then EOF");
    }
    {
        // Truncation mid-header: peer vanishes, daemon shrugs.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&FRAME_MAGIC[..2]).unwrap();
        drop(s);
    }
    {
        // A well-framed but unknown request kind is an *application*
        // error: the error frame comes back and the connection stays
        // open for the next frame.
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, 77, &[]).unwrap();
        let (kind, _) = read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().expect("reply");
        assert_eq!(kind, KIND_RESP_ERR);
        write_frame(&mut s, 78, &[]).unwrap();
        let (kind, _) = read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().expect("still open");
        assert_eq!(kind, KIND_RESP_ERR);
    }

    // Application-level errors on a healthy client: every one answers
    // Server(_) and the same connection keeps working afterwards.
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(200));
    let q = Query::Count { cfg: cfg.clone(), engine: EngineKind::Windowed, threads: 1 };
    assert!(matches!(good.query("missing", &q), Err(ClientError::Server(_))), "unknown graph");
    assert!(
        matches!(good.load_graph("g", &events, 0), Err(ClientError::Server(_))),
        "duplicate load"
    );
    let dc_cfg = EnumConfig::new(3, 3).with_timing(Timing::both(50, 200));
    assert!(
        matches!(good.subscribe("g", &dc_cfg), Err(ClientError::Server(_))),
        "ΔC configs are not stream-eligible"
    );
    let regressing = [Event::new(0, 1, i64::MIN / 2)];
    assert!(
        matches!(good.append_events("g", &regressing), Err(ClientError::Server(_))),
        "time-regressing append"
    );

    let QueryResponse::Counts(counts) = good.query("g", &q).unwrap() else { panic!("shape") };
    assert_eq!(counts, EngineKind::Windowed.count(&graph, &cfg, 1), "connection still usable");

    // And a brand-new client connects fine after all of the above.
    let mut fresh = ServeClient::connect(addr).unwrap();
    assert_eq!(fresh.stats().unwrap().graphs.len(), 1);
    fresh.shutdown().unwrap();
    server.join().unwrap();
}

/// The server's metrics registry under concurrent clients: once the
/// racing connections have drained, the snapshot is deterministic
/// (reading it twice gives identical results, and reading it does not
/// perturb it) and every counter/histogram adds up to exactly the work
/// the clients did.
#[test]
fn metrics_snapshots_are_deterministic_under_concurrent_clients() {
    let (server, addr) = spawn_server();
    let mut handles = Vec::new();
    for t in 0..3u64 {
        handles.push(std::thread::spawn(move || {
            let mut events = random_events(300 + t, 20, 450, 1800);
            events.sort_unstable();
            let (base, tail) = events.split_at(400);
            let mut client = ServeClient::connect(addr).unwrap();
            let name = format!("m-{t}");
            client.load_graph(&name, base, 0).unwrap();
            let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(120));
            // One subscription per client, advanced by one append.
            client.subscribe(&name, &cfg).unwrap();
            client.append_events(&name, tail).unwrap();
            for _ in 0..2 {
                let q = Query::Count { cfg: cfg.clone(), engine: EngineKind::Windowed, threads: 1 };
                client.query(&name, &q).unwrap();
            }
            let q = Query::Batch {
                cfgs: vec![cfg.clone(), EnumConfig::new(2, 2).with_timing(Timing::only_w(60))],
                engine: EngineKind::Windowed,
                threads: 1,
            };
            client.query(&name, &q).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Connection-close observations land asynchronously after the
    // client sockets drop; wait until all three are in before pinning
    // determinism.
    let mut client = ServeClient::connect(addr).unwrap();
    let mut snap = client.metrics().unwrap();
    for _ in 0..200 {
        if snap.histograms.get("serve.connection_frames").map_or(0, |h| h.count) >= 3 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        snap = client.metrics().unwrap();
    }

    // Idle server: consecutive reads are identical (metrics and stats
    // requests themselves are not counted as queries).
    assert_eq!(client.metrics().unwrap(), snap);
    assert_eq!(client.metrics().unwrap(), snap);

    // And the totals are exactly the work performed: 3 clients × 3
    // queries, 3 × 50 appended events, one subscription advance each.
    assert_eq!(snap.counters["serve.queries"], 9);
    assert_eq!(snap.counters["serve.appends"], 150);
    assert_eq!(snap.histograms["serve.query.count_ns"].count, 6);
    assert_eq!(snap.histograms["serve.query.batch_ns"].count, 3);
    assert_eq!(snap.histograms["serve.subscription_advance_ns"].count, 3);
    assert_eq!(snap.histograms["serve.connection_frames"].count, 3);

    // Stats carries the same snapshot in its versioned section.
    let stats = client.stats().unwrap();
    assert_eq!(stats.queries, 9);
    assert_eq!(stats.appends, 150);
    assert_eq!(stats.obs, snap);

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn concurrent_clients_are_isolated() {
    let (server, addr) = spawn_server();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            let events = random_events(100 + t, 25, 600, 2000);
            let graph = TemporalGraph::from_events(events.clone()).unwrap();
            let mut client = ServeClient::connect(addr).unwrap();
            let name = format!("client-{t}");
            client.load_graph(&name, &events, 0).unwrap();
            let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(150 + t as i64));
            for _ in 0..3 {
                let q = Query::Count { cfg: cfg.clone(), engine: EngineKind::Windowed, threads: 2 };
                let QueryResponse::Counts(counts) = client.query(&name, &q).unwrap() else {
                    panic!("shape")
                };
                assert_eq!(counts, EngineKind::Windowed.count(&graph, &cfg, 2), "client {t}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut client = ServeClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.graphs.len(), 4, "all four graphs resident");
    assert!(stats.queries >= 12);
    client.shutdown().unwrap();
    server.join().unwrap();
}

/// Opt-in query tracing over the wire: a traced count answers with a
/// well-formed span tree (one trace id, a `serve.query` root, the
/// engine's `query.count` phase beneath it, every parent resolving)
/// plus a per-request metrics delta — and the daemon's slow-query
/// table and flight recorder both log the request. Untraced queries on
/// the same connection stay trace-free.
#[test]
fn traced_queries_ship_span_trees_and_populate_query_logs() {
    let events = random_events(31, 30, 800, 2500);
    let graph = TemporalGraph::from_events(events.clone()).unwrap();
    let server = MotifServer::bind_with(
        "127.0.0.1:0",
        ServeOptions { slow_queries: 4, flight_recorder: 8, ..ServeOptions::default() },
    )
    .unwrap()
    .spawn();
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).unwrap();
    client.load_graph("g", &events, 0).unwrap();

    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(200));
    let q = Query::Count { cfg: cfg.clone(), engine: EngineKind::Windowed, threads: 1 };

    // Untraced baseline: same answer, no trace section.
    let QueryResponse::Counts(plain) = client.query("g", &q).unwrap() else { panic!("shape") };
    assert_eq!(plain, EngineKind::Windowed.count(&graph, &cfg, 1));

    let (resp, trace) = client.query_traced("g", &q).unwrap();
    let QueryResponse::Counts(counts) = resp else { panic!("shape") };
    assert_eq!(counts, plain, "tracing must not change the answer");
    assert!(!trace.spans.is_empty(), "a traced query must ship spans");
    let trace_id = trace.spans[0].trace_id;
    assert_ne!(trace_id, 0);
    assert!(trace.spans.iter().all(|s| s.trace_id == trace_id), "one trace id");
    let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].name, "serve.query");
    assert!(
        roots[0].args.iter().any(|(k, v)| k == "graph" && v == "g"),
        "the root span carries the graph name"
    );
    assert!(
        trace.spans.iter().any(|s| s.name == "query.count"),
        "the engine's root phase must appear under the serve root"
    );
    let ids: std::collections::BTreeSet<u64> = trace.spans.iter().map(|s| s.span_id).collect();
    for s in &trace.spans {
        assert!(s.parent_id == 0 || ids.contains(&s.parent_id), "dangling parent on {}", s.name);
    }
    // The per-request metrics delta counts this query (serve registry
    // metrics are always on, independent of TNM_OBS).
    assert_eq!(trace.metrics.counters.get("serve.queries"), Some(&1));

    // Traced subscriptions ship the same section shape.
    let (_id, counts, sub_trace) = client.subscribe_traced("g", &cfg).unwrap();
    assert_eq!(counts, plain);
    assert!(!sub_trace.spans.is_empty());
    assert!(sub_trace.spans.iter().any(|s| s.name == "serve.subscribe"));

    // Both query logs saw the traced and untraced queries; the slow
    // table is latency-descending and retains spans, the flight
    // recorder drops them (it is a cheap ring).
    let stats = client.stats().unwrap();
    assert_eq!(stats.flight.len(), 2, "both count queries in the flight recorder");
    assert!(stats.flight.iter().all(|e| e.spans.is_empty()));
    assert_eq!(stats.slow.len(), 2);
    assert!(stats.slow.windows(2).all(|w| w[0].latency_ns >= w[1].latency_ns));
    let traced_entry = stats.slow.iter().find(|e| e.trace_id == trace_id).unwrap();
    assert_eq!(traced_entry.kind, "count");
    assert_eq!(traced_entry.graph, "g");
    assert!(!traced_entry.spans.is_empty(), "slow-table entries keep their span trees");
    assert!(stats.slow.iter().any(|e| e.trace_id == 0), "the untraced query logs too");

    client.shutdown().unwrap();
    server.join().unwrap();
}

/// Minimal std-only HTTP GET against the daemon's scrape surface.
fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: tnm\r\nConnection: close\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("malformed HTTP response");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

/// The HTTP scrape surface: `/metrics` serves Prometheus text,
/// `/healthz` answers while wire clients are mid-session, and
/// `/timeseries` serves JSON the `tnm top` parser accepts — all on a
/// separate listener that never speaks the framed wire protocol.
#[test]
fn http_scrape_surface_serves_metrics_health_and_timeseries() {
    let events = random_events(37, 25, 600, 2000);
    let server = MotifServer::bind_with(
        "127.0.0.1:0",
        ServeOptions { http_port: Some(0), sample_interval_ms: 25, ..ServeOptions::default() },
    )
    .unwrap()
    .spawn();
    let addr = server.addr();
    let http = server.http_addr().expect("http_port requested, so the listener must exist");

    // A wire client stays mid-session while every scrape runs.
    let mut client = ServeClient::connect(addr).unwrap();
    client.load_graph("g", &events, 0).unwrap();
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(150));
    let q = Query::Count { cfg, engine: EngineKind::Windowed, threads: 1 };
    let QueryResponse::Counts(_) = client.query("g", &q).unwrap() else { panic!("shape") };

    let (status, body) = scrape(http, "/metrics");
    assert!(status.contains(" 200 "), "/metrics answered `{status}`");
    assert!(
        body.lines().any(|l| l == "serve_queries 1"),
        "Prometheus text must carry the serve counters:\n{body}"
    );
    assert!(body.contains("# TYPE serve_queries counter"));

    let (status, body) = scrape(http, "/healthz");
    assert!(status.contains(" 200 "));
    assert_eq!(body, "ok\n");

    // Wait for the background sampler to fold at least one window,
    // then the JSON must parse with the `tnm top` parser.
    let mut points = Vec::new();
    for _ in 0..200 {
        let (status, body) = scrape(http, "/timeseries");
        assert!(status.contains(" 200 "));
        points = tnm_obs::parse_timeseries_json(&body).expect("valid /timeseries JSON");
        if !points.is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!points.is_empty(), "the sampler must record within 2 s");
    assert!(points.iter().all(|p| p.at_unix_ms > 0));
    let total_queries: u64 =
        points.iter().filter_map(|p| p.delta.counters.get("serve.queries")).sum();
    assert_eq!(total_queries, 1, "the windows' deltas must sum to the one query");

    let (status, _) = scrape(http, "/nope");
    assert!(status.contains(" 404 "));

    // The wire connection survived all of it.
    let stats = client.stats().unwrap();
    assert_eq!(stats.queries, 1);
    client.shutdown().unwrap();
    server.join().unwrap();
}
