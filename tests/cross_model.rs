//! Cross-crate consistency tests: relations between models, engines, and
//! the streaming matcher that must hold on any input.

use temporal_motifs::prelude::*;
use tnm_motifs::pattern::{matcher::StreamingMatcher, EventPattern};

/// Deterministic mid-size test graph with unique timestamps.
fn unique_time_graph(seed: u64, events: usize, nodes: u32) -> TemporalGraph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TemporalGraphBuilder::new();
    let mut t = 0i64;
    for _ in 0..events {
        t += rng.gen_range(1i64..8); // strictly increasing: no ties
        let u = rng.gen_range(0..nodes);
        let mut v = rng.gen_range(0..nodes);
        if v == u {
            v = (v + 1) % nodes;
        }
        builder.push(Event::new(u, v, t));
    }
    builder.build().unwrap()
}

#[test]
fn restrictions_only_remove_instances() {
    let g = unique_time_graph(1, 3000, 40);
    let base = EnumConfig::new(3, 3).with_timing(Timing::both(40, 80));
    let vanilla = count_motifs(&g, &base);
    for cfg in [
        base.clone().with_consecutive(true),
        base.clone().with_static_induced(true),
        base.clone().with_constrained(true),
    ] {
        let restricted = count_motifs(&g, &cfg);
        assert!(restricted.total() <= vanilla.total());
        for (sig, n) in restricted.iter() {
            assert!(n <= vanilla.get(sig), "restriction added instances of {sig}");
        }
    }
}

#[test]
fn ratio_sweep_is_nested() {
    // Paper Section 5.2: the motif set under a smaller ΔC/ΔW ratio is a
    // subset of a larger ratio's set (ΔW fixed).
    let g = unique_time_graph(2, 3000, 40);
    let ratios = [0.33, 0.5, 0.66, 1.0];
    let counts: Vec<MotifCounts> = ratios
        .iter()
        .map(|&r| count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::from_ratio(80, r))))
        .collect();
    for w in counts.windows(2) {
        for (sig, n) in w[0].iter() {
            assert!(n <= w[1].get(sig), "nesting violated for {sig}");
        }
    }
}

#[test]
fn streaming_matcher_agrees_with_engine_on_signatures() {
    let g = unique_time_graph(3, 800, 25);
    let delta_w = 60;
    for s in ["011202", "010102", "011221", "011220", "0112"] {
        let signature = sig(s);
        let exact = count_signature(&g, signature, Timing::only_w(delta_w));
        let pattern = EventPattern::from_signature(signature, delta_w);
        let matches = StreamingMatcher::match_graph(pattern, &g).len() as u64;
        assert_eq!(matches, exact, "matcher vs engine disagree on {s}");
    }
}

#[test]
fn signature_targeting_agrees_with_full_spectrum() {
    let g = unique_time_graph(4, 1500, 30);
    let timing = Timing::both(30, 60);
    let full = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(timing));
    let mut targeted_total = 0u64;
    for m in tnm_motifs::catalog::all_3e() {
        let n = count_signature(&g, m, timing);
        assert_eq!(n, full.get(m), "targeted count mismatch for {m}");
        targeted_total += n;
    }
    assert_eq!(targeted_total, full.total());
}

#[test]
fn four_models_rank_sensibly_on_shared_data() {
    // With matched parameters, the non-induced ΔW model (Song) admits at
    // least as many instances as the induced one (Paranjape); Kovanen's
    // consecutive restriction admits no more than Hulovatyy without it.
    let g = unique_time_graph(5, 2000, 30);
    let count_for =
        |model: &MotifModel| count_motifs(&g, &EnumConfig::for_model(model, 3, 3)).total();
    let song = count_for(&MotifModel::song(60));
    let paranjape = count_for(&MotifModel::paranjape(60));
    assert!(paranjape <= song, "induced ({paranjape}) must not exceed non-induced ({song})");

    let kovanen = count_for(&MotifModel::kovanen(30));
    let hulovatyy_no_induced = count_for(&MotifModel {
        static_induced: false,
        duration_aware: false,
        ..MotifModel::hulovatyy(30)
    });
    assert!(kovanen <= hulovatyy_no_induced, "consecutive restriction must only remove instances");
}

#[test]
fn degrading_resolution_only_loses_motifs_via_ties() {
    // Degrading to coarse buckets introduces ties, which exclude events
    // from shared motifs; with a tie-free graph at bucket granularity the
    // counts are unchanged.
    let g = unique_time_graph(6, 1000, 25);
    let degraded = tnm_graph::transform::degrade_resolution(&g, 5);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_c(50));
    let original = count_motifs(&g, &cfg).total();
    let coarse = count_motifs(&degraded, &cfg).total();
    // Not a strict inequality in general (buckets can also merge gaps
    // under the ΔC bound), but the tie-exclusion effect dominates at
    // coarse buckets:
    let very_coarse = tnm_graph::transform::degrade_resolution(&g, 2000);
    let very_coarse_count = count_motifs(&very_coarse, &cfg).total();
    assert!(very_coarse_count < original.max(1));
    assert!(coarse > 0 || original == 0);
}

#[test]
fn sampling_estimates_dataset_counts() {
    let spec = tnm_datasets::DatasetSpec::calls_copenhagen();
    let g = tnm_datasets::generate(&spec, 77);
    let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(600));
    let exact = count_motifs(&g, &cfg).total() as f64;
    let report = SamplingEngine::new(600, 5).with_window_len(6_000).report(&g, &cfg);
    let est = report.total.point;
    let rel = (est - exact).abs() / exact.max(1.0);
    assert!(rel < 0.2, "sampling estimate {est:.0} vs exact {exact:.0} (rel {rel:.3})");
    assert!(report.total.half_width > 0.0, "sampled totals must carry an interval");
}

#[test]
fn edge_list_roundtrip_preserves_motif_counts() {
    let spec = tnm_datasets::DatasetSpec::sms_copenhagen();
    let mut spec = spec;
    spec.num_events = 2_000;
    let g = tnm_datasets::generate(&spec, 9);
    let mut buf = Vec::new();
    tnm_graph::io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = tnm_graph::io::read_edge_list(buf.as_slice()).unwrap();
    assert_eq!(g.num_events(), g2.num_events());
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(1500, 3000));
    assert_eq!(count_motifs(&g, &cfg), count_motifs(&g2, &cfg));
}
