//! Batch-planner equivalence suite.
//!
//! The batch API's core contract: for any batch of configurations and
//! any engine kind, `count_batch` results are **bit-identical** to
//! per-config [`EngineKind::count`] calls. The planner may share
//! traversals however it likes — widest-timing walks with per-config
//! masks, union-prefix pruning for all-targeted groups, one stream-DP
//! pass projected per member, solo runs for unshareable kinds — but
//! none of it may leak into the counts. This suite pins the contract
//! across:
//!
//! * random mixed batches — models, ΔC/ΔW shapes, node budgets,
//!   signature targets, induced/non-induced — on seeded random graphs,
//!   for every shareable kind (auto, windowed, backtrack, parallel,
//!   stream);
//! * single-config batches and duplicate configs (duplicates must fill
//!   every slot, identically);
//! * the canonical 36-motif Paranjape batch (one shared stream pass —
//!   the plan is pinned to a single group);
//! * solo kinds: sharded and sampling (seeded sampling estimates must
//!   be bit-identical to the per-config API);
//! * `enumerate_batch` against per-config `enumerate_instances`,
//!   instance lists compared in order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_motifs::prelude::*;
use tnm_motifs::catalog::all_motifs;
use tnm_motifs::engine::{BatchPlanner, EngineKind};

fn random_graph(seed: u64, nodes: u32, events: usize, horizon: i64) -> TemporalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(events);
    while batch.len() < events {
        let u: u32 = rng.gen_range(0..nodes);
        let v: u32 = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        batch.push(Event::new(u, v, rng.gen_range(0i64..horizon)));
    }
    TemporalGraph::from_events(batch).expect("non-empty batch")
}

/// One random configuration: mixed event counts, node budgets, timing
/// shapes, restriction flags, and occasional signature targets — the
/// full space the planner has to group (or refuse to group) correctly.
fn random_config(rng: &mut StdRng) -> EnumConfig {
    let k = [1usize, 2, 2, 3, 3, 3, 4][rng.gen_range(0..7usize)];
    let node_cap = (k + 1).clamp(2, 4);
    let max_nodes = rng.gen_range(2..=node_cap);
    // Occasionally target one signature of the chosen shape.
    if k <= 3 && rng.gen_range(0..4) == 0 {
        let motifs = all_motifs(k, max_nodes);
        let target = motifs[rng.gen_range(0..motifs.len())];
        let w = rng.gen_range(10i64..120);
        let timing = if rng.gen_range(0..2) == 0 {
            Timing::only_w(w)
        } else {
            Timing::both(rng.gen_range(5i64..60), w)
        };
        return EnumConfig::for_signature(target).with_timing(timing);
    }
    // Unbounded timing only below 3 events — enough to cover the
    // unbounded grouping path without exploding the instance count.
    let timing = match rng.gen_range(if k <= 2 { 0..4 } else { 1..4 }) {
        0 => Timing::UNBOUNDED,
        1 => Timing::only_c(rng.gen_range(5i64..60)),
        2 => Timing::only_w(rng.gen_range(10i64..120)),
        _ => Timing::both(rng.gen_range(5i64..60), rng.gen_range(10i64..120)),
    };
    let mut cfg = EnumConfig::new(k, max_nodes).with_timing(timing);
    if rng.gen_range(0..3) == 0 {
        cfg.min_nodes = rng.gen_range(2..=max_nodes);
    }
    match rng.gen_range(0..8) {
        0 => cfg = cfg.with_consecutive(true),
        1 => cfg = cfg.with_static_induced(true),
        2 => cfg = cfg.with_constrained(true),
        3 => cfg.duration_aware = true,
        _ => {}
    }
    cfg
}

/// Kinds whose batch execution shares traversals (everything except the
/// solo sharded/distributed/sampling kinds, which `solo_kinds_match`
/// covers).
fn shareable_kinds() -> [EngineKind; 5] {
    [
        EngineKind::Auto,
        EngineKind::Windowed,
        EngineKind::Backtrack,
        EngineKind::Parallel,
        EngineKind::Stream,
    ]
}

fn assert_batch_matches(graph: &TemporalGraph, batch: &[EnumConfig], label: &str) {
    for kind in shareable_kinds() {
        for threads in [1usize, 3] {
            let got = kind.count_batch(graph, batch, threads);
            assert_eq!(got.len(), batch.len());
            for (i, cfg) in batch.iter().enumerate() {
                assert_eq!(
                    got[i],
                    kind.count(graph, cfg, threads),
                    "{label}: kind `{kind}` threads={threads} config #{i} {cfg:?}"
                );
            }
        }
    }
}

#[test]
fn random_batches_match_per_config_counts() {
    for case in 0u64..5 {
        let g = random_graph(700 + case, 6 + 2 * case as u32, 70 + 10 * case as usize, 150);
        let mut rng = StdRng::seed_from_u64(7000 + case);
        let batch: Vec<EnumConfig> =
            (0..rng.gen_range(3..8)).map(|_| random_config(&mut rng)).collect();
        assert_batch_matches(&g, &batch, &format!("case {case}"));
    }
}

#[test]
fn single_config_and_duplicate_batches() {
    let g = random_graph(41, 8, 80, 120);
    let single = [EnumConfig::new(3, 3).with_timing(Timing::only_w(40))];
    assert_batch_matches(&g, &single, "single stream-shaped");
    let single_walk = [EnumConfig::new(3, 3).with_timing(Timing::both(20, 40))];
    assert_batch_matches(&g, &single_walk, "single walk-shaped");
    // Duplicates must fill every slot with the same (correct) table.
    let dup = vec![single_walk[0].clone(); 3];
    assert_batch_matches(&g, &dup, "duplicates");
    let got = EngineKind::Auto.count_batch(&g, &dup, 2);
    assert_eq!(got[0], got[1]);
    assert_eq!(got[1], got[2]);
}

#[test]
fn thirty_six_motif_batch_is_one_stream_pass() {
    let g = random_graph(42, 10, 120, 200);
    let batch: Vec<EnumConfig> = all_motifs(3, 3)
        .into_iter()
        .map(|m| EnumConfig::for_signature(m).with_timing(Timing::only_w(60)))
        .collect();
    assert_eq!(batch.len(), 36);
    // The amortization claim, pinned at the plan level: one group.
    let plan = BatchPlanner::plan(&g, &batch, EngineKind::Auto, 1);
    assert_eq!(plan.num_groups(), 1, "{}", plan.describe());
    assert_batch_matches(&g, &batch, "36 Paranjape motifs");
    // The projections must jointly tile the untargeted spectrum.
    let spectrum =
        EngineKind::Auto.count(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_w(60)), 1);
    let batch_total: u64 =
        EngineKind::Auto.count_batch(&g, &batch, 1).iter().map(|c| c.total()).sum();
    assert_eq!(batch_total, spectrum.total());
}

#[test]
fn all_targeted_walker_group_uses_union_prefix() {
    let g = random_graph(43, 9, 100, 150);
    // ΔC keeps these off the stream path: a walker group whose members
    // all carry targets, so the shared walk prunes to the prefix union.
    let batch: Vec<EnumConfig> = all_motifs(3, 3)
        .into_iter()
        .map(|m| EnumConfig::for_signature(m).with_timing(Timing::both(30, 60)))
        .collect();
    let plan = BatchPlanner::plan(&g, &batch, EngineKind::Windowed, 1);
    // Two walk shapes (2-node and 3-node budgets), each prefix-pruned.
    assert_eq!(plan.num_groups(), 2, "{}", plan.describe());
    assert!(plan.describe().contains("prefix["), "{}", plan.describe());
    assert_batch_matches(&g, &batch, "36 targeted walker motifs");
}

#[test]
fn table5_style_ratio_sweep_mixes_stream_and_walk_groups() {
    let g = random_graph(44, 10, 110, 180);
    // Ratios 1.0 / 0.66 / 0.5 over ΔW=60: the first is ΔW-only (stream
    // under auto), the others share one walker group.
    let batch = [
        EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::from_ratio(60, 1.0)),
        EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::from_ratio(60, 0.66)),
        EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::from_ratio(60, 0.5)),
    ];
    let plan = BatchPlanner::plan(&g, &batch, EngineKind::Auto, 1);
    assert_eq!(plan.num_groups(), 2, "{}", plan.describe());
    assert_batch_matches(&g, &batch, "table5 ratio sweep");
}

#[test]
fn solo_kinds_match() {
    let g = random_graph(45, 8, 90, 140);
    let batch = [
        EnumConfig::new(3, 3).with_timing(Timing::only_w(50)),
        EnumConfig::new(2, 3).with_timing(Timing::both(15, 40)),
    ];
    for kind in [EngineKind::sharded(16, 0), EngineKind::sampling(24, 9)] {
        let got = kind.count_batch(&g, &batch, 2);
        for (i, cfg) in batch.iter().enumerate() {
            assert_eq!(got[i], kind.count(&g, cfg, 2), "solo kind `{kind}` config #{i}");
        }
    }
}

#[test]
fn enumerate_batch_matches_per_config_enumeration() {
    let g = random_graph(46, 8, 80, 120);
    let batch = [
        EnumConfig::new(3, 3).with_timing(Timing::only_w(40)),
        EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::both(15, 40)),
        EnumConfig::for_signature(sig("010102")).with_timing(Timing::only_w(40)),
        EnumConfig::new(2, 3).with_timing(Timing::only_w(25)),
    ];
    let mut batched: Vec<Vec<Vec<u32>>> = vec![Vec::new(); batch.len()];
    tnm_motifs::engine::enumerate_batch(&g, &batch, |slot, inst| {
        batched[slot].push(inst.events.to_vec());
    });
    for (i, cfg) in batch.iter().enumerate() {
        let mut expected: Vec<Vec<u32>> = Vec::new();
        enumerate_instances(&g, cfg, |inst| expected.push(inst.events.to_vec()));
        assert_eq!(batched[i], expected, "config #{i} instance lists diverge");
    }
}
