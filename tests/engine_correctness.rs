//! Differential correctness tests for the counting engines.
//!
//! The engines (`tnm_motifs::engine`) are validated against an
//! independent oracle: brute-force enumeration of every k-subset of
//! events, each judged by `tnm_motifs::validity::check_instance` — a
//! separate implementation of the same semantics used for the Figure 1
//! experiment. Any disagreement is a bug in one of the two paths.
//!
//! These used to run under `proptest`; the build environment has no
//! crates.io access, so the same properties now run over a deterministic
//! seeded-random corpus of small tie-rich graphs (fixed seeds — failures
//! are exactly reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use temporal_motifs::prelude::*;
use tnm_motifs::validity::check_instance;

/// Brute-force motif counting: all `k`-subsets, oracle-validated.
fn brute_force_counts(
    graph: &TemporalGraph,
    model: &MotifModel,
    k: usize,
    min_nodes: usize,
    max_nodes: usize,
) -> HashMap<MotifSignature, u64> {
    let m = graph.num_events();
    let mut counts = HashMap::new();
    let mut subset: Vec<u32> = Vec::with_capacity(k);
    #[allow(clippy::too_many_arguments)]
    fn rec(
        graph: &TemporalGraph,
        model: &MotifModel,
        k: usize,
        min_nodes: usize,
        max_nodes: usize,
        start: usize,
        m: usize,
        subset: &mut Vec<u32>,
        counts: &mut HashMap<MotifSignature, u64>,
    ) {
        if subset.len() == k {
            let mut nodes: Vec<NodeId> = Vec::new();
            for &i in subset.iter() {
                let e = graph.event(i);
                for n in [e.src, e.dst] {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
            }
            if nodes.len() < min_nodes || nodes.len() > max_nodes {
                return;
            }
            if check_instance(graph, subset, model).is_valid() {
                let events: Vec<Event> = subset.iter().map(|&i| *graph.event(i)).collect();
                let sig = MotifSignature::from_events(&events);
                *counts.entry(sig).or_insert(0) += 1;
            }
            return;
        }
        for i in start..m {
            subset.push(i as u32);
            rec(graph, model, k, min_nodes, max_nodes, i + 1, m, subset, counts);
            subset.pop();
        }
    }
    rec(graph, model, k, min_nodes, max_nodes, 0, m, &mut subset, &mut counts);
    counts
}

/// Random small graph mirroring the old proptest strategy: up to 14
/// events on up to 6 nodes with timestamps in 0..60 (tie-rich on
/// purpose). Returns `None` when every drawn pair was a self-loop.
fn small_graph(rng: &mut StdRng) -> Option<TemporalGraph> {
    let len = rng.gen_range(3usize..14);
    let mut events = Vec::with_capacity(len);
    for _ in 0..len {
        let u: u32 = rng.gen_range(0..6);
        let v: u32 = rng.gen_range(0..6);
        if u == v {
            continue;
        }
        let t: i64 = rng.gen_range(0i64..60);
        events.push(Event::new(u, v, t));
    }
    if events.is_empty() {
        return None;
    }
    TemporalGraph::from_events(events).ok()
}

/// Runs `body` over `cases` deterministic random graphs.
fn for_each_graph(test_seed: u64, cases: u64, mut body: impl FnMut(&mut StdRng, TemporalGraph)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(test_seed * 10_000 + case);
        if let Some(graph) = small_graph(&mut rng) {
            body(&mut rng, graph);
        }
    }
}

fn models_under_test() -> Vec<MotifModel> {
    vec![
        MotifModel::vanilla(Timing::UNBOUNDED),
        MotifModel::vanilla(Timing::only_c(7)),
        MotifModel::vanilla(Timing::only_w(15)),
        MotifModel::vanilla(Timing::both(7, 15)),
        MotifModel::kovanen(10),
        MotifModel::song(20),
        MotifModel::hulovatyy(10),
        MotifModel::hulovatyy_constrained(10),
        MotifModel::paranjape(20),
    ]
}

/// The engine agrees with the brute-force oracle for every model,
/// for 2- and 3-event motifs on up to 4 nodes.
#[test]
fn engine_matches_brute_force() {
    for_each_graph(1, 24, |rng, graph| {
        let k = rng.gen_range(2usize..=3);
        for model in models_under_test() {
            let mut cfg = EnumConfig::for_model(&model, k, 4);
            // Hulovatyy's duration-aware gap equals the plain gap here
            // (all durations are zero), so semantics match the oracle.
            cfg.min_nodes = 2;
            let engine = count_motifs(&graph, &cfg);
            let oracle = brute_force_counts(&graph, &model, k, 2, 4);
            let oracle_total: u64 = oracle.values().sum();
            assert_eq!(
                engine.total(),
                oracle_total,
                "total mismatch for {} on {} events",
                model.name,
                graph.num_events()
            );
            for (sig, n) in oracle {
                assert_eq!(
                    engine.get(sig),
                    n,
                    "count mismatch for {} signature {}",
                    model.name,
                    sig
                );
            }
        }
    });
}

/// Parallel counting is identical to serial counting.
#[test]
#[allow(deprecated)]
fn parallel_equals_serial() {
    for_each_graph(2, 48, |_, graph| {
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(10, 20));
        let serial = count_motifs(&graph, &cfg);
        let parallel = count_motifs_parallel(&graph, &cfg, 4);
        assert_eq!(serial, parallel);
    });
}

/// Tightening ΔC never adds instances, per signature (the paper's
/// subset property in Section 5.2).
#[test]
fn delta_c_monotonicity() {
    for_each_graph(3, 48, |rng, graph| {
        let dc: i64 = rng.gen_range(1i64..30);
        let loose =
            count_motifs(&graph, &EnumConfig::new(3, 3).with_timing(Timing::both(dc + 5, 40)));
        let tight = count_motifs(&graph, &EnumConfig::new(3, 3).with_timing(Timing::both(dc, 40)));
        for (sig, n) in tight.iter() {
            assert!(n <= loose.get(sig), "signature {sig} grew when tightening");
        }
    });
}

/// Every emitted instance is time-ordered, connected, and valid for
/// the configured model (self-check via the oracle).
#[test]
fn emitted_instances_are_valid() {
    for_each_graph(4, 48, |_, graph| {
        let model = MotifModel::kovanen(12);
        let cfg = EnumConfig::for_model(&model, 3, 3);
        let mut checked = 0usize;
        tnm_motifs::enumerate::enumerate_instances(&graph, &cfg, |inst| {
            let verdict = check_instance(&graph, inst.events, &model);
            assert!(verdict.is_valid(), "engine emitted invalid instance: {verdict}");
            checked += 1;
        });
        // (may be zero on sparse graphs; the point is no invalid emission)
        assert!(checked < 100_000);
    });
}

/// Signature canonicalization is invariant under node relabelling.
#[test]
fn canonicalization_is_relabel_invariant() {
    for_each_graph(5, 48, |rng, graph| {
        let offset: u32 = rng.gen_range(1u32..50);
        let cfg = EnumConfig::new(3, 4).with_timing(Timing::only_w(30));
        let original = count_motifs(&graph, &cfg);
        // Relabel every node id by a fixed offset (order-preserving) and
        // also reverse ids (order-breaking) — signatures must not change.
        let shifted: Vec<Event> = graph
            .events()
            .iter()
            .map(|e| Event::new(e.src.0 + offset, e.dst.0 + offset, e.time))
            .collect();
        let shifted = TemporalGraph::from_events(shifted).unwrap();
        let shifted_counts = count_motifs(&shifted, &cfg);
        assert_eq!(&original, &shifted_counts);

        let max = graph.num_nodes();
        let reversed: Vec<Event> = graph
            .events()
            .iter()
            .map(|e| Event::new(max - e.src.0, max - e.dst.0, e.time))
            .collect();
        let reversed = TemporalGraph::from_events(reversed).unwrap();
        let reversed_counts = count_motifs(&reversed, &cfg);
        assert_eq!(&original, &reversed_counts);
    });
}

/// Every signature the engine emits on ≤4-node configs exists in the
/// exhaustive catalog of single-component motifs.
#[test]
fn emitted_signatures_in_catalog() {
    for_each_graph(6, 48, |_, graph| {
        let catalog3 = tnm_motifs::catalog::all_motifs(3, 4);
        let counts = count_motifs(&graph, &EnumConfig::new(3, 4));
        for (sig, _) in counts.iter() {
            assert!(catalog3.contains(&sig), "{sig} missing from catalog");
        }
    });
}
