//! Cross-engine equivalence suite.
//!
//! The engine subsystem's core contract: every exact [`CountEngine`] —
//! serial backtrack, window-indexed, work-stealing parallel (over both
//! candidate sources), and time-slice sharded — produces **identical**
//! [`MotifCounts`] for identical configurations. This suite pins the
//! contract across:
//!
//! * all four paper models (Kovanen, Song, Hulovatyy, Paranjape);
//! * 2-, 3-, and 4-event motif sizes;
//! * tight and loose ΔC/ΔW regimes (plus unbounded);
//! * generated graphs: seeded random batches (tie-rich) and the
//!   synthetic dataset generator corpora;
//! * adversarial shard geometries — cuts inside motif spans, duplicate
//!   timestamps straddling a cut, spill mode with a one-shard budget
//!   ([`sharded_boundaries_are_exact`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_motifs::prelude::*;
use tnm_datasets::{generate, DatasetSpec};
use tnm_motifs::engine::{
    BacktrackEngine, CountEngine, EngineKind, ParallelEngine, ShardedEngine, WindowedEngine,
};

/// Every engine under test. The work-stealing executor appears twice —
/// over the windowed index and over the plain node index — so scheduler
/// bugs and candidate-source bugs cannot mask one another. The sharded
/// engine runs with a deliberately tiny shard target so the suite's
/// small graphs still split into many shards, with cuts landing inside
/// motif spans.
fn engines() -> Vec<Box<dyn CountEngine>> {
    vec![
        Box::new(BacktrackEngine),
        Box::new(WindowedEngine),
        Box::new(ParallelEngine::new(4)),
        Box::new(ParallelEngine::over_backtrack(3)),
        Box::new(ShardedEngine::new(16)),
        Box::new(ShardedEngine::new(25).with_threads(3)),
    ]
}

fn assert_all_engines_agree(graph: &TemporalGraph, cfg: &EnumConfig, label: &str) {
    let reference = BacktrackEngine.count(graph, cfg);
    for engine in engines() {
        let counts = engine.count(graph, cfg);
        assert_eq!(
            counts,
            reference,
            "{label}: engine `{}` disagrees with backtrack reference",
            engine.name()
        );
    }
    // The auto kind must agree regardless of how it resolves.
    for threads in [1, 4] {
        assert_eq!(
            EngineKind::Auto.count(graph, cfg, threads),
            reference,
            "{label}: auto engine with {threads} threads disagrees"
        );
    }
}

/// Seeded random graph: `events` events over `nodes` nodes with
/// timestamps in `0..horizon` (duplicates and ties on purpose).
fn random_graph(seed: u64, nodes: u32, events: usize, horizon: i64) -> TemporalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(events);
    while batch.len() < events {
        let u: u32 = rng.gen_range(0..nodes);
        let v: u32 = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        batch.push(Event::new(u, v, rng.gen_range(0i64..horizon)));
    }
    TemporalGraph::from_events(batch).expect("non-empty batch")
}

/// The four paper models at a tight and a loose timing each.
fn four_models() -> Vec<MotifModel> {
    vec![
        MotifModel::kovanen(5),
        MotifModel::kovanen(60),
        MotifModel::song(12),
        MotifModel::song(200),
        MotifModel::hulovatyy(5),
        MotifModel::hulovatyy_constrained(25),
        MotifModel::paranjape(12),
        MotifModel::paranjape(200),
    ]
}

#[test]
fn all_models_all_sizes_on_random_graphs() {
    for (case, &(nodes, events, horizon)) in
        [(8u32, 60usize, 90i64), (15, 120, 200), (5, 80, 40)].iter().enumerate()
    {
        let g = random_graph(100 + case as u64, nodes, events, horizon);
        for model in four_models() {
            for k in [2usize, 3] {
                let cfg = EnumConfig::for_model(&model, k, 4);
                assert_all_engines_agree(
                    &g,
                    &cfg,
                    &format!("case {case}, model {}, k={k}", model.name),
                );
            }
        }
    }
}

#[test]
fn four_event_configs_agree() {
    // 4-event enumeration explodes combinatorially: keep graphs small
    // and timings bounded so the suite stays fast.
    let g = random_graph(7, 10, 70, 150);
    for model in [MotifModel::kovanen(20), MotifModel::song(40), MotifModel::paranjape(40)] {
        let cfg = EnumConfig::for_model(&model, 4, 4);
        assert_all_engines_agree(&g, &cfg, &format!("4e, model {}", model.name));
    }
}

#[test]
fn timing_regimes_tight_and_loose() {
    let g = random_graph(21, 12, 150, 300);
    let timings = [
        ("unbounded-ish", Timing::only_w(300)), // spans everything
        ("tight-c", Timing::only_c(3)),
        ("loose-c", Timing::only_c(100)),
        ("tight-w", Timing::only_w(8)),
        ("loose-w", Timing::only_w(250)),
        ("tight-both", Timing::both(3, 8)),
        ("mixed", Timing::both(40, 60)),
        ("c-binding", Timing::both(10, 250)),
        ("w-binding", Timing::both(200, 30)),
    ];
    for (label, timing) in timings {
        let cfg = EnumConfig::new(3, 3).with_timing(timing);
        assert_all_engines_agree(&g, &cfg, label);
    }
    // Fully unbounded (no pruning at all) on a smaller graph.
    let small = random_graph(22, 6, 40, 50);
    assert_all_engines_agree(&small, &EnumConfig::new(3, 4), "fully-unbounded");
}

#[test]
fn restrictions_and_node_bounds_agree() {
    let g = random_graph(33, 9, 100, 120);
    let base = EnumConfig::new(3, 3).with_timing(Timing::both(15, 40));
    let variants = [
        ("exact-3n", base.clone().exact_nodes(3)),
        ("consecutive", base.clone().with_consecutive(true)),
        ("induced", base.clone().with_static_induced(true)),
        ("constrained", base.clone().with_constrained(true)),
        ("2n-only", EnumConfig::new(3, 2).with_timing(Timing::only_w(60))),
    ];
    for (label, cfg) in variants {
        assert_all_engines_agree(&g, &cfg, label);
    }
}

#[test]
fn signature_targeting_agrees() {
    let g = random_graph(44, 8, 120, 160);
    for s in ["010102", "011202", "0112", "010203"] {
        let cfg = EnumConfig::for_signature(sig(s)).with_timing(Timing::only_w(50));
        assert_all_engines_agree(&g, &cfg, &format!("targeted {s}"));
    }
}

/// Seeded property-style sweep for shard boundaries: across all four
/// paper models at tight and loose ΔC/ΔW, adversarial shard sizes
/// (including one start event per shard, so every cut lands inside
/// every multi-event motif's span) and tie-rich graphs whose duplicate
/// timestamps straddle the cuts, the sharded engine — in memory,
/// threaded, and spilled with a one-shard residency budget — must match
/// the backtrack reference exactly.
#[test]
fn sharded_boundaries_are_exact() {
    // horizon << events ⇒ duplicate timestamps everywhere, including on
    // every shard cut.
    for (case, &(seed, nodes, events, horizon)) in
        [(400u64, 8u32, 120usize, 40i64), (401, 12, 160, 300)].iter().enumerate()
    {
        let g = random_graph(seed, nodes, events, horizon);
        for model in four_models() {
            for k in [2usize, 3] {
                let cfg = EnumConfig::for_model(&model, k, 4);
                let reference = BacktrackEngine.count(&g, &cfg);
                for shard_events in [1usize, 2, 7, 33, events] {
                    assert_eq!(
                        ShardedEngine::new(shard_events).count(&g, &cfg),
                        reference,
                        "case {case}, model {}, k={k}, shard_events={shard_events}",
                        model.name
                    );
                }
                assert_eq!(
                    ShardedEngine::new(11).with_max_resident(1).count(&g, &cfg),
                    reference,
                    "case {case}, model {}, k={k}, spilled",
                    model.name
                );
            }
        }
    }
}

#[test]
fn generator_corpora_agree() {
    // Real synthetic corpora (burstiness, habitual recall, ties) at a
    // scale that keeps the 3-engine × 2-config sweep under a second.
    for name in ["CollegeMsg", "Email", "Bitcoin-otc"] {
        let mut spec = DatasetSpec::by_name(name).expect("known dataset");
        spec.num_events = 1_500; // above SERIAL_FALLBACK_EVENTS: auto goes parallel
        let g = generate(&spec, 9);
        for cfg in [
            EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(1500)),
            EnumConfig::new(2, 2).with_timing(Timing::both(600, 1200)),
        ] {
            assert_all_engines_agree(&g, &cfg, name);
        }
    }
}
