//! Cross-engine equivalence suite.
//!
//! The engine subsystem's core contract: every exact [`CountEngine`] —
//! serial backtrack, window-indexed, work-stealing parallel (over both
//! candidate sources), and time-slice sharded — produces **identical**
//! [`MotifCounts`] for identical configurations. This suite pins the
//! contract across:
//!
//! * all four paper models (Kovanen, Song, Hulovatyy, Paranjape);
//! * 2-, 3-, and 4-event motif sizes;
//! * tight and loose ΔC/ΔW regimes (plus unbounded);
//! * generated graphs: seeded random batches (tie-rich) and the
//!   synthetic dataset generator corpora;
//! * adversarial shard geometries — cuts inside motif spans, duplicate
//!   timestamps straddling a cut, spill mode with a one-shard budget
//!   ([`sharded_boundaries_are_exact`]);
//! * the stream engine's count-without-enumerating fast path across
//!   every eligible Paranjape configuration, equal-timestamp tie sweeps
//!   included, plus its fall-back on ineligible configurations
//!   ([`stream_fast_path_matches_walkers`],
//!   [`stream_rejects_ineligible_and_falls_back`]);
//! * the data-oriented hot paths' worst cases — tie-saturated graphs
//!   whose merged lists are all multi-event timestamp groups, and
//!   duration-heavy graphs with duplicate timestamps
//!   ([`tie_saturated_and_duration_heavy_corpus_agrees`]);
//! * the distributed engine's **process boundary**: real `tnm worker`
//!   children counting spilled shards over the framed wire protocol,
//!   with a tiny shard target so every sweep ships many shards
//!   (`tests/distributed_engine.rs` adds the worker-crash rescheduling
//!   sweep on top).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_motifs::prelude::*;
use tnm_datasets::{generate, DatasetSpec};
use tnm_motifs::engine::{
    BacktrackEngine, CountEngine, DistributedEngine, EngineKind, ParallelEngine, ShardedEngine,
    StreamEngine, WindowedEngine,
};

/// Every engine under test. The work-stealing executor appears twice —
/// over the windowed index and over the plain node index — so scheduler
/// bugs and candidate-source bugs cannot mask one another. The sharded
/// and distributed engines run with deliberately tiny shard targets so
/// the suite's small graphs still split into many shards, with cuts
/// landing inside motif spans — and, for the distributed engine, every
/// shard actually crossing a process boundary. The stream engine joins
/// every sweep: on eligible configurations it exercises the
/// count-without-enumerating DPs, on the rest its windowed fallback.
fn engines() -> Vec<Box<dyn CountEngine>> {
    vec![
        Box::new(BacktrackEngine),
        Box::new(WindowedEngine),
        Box::new(ParallelEngine::new(4)),
        Box::new(ParallelEngine::over_backtrack(3)),
        Box::new(ShardedEngine::new(16)),
        Box::new(ShardedEngine::new(25).with_threads(3)),
        Box::new(StreamEngine),
        Box::new(DistributedEngine::new(2).with_shard_events(20)),
    ]
}

fn assert_all_engines_agree(graph: &TemporalGraph, cfg: &EnumConfig, label: &str) {
    let reference = BacktrackEngine.count(graph, cfg);
    for engine in engines() {
        let counts = engine.count(graph, cfg);
        assert_eq!(
            counts,
            reference,
            "{label}: engine `{}` disagrees with backtrack reference",
            engine.name()
        );
    }
    // Every exact kind by registry — the sweep that guarantees a newly
    // registered engine cannot be silently skipped.
    for &kind in EngineKind::all_exact() {
        assert_eq!(kind.count(graph, cfg, 2), reference, "{label}: exact kind `{kind}` disagrees");
    }
    // The auto kind must agree regardless of how it resolves.
    for threads in [1, 4] {
        assert_eq!(
            EngineKind::Auto.count(graph, cfg, threads),
            reference,
            "{label}: auto engine with {threads} threads disagrees"
        );
    }
}

/// Seeded random graph: `events` events over `nodes` nodes with
/// timestamps in `0..horizon` (duplicates and ties on purpose).
fn random_graph(seed: u64, nodes: u32, events: usize, horizon: i64) -> TemporalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(events);
    while batch.len() < events {
        let u: u32 = rng.gen_range(0..nodes);
        let v: u32 = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        batch.push(Event::new(u, v, rng.gen_range(0i64..horizon)));
    }
    TemporalGraph::from_events(batch).expect("non-empty batch")
}

/// The four paper models at a tight and a loose timing each.
fn four_models() -> Vec<MotifModel> {
    vec![
        MotifModel::kovanen(5),
        MotifModel::kovanen(60),
        MotifModel::song(12),
        MotifModel::song(200),
        MotifModel::hulovatyy(5),
        MotifModel::hulovatyy_constrained(25),
        MotifModel::paranjape(12),
        MotifModel::paranjape(200),
    ]
}

#[test]
fn all_models_all_sizes_on_random_graphs() {
    for (case, &(nodes, events, horizon)) in
        [(8u32, 60usize, 90i64), (15, 120, 200), (5, 80, 40)].iter().enumerate()
    {
        let g = random_graph(100 + case as u64, nodes, events, horizon);
        for model in four_models() {
            for k in [2usize, 3] {
                let cfg = EnumConfig::for_model(&model, k, 4);
                assert_all_engines_agree(
                    &g,
                    &cfg,
                    &format!("case {case}, model {}, k={k}", model.name),
                );
            }
        }
    }
}

#[test]
fn four_event_configs_agree() {
    // 4-event enumeration explodes combinatorially: keep graphs small
    // and timings bounded so the suite stays fast.
    let g = random_graph(7, 10, 70, 150);
    for model in [MotifModel::kovanen(20), MotifModel::song(40), MotifModel::paranjape(40)] {
        let cfg = EnumConfig::for_model(&model, 4, 4);
        assert_all_engines_agree(&g, &cfg, &format!("4e, model {}", model.name));
    }
}

#[test]
fn timing_regimes_tight_and_loose() {
    let g = random_graph(21, 12, 150, 300);
    let timings = [
        ("unbounded-ish", Timing::only_w(300)), // spans everything
        ("tight-c", Timing::only_c(3)),
        ("loose-c", Timing::only_c(100)),
        ("tight-w", Timing::only_w(8)),
        ("loose-w", Timing::only_w(250)),
        ("tight-both", Timing::both(3, 8)),
        ("mixed", Timing::both(40, 60)),
        ("c-binding", Timing::both(10, 250)),
        ("w-binding", Timing::both(200, 30)),
    ];
    for (label, timing) in timings {
        let cfg = EnumConfig::new(3, 3).with_timing(timing);
        assert_all_engines_agree(&g, &cfg, label);
    }
    // Fully unbounded (no pruning at all) on a smaller graph.
    let small = random_graph(22, 6, 40, 50);
    assert_all_engines_agree(&small, &EnumConfig::new(3, 4), "fully-unbounded");
}

#[test]
fn restrictions_and_node_bounds_agree() {
    let g = random_graph(33, 9, 100, 120);
    let base = EnumConfig::new(3, 3).with_timing(Timing::both(15, 40));
    let variants = [
        ("exact-3n", base.clone().exact_nodes(3)),
        ("consecutive", base.clone().with_consecutive(true)),
        ("induced", base.clone().with_static_induced(true)),
        ("constrained", base.clone().with_constrained(true)),
        ("2n-only", EnumConfig::new(3, 2).with_timing(Timing::only_w(60))),
    ];
    for (label, cfg) in variants {
        assert_all_engines_agree(&g, &cfg, label);
    }
}

#[test]
fn signature_targeting_agrees() {
    let g = random_graph(44, 8, 120, 160);
    for s in ["010102", "011202", "0112", "010203"] {
        let cfg = EnumConfig::for_signature(sig(s)).with_timing(Timing::only_w(50));
        assert_all_engines_agree(&g, &cfg, &format!("targeted {s}"));
    }
}

/// Seeded property-style sweep for shard boundaries: across all four
/// paper models at tight and loose ΔC/ΔW, adversarial shard sizes
/// (including one start event per shard, so every cut lands inside
/// every multi-event motif's span) and tie-rich graphs whose duplicate
/// timestamps straddle the cuts, the sharded engine — in memory,
/// threaded, and spilled with a one-shard residency budget — must match
/// the backtrack reference exactly.
#[test]
fn sharded_boundaries_are_exact() {
    // horizon << events ⇒ duplicate timestamps everywhere, including on
    // every shard cut.
    for (case, &(seed, nodes, events, horizon)) in
        [(400u64, 8u32, 120usize, 40i64), (401, 12, 160, 300)].iter().enumerate()
    {
        let g = random_graph(seed, nodes, events, horizon);
        for model in four_models() {
            for k in [2usize, 3] {
                let cfg = EnumConfig::for_model(&model, k, 4);
                let reference = BacktrackEngine.count(&g, &cfg);
                for shard_events in [1usize, 2, 7, 33, events] {
                    assert_eq!(
                        ShardedEngine::new(shard_events).count(&g, &cfg),
                        reference,
                        "case {case}, model {}, k={k}, shard_events={shard_events}",
                        model.name
                    );
                }
                assert_eq!(
                    ShardedEngine::new(11).with_max_resident(1).count(&g, &cfg),
                    reference,
                    "case {case}, model {}, k={k}, spilled",
                    model.name
                );
            }
        }
    }
}

/// The acceptance matrix for the stream fast path: across four
/// generator corpora and 2-/3-event sizes, every eligible Paranjape
/// configuration (non-induced, only-ΔW) must count **bit-identically**
/// to the windowed walker — node-budget slices, exact-node slices, and
/// signature targeting included. The tie-heavy sweep replays the same
/// matrix on graphs whose horizon is far smaller than the event count,
/// so duplicate timestamps saturate every window boundary.
#[test]
fn stream_fast_path_matches_walkers() {
    // Generator corpora: realistic burstiness and recall patterns.
    for name in ["CollegeMsg", "Email", "SMS-A", "Bitcoin-otc"] {
        let mut spec = DatasetSpec::by_name(name).expect("known dataset");
        spec.num_events = 1_200;
        let g = generate(&spec, 13);
        let quarter = (g.timespan() / 4).max(1);
        for k in [2usize, 3] {
            for delta in [60, 1_500, quarter] {
                let model = tnm_motifs::models::paranjape::without_inducedness(delta);
                let cfg = EnumConfig::for_model(&model, k, 3);
                assert!(StreamEngine::eligible(&cfg), "{name} k={k} ΔW={delta}");
                assert_eq!(
                    StreamEngine.count(&g, &cfg),
                    WindowedEngine.count(&g, &cfg),
                    "{name}, k={k}, ΔW={delta}"
                );
            }
        }
        // Node-bound and targeting variants on one window.
        let base = EnumConfig::new(3, 3).with_timing(Timing::only_w(1_500));
        for cfg in [
            base.clone(),
            base.clone().exact_nodes(3),
            base.clone().exact_nodes(2),
            EnumConfig::new(2, 3).with_timing(Timing::only_w(900)),
            EnumConfig::new(1, 2).with_timing(Timing::only_w(900)),
            EnumConfig::for_signature(sig("011202")).with_timing(Timing::only_w(1_500)),
            EnumConfig::for_signature(sig("010102")).with_timing(Timing::only_w(1_500)),
            EnumConfig::for_signature(sig("0110")).with_timing(Timing::only_w(900)),
        ] {
            assert!(StreamEngine::eligible(&cfg), "{name}: {cfg:?}");
            assert_eq!(
                StreamEngine.count(&g, &cfg),
                WindowedEngine.count(&g, &cfg),
                "{name}, variant {cfg:?}"
            );
        }
    }
    // Adversarial equal-timestamp sweep: horizon ≪ events, so nearly
    // every timestamp is duplicated and groups straddle window edges.
    for (seed, nodes, events, horizon) in
        [(901u64, 6u32, 150usize, 25i64), (902, 10, 200, 12), (903, 4, 120, 6)]
    {
        let g = random_graph(seed, nodes, events, horizon);
        for k in [2usize, 3] {
            for delta in [0i64, 1, 3, horizon] {
                let cfg = EnumConfig::new(k, 3).with_timing(Timing::only_w(delta));
                assert_eq!(
                    StreamEngine.count(&g, &cfg),
                    WindowedEngine.count(&g, &cfg),
                    "ties seed={seed}, k={k}, ΔW={delta}"
                );
            }
        }
    }
}

/// Ineligible configurations — here the full Paranjape model, whose
/// static inducedness the stream classes cannot check, and a ΔC-bearing
/// timing — must be rejected by the eligibility predicate and fall back
/// to the windowed walker with identical counts, via both the engine
/// itself and `auto_select` routing.
#[test]
fn stream_rejects_ineligible_and_falls_back() {
    let g = random_graph(77, 9, 140, 200);
    let induced = EnumConfig::for_model(&MotifModel::paranjape(60), 3, 3);
    let dc = EnumConfig::new(3, 3).with_timing(Timing::both(20, 60));
    let only_dc = EnumConfig::new(3, 3).with_timing(Timing::only_c(20));
    let four_events = EnumConfig::new(4, 4).with_timing(Timing::only_w(60));
    for cfg in [&induced, &dc, &only_dc, &four_events] {
        assert!(!StreamEngine::eligible(cfg), "{cfg:?} must be ineligible");
        let reference = WindowedEngine.count(&g, cfg);
        assert_eq!(StreamEngine.count(&g, cfg), reference, "fallback for {cfg:?}");
        // Auto never routes an ineligible job to the stream engine.
        assert_ne!(
            tnm_motifs::engine::auto_select(&g, cfg, 4),
            EngineKind::Stream,
            "auto_select must not pick stream for {cfg:?}"
        );
        assert_eq!(EngineKind::Auto.count(&g, cfg, 4), reference);
    }
    // ...and it does route the eligible twin there.
    let eligible = EnumConfig::new(3, 3).with_timing(Timing::only_w(60));
    assert_eq!(tnm_motifs::engine::auto_select(&g, &eligible, 4), EngineKind::Stream);
}

/// Adversarial corpus for the data-oriented hot paths. Two regimes the
/// SoA/arena rewrite is most sensitive to:
///
/// * **tie-saturated** — horizon ≪ events, so every merged list is
///   dominated by multi-event timestamp groups and the group-boundary
///   expiry (`partition_point` cuts landing exactly on group edges)
///   carries the whole DP;
/// * **duration-heavy** — every event has a nonzero duration comparable
///   to the window, exercising the duration-aware walkers (whose gap
///   base is `end_time`, read from the `Event` structs) against the
///   SoA-probing candidate gathering on the same graphs.
///
/// Both regimes must stay bit-identical across every engine — the
/// seven-engine matrix plus the registry and auto sweeps inside
/// [`assert_all_engines_agree`].
#[test]
fn tie_saturated_and_duration_heavy_corpus_agrees() {
    // ~12 events per timestamp on average; ΔW of 0/1/2 keeps whole
    // groups entering and leaving the window every step.
    for (seed, nodes, events, horizon) in [(950u64, 7u32, 140usize, 12i64), (951, 12, 180, 15)] {
        let g = random_graph(seed, nodes, events, horizon);
        for delta in [0i64, 2, horizon] {
            let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(delta));
            assert_all_engines_agree(&g, &cfg, &format!("tie-saturated seed={seed} ΔW={delta}"));
        }
        let wedge = EnumConfig::new(2, 3).with_timing(Timing::both(1, 3));
        assert_all_engines_agree(&g, &wedge, &format!("tie-saturated seed={seed} wedges"));
    }
    // Duration-heavy: durations up to half the horizon, plus duplicate
    // timestamps (sorting ties on duration exercises the 24-byte-struct
    // total order the SoA columns mirror).
    let mut rng = StdRng::seed_from_u64(960);
    let mut batch = Vec::with_capacity(140);
    while batch.len() < 140 {
        let u: u32 = rng.gen_range(0..9);
        let v: u32 = rng.gen_range(0..9);
        if u == v {
            continue;
        }
        batch.push(Event::with_duration(u, v, rng.gen_range(0i64..80), rng.gen_range(1u32..40)));
    }
    let g = TemporalGraph::from_events(batch).expect("non-empty batch");
    for model in [MotifModel::hulovatyy(10), MotifModel::hulovatyy_constrained(50)] {
        for k in [2usize, 3] {
            let cfg = EnumConfig::for_model(&model, k, 3);
            assert_all_engines_agree(&g, &cfg, &format!("duration-heavy {} k={k}", model.name));
        }
    }
    // The stream-eligible shape on the same duration-heavy graph: the
    // fast path must ignore durations exactly as the walkers do when
    // the model is not duration-aware.
    let only_w = EnumConfig::new(3, 3).with_timing(Timing::only_w(30));
    assert!(StreamEngine::eligible(&only_w));
    assert_all_engines_agree(&g, &only_w, "duration-heavy only-ΔW");
}

#[test]
fn generator_corpora_agree() {
    // Real synthetic corpora (burstiness, habitual recall, ties) at a
    // scale that keeps the 3-engine × 2-config sweep under a second.
    for name in ["CollegeMsg", "Email", "Bitcoin-otc"] {
        let mut spec = DatasetSpec::by_name(name).expect("known dataset");
        spec.num_events = 1_500; // above SERIAL_FALLBACK_EVENTS: auto goes parallel
        let g = generate(&spec, 9);
        for cfg in [
            EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(1500)),
            EnumConfig::new(2, 2).with_timing(Timing::both(600, 1200)),
        ] {
            assert_all_engines_agree(&g, &cfg, name);
        }
    }
}
