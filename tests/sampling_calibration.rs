//! Calibration suite for the sampling engine's confidence intervals.
//!
//! The engine subsystem's contract for approximate backends: the
//! reported ~95 % intervals must actually cover the exact counts. This
//! suite runs the sampler across all four paper models and a battery of
//! fixed seeds, compares each total estimate against the exact count
//! from the windowed engine, and requires at least 95 % of the trials to
//! land inside their own reported interval. Everything is deterministic
//! (fixed seeds, vendored RNG), so the suite pins behaviour rather than
//! gambling on it.

use temporal_motifs::prelude::*;

/// Deterministic tie-rich random graph, same shape as the equivalence
/// suite's generator.
fn random_graph(seed: u64, nodes: u32, events: usize, horizon: i64) -> TemporalGraph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(events);
    while batch.len() < events {
        let u: u32 = rng.gen_range(0..nodes);
        let v: u32 = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        batch.push(Event::new(u, v, rng.gen_range(0i64..horizon)));
    }
    TemporalGraph::from_events(batch).expect("non-empty batch")
}

/// The headline acceptance check: across the four paper models and ten
/// seeds each, the exact total must fall within the sampler's reported
/// 95 % interval in at least 95 % of trials.
#[test]
fn intervals_cover_exact_counts_across_models() {
    let g = random_graph(1234, 25, 3_000, 6_000);
    let models = [
        MotifModel::kovanen(40),
        MotifModel::song(80),
        MotifModel::hulovatyy(40),
        MotifModel::paranjape(80),
    ];
    let mut trials = 0u32;
    let mut covered = 0u32;
    let mut reports = Vec::new();
    for model in &models {
        let cfg = EnumConfig::for_model(model, 3, 3);
        let exact = WindowedEngine.count(&g, &cfg).total() as f64;
        for seed in 0..10u64 {
            let report = SamplingEngine::new(800, seed).report(&g, &cfg);
            trials += 1;
            if report.total.contains(exact) {
                covered += 1;
            } else {
                reports.push(format!(
                    "{}: seed {seed} interval [{:.0}, {:.0}] misses exact {exact:.0}",
                    model.name,
                    report.total.lo(),
                    report.total.hi()
                ));
            }
        }
    }
    let coverage = covered as f64 / trials as f64;
    assert!(
        coverage >= 0.95,
        "interval coverage {covered}/{trials} = {coverage:.2} below 0.95:\n{}",
        reports.join("\n")
    );
}

/// Per-signature intervals must be calibrated too, not just the total:
/// pooled across the frequent signatures (rare ones are legitimately
/// unobservable at small budgets), coverage must clear 90 %.
#[test]
fn per_signature_intervals_are_calibrated() {
    let g = random_graph(77, 20, 2_000, 4_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(60));
    let exact = WindowedEngine.count(&g, &cfg);
    let frequent: Vec<_> =
        exact.iter().filter(|&(_, n)| n >= 50).map(|(s, n)| (s, n as f64)).collect();
    assert!(frequent.len() >= 5, "test graph too sparse: {} frequent motifs", frequent.len());
    let mut trials = 0u32;
    let mut covered = 0u32;
    for seed in 0..8u64 {
        let report = SamplingEngine::new(400, seed).report(&g, &cfg);
        for &(sig, n) in &frequent {
            trials += 1;
            if report.estimate(sig).contains(n) {
                covered += 1;
            }
        }
    }
    let coverage = covered as f64 / trials as f64;
    assert!(coverage >= 0.90, "per-signature coverage {covered}/{trials} = {coverage:.2}");
}

/// Small budgets (< 30 windows) use a Student's-t critical value
/// instead of the normal 1.96 (`t_critical_95`, whose table is pinned
/// by unit tests in `engine::report`), widening the intervals exactly
/// where the normal approximation under-covers. The behavioral check
/// here: at a budget of 12 windows the reported intervals must still be
/// honestly calibrated — across all four paper models and fifteen seeds
/// each, the exact total falls inside the reported interval in ≥ 90 %
/// of trials.
#[test]
fn small_budgets_use_t_intervals_and_stay_calibrated() {
    use tnm_motifs::engine::t_critical_95;
    let g = random_graph(1234, 25, 3_000, 6_000);
    let budget = 12usize;
    assert_eq!(t_critical_95(budget), 2.201, "n=12 ⇒ df=11");
    let models = [
        MotifModel::kovanen(40),
        MotifModel::song(80),
        MotifModel::hulovatyy(40),
        MotifModel::paranjape(80),
    ];
    let mut trials = 0u32;
    let mut covered = 0u32;
    for model in &models {
        let mcfg = EnumConfig::for_model(model, 3, 3);
        let exact = WindowedEngine.count(&g, &mcfg).total() as f64;
        for seed in 0..15u64 {
            let r = SamplingEngine::new(budget, seed).report(&g, &mcfg);
            trials += 1;
            if r.total.contains(exact) {
                covered += 1;
            }
        }
    }
    let coverage = covered as f64 / trials as f64;
    assert!(coverage >= 0.90, "small-budget coverage {covered}/{trials} = {coverage:.2}");
}

/// Intervals must shrink roughly as 1/sqrt(budget): quadrupling the
/// sample count should at least halve-ish the half-width.
#[test]
fn intervals_tighten_with_budget() {
    let g = random_graph(5, 20, 2_000, 4_000);
    let cfg = EnumConfig::new(2, 2).with_timing(Timing::only_w(50));
    let small = SamplingEngine::new(100, 3).report(&g, &cfg);
    let large = SamplingEngine::new(1_600, 3).report(&g, &cfg);
    assert!(small.total.half_width > 0.0);
    assert!(
        large.total.half_width < small.total.half_width * 0.6,
        "16× budget should tighten the interval well below 0.6× (got {} vs {})",
        large.total.half_width,
        small.total.half_width
    );
}

/// The sampler must be reachable through the `EngineKind` seam used by
/// the CLI and the experiment drivers, and behave identically to a
/// directly constructed engine.
#[test]
fn engine_kind_round_trip() {
    let g = random_graph(9, 15, 1_000, 2_000);
    let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(40));
    let kind = EngineKind::sampling(200, 11);
    let via_kind = kind.report(&g, &cfg, 1);
    let direct = SamplingEngine::new(200, 11).report(&g, &cfg);
    assert_eq!(via_kind.counts, direct.counts);
    assert_eq!(via_kind.total, direct.total);
    assert_eq!(via_kind.engine, "sampling");
    assert_eq!(kind.count(&g, &cfg, 1), direct.counts);
}

/// Exact engines answer `report` with zero-width intervals that contain
/// exactly their own counts — the uniform-consumption contract.
#[test]
fn exact_reports_degenerate_to_counts() {
    let g = random_graph(21, 12, 400, 900);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(20, 50));
    let reference = BacktrackEngine.count(&g, &cfg);
    for kind in EngineKind::CONCRETE {
        let report = kind.report(&g, &cfg, 2);
        assert!(report.exact);
        assert_eq!(report.counts, reference);
        assert_eq!(report.total.point, reference.total() as f64);
        assert!(report.total.is_exact());
        for (sig, est) in report.iter() {
            assert!(est.is_exact());
            assert!(est.contains(reference.get(sig) as f64));
        }
    }
}
