//! Observability is read-only: pins for the engine instrumentation.
//!
//! The whole `tnm_obs` layer rides inside the counting hot paths, so
//! its core contract needs its own suite:
//!
//! * **Counts are bit-identical with metrics on and off** — flipping
//!   the global switch must never change what gets counted, across
//!   every exact engine (including the work-stealing executor and the
//!   spill-mode sharded engine, whose instrumentation sits closest to
//!   the walk).
//! * **Disabled runs record nothing** — with the switch off, a full
//!   multi-engine pass leaves the global registry empty and the span
//!   collector empty; the disabled path is one branch, not a
//!   "record-but-hide".
//! * **Enabled runs land on the documented names** — the
//!   `engine.*` / `cache.*` counter names in the engine module docs
//!   are a wire-adjacent contract (dashboards key off them), so a
//!   windowed run must populate exactly those families.
//!
//! Every test serializes on [`tnm_obs::test_guard`]: the registry and
//! the enabled switch are process-global.

use temporal_motifs::prelude::*;
use tnm_datasets::{generate, DatasetSpec};
use tnm_motifs::engine::{
    BacktrackEngine, CountEngine, ParallelEngine, ShardedEngine, StreamEngine, WindowedEngine,
};

fn corpus() -> TemporalGraph {
    let mut spec = DatasetSpec::by_name("CollegeMsg").expect("known dataset");
    spec.num_events = 4_000;
    generate(&spec, 11)
}

/// Engines whose instrumentation sits in distinct layers: the serial
/// walkers, the work-stealing executor, sharding (resident and spill
/// mode), and the stream DPs.
fn engines() -> Vec<Box<dyn CountEngine>> {
    vec![
        Box::new(BacktrackEngine),
        Box::new(WindowedEngine),
        Box::new(ParallelEngine::new(4)),
        Box::new(ShardedEngine::new(600)),
        Box::new(ShardedEngine::new(600).with_max_resident(1)),
        Box::new(StreamEngine),
    ]
}

fn configs() -> Vec<EnumConfig> {
    vec![
        EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_w(3_000)),
        EnumConfig::new(2, 3).with_timing(Timing::both(500, 3_000)),
    ]
}

#[test]
fn counts_are_bit_identical_with_metrics_on_and_off() {
    let _guard = tnm_obs::test_guard();
    let g = corpus();
    for cfg in configs() {
        for engine in engines() {
            tnm_obs::set_enabled(false);
            let off = engine.count(&g, &cfg);
            tnm_obs::set_enabled(true);
            tnm_obs::global().reset();
            tnm_obs::drain_spans();
            let on = engine.count(&g, &cfg);
            let recorded = tnm_obs::global().snapshot();
            tnm_obs::drain_spans();
            tnm_obs::set_enabled(false);
            tnm_obs::global().reset();
            assert_eq!(off, on, "{}: counts must not depend on the metrics switch", engine.name());
            assert!(
                !recorded.is_empty(),
                "{}: an enabled run must actually record something",
                engine.name()
            );
        }
    }
}

#[test]
fn disabled_runs_record_nothing() {
    let _guard = tnm_obs::test_guard();
    tnm_obs::set_enabled(false);
    tnm_obs::global().reset();
    tnm_obs::drain_spans();
    let g = corpus();
    for cfg in configs() {
        for engine in engines() {
            let _ = engine.count(&g, &cfg);
        }
    }
    assert!(tnm_obs::global().snapshot().is_empty(), "disabled runs must not touch the registry");
    assert!(tnm_obs::drain_spans().is_empty(), "disabled runs must not record spans");
}

#[test]
fn enabled_windowed_run_lands_on_the_documented_names() {
    let _guard = tnm_obs::test_guard();
    let g = corpus();
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3_000));
    tnm_obs::set_enabled(true);
    tnm_obs::global().reset();
    tnm_obs::drain_spans();
    let counts = WindowedEngine.count(&g, &cfg);
    let snap = tnm_obs::global().snapshot();
    tnm_obs::drain_spans();
    tnm_obs::set_enabled(false);
    tnm_obs::global().reset();
    let scanned = snap.counters.get("engine.events_scanned").copied().unwrap_or(0);
    let emitted = snap.counters.get("engine.instances_emitted").copied().unwrap_or(0);
    assert!(scanned > 0, "the walker flushes its scan tally: {:?}", snap.counters);
    assert_eq!(emitted, counts.total(), "emitted tally equals the spectrum total");
    assert!(
        snap.counters.keys().any(|k| k.starts_with("cache.index.")),
        "the windowed engine goes through the index cache: {:?}",
        snap.counters
    );
}
