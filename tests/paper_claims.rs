//! End-to-end reproduction checks: the paper's headline qualitative
//! claims must hold on the synthetic corpus. These are the same
//! assertions EXPERIMENTS.md reports, run at reduced scale for CI speed.

use temporal_motifs::analysis::experiments::{self, Corpus};

fn corpus() -> Corpus {
    // Quarter-scale corpus: fast, still large enough for stable shapes.
    Corpus::scaled(0.25, experiments::CORPUS_SEED)
}

#[test]
fn figure1_validity_matrix_matches_paper() {
    let fig = experiments::fig1::run();
    assert!(fig.matches_expected, "{}", fig.render());
    // Row semantics: [Kovanen, Song, Hulovatyy, Paranjape].
    let valid: Vec<Vec<bool>> =
        fig.rows.iter().map(|r| r.verdicts.iter().map(|v| v.is_valid()).collect()).collect();
    assert_eq!(valid[0], vec![false, true, false, true], "row 1: ΔC violation");
    assert_eq!(valid[1], vec![false, true, false, false], "row 2: not induced");
    assert_eq!(valid[2], vec![false, true, true, true], "row 3: consecutive events");
    assert_eq!(valid[3], vec![true, true, true, true], "row 4: valid everywhere");
}

#[test]
fn figure2_catalog_sizes_match_paper() {
    let f2 = experiments::fig2::run();
    let get = |name: &str| f2.catalog_sizes.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(get("3e total"), 36, "Section 1: 36 three-event motifs");
    assert_eq!(get("4e total"), 696, "Section 1: 696 four-event motifs");
    assert_eq!(get("4n4e"), 480, "Section 5: 480 4n4e single-component motifs");
    assert_eq!(get("2n4e+3n4e"), 216, "Section 5: 216 = 6^3 exactly representable");
}

#[test]
fn table3_consecutive_restriction_claims() {
    let corpus = corpus();
    let t3 = experiments::table3::run(&corpus);
    // Claim 1: the restriction removes the vast majority of motifs in
    // every dataset except the Bitcoin-like one.
    for row in &t3.rows {
        if row.name == "Bitcoin-otc" {
            assert!(
                row.removal_fraction() < 0.60,
                "Bitcoin should be least affected, removed {:.2}",
                row.removal_fraction()
            );
        } else {
            assert!(
                row.removal_fraction() > 0.60,
                "{}: removal {:.2} too small",
                row.name,
                row.removal_fraction()
            );
        }
    }
    // Claim 2: ask-reply motifs are amplified on message networks
    // (mean positive rank change across the four motifs).
    let mean = t3.mean_ask_reply_change(&["CollegeMsg", "SMS-Copenhagen", "SMS-A"]);
    assert!(mean > 0.0, "ask-reply mean rank change {mean:+.2} should be positive");
}

#[test]
fn table4_constrained_dynamic_graphlet_claims() {
    let corpus = corpus();
    let t4 = experiments::table4::run(&corpus);
    let get = |name: &str| t4.rows.iter().find(|r| r.name == name).unwrap();
    // Bitcoin: exactly zero difference (no repeated edges at all).
    let bitcoin = get("Bitcoin-otc");
    assert_eq!(bitcoin.vanilla_total, bitcoin.constrained_total);
    assert_eq!(bitcoin.variance, 0.0);
    // The restriction can only remove instances.
    for row in &t4.rows {
        assert!(row.constrained_total <= row.vanilla_total, "{}", row.name);
    }
    // Stack-exchange networks barely move compared to message networks.
    let so = get("StackOverflow").variance;
    let su = get("SuperUser").variance;
    let sms = get("SMS-Copenhagen").variance;
    assert!(
        so < sms && su < sms,
        "stack-exchange variance ({so:.3}, {su:.3}) should undercut SMS ({sms:.3})"
    );
}

#[test]
fn table5_timing_constraint_claims() {
    // Datasets where the differential-reduction claim is robust at this
    // scale; Calls/SMS-Copenhagen/SuperUser sit within noise of zero on
    // the synthetic corpus (see EXPERIMENTS.md).
    let corpus = corpus().only(&["CollegeMsg", "Email", "FBWall", "SMS-A"]);
    let t5 = experiments::table5::run(&corpus);
    for row in &t5.rows {
        let base = row.baseline().groups;
        // Counts shrink monotonically from only-ΔW to only-ΔC.
        for w in row.cells.windows(2) {
            assert!(w[1].groups.rpio <= w[0].groups.rpio, "{}", row.name);
            assert!(w[1].groups.cw <= w[0].groups.cw, "{}", row.name);
        }
        // {R,P,I,O} shrinks faster than {C,W}.
        let tight = row.cells.last().unwrap().groups;
        let (rpio_ratio, cw_ratio) = tight.ratio_vs(&base);
        assert!(
            rpio_ratio < cw_ratio,
            "{}: RPIO ratio {rpio_ratio:.3} !< CW ratio {cw_ratio:.3}",
            row.name
        );
        // {R,P,I,O} dominates {C,W}. (The paper reports ~10x on the real
        // data; our denser synthetic networks show ~3x — see
        // EXPERIMENTS.md for the deviation note.)
        assert!(base.rpio > 2 * base.cw, "{}: RPIO should dominate", row.name);
    }
}

#[test]
fn figure3_repetition_ratio_decreases() {
    let corpus = corpus().only(&["SMS-Copenhagen", "Email", "StackOverflow", "SuperUser"]);
    let f3 = experiments::fig3::run(&corpus, false);
    for name in ["Email", "StackOverflow", "SuperUser"] {
        let d = f3.repetition_change(name, 3).unwrap();
        assert!(d < 0.0, "{name}: repetition ratio changed by {d:+.4}, expected a decrease");
    }
    // SMS-Copenhagen sits within noise of zero at quarter scale (the full
    // corpus shows a clear decrease) — only require it not to *increase*
    // materially, mirroring the table5 noise-band precedent.
    let sms = f3.repetition_change("SMS-Copenhagen", 3).unwrap();
    assert!(sms < 0.005, "SMS-Copenhagen: repetition ratio rose materially ({sms:+.4})");
}

#[test]
fn figure4_delta_c_regularizes_intermediate_events() {
    let corpus = Corpus::scaled(0.4, experiments::CORPUS_SEED).only(&["SMS-Copenhagen"]);
    let t = experiments::fig4::run_target(&corpus, "010102", "SMS-Copenhagen").unwrap();
    let only_w = &t.cells[0];
    let only_c = t.cells.last().unwrap();
    assert_eq!(only_w.label, "only-ΔW");
    assert!(only_w.instances > 100, "need instances for a stable shape");
    // The second event is skewed toward the first under only-ΔW...
    assert!(
        only_w.skew(0) < -0.15,
        "only-ΔW skew {:.3} should be strongly negative",
        only_w.skew(0)
    );
    // ...and ΔC regularizes (reduces) the skew.
    assert!(
        only_c.max_abs_skew() < only_w.max_abs_skew(),
        "ΔC should regularize: {:.3} !< {:.3}",
        only_c.max_abs_skew(),
        only_w.max_abs_skew()
    );
}

#[test]
fn figure5_delta_w_caps_timespans() {
    let corpus = Corpus::scaled(0.4, experiments::CORPUS_SEED).only(&["CollegeMsg"]);
    let t = experiments::fig5::run_target(&corpus, "010102", "CollegeMsg").unwrap();
    let only_c = &t.cells[0];
    let only_w = t.cells.last().unwrap();
    assert_eq!(only_c.label, "only-ΔC");
    assert_eq!(only_w.label, "only-ΔW");
    // ΔW is a hard cap; ΔC admits longer spans (up to (m−1)·ΔC).
    assert!(only_w.max_span <= experiments::DELTA_W);
    assert!(only_c.instances > 0 && only_w.instances > 0);
    // The subset property: instances grow with the ratio.
    for w in t.cells.windows(2) {
        assert!(w[0].instances <= w[1].instances);
    }
}

#[test]
fn figure6_domain_structure() {
    let corpus = corpus().only(&["SMS-Copenhagen", "CollegeMsg", "StackOverflow", "Email"]);
    let f6 = experiments::fig6::run(&corpus);
    let get = |name: &str| f6.maps.iter().find(|m| m.name == name).unwrap();
    // Message networks are R/P-dominated relative to Q&A networks.
    assert!(get("SMS-Copenhagen").rp_share() > get("StackOverflow").rp_share());
    assert!(get("CollegeMsg").rp_share() > get("StackOverflow").rp_share());
    // Weakly-connected pairs are rare everywhere.
    for m in &f6.maps {
        assert!(m.w_share() < 0.40, "{}: W share {:.3}", m.name, m.w_share());
    }
}

#[test]
fn table2_statistics_track_paper_regimes() {
    let corpus = Corpus::with_seed(experiments::CORPUS_SEED);
    let t2 = experiments::table2::run(&corpus);
    let get = |name: &str| t2.rows.iter().find(|r| r.name == name).unwrap();
    // Email has by far the lowest unique-timestamp fraction (cc bursts).
    let email = get("Email").synthetic.unique_timestamp_fraction;
    for row in &t2.rows {
        if row.name != "Email" {
            assert!(
                row.synthetic.unique_timestamp_fraction > email,
                "{} should have more unique timestamps than Email",
                row.name
            );
        }
    }
    // Bitcoin: events == static edges (every rating unique).
    let bitcoin = get("Bitcoin-otc");
    assert_eq!(bitcoin.synthetic.events, bitcoin.synthetic.static_edges);
    // Median inter-event times follow the paper's ordering coarsely:
    // SMS-A (3 s) is the fastest network, Bitcoin (707 s) the slowest.
    let medians: Vec<(String, f64)> =
        t2.rows.iter().map(|r| (r.name.clone(), r.synthetic.median_inter_event_time)).collect();
    let sms_a = medians.iter().find(|(n, _)| n == "SMS-A").unwrap().1;
    let bitcoin_m = medians.iter().find(|(n, _)| n == "Bitcoin-otc").unwrap().1;
    for (name, m) in &medians {
        if name != "SMS-A" {
            assert!(*m >= sms_a, "{name} median {m} below SMS-A {sms_a}");
        }
        if name != "Bitcoin-otc" {
            assert!(*m <= bitcoin_m, "{name} median {m} above Bitcoin {bitcoin_m}");
        }
    }
}
