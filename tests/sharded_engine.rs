//! Sharded-subsystem integration suite: planner geometry through the
//! public API, spill-mode round-trips, and the out-of-core **memory
//! bound** — the acceptance property that peak resident shard events
//! never exceed `max_resident_shards × (shard events + pad + halo)` on
//! a graph several times that size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_motifs::prelude::*;
use tnm_graph::shard::{plan_shards, ShardGoal, ShardStore};
use tnm_motifs::engine::ShardedEngine;

/// Deterministic tie-rich random graph (same generator shape as the
/// equivalence suite's).
fn random_graph(seed: u64, nodes: u32, events: usize, horizon: i64) -> TemporalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(events);
    while batch.len() < events {
        let u: u32 = rng.gen_range(0..nodes);
        let v: u32 = rng.gen_range(0..nodes);
        if u == v {
            continue;
        }
        batch.push(Event::new(u, v, rng.gen_range(0i64..horizon)));
    }
    TemporalGraph::from_events(batch).expect("non-empty batch")
}

/// The headline out-of-core property: on a graph at least 4× the
/// residency budget, a spilled run keeps peak resident events within
/// `max_resident_shards × max_shard_events`, where each shard's size is
/// its owned target plus pad and halo — while still counting exactly.
#[test]
fn spill_mode_bounds_peak_memory() {
    let _obs = tnm_obs::test_guard();
    tnm_obs::set_enabled(true);
    tnm_obs::global().reset();
    let g = random_graph(99, 40, 8_000, 60_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(120));
    let (shard_events, max_resident) = (500usize, 2usize);
    let engine = ShardedEngine::new(shard_events).with_max_resident(max_resident);
    let (counts, stats) = engine.count_with_stats(&g, &cfg);
    let snap = tnm_obs::global().snapshot();
    tnm_obs::set_enabled(false);

    assert!(stats.spilled, "a max_resident budget must engage spill mode");
    assert!(stats.shards >= 16, "plan too coarse for the bound to mean anything");
    // The bound itself, in both the observed and the planned form. The
    // observed peak is the `shard.resident_events` gauge high-water
    // mark in the obs registry.
    let peak = snap.gauges["shard.resident_events"].peak as usize;
    assert!(
        peak <= max_resident * stats.max_shard_events,
        "peak {} exceeds {} × {}",
        peak,
        max_resident,
        stats.max_shard_events
    );
    // The graph dwarfs the working set: this is a genuine out-of-core
    // regime, not a bound that happens to cover the whole graph.
    assert!(
        g.num_events() >= 4 * max_resident * stats.max_shard_events,
        "graph {} too small vs working set {}",
        g.num_events(),
        max_resident * stats.max_shard_events
    );
    // And the run is still exact.
    assert_eq!(counts, WindowedEngine.count(&g, &cfg));
}

/// The halo is reach-sized, so `max_shard_events` stays near
/// `shard_events + (events within reach)` instead of degenerating to
/// the whole graph.
#[test]
fn halos_stay_bounded_by_reach() {
    let g = random_graph(7, 30, 6_000, 30_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(100));
    let reach = cfg.admissible_reach(&g).expect("ΔW bounds the reach");
    assert_eq!(reach, 100);
    let plan = plan_shards(&g, Some(reach), ShardGoal::EventsPerShard(400));
    // ~0.2 events per second ⇒ a 100 s halo holds a few dozen events;
    // 4× leaves generous slack while still catching a runaway halo.
    let density = g.num_events() as f64 / g.timespan() as f64;
    let halo_budget = (4.0 * density * reach as f64) as usize + 400;
    for spec in &plan.shards {
        assert!(
            spec.num_events() <= 400 + halo_budget,
            "shard {} materializes {} events (owned {}, pad {}, halo {})",
            spec.id,
            spec.num_events(),
            spec.num_owned(),
            spec.pad_len(),
            spec.halo_len()
        );
    }
}

/// Spill mode is bit-exact against in-memory sharding and the serial
/// engines even with graph-global restrictions enabled (consecutive
/// events need the pad; static inducedness needs the parent-graph
/// check).
#[test]
fn spilled_counts_match_with_global_restrictions() {
    let g = random_graph(21, 15, 2_000, 5_000);
    let base = EnumConfig::new(3, 3).with_timing(Timing::both(40, 90));
    let variants = [
        ("plain", base.clone()),
        ("consecutive", base.clone().with_consecutive(true)),
        ("induced", base.clone().with_static_induced(true)),
        ("constrained", base.clone().with_constrained(true)),
    ];
    for (label, cfg) in variants {
        let reference = WindowedEngine.count(&g, &cfg);
        assert_eq!(
            ShardedEngine::new(150).with_max_resident(1).count(&g, &cfg),
            reference,
            "{label}: spilled"
        );
        assert_eq!(
            ShardedEngine::new(150).with_max_resident(3).with_threads(4).count(&g, &cfg),
            reference,
            "{label}: spilled + threaded"
        );
    }
}

/// The store itself: loads, evictions, and residency counters behave
/// under a sequential pass, spilled and not. The residency peak is the
/// `shard.resident_events` gauge high-water mark in the obs registry.
#[test]
fn store_counters_through_public_api() {
    let _obs = tnm_obs::test_guard();
    tnm_obs::set_enabled(true);
    tnm_obs::global().reset();
    let g = random_graph(3, 20, 1_000, 4_000);
    let plan = plan_shards(&g, Some(50), ShardGoal::EventsPerShard(100));
    let n = plan.len();
    assert!(n >= 9);

    let mut spilled = ShardStore::spill(&g, plan.clone(), 2).unwrap();
    for id in 0..n {
        let shard = spilled.get(id).unwrap();
        assert_eq!(shard.graph().events(), &g.events()[shard.spec().range.clone()]);
    }
    let snap = tnm_obs::global().snapshot();
    tnm_obs::set_enabled(false);
    assert!(spilled.is_spilled());
    assert_eq!(spilled.loads(), n as u64);
    assert_eq!(spilled.evictions(), (n - 2) as u64);
    let peak = snap.gauges["shard.resident_events"].peak as usize;
    assert!(peak <= 2 * spilled.plan().max_shard_events());

    let mut unbounded = ShardStore::in_memory(&g, plan);
    for id in 0..n {
        unbounded.get(id).unwrap();
    }
    assert_eq!(unbounded.evictions(), 0);
    assert_eq!(unbounded.resident_events(), unbounded.plan().total_materialized_events());
}

/// Sharded runs behave through the `EngineKind` seam used by the CLI
/// and the experiment drivers: parameters survive, reports are exact.
#[test]
fn engine_kind_round_trip() {
    let g = random_graph(11, 12, 800, 2_500);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(60));
    let kind = EngineKind::sharded(90, 2);
    let reference = WindowedEngine.count(&g, &cfg);
    assert_eq!(kind.count(&g, &cfg, 2), reference);
    let report = kind.report(&g, &cfg, 2);
    assert!(report.exact);
    assert_eq!(report.engine, "sharded");
    assert_eq!(report.counts, reference);
    assert!(report.total.is_exact());
    assert_eq!("sharded".parse::<EngineKind>().unwrap().count(&g, &cfg, 1), reference);
}
