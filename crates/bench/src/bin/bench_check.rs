//! `bench_check` — benchmark-history regression gate.
//!
//! Compares a freshly produced bench summary (the JSON the vendored
//! criterion harness writes to `$TNM_BENCH_JSON`) against the previous
//! `BENCH_*.json` baseline and fails when any benchmark's best-case time
//! regresses beyond a threshold. Used by the `bench-history` CI job;
//! runs anywhere via `scripts/bench_check.sh`.
//!
//! ```text
//! bench_check <baseline.json | dir-with-BENCH_*.json> <new.json> [--threshold 0.25]
//! ```
//!
//! * The baseline may be a directory: the `BENCH_<n>.json` with the
//!   highest `n` is used. No baseline at all is a clean pass — the first
//!   run bootstraps the history.
//! * Comparison uses `min_ns` (fastest iteration): with the harness's
//!   few-iteration measurement model the minimum is the most
//!   noise-robust statistic.
//! * Benchmarks present on only one side are reported but never fail
//!   the gate (renames and new coverage should not block a PR). A whole
//!   bench *group* absent from the baseline — the first CI run of a
//!   freshly added group, e.g. `stream_engine` — passes explicitly with
//!   a `new group, seeding baseline` line, so new coverage enters the
//!   history without tripping or muting the gate.
//!
//! The parser handles exactly the flat document the vendored harness
//! emits (`{"benchmarks":[{...}]}`, no nested objects); it is not a
//! general JSON parser.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default maximum tolerated slowdown (25 %).
const DEFAULT_THRESHOLD: f64 = 0.25;

/// Ignore regressions on benchmarks faster than this: a few-microsecond
/// benchmark regresses 25 % by scheduler jitter alone.
const MIN_COMPARABLE_NS: u64 = 50_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v.parse().map_err(|_| format!("bad threshold `{v}`"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_check <baseline.json|dir> <new.json> [--threshold {DEFAULT_THRESHOLD}]"
                );
                return Ok(true);
            }
            _ => paths.push(a.clone()),
        }
    }
    let [baseline_arg, new_arg] = paths.as_slice() else {
        return Err("usage: bench_check <baseline.json|dir> <new.json> [--threshold F]".into());
    };
    let new_doc = std::fs::read_to_string(new_arg)
        .map_err(|e| format!("cannot read new summary {new_arg}: {e}"))?;
    let new = parse_summary(&new_doc)?;
    if new.is_empty() {
        return Err(format!("{new_arg} contains no benchmarks"));
    }
    let Some(baseline_path) = resolve_baseline(Path::new(baseline_arg)) else {
        println!("no BENCH_*.json baseline under {baseline_arg}: first run, nothing to compare");
        return Ok(true);
    };
    let base_doc = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline = parse_summary(&base_doc)?;
    println!(
        "comparing {} benchmarks against {} (threshold +{:.0}%)",
        new.len(),
        baseline_path.display(),
        threshold * 100.0
    );
    let report = compare(&baseline, &new, threshold);
    for line in &report.lines {
        println!("{line}");
    }
    if report.regressions > 0 {
        println!("{} benchmark(s) regressed beyond +{:.0}%", report.regressions, threshold * 100.0);
        Ok(false)
    } else {
        println!("no regressions beyond +{:.0}%", threshold * 100.0);
        Ok(true)
    }
}

/// Comparison report: human-readable lines plus the gate verdict input.
struct Comparison {
    lines: Vec<String>,
    regressions: usize,
}

/// The bench-group prefix of a `group/id` name (the whole name for
/// group-less benchmarks).
fn group_of(name: &str) -> &str {
    name.split('/').next().unwrap_or(name)
}

/// Pure comparison of two summaries. Three kinds of one-sided entries
/// are all explicit non-failures: a benchmark whose whole *group* is
/// absent from the baseline seeds that group into the history ("new
/// group, seeding baseline"), a new benchmark inside a known group is
/// reported as `new`, and a baseline benchmark missing from the new
/// summary as `dropped`.
fn compare(
    baseline: &BTreeMap<String, u64>,
    new: &BTreeMap<String, u64>,
    threshold: f64,
) -> Comparison {
    let baseline_groups: std::collections::BTreeSet<&str> =
        baseline.keys().map(|k| group_of(k)).collect();
    let mut announced: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut lines = Vec::new();
    let mut regressions = 0usize;
    for (name, &new_ns) in new {
        match baseline.get(name) {
            None => {
                let group = group_of(name);
                if !baseline_groups.contains(group) {
                    if announced.insert(group) {
                        lines.push(format!("  new group `{group}`, seeding baseline"));
                    }
                    lines.push(format!("  seeded    {name}: {:.3} ms", new_ns as f64 / 1e6));
                } else {
                    lines.push(format!("  new       {name}: {:.3} ms", new_ns as f64 / 1e6));
                }
            }
            Some(0) => {}
            Some(&old_ns) => {
                let ratio = new_ns as f64 / old_ns as f64 - 1.0;
                let line = format!(
                    "{name}: {:.3} ms -> {:.3} ms ({:+.1}%)",
                    old_ns as f64 / 1e6,
                    new_ns as f64 / 1e6,
                    ratio * 100.0
                );
                if ratio > threshold && new_ns.max(old_ns) >= MIN_COMPARABLE_NS {
                    regressions += 1;
                    lines.push(format!("  REGRESSED {line}"));
                } else if ratio < -threshold {
                    lines.push(format!("  improved  {line}"));
                } else {
                    lines.push(format!("  ok        {line}"));
                }
            }
        }
    }
    for name in baseline.keys() {
        if !new.contains_key(name) {
            lines.push(format!("  dropped   {name}"));
        }
    }
    Comparison { lines, regressions }
}

/// A file argument is used as-is; a directory is scanned for the
/// `BENCH_<n>.json` with the highest `n`.
fn resolve_baseline(arg: &Path) -> Option<PathBuf> {
    if arg.is_file() {
        return Some(arg.to_path_buf());
    }
    let entries = std::fs::read_dir(arg).ok()?;
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let n: u64 = name.strip_prefix("BENCH_")?.strip_suffix(".json")?.parse().ok()?;
            Some((n, e.path()))
        })
        .max_by_key(|&(n, _)| n)
        .map(|(_, p)| p)
}

/// Parses the vendored harness's summary into `group/id → min_ns`.
fn parse_summary(doc: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    // Objects in the "benchmarks" array are flat, so every '{' after the
    // first opens one benchmark record.
    let body = doc.split_once('[').ok_or("malformed summary: no benchmark array")?.1;
    for raw in body.split('{').skip(1) {
        let obj = raw.split('}').next().unwrap_or("");
        let group = extract_string(obj, "group")?;
        let id = extract_string(obj, "id")?;
        let min_ns = extract_u64(obj, "min_ns")?;
        let name = if group.is_empty() { id } else { format!("{group}/{id}") };
        out.insert(name, min_ns);
    }
    Ok(out)
}

fn extract_string(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let rest = obj
        .split_once(pat.as_str())
        .ok_or_else(|| format!("benchmark record without `{key}`: {obj}"))?
        .1;
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(value),
            '\\' => match chars.next() {
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape in `{key}`"))?;
                    value.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                Some(e) => value.push(e),
                None => break,
            },
            c => value.push(c),
        }
    }
    Err(format!("unterminated string for `{key}`"))
}

fn extract_u64(obj: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let rest = obj
        .split_once(pat.as_str())
        .ok_or_else(|| format!("benchmark record without `{key}`: {obj}"))?
        .1;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().map_err(|_| format!("bad integer for `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"benchmarks":[
        {"group":"g1","id":"a/1","iters":3,"min_ns":1000000,"mean_ns":1100000,"max_ns":1200000,"elements":5},
        {"group":"","id":"solo","iters":3,"min_ns":2000000,"mean_ns":2000000,"max_ns":2000000}
    ]}"#;

    #[test]
    fn parses_summary() {
        let m = parse_summary(SAMPLE).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["g1/a/1"], 1_000_000);
        assert_eq!(m["solo"], 2_000_000);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(extract_string(r#""id":"a\"b\\cA""#, "id").unwrap(), "a\"b\\cA");
        assert!(extract_string(r#""id":"unterminated"#, "id").is_err());
        assert!(extract_string(r#""other":"x""#, "id").is_err());
    }

    #[test]
    fn regression_gate() {
        let dir = std::env::temp_dir().join(format!("bench_check_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("BENCH_1.json");
        let newer = dir.join("BENCH_2.json");
        let fresh = dir.join("new.json");
        std::fs::write(&old, r#"{"benchmarks":[{"group":"g","id":"x","min_ns":9000000}]}"#)
            .unwrap();
        std::fs::write(&newer, r#"{"benchmarks":[{"group":"g","id":"x","min_ns":1000000}]}"#)
            .unwrap();
        // 20% over the *latest* baseline (BENCH_2): passes at 25%.
        std::fs::write(&fresh, r#"{"benchmarks":[{"group":"g","id":"x","min_ns":1200000}]}"#)
            .unwrap();
        let dir_s = dir.to_str().unwrap().to_string();
        let fresh_s = fresh.to_str().unwrap().to_string();
        assert_eq!(run(&[dir_s.clone(), fresh_s.clone()]), Ok(true));
        // ...but fails at a 10% threshold.
        let strict = vec![dir_s.clone(), fresh_s.clone(), "--threshold".into(), "0.10".into()];
        assert_eq!(run(&strict), Ok(false));
        // Missing baseline directory is a clean bootstrap pass.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert_eq!(run(&[empty.to_str().unwrap().to_string(), fresh_s]), Ok(true));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A bench group absent from every baseline (the `stream_engine`
    /// group on its first CI run) must pass explicitly, announcing the
    /// seed — while a new benchmark inside a *known* group stays a plain
    /// `new` entry and regressions elsewhere still gate.
    #[test]
    fn unknown_groups_seed_the_baseline() {
        let mk = |entries: &[(&str, u64)]| -> BTreeMap<String, u64> {
            entries.iter().map(|&(n, v)| (n.to_string(), v)).collect()
        };
        let baseline = mk(&[("engine_comparison/windowed/Email", 5_000_000)]);
        let new = mk(&[
            ("engine_comparison/windowed/Email", 5_100_000),
            ("engine_comparison/stream/Email", 800_000), // known group: new
            ("stream_engine/stream/dense", 700_000),     // unknown group: seeded
            ("stream_engine/windowed/dense", 9_000_000),
        ]);
        let report = compare(&baseline, &new, 0.25);
        assert_eq!(report.regressions, 0);
        let seeds: Vec<&String> = report.lines.iter().filter(|l| l.contains("new group")).collect();
        assert_eq!(seeds, ["  new group `stream_engine`, seeding baseline"]);
        assert!(report.lines.iter().any(|l| l.starts_with("  seeded    stream_engine/stream")));
        assert!(report.lines.iter().any(|l| l.starts_with("  seeded    stream_engine/windowed")));
        assert!(
            report.lines.iter().any(|l| l.starts_with("  new       engine_comparison/stream")),
            "known-group additions stay `new`: {:?}",
            report.lines
        );
        // End-to-end: the gate passes on an all-new group...
        let dir = std::env::temp_dir().join(format!("bench_check_seed_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("BENCH_1.json");
        let fresh = dir.join("new.json");
        std::fs::write(&old, r#"{"benchmarks":[{"group":"g","id":"x","min_ns":1000000}]}"#)
            .unwrap();
        std::fs::write(
            &fresh,
            r#"{"benchmarks":[
                {"group":"g","id":"x","min_ns":1000000},
                {"group":"stream_engine","id":"stream/dense","min_ns":700000}
            ]}"#,
        )
        .unwrap();
        let args = vec![old.to_str().unwrap().to_string(), fresh.to_str().unwrap().to_string()];
        assert_eq!(run(&args), Ok(true));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_benchmarks_never_fail_the_gate() {
        let dir = std::env::temp_dir().join(format!("bench_check_tiny_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("BENCH_1.json");
        let fresh = dir.join("new.json");
        // 10µs benchmark doubling: below MIN_COMPARABLE_NS, ignored.
        std::fs::write(&old, r#"{"benchmarks":[{"group":"g","id":"x","min_ns":10000}]}"#).unwrap();
        std::fs::write(&fresh, r#"{"benchmarks":[{"group":"g","id":"x","min_ns":20000}]}"#)
            .unwrap();
        let args = vec![old.to_str().unwrap().to_string(), fresh.to_str().unwrap().to_string()];
        assert_eq!(run(&args), Ok(true));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
