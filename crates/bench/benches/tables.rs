//! One bench per paper table: regenerating Table 2–5 end to end on a
//! reduced corpus. `cargo bench -p tnm-bench --bench tables` measures the
//! harness; the `tnm` CLI regenerates the full-scale rows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tnm_analysis::experiments::{self, Corpus};

/// Reduced corpus: benches measure the harness, not laptop patience.
fn bench_corpus() -> Corpus {
    Corpus::scaled(0.1, experiments::CORPUS_SEED)
}

fn bench_tables(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    group.bench_function("table2_dataset_statistics", |b| {
        b.iter(|| black_box(experiments::table2::run(&corpus)))
    });
    group.bench_function("table3_consecutive_restriction", |b| {
        b.iter(|| black_box(experiments::table3::run(&corpus)))
    });
    group.bench_function("table4_constrained_dynamic_graphlets", |b| {
        b.iter(|| black_box(experiments::table4::run(&corpus)))
    });
    group.bench_function("table5_timing_constraints", |b| {
        b.iter(|| black_box(experiments::table5::run(&corpus)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
