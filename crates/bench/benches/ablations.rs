//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the cost of each model restriction, exact vs sampled counting, motif
//! size scaling, and the timing-regime sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tnm_datasets::{generate, DatasetSpec};
use tnm_graph::TemporalGraph;
use tnm_motifs::prelude::*;

fn graph() -> TemporalGraph {
    let mut spec = DatasetSpec::college_msg();
    spec.num_events = 8_000;
    generate(&spec, 2)
}

/// Cost of each restriction on top of vanilla ΔC counting.
fn bench_restrictions(c: &mut Criterion) {
    let g = graph();
    let base = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(1500));
    let mut group = c.benchmark_group("restriction_ablation");
    group.sample_size(10);
    group.bench_function("vanilla", |b| b.iter(|| black_box(count_motifs(&g, &base))));
    group.bench_function("consecutive_events", |b| {
        let cfg = base.clone().with_consecutive(true);
        b.iter(|| black_box(count_motifs(&g, &cfg)))
    });
    group.bench_function("static_induced", |b| {
        let cfg = base.clone().with_static_induced(true);
        b.iter(|| black_box(count_motifs(&g, &cfg)))
    });
    group.bench_function("constrained_dynamic", |b| {
        let cfg = base.clone().with_constrained(true);
        b.iter(|| black_box(count_motifs(&g, &cfg)))
    });
    group.finish();
}

/// Exact vs interval-sampled counting (the Liu–Benson–Charikar line).
fn bench_sampling(c: &mut Criterion) {
    let g = graph();
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3000));
    let mut group = c.benchmark_group("sampling_vs_exact");
    group.sample_size(10);
    group.bench_function("exact", |b| b.iter(|| black_box(count_motifs(&g, &cfg))));
    for samples in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("sampled", samples), &samples, |b, &n| {
            let engine = SamplingEngine::new(n, 7).with_window_len(6_000);
            b.iter(|| black_box(engine.report(&g, &cfg)))
        });
    }
    group.finish();
}

/// Enumeration cost vs motif size (2e/3e/4e) under the same window.
fn bench_motif_size(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("motif_size_scaling");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        let cfg = EnumConfig::new(k, k.min(4)).with_timing(Timing::only_w(3000));
        group.bench_with_input(BenchmarkId::from_parameter(k), &cfg, |b, cfg| {
            b.iter(|| black_box(count_motifs(&g, cfg)))
        });
    }
    group.finish();
}

/// Timing-regime cost: only-ΔC vs both vs only-ΔW at fixed ΔW.
fn bench_timing_regimes(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("timing_regimes_3e");
    group.sample_size(10);
    for (label, ratio) in [("only_dC", 0.5), ("both", 0.66), ("only_dW", 1.0)] {
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::from_ratio(3000, ratio));
        group.bench_function(label, |b| b.iter(|| black_box(count_motifs(&g, &cfg))));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_restrictions,
    bench_sampling,
    bench_motif_size,
    bench_timing_regimes
);
criterion_main!(benches);
