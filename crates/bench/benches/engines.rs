//! Counting-engine benchmarks: enumeration throughput across datasets,
//! serial vs parallel scaling, signature-targeted counting, streaming
//! matching, and dataset generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tnm_datasets::{generate, DatasetSpec};
use tnm_graph::TemporalGraph;
use tnm_motifs::pattern::{matcher::StreamingMatcher, EventPattern};
use tnm_motifs::prelude::*;

fn dataset(name: &str, events: usize) -> TemporalGraph {
    let mut spec = DatasetSpec::by_name(name).expect("known dataset");
    spec.num_events = events;
    generate(&spec, 1)
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_3n3e_dC1500");
    group.sample_size(10);
    for name in ["CollegeMsg", "Email", "StackOverflow", "Bitcoin-otc"] {
        let g = dataset(name, 8_000);
        group.throughput(Throughput::Elements(g.num_events() as u64));
        let cfg = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(1500));
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| black_box(count_motifs(g, &cfg)))
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let g = dataset("SMS-A", 12_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(1500, 3000));
    let mut group = c.benchmark_group("parallel_scaling_3e");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(count_motifs_parallel(&g, &cfg, t)))
        });
    }
    group.finish();
}

fn bench_signature_targeting(c: &mut Criterion) {
    let g = dataset("CollegeMsg", 8_000);
    let timing = Timing::only_w(3000);
    let mut group = c.benchmark_group("signature_targeting");
    group.sample_size(10);
    group.bench_function("full_spectrum_3e", |b| {
        b.iter(|| black_box(count_motifs(&g, &EnumConfig::new(3, 3).with_timing(timing))))
    });
    group.bench_function("targeted_010102", |b| {
        b.iter(|| black_box(count_signature(&g, sig("010102"), timing)))
    });
    group.bench_function("targeted_011202", |b| {
        b.iter(|| black_box(count_signature(&g, sig("011202"), timing)))
    });
    group.finish();
}

fn bench_streaming_matcher(c: &mut Criterion) {
    let g = dataset("Calls-Copenhagen", 3_600);
    let mut group = c.benchmark_group("streaming_matcher");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group.bench_function("triangle_pattern", |b| {
        b.iter(|| {
            let pattern = EventPattern::from_signature(sig("011202"), 3000);
            black_box(StreamingMatcher::match_graph(pattern, &g).len())
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    for name in ["SMS-Copenhagen", "Email", "StackOverflow"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        group.throughput(Throughput::Elements(spec.num_events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| black_box(generate(spec, 42)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_counting,
    bench_parallel_scaling,
    bench_signature_targeting,
    bench_streaming_matcher,
    bench_generation
);
criterion_main!(benches);
