//! Counting-engine benchmarks.
//!
//! The headline group, `engine_comparison`, races the three exact
//! [`CountEngine`] implementations (backtrack, windowed, work-stealing
//! parallel) on the synthetic generator corpora under a bounded-ΔW
//! configuration — the regime the windowed index is built for. Further
//! groups cover ΔW tightness sweeps (how pruning scales with the window),
//! parallel scaling, the sampling engine across budgets, the sharded
//! engine (in-memory and out-of-core spill mode), the distributed
//! engine (real coordinator/worker processes over the wire protocol vs
//! the in-process baseline), the stream engine's
//! count-without-enumerating fast path against the windowed walker,
//! the serve subsystem's incremental append path against a
//! from-scratch recount, window-index cache reuse, signature-targeted
//! counting, streaming matching, the observability tax (`obs_overhead`
//! pins the metrics-disabled hot path against the BENCH history,
//! `query_trace_overhead` does the same for the untraced `Query::run`
//! path vs a request-scoped trace), and dataset generation.
//!
//! The harness prints a machine-readable JSON summary on exit (one
//! object per benchmark; set `TNM_BENCH_JSON=path` to also write it to a
//! file) — this feeds the repo's `BENCH_*.json` trajectory.

mod legacy;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use tnm_datasets::{generate, DatasetSpec};
use tnm_graph::TemporalGraph;
use tnm_motifs::engine::{
    auto_select, stream_hotpath, BacktrackEngine, CountEngine, DistributedEngine, ParallelEngine,
    StreamEngine, WindowedEngine, PARALLEL_MIN_WINDOW_EVENTS, SERIAL_FALLBACK_EVENTS,
};
use tnm_motifs::pattern::{matcher::StreamingMatcher, EventPattern};
use tnm_motifs::prelude::*;

fn dataset(name: &str, events: usize) -> TemporalGraph {
    let mut spec = DatasetSpec::by_name(name).expect("known dataset");
    spec.num_events = events;
    generate(&spec, 1)
}

fn engines() -> Vec<Box<dyn CountEngine>> {
    vec![
        Box::new(BacktrackEngine),
        Box::new(WindowedEngine),
        Box::new(ParallelEngine::new(
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8),
        )),
    ]
}

/// Backtrack vs windowed vs work-stealing parallel on the generator
/// corpora, bounded ΔW (3n3e, the paper's flagship configuration).
fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_comparison_3n3e_dW3000");
    group.sample_size(10);
    for name in ["CollegeMsg", "Email", "StackOverflow", "Bitcoin-otc"] {
        let g = dataset(name, 8_000);
        let cfg = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_w(3000));
        group.throughput(Throughput::Elements(g.num_events() as u64));
        for engine in engines() {
            group.bench_with_input(BenchmarkId::new(engine.name(), name), &g, |b, g| {
                b.iter(|| black_box(engine.count(g, &cfg)))
            });
        }
    }
    group.finish();
}

/// Hub-heavy workload under tight ΔW: few nodes → long per-node event
/// lists; a tight window → small candidate sets. Candidate generation
/// dominates the walk here, which is exactly where the windowed index
/// wins — dense binary searches over inline timestamps plus a sorted-run
/// merge, versus the node-list strategy's indirect time lookups plus a
/// per-descend sort.
fn bench_hub_tight_window(c: &mut Criterion) {
    // Deterministic LCG graph: 24 nodes, 40k events → ~3.3k events per
    // node list; timestamps dense enough that ΔW=40 admits a handful of
    // candidates per step.
    let mut b = tnm_graph::TemporalGraphBuilder::new();
    let mut x = 0x2545F4914F6CDD1Du64;
    for t in 0..40_000i64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % 24) as u32;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut v = ((x >> 33) % 24) as u32;
        if v == u {
            v = (v + 1) % 24;
        }
        b.push(tnm_graph::Event::new(u, v, t));
    }
    let g = b.build().unwrap();
    let mut group = c.benchmark_group("hub_tight_window_3n3e");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    for dw in [20i64, 40] {
        let cfg = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_w(dw));
        group.bench_with_input(BenchmarkId::new("backtrack", dw), &g, |b, g| {
            b.iter(|| black_box(BacktrackEngine.count(g, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("windowed", dw), &g, |b, g| {
            b.iter(|| black_box(WindowedEngine.count(g, &cfg)))
        });
    }
    group.finish();
}

/// How windowed pruning pays off as ΔW tightens: the backtrack walker's
/// candidate scan is O(remaining events per node) regardless of the
/// bound, while the windowed walker touches only admissible events.
fn bench_window_tightness(c: &mut Criterion) {
    let g = dataset("SMS-A", 10_000);
    let mut group = c.benchmark_group("window_tightness_3e");
    group.sample_size(10);
    for dw in [300i64, 1500, 6000] {
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(dw));
        group.bench_with_input(BenchmarkId::new("backtrack", dw), &g, |b, g| {
            b.iter(|| black_box(BacktrackEngine.count(g, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("windowed", dw), &g, |b, g| {
            b.iter(|| black_box(WindowedEngine.count(g, &cfg)))
        });
    }
    group.finish();
}

/// Work-stealing scaling across thread counts (windowed workers).
///
/// The workload is pinned to the executor's parallel path before
/// timing anything: enough events to clear the serial fallback, window
/// occupancy past the threshold `auto` itself requires, and a
/// hub-dense graph so each claimed start event carries real walk work
/// (per-claim enumeration dwarfs steal traffic). `threads = 1` is the
/// serial-delegation baseline the speedups are read against. Real
/// scaling only materializes with physical cores — on a single-core
/// host (CI containers included) the honest profile is flat, which
/// pins the executor's *overhead* at ~zero; on multi-core hardware the
/// same ids record the speedup curve, and either regressing trips
/// `bench_check`.
fn bench_parallel_scaling(c: &mut Criterion) {
    // Deterministic LCG graph: 24 nodes, 20k events over 20k seconds →
    // ~830 events per node list; ΔW=40 admits ~40 events per window.
    let mut b = tnm_graph::TemporalGraphBuilder::new();
    let mut x = 0xA24BAED4963EE407u64;
    for t in 0..20_000i64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % 24) as u32;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut v = ((x >> 33) % 24) as u32;
        if v == u {
            v = (v + 1) % 24;
        }
        b.push(tnm_graph::Event::new(u, v, t));
    }
    let g = b.build().unwrap();
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(20, 40));
    // Guard the premise: this workload must reach the work-stealing
    // executor — not the serial fallback, not the stream fast path.
    assert!(g.num_events() >= SERIAL_FALLBACK_EVENTS, "workload below the serial fallback");
    let span = g.timespan().max(1) as f64;
    let occupancy = g.num_events() as f64 * 40.0 / span;
    assert!(occupancy >= PARALLEL_MIN_WINDOW_EVENTS, "windows too sparse: {occupancy:.2}");
    assert_eq!(
        auto_select(&g, &cfg, 4),
        EngineKind::Parallel,
        "auto must agree this is a parallel workload"
    );
    let mut group = c.benchmark_group("parallel_scaling_3e");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(ParallelEngine::new(t).count(&g, &cfg)))
        });
    }
    group.finish();
}

/// Batch-planner amortization: N configurations answered by one plan
/// vs N sequential `EngineKind::count` dispatches, on the CollegeMsg
/// corpus. Two regimes:
///
/// * the 36-motif spectrum split (ΔW-only targets): the plan collapses
///   the stream-eligible members into ONE DP pass plus projections and
///   the rest into one prefix-pruned walk, while the sequential loop
///   pays a full dispatch per motif;
/// * a ΔW-ratio sweep on the windowed walker (table5's shape): one
///   shared walk under the widest ΔC with per-ratio masks vs one walk
///   per ratio.
fn bench_batch_planner(c: &mut Criterion) {
    let g = dataset("CollegeMsg", 8_000);
    let batch36: Vec<EnumConfig> = all_3e()
        .into_iter()
        .map(|m| EnumConfig::for_signature(m).with_timing(Timing::only_w(3000)))
        .collect();
    let ratios = [0.25f64, 0.5, 0.75, 1.0];
    let sweep: Vec<EnumConfig> = ratios
        .iter()
        .map(|&r| EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::from_ratio(3000, r)))
        .collect();
    let mut group = c.benchmark_group("batch_planner");
    group.sample_size(10);
    group.bench_function("36_motifs_batched", |b| {
        b.iter(|| black_box(EngineKind::Auto.count_batch(&g, &batch36, 1)))
    });
    group.bench_function("36_motifs_sequential", |b| {
        b.iter(|| batch36.iter().map(|cfg| EngineKind::Auto.count(&g, cfg, 1).total()).sum::<u64>())
    });
    group.bench_function("dW_ratio_sweep_batched", |b| {
        b.iter(|| black_box(EngineKind::Windowed.count_batch(&g, &sweep, 1)))
    });
    group.bench_function("dW_ratio_sweep_sequential", |b| {
        b.iter(|| {
            sweep.iter().map(|cfg| EngineKind::Windowed.count(&g, cfg, 1).total()).sum::<u64>()
        })
    });
    group.finish();
}

/// Sampling engine vs exact windowed counting across sample budgets,
/// through the `CountEngine` seam (`report` keeps the confidence
/// intervals). The sampler's repeated window draws ride the shared
/// window index, so its cost is almost purely enumeration inside the
/// sampled windows.
fn bench_sampling_engine(c: &mut Criterion) {
    let g = dataset("SMS-A", 10_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3000));
    let mut group = c.benchmark_group("sampling_engine_3e_dW3000");
    group.sample_size(10);
    group
        .bench_function("exact_windowed", |b| b.iter(|| black_box(WindowedEngine.count(&g, &cfg))));
    for budget in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("sampling", budget), &budget, |b, &n| {
            let engine = SamplingEngine::new(n, 7);
            b.iter(|| black_box(engine.report(&g, &cfg)))
        });
    }
    group.finish();
}

/// Sharded vs monolithic exact counting: the sharded engine pays shard
/// materialization and per-shard index builds for a bounded working
/// set; this group tracks that overhead against the windowed baseline
/// across shard-size targets, plus a within-shard work-stealing run.
fn bench_sharded_engine(c: &mut Criterion) {
    let g = dataset("SMS-A", 12_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3000));
    let mut group = c.benchmark_group("sharded_engine_3e_dW3000");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group.bench_function("windowed_baseline", |b| {
        b.iter(|| black_box(WindowedEngine.count(&g, &cfg)))
    });
    for shard_events in [2_000usize, 6_000] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shard_events),
            &shard_events,
            |b, &n| b.iter(|| black_box(ShardedEngine::new(n).count(&g, &cfg))),
        );
    }
    group.bench_function("sharded_2000_threads4", |b| {
        b.iter(|| black_box(ShardedEngine::new(2_000).with_threads(4).count(&g, &cfg)))
    });
    group.finish();
}

/// Count-without-enumerating vs the windowed walker on eligible
/// Paranjape configurations (3n3e, only-ΔW, non-induced). The dense
/// synthetic graph is the walker's worst case — few nodes, long per-node
/// event lists, instance counts far above the event count — and exactly
/// where the stream engine's event-linear DPs pull away; the
/// CollegeMsg-style corpus tracks the same race on realistic burstiness.
fn bench_stream_engine(c: &mut Criterion) {
    // Dense LCG graph: 12 nodes, 20k events over 20k seconds; ΔW=60
    // admits ~60 events per window, so instances vastly outnumber events.
    let mut b = tnm_graph::TemporalGraphBuilder::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    for t in 0..20_000i64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % 12) as u32;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut v = ((x >> 33) % 12) as u32;
        if v == u {
            v = (v + 1) % 12;
        }
        b.push(tnm_graph::Event::new(u, v, t));
    }
    let dense = b.build().unwrap();
    let college = dataset("CollegeMsg", 8_000);
    let mut group = c.benchmark_group("stream_engine");
    group.sample_size(10);
    for (name, g, dw) in [("dense", &dense, 60i64), ("CollegeMsg", &college, 3_000)] {
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(dw));
        assert!(StreamEngine::eligible(&cfg));
        group.throughput(Throughput::Elements(g.num_events() as u64));
        group.bench_with_input(BenchmarkId::new("windowed", name), g, |b, g| {
            b.iter(|| black_box(WindowedEngine.count(g, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("stream", name), g, |b, g| {
            b.iter(|| black_box(StreamEngine.count(g, &cfg)))
        });
    }
    group.finish();
}

/// Coordinator/worker counting across process boundaries: every
/// iteration plans shards, spills them, spawns real `tnm worker`
/// processes, and merges their framed replies — the full wire round
/// trip, tracked against the in-process windowed baseline.
///
/// `workers/N` times the whole round trip. That number alone is
/// ambiguous: a regression could hide in process spawn + shard spill
/// (one-time setup) or in the shard walks themselves (the steady-state
/// cost that scales with data). So each worker count also records a
/// span-based decomposition from instrumented runs — `setup/N` sums the
/// coordinator's `distributed.{plan,spill,spawn}` spans, `steady/N`
/// the `distributed.{walk,merge}` spans (worker-reported shard wall
/// times plus coordinator merges). Distinct ids mean `bench_check`
/// gates the two regimes independently.
fn bench_distributed_engine(c: &mut Criterion) {
    assert!(
        DistributedEngine::worker_binary().is_some(),
        "distributed bench needs the `tnm` binary: build the workspace (release) first"
    );
    let g = dataset("SMS-A", 12_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3000));
    let mut group = c.benchmark_group("distributed_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group.bench_function("windowed_baseline", |b| {
        b.iter(|| black_box(WindowedEngine.count(&g, &cfg)))
    });
    // One instrumented run → (plan+spill+spawn, walk+merge) span sums.
    let phase_split = |engine: &DistributedEngine| -> (Duration, Duration) {
        tnm_obs::set_enabled(true);
        tnm_obs::drain_spans();
        black_box(engine.count(&g, &cfg));
        let spans = tnm_obs::drain_spans();
        tnm_obs::set_enabled(false);
        let sum = |names: &[&str]| {
            spans
                .iter()
                .filter(|s| names.contains(&s.name.as_str()))
                .map(|s| Duration::from_nanos(s.dur_ns))
                .sum::<Duration>()
        };
        (
            sum(&["distributed.plan", "distributed.spill", "distributed.spawn"]),
            sum(&["distributed.walk", "distributed.merge"]),
        )
    };
    for workers in [2usize, 4] {
        let engine = DistributedEngine::new(workers).with_shard_events(2_000);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| black_box(engine.count(&g, &cfg)))
        });
        // A bounded number of instrumented runs feeds both phase ids
        // (cycled through `iter_custom`), so a sub-threshold phase can't
        // trigger the fast-body boost into dozens of full round trips.
        let runs: Vec<(Duration, Duration)> = (0..4).map(|_| phase_split(&engine)).collect();
        let steady_runs = runs.clone();
        group.bench_with_input(BenchmarkId::new("setup", workers), &workers, |b, _| {
            let mut cycle = runs.iter().cycle();
            b.iter_custom(|_iters| cycle.next().expect("non-empty").0)
        });
        group.bench_with_input(BenchmarkId::new("steady", workers), &workers, |b, _| {
            let mut cycle = steady_runs.iter().cycle();
            b.iter_custom(|_iters| cycle.next().expect("non-empty").1)
        });
    }
    group.finish();
}

/// Out-of-core spill mode: every iteration serializes the shards to a
/// temp dir and counts while keeping at most `max_resident` loaded —
/// the full write + read + count cycle, so the history tracks the I/O
/// path, not just the walk.
fn bench_sharded_spill(c: &mut Criterion) {
    let g = dataset("SMS-A", 12_000);
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3000));
    let mut group = c.benchmark_group("sharded_spill_mode");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    for max_resident in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("resident", max_resident),
            &max_resident,
            |b, &k| {
                let engine = ShardedEngine::new(2_000).with_max_resident(k);
                b.iter(|| black_box(engine.count(&g, &cfg)))
            },
        );
    }
    group.finish();
}

/// The serve subsystem's incremental counting path: advancing a live
/// subscription by an appended tail (O(new events) of DP work on the
/// ΔW suffix) vs recounting the grown graph from scratch with the
/// stream engine. The gap is the amortization `tnm serve` buys for
/// every `AppendEvents` — both sides end bit-identical by contract.
fn bench_serve_incremental(c: &mut Criterion) {
    let g = dataset("CollegeMsg", 20_000);
    let all = g.events();
    let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(3000));
    let mut group = c.benchmark_group("serve_incremental");
    group.sample_size(10);
    for tail in [512usize, 2_048] {
        let (history, live) = all.split_at(all.len() - tail);
        let base = tnm_graph::TemporalGraphBuilder::from_events(history.to_vec()).build().unwrap();
        let warm = IncrementalStream::new(&base, &cfg).expect("stream-eligible config");
        group.throughput(Throughput::Elements(tail as u64));
        // Each iteration re-clones the warm subscription (append mutates);
        // the clone is O(spectrum + ΔW suffix), charged to the append side.
        group.bench_with_input(BenchmarkId::new("append", tail), &warm, |b, warm| {
            b.iter(|| {
                let mut sub = warm.clone();
                sub.append(live).expect("ordered tail");
                black_box(sub.counts())
            })
        });
        group.bench_with_input(BenchmarkId::new("recount", tail), &g, |b, g| {
            b.iter(|| black_box(StreamEngine.count(g, &cfg)))
        });
    }
    group.finish();
}

/// Window-index construction vs a verified cache hit: the hit still pays
/// the O(m) content verification but skips allocation and construction.
fn bench_index_cache(c: &mut Criterion) {
    let g = dataset("Email", 20_000);
    let mut group = c.benchmark_group("window_index_reuse");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group
        .bench_function("build_fresh", |b| b.iter(|| black_box(tnm_graph::WindowIndex::build(&g))));
    let cache = tnm_graph::WindowIndexCache::new(2);
    cache.get_or_build(&g);
    group.bench_function("cache_hit_verified", |b| b.iter(|| black_box(cache.get_or_build(&g))));
    group.finish();
}

fn bench_signature_targeting(c: &mut Criterion) {
    let g = dataset("CollegeMsg", 8_000);
    let timing = Timing::only_w(3000);
    let mut group = c.benchmark_group("signature_targeting");
    group.sample_size(10);
    group.bench_function("full_spectrum_3e", |b| {
        b.iter(|| black_box(count_motifs(&g, &EnumConfig::new(3, 3).with_timing(timing))))
    });
    group.bench_function("targeted_010102", |b| {
        b.iter(|| black_box(count_signature(&g, sig("010102"), timing)))
    });
    group.bench_function("targeted_011202", |b| {
        b.iter(|| black_box(count_signature(&g, sig("011202"), timing)))
    });
    group.finish();
}

fn bench_streaming_matcher(c: &mut Criterion) {
    let g = dataset("Calls-Copenhagen", 3_600);
    let mut group = c.benchmark_group("streaming_matcher");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group.bench_function("triangle_pattern", |b| {
        b.iter(|| {
            let pattern = EventPattern::from_signature(sig("011202"), 3000);
            black_box(StreamingMatcher::match_graph(pattern, &g).len())
        })
    });
    group.finish();
}

/// The observability tax. `metrics_off` is the pinned id: with the
/// registry disabled every instrumentation site must cost one relaxed
/// atomic load and a branch, so this id regressing against the BENCH
/// history means overhead leaked into the disabled hot path.
/// `metrics_on` tracks the enabled-path cost (interned handles, atomic
/// adds, span clock reads) on the same workload — expected to sit
/// within a few percent of `metrics_off`, but not gated against it.
fn bench_obs_overhead(c: &mut Criterion) {
    // Deterministic LCG graph: 24 nodes, 20k events, ΔW=40 — the same
    // hub-dense shape as `parallel_scaling`, instrumentation-heavy
    // because candidate pruning and cache checks fire per event.
    let mut b = tnm_graph::TemporalGraphBuilder::new();
    let mut x = 0xD1B54A32D192ED03u64;
    for t in 0..20_000i64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % 24) as u32;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut v = ((x >> 33) % 24) as u32;
        if v == u {
            v = (v + 1) % 24;
        }
        b.push(tnm_graph::Event::new(u, v, t));
    }
    let g = b.build().unwrap();
    let cfg = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_w(40));
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    tnm_obs::set_enabled(false);
    group.bench_function("metrics_off", |b| b.iter(|| black_box(WindowedEngine.count(&g, &cfg))));
    tnm_obs::set_enabled(true);
    tnm_obs::global().reset();
    group.bench_function("metrics_on", |b| b.iter(|| black_box(WindowedEngine.count(&g, &cfg))));
    tnm_obs::set_enabled(false);
    tnm_obs::global().reset();
    tnm_obs::drain_spans();
    group.finish();
}

/// The tracing tax on the query path. `trace_off` is the pinned id:
/// with no request trace active, every span site under [`Query::run`]
/// (the query root, walker workers, engine phases) must cost one
/// relaxed atomic load and a branch — this id regressing against the
/// BENCH history means overhead leaked into the untraced hot path,
/// which every `tnm serve` request without the trace flag pays.
/// `trace_on` runs the identical query under a request-scoped
/// [`tnm_obs::TraceCtx`] — clock reads, span records, and the final
/// tree collection — tracking the opt-in price of `tnm client
/// --trace` / `--profile`. Expected within a few percent of
/// `trace_off`, but not gated against it.
fn bench_query_trace_overhead(c: &mut Criterion) {
    // The obs_overhead LCG graph: 24 nodes, 20k events, ΔW=40 —
    // instrumentation-heavy because pruning and cache checks fire per
    // event, so leaked span overhead shows up immediately.
    let mut b = tnm_graph::TemporalGraphBuilder::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    for t in 0..20_000i64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % 24) as u32;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut v = ((x >> 33) % 24) as u32;
        if v == u {
            v = (v + 1) % 24;
        }
        b.push(tnm_graph::Event::new(u, v, t));
    }
    let g = b.build().unwrap();
    let cfg = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_w(40));
    let q = Query::Count { cfg, engine: EngineKind::Windowed, threads: 1 };
    let mut group = c.benchmark_group("query_trace_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    tnm_obs::set_enabled(false);
    tnm_obs::set_trace(None);
    group.bench_function("trace_off", |b| b.iter(|| black_box(q.run(&g).unwrap())));
    group.bench_function("trace_on", |b| {
        b.iter(|| {
            let ctx = tnm_obs::TraceCtx::new();
            tnm_obs::set_trace(Some(ctx));
            let out = q.run(&g);
            tnm_obs::set_trace(None);
            let spans = tnm_obs::take_trace_spans(ctx.trace_id);
            black_box((out.unwrap(), spans.len()))
        })
    });
    tnm_obs::drain_spans();
    group.finish();
}

/// The dense hub graph the hot-path groups share: 12 nodes, 20k events
/// over 20k seconds — long per-pair/per-center/per-triangle merged
/// lists, so the DP inner loops dominate and layout effects show.
fn hotpath_graph() -> TemporalGraph {
    let mut b = tnm_graph::TemporalGraphBuilder::new();
    let mut x = 0xC2B2AE3D27D4EB4Fu64;
    for t in 0..20_000i64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((x >> 33) % 12) as u32;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut v = ((x >> 33) % 12) as u32;
        if v == u {
            v = (v + 1) % 12;
        }
        b.push(tnm_graph::Event::new(u, v, t));
    }
    b.build().unwrap()
}

/// The SoA layout decision measured in isolation: a batch of δ-window
/// probes answered by `partition_point` over the dense time column vs
/// the same probes striding the 24-byte `Event` structs. Everything
/// else (`hotpath_{pair,star,triad}_dp`) builds on this primitive.
fn bench_hotpath_window_probe(c: &mut Criterion) {
    let g = dataset("Email", 20_000);
    let events = g.events();
    let (t0, t1) = (events[0].time, events[events.len() - 1].time);
    let mut probes = Vec::with_capacity(4_096);
    let mut x = 0x243F6A8885A308D3u64;
    for _ in 0..4_096 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = t0 + ((x >> 17) as i64).rem_euclid((t1 - t0).max(1));
        probes.push((a, a + 3_000));
    }
    let times = g.times();
    let probe_aos = || {
        probes
            .iter()
            .map(|&(a, b)| {
                events.partition_point(|e| e.time <= b) - events.partition_point(|e| e.time < a)
            })
            .sum::<usize>()
    };
    let probe_soa = || {
        probes
            .iter()
            .map(|&(a, b)| times.partition_point(|&t| t <= b) - times.partition_point(|&t| t < a))
            .sum::<usize>()
    };
    assert_eq!(probe_aos(), probe_soa(), "layouts must answer probes identically");
    let mut group = c.benchmark_group("hotpath_window_probe");
    group.sample_size(10);
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("aos_struct", |b| b.iter(|| black_box(probe_aos())));
    group.bench_function("soa_column", |b| b.iter(|| black_box(probe_soa())));
    group.finish();
}

/// The branchless arena pair DP vs the faithful pre-rewrite copy
/// (per-pair `Vec` merge chasing `graph.event()`, nested-array tables).
fn bench_hotpath_pair_dp(c: &mut Criterion) {
    let g = hotpath_graph();
    let delta = 60i64;
    assert_eq!(
        legacy::pair_triples(&g, delta),
        stream_hotpath::pair_triples(&g, delta),
        "legacy and SoA pair DPs must agree before racing"
    );
    let mut group = c.benchmark_group("hotpath_pair_dp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group.bench_function("legacy", |b| b.iter(|| black_box(legacy::pair_triples(&g, delta))));
    group.bench_function("soa", |b| b.iter(|| black_box(stream_hotpath::pair_triples(&g, delta))));
    group.finish();
}

/// The flat-table shared-bounds star sweeps vs the pre-rewrite AoS
/// `Incident`-struct version with per-event group scans.
fn bench_hotpath_star_dp(c: &mut Criterion) {
    let g = hotpath_graph();
    let delta = 60i64;
    assert_eq!(
        legacy::star_stars(&g, delta),
        stream_hotpath::star_stars(&g, delta),
        "legacy and SoA star sweeps must agree before racing"
    );
    let mut group = c.benchmark_group("hotpath_star_dp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group.bench_function("legacy", |b| b.iter(|| black_box(legacy::star_stars(&g, delta))));
    group.bench_function("soa", |b| b.iter(|| black_box(stream_hotpath::star_stars(&g, delta))));
    group.finish();
}

/// The cache-blocked six-way-merge triad DP vs the pre-rewrite
/// collect-then-sort version in projection order.
fn bench_hotpath_triad_dp(c: &mut Criterion) {
    let g = hotpath_graph();
    let delta = 60i64;
    assert_eq!(
        legacy::triad_triads(&g, delta),
        stream_hotpath::triad_triads(&g, delta),
        "legacy and blocked triad DPs must agree before racing"
    );
    let mut group = c.benchmark_group("hotpath_triad_dp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_events() as u64));
    group.bench_function("legacy", |b| b.iter(|| black_box(legacy::triad_triads(&g, delta))));
    group.bench_function("soa", |b| b.iter(|| black_box(stream_hotpath::triad_triads(&g, delta))));
    group.finish();
}

/// Shard-plan boundary scans: the live planner's dense-time-column
/// `partition_point`s vs the pre-rewrite `Event`-struct scans.
fn bench_hotpath_shard_plan(c: &mut Criterion) {
    let g = dataset("Email", 20_000);
    let (reach, target) = (3_000i64, 500usize);
    let plan =
        tnm_graph::plan_shards(&g, Some(reach), tnm_graph::ShardGoal::EventsPerShard(target));
    let legacy_total: usize =
        legacy::plan_scan(&g, reach, target).iter().map(|(_, r)| r.len()).sum();
    assert_eq!(legacy_total, plan.total_materialized_events(), "plans must agree before racing");
    let mut group = c.benchmark_group("hotpath_shard_plan");
    group.sample_size(10);
    group.bench_function("legacy", |b| {
        b.iter(|| {
            black_box(
                legacy::plan_scan(&g, reach, target).iter().map(|(_, r)| r.len()).sum::<usize>(),
            )
        })
    });
    group.bench_function("soa", |b| {
        b.iter(|| {
            black_box(
                tnm_graph::plan_shards(
                    &g,
                    Some(reach),
                    tnm_graph::ShardGoal::EventsPerShard(target),
                )
                .total_materialized_events(),
            )
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    for name in ["SMS-Copenhagen", "Email", "StackOverflow"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        group.throughput(Throughput::Elements(spec.num_events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| black_box(generate(spec, 42)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_comparison,
    bench_hub_tight_window,
    bench_window_tightness,
    bench_parallel_scaling,
    bench_batch_planner,
    bench_sampling_engine,
    bench_sharded_engine,
    bench_stream_engine,
    bench_sharded_spill,
    bench_distributed_engine,
    bench_serve_incremental,
    bench_index_cache,
    bench_signature_targeting,
    bench_streaming_matcher,
    bench_obs_overhead,
    bench_query_trace_overhead,
    bench_hotpath_window_probe,
    bench_hotpath_pair_dp,
    bench_hotpath_star_dp,
    bench_hotpath_triad_dp,
    bench_hotpath_shard_plan,
    bench_generation
);
criterion_main!(benches);
