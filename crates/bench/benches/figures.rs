//! One bench per paper figure: regenerating Figures 1–6 on a reduced
//! corpus (appendix variants included where they differ).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tnm_analysis::experiments::{self, Corpus};

fn bench_corpus() -> Corpus {
    Corpus::scaled(0.1, experiments::CORPUS_SEED)
}

fn bench_figures(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group
        .bench_function("fig1_validity_matrix", |b| b.iter(|| black_box(experiments::fig1::run())));
    group.bench_function("fig2_notation_catalogs", |b| {
        b.iter(|| black_box(experiments::fig2::run()))
    });
    group.bench_function("fig3_event_pair_ratios_3e", |b| {
        b.iter(|| black_box(experiments::fig3::run(&corpus, false)))
    });
    group.bench_function("fig3_event_pair_ratios_3e_4e", |b| {
        b.iter(|| black_box(experiments::fig3::run(&corpus, true)))
    });
    group.bench_function("fig4_intermediate_events", |b| {
        b.iter(|| black_box(experiments::fig4::run(&corpus, false)))
    });
    group.bench_function("fig4_intermediate_events_appendix", |b| {
        b.iter(|| black_box(experiments::fig4::run(&corpus, true)))
    });
    group.bench_function("fig5_timespan_distributions", |b| {
        b.iter(|| black_box(experiments::fig5::run(&corpus, true)))
    });
    group.bench_function("fig6_pair_sequence_heatmaps", |b| {
        b.iter(|| black_box(experiments::fig6::run(&corpus)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
