//! Faithful copies of the pre-data-oriented hot-path implementations,
//! kept as bench baselines for the `hotpath_*` groups.
//!
//! Each function here reproduces the algorithm exactly as it shipped
//! before the SoA/arena rewrite — per-pair `Vec<(Time, u8)>` merges
//! chasing `graph.event(idx)`, nested-array DP tables, AoS
//! `Incident`-struct star scratch, per-triangle collect-and-sort, and
//! `Event`-struct `partition_point` shard scans — minus the
//! observability tallies (the benches run with metrics disabled, and
//! the live implementations keep their one-branch obs guards, so the
//! comparison slightly favors the legacy side). The new implementations
//! are benched through `tnm_motifs::engine::stream_hotpath` and the
//! public `tnm_graph` API; both sides of every group are asserted
//! bit-identical before timing.
#![allow(clippy::needless_range_loop)]

use tnm_graph::static_proj::global_projection_cache;
use tnm_graph::{Edge, NodeId, TemporalGraph, Time};
use tnm_motifs::count::MotifCounts;
use tnm_motifs::notation::MotifSignature;

/// End of the timestamp group starting at `i` (the pre-arena group
/// primitive: a linear scan per group).
fn group_end_by<T>(evs: &[T], i: usize, time: impl Fn(&T) -> Time) -> usize {
    let t = time(&evs[i]);
    evs[i..].iter().position(|e| time(e) != t).map_or(evs.len(), |p| i + p)
}

fn two_node_signature(dirs: &[u8]) -> MotifSignature {
    let pairs: Vec<(u8, u8)> = dirs.iter().map(|&d| if d == 0 { (0, 1) } else { (1, 0) }).collect();
    MotifSignature::canonicalize(&pairs)
}

fn star_signature(legs: &[u8], dirs: &[u8]) -> MotifSignature {
    const CENTER: u8 = 0;
    let pairs: Vec<(u8, u8)> = legs
        .iter()
        .zip(dirs)
        .map(|(&leaf, &d)| {
            let leaf = leaf + 1;
            if d == 0 {
                (CENTER, leaf)
            } else {
                (leaf, CENTER)
            }
        })
        .collect();
    MotifSignature::canonicalize(&pairs)
}

// ---------------------------------------------------------------- pair

type PairEvent = (Time, u8);

#[derive(Default)]
struct PairAcc {
    three: [[[u64; 2]; 2]; 2],
}

/// Pre-rewrite 3-event 2-node counting: per-pair merged `Vec` resolved
/// through `graph.event(idx).time`, nested-array window DP with
/// per-event group scans.
pub fn pair_triples(graph: &TemporalGraph, delta: Time) -> MotifCounts {
    let mut acc = PairAcc::default();
    let mut merged: Vec<PairEvent> = Vec::new();
    for edge in graph.static_edges() {
        let (lo, hi) = (edge.src.min(edge.dst), edge.src.max(edge.dst));
        if edge.src > edge.dst && graph.has_edge(Edge { src: lo, dst: hi }) {
            continue;
        }
        merge_pair_events(graph, lo, hi, &mut merged);
        pair_window_dp(&merged, delta, &mut acc);
    }
    let mut out = MotifCounts::new();
    for d1 in 0..2 {
        for d2 in 0..2 {
            for d3 in 0..2 {
                let n = acc.three[d1][d2][d3];
                if n > 0 {
                    out.add(two_node_signature(&[d1 as u8, d2 as u8, d3 as u8]), n);
                }
            }
        }
    }
    out
}

fn merge_pair_events(graph: &TemporalGraph, lo: NodeId, hi: NodeId, out: &mut Vec<PairEvent>) {
    out.clear();
    let fwd = graph.edge_events(Edge { src: lo, dst: hi });
    let rev = graph.edge_events(Edge { src: hi, dst: lo });
    let (mut i, mut j) = (0, 0);
    while i < fwd.len() || j < rev.len() {
        let take_fwd = match (fwd.get(i), rev.get(j)) {
            (Some(&a), Some(&b)) => a < b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_fwd {
            out.push((graph.event(fwd[i]).time, 0));
            i += 1;
        } else {
            out.push((graph.event(rev[j]).time, 1));
            j += 1;
        }
    }
}

fn pair_window_dp(evs: &[PairEvent], delta: Time, acc: &mut PairAcc) {
    let mut counts1 = [0u64; 2];
    let mut counts2 = [[0u64; 2]; 2];
    let mut front = 0usize;
    let mut i = 0usize;
    while i < evs.len() {
        let t = evs[i].0;
        let group_end = group_end_by(evs, i, |e| e.0);
        while front < i && evs[front].0 < t - delta {
            let expire_end = group_end_by(evs, front, |e| e.0);
            for &(_, d) in &evs[front..expire_end] {
                counts1[d as usize] -= 1;
            }
            for &(_, d) in &evs[front..expire_end] {
                for d2 in 0..2 {
                    counts2[d as usize][d2] -= counts1[d2];
                }
            }
            front = expire_end;
        }
        for &(_, d) in &evs[i..group_end] {
            for d1 in 0..2 {
                for d2 in 0..2 {
                    acc.three[d1][d2][d as usize] += counts2[d1][d2];
                }
            }
        }
        for &(_, d) in &evs[i..group_end] {
            for d1 in 0..2 {
                counts2[d1][d as usize] += counts1[d1];
            }
        }
        for &(_, d) in &evs[i..group_end] {
            counts1[d as usize] += 1;
        }
        i = group_end;
    }
}

// ---------------------------------------------------------------- star

#[derive(Clone, Copy)]
struct Incident {
    time: Time,
    nbr: u32,
    dir: usize,
}

type Triples = [[[u64; 2]; 2]; 2];

struct CenterScratch {
    evs: Vec<Incident>,
    cnt_nbr: Vec<[u64; 2]>,
    per_nbr_pair: Vec<[[u64; 2]; 2]>,
    pend: Vec<[u64; 2]>,
    pstart: Vec<[u64; 2]>,
}

impl CenterScratch {
    fn new(num_nodes: usize) -> Self {
        CenterScratch {
            evs: Vec::new(),
            cnt_nbr: vec![[0; 2]; num_nodes],
            per_nbr_pair: vec![[[0; 2]; 2]; num_nodes],
            pend: Vec::new(),
            pstart: Vec::new(),
        }
    }

    fn load(&mut self, graph: &TemporalGraph, center: NodeId) {
        self.evs.clear();
        for &idx in graph.node_events(center) {
            let e = graph.event(idx);
            let (nbr, dir) = if e.src == center { (e.dst.0, 0) } else { (e.src.0, 1) };
            self.evs.push(Incident { time: e.time, nbr, dir });
        }
    }

    fn wipe_nbr_tables(&mut self) {
        for e in &self.evs {
            self.cnt_nbr[e.nbr as usize] = [0; 2];
            self.per_nbr_pair[e.nbr as usize] = [[0; 2]; 2];
        }
    }

    fn group_end(&self, i: usize) -> usize {
        group_end_by(&self.evs, i, |e| e.time)
    }
}

/// Pre-rewrite 3-event star counting: AoS `Incident` scratch, nested
/// `[..][2][2]` tables, per-event group scans in all three sweeps.
pub fn star_stars(graph: &TemporalGraph, delta: Time) -> MotifCounts {
    let mut scratch = CenterScratch::new(graph.num_nodes() as usize);
    let mut lone = [Triples::default(); 3];
    for c in 0..graph.num_nodes() {
        scratch.load(graph, NodeId(c));
        if scratch.evs.len() < 3 {
            continue;
        }
        let (e12, e123) = forward_sweep(&mut scratch, delta);
        let e23 = future_sweep(&mut scratch, delta);
        let e13 = straddle_sweep(&scratch);
        for d1 in 0..2 {
            for d2 in 0..2 {
                for d3 in 0..2 {
                    lone[2][d1][d2][d3] += e12[d1][d2][d3] - e123[d1][d2][d3];
                    lone[0][d1][d2][d3] += e23[d1][d2][d3] - e123[d1][d2][d3];
                    lone[1][d1][d2][d3] += e13[d1][d2][d3] - e123[d1][d2][d3];
                }
            }
        }
    }
    let mut out = MotifCounts::new();
    const LEGS: [[u8; 3]; 3] = [[1, 0, 0], [0, 1, 0], [0, 0, 1]];
    for (pos, legs) in LEGS.iter().enumerate() {
        for d1 in 0..2 {
            for d2 in 0..2 {
                for d3 in 0..2 {
                    let n = lone[pos][d1][d2][d3];
                    if n > 0 {
                        out.add(star_signature(legs, &[d1 as u8, d2 as u8, d3 as u8]), n);
                    }
                }
            }
        }
    }
    out
}

fn forward_sweep(scratch: &mut CenterScratch, delta: Time) -> (Triples, Triples) {
    let mut e12 = Triples::default();
    let mut e123 = Triples::default();
    let mut same_pair = [[0u64; 2]; 2];
    scratch.pend.clear();
    scratch.pend.resize(scratch.evs.len(), [0; 2]);
    let mut front = 0usize;
    let mut i = 0usize;
    while i < scratch.evs.len() {
        let t = scratch.evs[i].time;
        let group_end = scratch.group_end(i);
        while front < i && scratch.evs[front].time < t - delta {
            let expire_end = scratch.group_end(front);
            for e in &scratch.evs[front..expire_end] {
                scratch.cnt_nbr[e.nbr as usize][e.dir] -= 1;
            }
            for e in &scratch.evs[front..expire_end] {
                let v = e.nbr as usize;
                for d2 in 0..2 {
                    same_pair[e.dir][d2] -= scratch.cnt_nbr[v][d2];
                    scratch.per_nbr_pair[v][e.dir][d2] -= scratch.cnt_nbr[v][d2];
                }
            }
            front = expire_end;
        }
        for (idx, e) in scratch.evs[i..group_end].iter().enumerate() {
            let v = e.nbr as usize;
            scratch.pend[i + idx] = scratch.cnt_nbr[v];
            for d1 in 0..2 {
                for d2 in 0..2 {
                    e12[d1][d2][e.dir] += same_pair[d1][d2];
                    e123[d1][d2][e.dir] += scratch.per_nbr_pair[v][d1][d2];
                }
            }
        }
        for e in &scratch.evs[i..group_end] {
            let v = e.nbr as usize;
            for d1 in 0..2 {
                same_pair[d1][e.dir] += scratch.cnt_nbr[v][d1];
                scratch.per_nbr_pair[v][d1][e.dir] += scratch.cnt_nbr[v][d1];
            }
        }
        for e in &scratch.evs[i..group_end] {
            scratch.cnt_nbr[e.nbr as usize][e.dir] += 1;
        }
        i = group_end;
    }
    scratch.wipe_nbr_tables();
    (e12, e123)
}

fn future_sweep(scratch: &mut CenterScratch, delta: Time) -> Triples {
    let mut e23 = Triples::default();
    let mut same_pair = [[0u64; 2]; 2];
    scratch.pstart.clear();
    scratch.pstart.resize(scratch.evs.len(), [0; 2]);
    let (mut wstart, mut wend) = (0usize, 0usize);
    let mut i = 0usize;
    while i < scratch.evs.len() {
        let t = scratch.evs[i].time;
        let group_end = scratch.group_end(i);
        while wstart < scratch.evs.len() && scratch.evs[wstart].time <= t {
            let g_end = scratch.group_end(wstart);
            if wstart < wend {
                for e in &scratch.evs[wstart..g_end] {
                    scratch.cnt_nbr[e.nbr as usize][e.dir] -= 1;
                }
                for e in &scratch.evs[wstart..g_end] {
                    for d2 in 0..2 {
                        same_pair[e.dir][d2] -= scratch.cnt_nbr[e.nbr as usize][d2];
                    }
                }
            } else {
                wend = g_end;
            }
            wstart = g_end;
        }
        while wend < scratch.evs.len() && scratch.evs[wend].time <= t + delta {
            let g_end = scratch.group_end(wend);
            for e in &scratch.evs[wend..g_end] {
                for d1 in 0..2 {
                    same_pair[d1][e.dir] += scratch.cnt_nbr[e.nbr as usize][d1];
                }
            }
            for e in &scratch.evs[wend..g_end] {
                scratch.cnt_nbr[e.nbr as usize][e.dir] += 1;
            }
            wend = g_end;
        }
        for (idx, e) in scratch.evs[i..group_end].iter().enumerate() {
            scratch.pstart[i + idx] = scratch.cnt_nbr[e.nbr as usize];
            for d2 in 0..2 {
                for d3 in 0..2 {
                    e23[e.dir][d2][d3] += same_pair[d2][d3];
                }
            }
        }
        i = group_end;
    }
    scratch.wipe_nbr_tables();
    e23
}

fn straddle_sweep(scratch: &CenterScratch) -> Triples {
    let mut e13 = Triples::default();
    let mut f = [[0u64; 2]; 2];
    let mut g = [[0u64; 2]; 2];
    let (mut fx, mut gy) = (0usize, 0usize);
    let mut i = 0usize;
    while i < scratch.evs.len() {
        let t = scratch.evs[i].time;
        let group_end = scratch.group_end(i);
        while fx < scratch.evs.len() && scratch.evs[fx].time < t {
            for d3 in 0..2 {
                f[scratch.evs[fx].dir][d3] += scratch.pstart[fx][d3];
            }
            fx += 1;
        }
        while gy < scratch.evs.len() && scratch.evs[gy].time <= t {
            for d1 in 0..2 {
                g[d1][scratch.evs[gy].dir] += scratch.pend[gy][d1];
            }
            gy += 1;
        }
        for e in &scratch.evs[i..group_end] {
            for d1 in 0..2 {
                for d3 in 0..2 {
                    e13[d1][e.dir][d3] += f[d1][d3] - g[d1][d3];
                }
            }
        }
        i = group_end;
    }
    e13
}

// --------------------------------------------------------------- triad

const LABELS: usize = 6;

/// Pre-rewrite triad counting: per-triangle collect-then-`sort_unstable`
/// merged lists in projection order, nested `[6][6]` counts2 table.
pub fn triad_triads(graph: &TemporalGraph, delta: Time) -> MotifCounts {
    let proj = global_projection_cache().get_or_build(graph);
    let sig_table = label_triple_signatures();
    let combos = closing_combos();
    let mut acc = [0u64; LABELS * LABELS * LABELS];
    let mut merged: Vec<(Time, u8)> = Vec::new();
    proj.for_each_undirected_triangle(|nodes| {
        collect_triangle_events(graph, nodes, &mut merged);
        triangle_window_dp(&merged, delta, &combos, &mut acc);
    });
    let mut out = MotifCounts::new();
    for (slot, &n) in acc.iter().enumerate() {
        if n > 0 {
            let sig = sig_table[slot].expect("only all-three-pairs slots accumulate");
            out.add(sig, n);
        }
    }
    out
}

fn collect_triangle_events(graph: &TemporalGraph, nodes: [NodeId; 3], out: &mut Vec<(Time, u8)>) {
    out.clear();
    let [a, b, c] = nodes;
    for (pair, (lo, hi)) in [(a, b), (a, c), (b, c)].into_iter().enumerate() {
        for (dir, edge) in
            [Edge { src: lo, dst: hi }, Edge { src: hi, dst: lo }].into_iter().enumerate()
        {
            let label = (pair * 2 + dir) as u8;
            out.extend(graph.edge_events(edge).iter().map(|&idx| (graph.event(idx).time, label)));
        }
    }
    out.sort_unstable();
}

fn closing_combos() -> [[(usize, usize); 8]; 3] {
    let mut out = [[(0, 0); 8]; 3];
    for p3 in 0..3 {
        let [pa, pb]: [usize; 2] = match p3 {
            0 => [1, 2],
            1 => [0, 2],
            _ => [0, 1],
        };
        let mut slot = 0;
        for (x, y) in [(pa, pb), (pb, pa)] {
            for dx in 0..2 {
                for dy in 0..2 {
                    out[p3][slot] = (x * 2 + dx, y * 2 + dy);
                    slot += 1;
                }
            }
        }
    }
    out
}

fn triangle_window_dp(
    evs: &[(Time, u8)],
    delta: Time,
    combos: &[[(usize, usize); 8]; 3],
    acc: &mut [u64; LABELS * LABELS * LABELS],
) {
    let group_end = |i: usize| group_end_by(evs, i, |e| e.0);
    let mut counts1 = [0u64; LABELS];
    let mut counts2 = [[0u64; LABELS]; LABELS];
    let mut front = 0usize;
    let mut i = 0usize;
    while i < evs.len() {
        let t = evs[i].0;
        let g_end = group_end(i);
        while front < i && evs[front].0 < t - delta {
            let expire_end = group_end(front);
            for &(_, l) in &evs[front..expire_end] {
                counts1[l as usize] -= 1;
            }
            for &(_, l) in &evs[front..expire_end] {
                for l2 in 0..LABELS {
                    counts2[l as usize][l2] -= counts1[l2];
                }
            }
            front = expire_end;
        }
        for &(_, l3) in &evs[i..g_end] {
            for &(l1, l2) in &combos[(l3 / 2) as usize] {
                acc[(l1 * LABELS + l2) * LABELS + l3 as usize] += counts2[l1][l2];
            }
        }
        for &(_, l) in &evs[i..g_end] {
            for l1 in 0..LABELS {
                counts2[l1][l as usize] += counts1[l1];
            }
        }
        for &(_, l) in &evs[i..g_end] {
            counts1[l as usize] += 1;
        }
        i = g_end;
    }
}

fn label_triple_signatures() -> Vec<Option<MotifSignature>> {
    const ENDPOINTS: [(u8, u8); LABELS] = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
    let mut table = vec![None; LABELS * LABELS * LABELS];
    for l1 in 0..LABELS {
        for l2 in 0..LABELS {
            for l3 in 0..LABELS {
                let pairs = [l1 / 2, l2 / 2, l3 / 2];
                let covers_all = pairs.contains(&0) && pairs.contains(&1) && pairs.contains(&2);
                if covers_all {
                    let seq = [ENDPOINTS[l1], ENDPOINTS[l2], ENDPOINTS[l3]];
                    table[(l1 * LABELS + l2) * LABELS + l3] =
                        Some(MotifSignature::canonicalize(&seq));
                }
            }
        }
    }
    table
}

// --------------------------------------------------------------- shard

/// Pre-rewrite shard-plan boundary scan: pad and halo edges found by
/// `partition_point` over the 24-byte `Event` structs instead of the
/// dense time column. Returns the planned `(owned, materialized)`
/// ranges, mirroring the allocation behavior of the live planner.
pub fn plan_scan(
    graph: &TemporalGraph,
    reach: Time,
    target: usize,
) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    let m = graph.num_events();
    let events = graph.events();
    let mut shards = Vec::with_capacity(m.div_ceil(target.max(1)));
    let mut lo = 0usize;
    while lo < m {
        let hi = (lo + target).min(m);
        let first_owned_time = events[lo].time;
        let pad_start = events.partition_point(|e| e.time < first_owned_time);
        let t_hi = events[hi - 1].time.saturating_add(reach);
        let halo_end = events.partition_point(|e| e.time <= t_hi);
        shards.push((lo..hi, pad_start..halo_end));
        lo = hi;
    }
    shards
}
