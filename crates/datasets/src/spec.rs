//! Dataset specifications: one per network in the paper's Table 2.
//!
//! The real datasets (SNAP, Copenhagen Networks Study) are not
//! redistributable here, so each spec drives the seeded generator in
//! [`crate::generator`] with domain-calibrated behaviour probabilities and
//! keeps the paper's reported statistics alongside for comparison.
//! Event counts are scaled down (laptop-friendly); the *behavioural*
//! parameters — reply/repetition/burst propensities, inter-event gap
//! medians, timestamp-collision rates — target the paper's regimes, which
//! is what the evaluation's qualitative claims depend on.

use serde::{Deserialize, Serialize};

/// Domain family of a network, used to pick behaviour defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// One-to-one text messages (SMS-A, SMS-Copenhagen, CollegeMsg).
    Messages,
    /// Phone calls (Calls-Copenhagen).
    Calls,
    /// Email with carbon copies (Email-EU).
    Email,
    /// Social-network wall posts (FBWall).
    SocialWall,
    /// Q&A forum answers/comments (StackOverflow, SuperUser).
    QaForum,
    /// One-shot trust ratings (Bitcoin-otc).
    Ratings,
}

/// Probabilities of each behavioural continuation, evaluated in order;
/// the remainder is a fresh activity-driven event. Each behaviour
/// corresponds to one event-pair type the paper's Figure 2 defines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorMix {
    /// Reply to a recent incoming event (creates ping-pongs).
    pub reply: f64,
    /// Re-send on a recently used outgoing edge (repetitions).
    pub repeat: f64,
    /// Keep broadcasting from the same source (out-bursts).
    pub continue_burst: f64,
    /// Forward a recently received message (conveys).
    pub forward: f64,
    /// Pile onto a recently contacted target (in-bursts).
    pub group_in: f64,
}

impl BehaviorMix {
    /// Total behavioural probability (must stay ≤ 1; the rest is fresh).
    pub fn total(&self) -> f64 {
        self.reply + self.repeat + self.continue_burst + self.forward + self.group_in
    }
}

/// The paper's reported Table 2 statistics for the *real* dataset, kept
/// for side-by-side reporting in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStats {
    /// Reported node count.
    pub nodes: f64,
    /// Reported event count.
    pub events: f64,
    /// Reported distinct-edge count.
    pub edges: f64,
    /// Reported distinct-timestamp count.
    pub timestamps: f64,
    /// Reported fraction of events with unique timestamps.
    pub unique_fraction: f64,
    /// Reported median inter-event time (seconds).
    pub median_gap: f64,
}

/// Full specification of one synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as the paper spells it.
    pub name: String,
    /// Domain family.
    pub domain: Domain,
    /// Number of nodes to generate.
    pub num_nodes: u32,
    /// Number of events to generate.
    pub num_events: usize,
    /// Target median of global inter-event gaps, in seconds.
    pub median_gap: f64,
    /// Log-normal sigma of the gap distribution (burstiness; 0 = regular).
    pub gap_sigma: f64,
    /// Behavioural continuation probabilities.
    pub behavior: BehaviorMix,
    /// Probability that an event spawns a same-timestamp multi-recipient
    /// burst (email cc; drives the paper's `|Eu|/|E|` column down).
    pub simultaneous_burst: f64,
    /// Max extra recipients of a simultaneous burst.
    pub simultaneous_burst_max: usize,
    /// Probability that an event is immediately followed (after a short,
    /// conversation-scale gap) by a behavioural continuation. This is
    /// what produces the long conversational runs whose tight repetition
    /// pairs dominate real message networks (paper Figures 4 and 6).
    pub continuation: f64,
    /// Each directed edge may occur at most once (Bitcoin-otc: a user
    /// rates another user a single time).
    pub unique_edges: bool,
    /// Zipf exponent of node activity (higher = more skewed).
    pub activity_exponent: f64,
    /// The paper's reported statistics for the real counterpart.
    pub paper: PaperStats,
    /// Base RNG seed; `generate` mixes this with a caller seed.
    pub base_seed: u64,
}

impl DatasetSpec {
    /// All nine paper datasets, in Table 2 order.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            Self::bitcoin_otc(),
            Self::college_msg(),
            Self::calls_copenhagen(),
            Self::sms_copenhagen(),
            Self::email(),
            Self::fb_wall(),
            Self::sms_a(),
            Self::stack_overflow(),
            Self::super_user(),
        ]
    }

    /// Looks a spec up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        let lower = name.to_ascii_lowercase();
        Self::all().into_iter().find(|s| s.name.to_ascii_lowercase() == lower)
    }

    /// `Bitcoin-otc`: trust ratings; each directed pair rates once, so no
    /// repetitions exist at all (the paper leans on this in Table 4).
    pub fn bitcoin_otc() -> DatasetSpec {
        DatasetSpec {
            name: "Bitcoin-otc".into(),
            domain: Domain::Ratings,
            num_nodes: 1600,
            num_events: 10_000,
            median_gap: 707.0,
            gap_sigma: 1.6,
            behavior: BehaviorMix {
                reply: 0.28,
                repeat: 0.0,
                continue_burst: 0.12,
                forward: 0.03,
                group_in: 0.08,
            },
            simultaneous_burst: 0.0,
            simultaneous_burst_max: 0,
            continuation: 0.2,
            unique_edges: true,
            activity_exponent: 0.9,
            paper: PaperStats {
                nodes: 5_880.0,
                events: 35_600.0,
                edges: 35_600.0,
                timestamps: 35_400.0,
                unique_fraction: 0.992,
                median_gap: 707.0,
            },
            base_seed: 0x01,
        }
    }

    /// `CollegeMsg`: online social-network messages.
    pub fn college_msg() -> DatasetSpec {
        DatasetSpec {
            name: "CollegeMsg".into(),
            domain: Domain::Messages,
            num_nodes: 800,
            num_events: 20_000,
            median_gap: 37.0,
            gap_sigma: 1.8,
            behavior: BehaviorMix {
                reply: 0.32,
                repeat: 0.18,
                continue_burst: 0.08,
                forward: 0.09,
                group_in: 0.04,
            },
            simultaneous_burst: 0.01,
            simultaneous_burst_max: 2,
            continuation: 0.62,
            unique_edges: false,
            activity_exponent: 1.1,
            paper: PaperStats {
                nodes: 1_900.0,
                events: 59_800.0,
                edges: 20_300.0,
                timestamps: 58_900.0,
                unique_fraction: 0.972,
                median_gap: 37.0,
            },
            base_seed: 0x02,
        }
    }

    /// `Calls(Copenhagen)`: phone calls among university students.
    pub fn calls_copenhagen() -> DatasetSpec {
        DatasetSpec {
            name: "Calls-Copenhagen".into(),
            domain: Domain::Calls,
            num_nodes: 300,
            num_events: 3_600,
            median_gap: 194.0,
            gap_sigma: 1.7,
            behavior: BehaviorMix {
                reply: 0.30,
                repeat: 0.12,
                continue_burst: 0.14,
                forward: 0.10,
                group_in: 0.03,
            },
            simultaneous_burst: 0.0,
            simultaneous_burst_max: 0,
            continuation: 0.5,
            unique_edges: false,
            activity_exponent: 1.0,
            paper: PaperStats {
                nodes: 536.0,
                events: 3_600.0,
                edges: 924.0,
                timestamps: 3_590.0,
                unique_fraction: 0.997,
                median_gap: 194.0,
            },
            base_seed: 0x03,
        }
    }

    /// `SMS(Copenhagen)`: text messages among university students.
    pub fn sms_copenhagen() -> DatasetSpec {
        DatasetSpec {
            name: "SMS-Copenhagen".into(),
            domain: Domain::Messages,
            num_nodes: 400,
            num_events: 12_000,
            median_gap: 32.0,
            gap_sigma: 1.9,
            behavior: BehaviorMix {
                reply: 0.38,
                repeat: 0.22,
                continue_burst: 0.05,
                forward: 0.09,
                group_in: 0.02,
            },
            simultaneous_burst: 0.01,
            simultaneous_burst_max: 2,
            continuation: 0.65,
            unique_edges: false,
            activity_exponent: 1.0,
            paper: PaperStats {
                nodes: 568.0,
                events: 24_300.0,
                edges: 1_300.0,
                timestamps: 24_000.0,
                unique_fraction: 0.976,
                median_gap: 32.0,
            },
            base_seed: 0x04,
        }
    }

    /// `Email`: emails inside a European research institution; heavy
    /// carbon-copy traffic gives it the lowest unique-timestamp fraction
    /// in Table 2 (50.5 %).
    pub fn email() -> DatasetSpec {
        DatasetSpec {
            name: "Email".into(),
            domain: Domain::Email,
            num_nodes: 700,
            num_events: 24_000,
            median_gap: 15.0,
            gap_sigma: 1.9,
            behavior: BehaviorMix {
                reply: 0.16,
                repeat: 0.16,
                continue_burst: 0.16,
                forward: 0.09,
                group_in: 0.04,
            },
            simultaneous_burst: 0.18,
            simultaneous_burst_max: 4,
            continuation: 0.5,
            unique_edges: false,
            activity_exponent: 1.2,
            paper: PaperStats {
                nodes: 986.0,
                events: 332_000.0,
                edges: 24_900.0,
                timestamps: 208_000.0,
                unique_fraction: 0.505,
                median_gap: 15.0,
            },
            base_seed: 0x05,
        }
    }

    /// `FBWall`: Facebook wall posts (New Orleans region).
    pub fn fb_wall() -> DatasetSpec {
        DatasetSpec {
            name: "FBWall".into(),
            domain: Domain::SocialWall,
            num_nodes: 4_000,
            num_events: 30_000,
            median_gap: 42.0,
            gap_sigma: 1.8,
            behavior: BehaviorMix {
                reply: 0.24,
                repeat: 0.14,
                continue_burst: 0.08,
                forward: 0.09,
                group_in: 0.06,
            },
            simultaneous_burst: 0.01,
            simultaneous_burst_max: 2,
            continuation: 0.45,
            unique_edges: false,
            activity_exponent: 1.2,
            paper: PaperStats {
                nodes: 47_000.0,
                events: 877_000.0,
                edges: 274_000.0,
                timestamps: 868_000.0,
                unique_fraction: 0.980,
                median_gap: 42.0,
            },
            base_seed: 0x06,
        }
    }

    /// `SMS-A`: a large national SMS network; the burstiest dataset
    /// (median gap 3 s) with a sizable timestamp-collision rate.
    pub fn sms_a() -> DatasetSpec {
        DatasetSpec {
            name: "SMS-A".into(),
            domain: Domain::Messages,
            num_nodes: 5_000,
            num_events: 30_000,
            median_gap: 3.0,
            gap_sigma: 1.8,
            behavior: BehaviorMix {
                reply: 0.36,
                repeat: 0.24,
                continue_burst: 0.05,
                forward: 0.08,
                group_in: 0.02,
            },
            simultaneous_burst: 0.08,
            simultaneous_burst_max: 2,
            continuation: 0.68,
            unique_edges: false,
            activity_exponent: 1.1,
            paper: PaperStats {
                nodes: 44_400.0,
                events: 548_000.0,
                edges: 69_000.0,
                timestamps: 470_000.0,
                unique_fraction: 0.731,
                median_gap: 3.0,
            },
            base_seed: 0x07,
        }
    }

    /// `StackOverflow`: answers/comments on questions; in-burst heavy
    /// (many users pile onto one asker). The paper slices the earliest
    /// 10 % of the original; our event budget reflects that slice.
    pub fn stack_overflow() -> DatasetSpec {
        DatasetSpec {
            name: "StackOverflow".into(),
            domain: Domain::QaForum,
            num_nodes: 9_000,
            num_events: 40_000,
            median_gap: 6.0,
            gap_sigma: 1.5,
            behavior: BehaviorMix {
                reply: 0.10,
                repeat: 0.05,
                continue_burst: 0.05,
                forward: 0.08,
                group_in: 0.30,
            },
            simultaneous_burst: 0.04,
            simultaneous_burst_max: 2,
            continuation: 0.4,
            unique_edges: false,
            activity_exponent: 1.3,
            paper: PaperStats {
                nodes: 260_000.0,
                events: 6_350_000.0,
                edges: 4_150_000.0,
                timestamps: 5_970_000.0,
                unique_fraction: 0.882,
                median_gap: 6.0,
            },
            base_seed: 0x08,
        }
    }

    /// `SuperUser`: the smaller stack-exchange site.
    pub fn super_user() -> DatasetSpec {
        DatasetSpec {
            name: "SuperUser".into(),
            domain: Domain::QaForum,
            num_nodes: 7_000,
            num_events: 25_000,
            median_gap: 83.0,
            gap_sigma: 1.5,
            behavior: BehaviorMix {
                reply: 0.11,
                repeat: 0.05,
                continue_burst: 0.05,
                forward: 0.07,
                group_in: 0.28,
            },
            simultaneous_burst: 0.01,
            simultaneous_burst_max: 2,
            continuation: 0.38,
            unique_edges: false,
            activity_exponent: 1.3,
            paper: PaperStats {
                nodes: 194_000.0,
                events: 1_440_000.0,
                edges: 925_000.0,
                timestamps: 1_440_000.0,
                unique_fraction: 0.992,
                median_gap: 83.0,
            },
            base_seed: 0x09,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_datasets_in_table2_order() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0].name, "Bitcoin-otc");
        assert_eq!(all[8].name, "SuperUser");
    }

    #[test]
    fn behavior_mixes_leave_room_for_fresh_events() {
        for spec in DatasetSpec::all() {
            let t = spec.behavior.total();
            assert!(t < 1.0, "{}: behaviour total {t} must be < 1", spec.name);
            assert!(t >= 0.0);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(DatasetSpec::by_name("email").is_some());
        assert!(DatasetSpec::by_name("SMS-A").is_some());
        assert!(DatasetSpec::by_name("sms-copenhagen").is_some());
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn bitcoin_is_unique_edge_with_no_repeats() {
        let b = DatasetSpec::bitcoin_otc();
        assert!(b.unique_edges);
        assert_eq!(b.behavior.repeat, 0.0);
    }

    #[test]
    fn email_has_heaviest_cc_traffic() {
        let all = DatasetSpec::all();
        let email = DatasetSpec::email();
        for spec in &all {
            assert!(
                spec.simultaneous_burst <= email.simultaneous_burst,
                "{} should not out-cc Email",
                spec.name
            );
        }
    }

    #[test]
    fn paper_stats_match_table2_values() {
        let so = DatasetSpec::stack_overflow();
        assert_eq!(so.paper.median_gap, 6.0);
        assert_eq!(so.paper.unique_fraction, 0.882);
        let email = DatasetSpec::email();
        assert_eq!(email.paper.unique_fraction, 0.505);
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            DatasetSpec::all().iter().map(|s| s.base_seed).collect();
        assert_eq!(seeds.len(), 9);
    }
}
