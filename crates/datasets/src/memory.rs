//! Recency memory: the substrate of behavioural event generation.
//!
//! Replies, repetitions, bursts, and forwards all reference a *recent*
//! event. [`RecentMemory`] keeps a ring buffer of the last `K` events and
//! samples from it with geometric recency bias, which is what produces
//! the short inter-event correlations that the ΔC-based experiments
//! (Section 5.2) rely on.

use rand::Rng;
use tnm_graph::Event;

/// Ring buffer over recent events with geometrically biased sampling.
#[derive(Debug, Clone)]
pub struct RecentMemory {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest element (only meaningful once full).
    head: usize,
    /// Geometric parameter: probability of stopping at each step while
    /// walking backwards from the most recent event.
    recency: f64,
}

impl RecentMemory {
    /// Creates a memory of capacity `cap` with recency bias `recency`
    /// (`0 < recency < 1`; higher = more recent picks).
    pub fn new(cap: usize, recency: f64) -> Self {
        assert!(cap > 0, "memory needs capacity");
        assert!(recency > 0.0 && recency < 1.0, "recency must be in (0,1)");
        RecentMemory { buf: Vec::with_capacity(cap), cap, head: 0, recency }
    }

    /// Number of remembered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before any event is recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records an event, evicting the oldest when full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// The event `back` steps behind the most recent one (0 = newest).
    fn nth_back(&self, back: usize) -> Event {
        debug_assert!(back < self.buf.len());
        if self.buf.len() < self.cap {
            self.buf[self.buf.len() - 1 - back]
        } else {
            // Newest element sits just before `head` (circularly).
            let idx = (self.head + self.cap - 1 - back) % self.cap;
            self.buf[idx]
        }
    }

    /// Samples a recent event, most recent most likely; `None` when empty.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<Event> {
        if self.buf.is_empty() {
            return None;
        }
        // Geometric back-offset: 0 = most recent.
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let back = ((1.0 - u).ln() / (1.0 - self.recency).ln()).floor() as usize;
        Some(self.nth_back(back.min(self.buf.len() - 1)))
    }

    /// Samples uniformly over the whole memory — the *delayed* recall used
    /// for habitual repetitions, whose long gap tail is what lets ΔC prune
    /// repetition pairs harder than convey pairs (paper Figure 3).
    pub fn sample_uniform<R: Rng>(&self, rng: &mut R) -> Option<Event> {
        if self.buf.is_empty() {
            return None;
        }
        let back = rng.gen_range(0..self.buf.len());
        Some(self.nth_back(back))
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<Event> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.nth_back(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ev(t: i64) -> Event {
        Event::new(t as u32, t as u32 + 1, t)
    }

    #[test]
    fn push_and_last() {
        let mut m = RecentMemory::new(3, 0.5);
        assert!(m.is_empty());
        m.push(ev(1));
        m.push(ev(2));
        assert_eq!(m.len(), 2);
        assert_eq!(m.last().unwrap().time, 2);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut m = RecentMemory::new(3, 0.5);
        for t in 1..=5 {
            m.push(ev(t));
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.last().unwrap().time, 5);
        // All sampled events must be among the 3 most recent.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = m.sample(&mut rng).unwrap().time;
            assert!((3..=5).contains(&t), "sampled evicted event at t={t}");
        }
    }

    #[test]
    fn long_runs_wrap_correctly() {
        let mut m = RecentMemory::new(7, 0.5);
        for t in 0..1000 {
            m.push(ev(t));
            assert_eq!(m.last().unwrap().time, t);
        }
        assert_eq!(m.len(), 7);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let t = m.sample(&mut rng).unwrap().time;
            assert!((993..=999).contains(&t));
        }
    }

    #[test]
    fn sampling_biased_to_recent() {
        let mut m = RecentMemory::new(100, 0.5);
        for t in 0..100 {
            m.push(ev(t));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut newest = 0u32;
        for _ in 0..10_000 {
            if m.sample(&mut rng).unwrap().time >= 97 {
                newest += 1;
            }
        }
        // P(back <= 2) with p=0.5 is 87.5 %.
        assert!(newest > 8_000, "only {newest}/10000 from the 3 newest");
    }

    #[test]
    fn empty_sample_is_none() {
        let m = RecentMemory::new(4, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(m.sample(&mut rng).is_none());
        assert!(m.last().is_none());
    }

    #[test]
    #[should_panic(expected = "recency must be in (0,1)")]
    fn bad_recency_rejected() {
        RecentMemory::new(4, 1.5);
    }
}
