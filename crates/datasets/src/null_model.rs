//! Randomized reference models (null models) for temporal networks.
//!
//! The paper's *Comparison criteria* section explains why its evaluation
//! uses raw counts instead of significance against a null model: the
//! authors "tried several link-shuffling and time-shuffling models from
//! [Gauvin et al. 2018]; some are too restrictive where the motif counts
//! barely change, and some others are too loose where all the motifs are
//! reported as significant". This module implements the standard members
//! of that family so the claim is reproducible:
//!
//! * [`shuffle_timestamps`] — permute timestamps across events (preserves
//!   the static multigraph and the timestamp multiset; destroys all
//!   temporal correlations). The *loose* end of the family.
//! * [`shuffle_inter_event_gaps`] — permute the gaps of the global event
//!   sequence (preserves event order and burstiness statistics; shifts
//!   which events are close). A *restrictive* shuffle.
//! * [`rewire_links`] — degree-preserving double-edge swaps on the static
//!   projection, keeping each event's timestamp (destroys structural
//!   correlation, preserves activity timelines).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tnm_graph::{Event, TemporalGraph, TemporalGraphBuilder, Time};

/// Permutes timestamps uniformly across events.
///
/// Preserves: node pairs (the static multigraph), the multiset of
/// timestamps. Destroys: inter-event correlations, causal ordering.
pub fn shuffle_timestamps(graph: &TemporalGraph, seed: u64) -> TemporalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut times: Vec<Time> = graph.events().iter().map(|e| e.time).collect();
    fisher_yates(&mut times, &mut rng);
    let events: Vec<Event> =
        graph.events().iter().zip(times).map(|(e, t)| Event { time: t, ..*e }).collect();
    TemporalGraphBuilder::from_events(events).build().expect("shuffle preserves validity")
}

/// Permutes the inter-event gaps of the global timeline, keeping the
/// event sequence (who interacts with whom, in which order) fixed.
///
/// Preserves: event order, the gap multiset (hence burstiness marginals
/// and the median inter-event time). Destroys: which *specific* events
/// sit close together.
pub fn shuffle_inter_event_gaps(graph: &TemporalGraph, seed: u64) -> TemporalGraph {
    let events = graph.events();
    if events.len() < 3 {
        return graph.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gaps: Vec<Time> = events.windows(2).map(|w| w[1].time - w[0].time).collect();
    fisher_yates(&mut gaps, &mut rng);
    let mut t = events[0].time;
    let mut out = Vec::with_capacity(events.len());
    out.push(events[0]);
    for (e, gap) in events[1..].iter().zip(gaps) {
        t += gap;
        out.push(Event { time: t, ..*e });
    }
    TemporalGraphBuilder::from_events(out).build().expect("gap shuffle preserves validity")
}

/// Degree-preserving link rewiring: repeated double-edge swaps on the
/// event list — two events `(a,b,t1)`, `(c,d,t2)` become `(a,d,t1)`,
/// `(c,b,t2)` when that introduces no self-loop.
///
/// Preserves: every node's out-event and in-event timelines (hence
/// activity), all timestamps. Destroys: which pairs interact (community
/// and reciprocity structure).
pub fn rewire_links(graph: &TemporalGraph, seed: u64, swaps_per_event: usize) -> TemporalGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events: Vec<Event> = graph.events().to_vec();
    let m = events.len();
    if m >= 2 {
        for _ in 0..m * swaps_per_event {
            let i = rng.gen_range(0..m);
            let j = rng.gen_range(0..m);
            if i == j {
                continue;
            }
            let (a, b) = (events[i].src, events[i].dst);
            let (c, d) = (events[j].src, events[j].dst);
            // Swap targets; reject if a self-loop would appear.
            if a != d && c != b {
                events[i].dst = d;
                events[j].dst = b;
            }
        }
    }
    TemporalGraphBuilder::from_events(events).build().expect("rewire preserves validity")
}

fn fisher_yates<T>(xs: &mut [T], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use std::collections::HashMap;

    fn graph() -> TemporalGraph {
        let mut spec = DatasetSpec::sms_copenhagen();
        spec.num_events = 2_000;
        crate::generator::generate(&spec, 5)
    }

    fn timestamp_multiset(g: &TemporalGraph) -> HashMap<i64, usize> {
        let mut m = HashMap::new();
        for e in g.events() {
            *m.entry(e.time).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn timestamp_shuffle_preserves_structure_and_times() {
        let g = graph();
        let s = shuffle_timestamps(&g, 1);
        assert_eq!(s.num_events(), g.num_events());
        assert_eq!(s.num_static_edges(), g.num_static_edges());
        assert_eq!(timestamp_multiset(&s), timestamp_multiset(&g));
        // Per-edge event counts unchanged.
        for edge in g.static_edges() {
            assert_eq!(g.edge_events(edge).len(), s.edge_events(edge).len());
        }
    }

    #[test]
    fn gap_shuffle_preserves_order_and_gap_multiset() {
        let g = graph();
        let s = shuffle_inter_event_gaps(&g, 2);
        assert_eq!(s.num_events(), g.num_events());
        // Same sequence of node pairs... up to reordering of equal
        // timestamps; compare multisets of pairs instead.
        let pairs = |g: &TemporalGraph| {
            let mut v: Vec<(u32, u32)> = g.events().iter().map(|e| (e.src.0, e.dst.0)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(pairs(&g), pairs(&s));
        // Gap multiset preserved.
        let gaps = |g: &TemporalGraph| {
            let mut v: Vec<i64> = g.events().windows(2).map(|w| w[1].time - w[0].time).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(gaps(&g), gaps(&s));
    }

    #[test]
    fn rewire_preserves_timelines_no_self_loops() {
        let g = graph();
        let s = rewire_links(&g, 3, 4);
        assert_eq!(s.num_events(), g.num_events());
        assert!(s.events().iter().all(|e| !e.is_self_loop()));
        assert_eq!(timestamp_multiset(&s), timestamp_multiset(&g));
        // Out-degrees (event counts per source) are preserved.
        let out_counts = |g: &TemporalGraph| {
            let mut m = HashMap::new();
            for e in g.events() {
                *m.entry(e.src).or_insert(0usize) += 1;
            }
            m
        };
        assert_eq!(out_counts(&g), out_counts(&s));
    }

    #[test]
    fn shuffles_are_deterministic() {
        let g = graph();
        assert_eq!(shuffle_timestamps(&g, 7).events(), shuffle_timestamps(&g, 7).events());
        assert_ne!(shuffle_timestamps(&g, 7).events(), shuffle_timestamps(&g, 8).events());
    }

    /// The paper's observation: time shuffling is "too loose" — it
    /// destroys the temporal correlations, so correlated motifs crash
    /// relative to the real network.
    #[test]
    fn timestamp_shuffle_destroys_temporal_motifs() {
        use tnm_motifs::prelude::*;
        let g = graph();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(300, 600));
        let real = count_motifs(&g, &cfg).total();
        let null = count_motifs(&shuffle_timestamps(&g, 4), &cfg).total();
        assert!(
            (null as f64) < (real as f64) * 0.5,
            "shuffled count {null} should crash below real {real}"
        );
    }

    /// The paper's other observation: gap shuffling is "too restrictive" —
    /// motif counts barely change because local order survives.
    #[test]
    fn gap_shuffle_changes_counts_much_less() {
        use tnm_motifs::prelude::*;
        let g = graph();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(300, 600));
        let real = count_motifs(&g, &cfg).total() as f64;
        let loose = count_motifs(&shuffle_timestamps(&g, 4), &cfg).total() as f64;
        let strict = count_motifs(&shuffle_inter_event_gaps(&g, 4), &cfg).total() as f64;
        let loose_drop = (real - loose).abs() / real;
        let strict_drop = (real - strict).abs() / real;
        assert!(
            strict_drop < loose_drop,
            "gap shuffle (drop {strict_drop:.3}) must disturb counts less than \
             timestamp shuffle (drop {loose_drop:.3})"
        );
    }
}
