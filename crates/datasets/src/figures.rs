//! Deterministic toy graphs reconstructing the paper's Figure 1 and the
//! Figure 2 notation examples.
//!
//! Figure 1 of the paper shows a small temporal network and four candidate
//! motifs whose validity differs across the four models (ΔC = 5 s,
//! ΔW = 10 s). We reconstruct the same *validity matrix* with a toy
//! network of four disjoint regions, one per row, so each row's failure
//! mode is isolated and testable:
//!
//! | row | fails because | [11] | [12] | [13] | [14] |
//! |---|---|---|---|---|---|
//! | 1 | a consecutive gap exceeds ΔC          | ✗ | ✓ | ✗ | ✓ |
//! | 2 | not static-induced (+ ΔC violation)   | ✗ | ✓ | ✗ | ✗ |
//! | 3 | consecutive events restriction        | ✗ | ✓ | ✓ | ✓ |
//! | 4 | nothing — valid everywhere            | ✓ | ✓ | ✓ | ✓ |

use tnm_graph::{EventIdx, TemporalGraph, TemporalGraphBuilder, Time};

/// ΔC used throughout the Figure 1 reconstruction (seconds).
pub const FIGURE1_DELTA_C: Time = 5;
/// ΔW used throughout the Figure 1 reconstruction (seconds).
pub const FIGURE1_DELTA_W: Time = 10;

/// The Figure 1 reconstruction: a network plus four candidate motifs
/// (each a time-ordered list of event indices).
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The toy temporal network.
    pub graph: TemporalGraph,
    /// The four candidate motifs of the figure's rows.
    pub motifs: Vec<Vec<EventIdx>>,
    /// Expected validity per motif (rows) and model (columns:
    /// Kovanen, Song, Hulovatyy, Paranjape).
    pub expected: [[bool; 4]; 4],
}

/// Builds the Figure 1 reconstruction.
pub fn figure1() -> Figure1 {
    let graph = TemporalGraphBuilder::new()
        // Region 1 (nodes 0–2): gap 8 s violates ΔC; induced; in-window.
        .event(0, 1, 100) // e0
        .event(1, 2, 108) // e1
        .event(0, 2, 110) // e2
        // Region 2 (nodes 3–5): same ΔC violation, plus an extra static
        // edge 5→3 (from an earlier event) the motif does not cover.
        .event(5, 3, 150) // e3
        .event(3, 4, 200) // e4
        .event(4, 5, 206) // e5
        .event(3, 5, 210) // e6
        // Region 3 (nodes 6–9): timing fine, but node 7 has an outside
        // event (e8) during its motif engagement.
        .event(6, 7, 300) // e7
        .event(7, 9, 302) // e8 (the "dashed" distraction)
        .event(7, 8, 304) // e9
        .event(6, 8, 308) // e10
        // Region 4 (nodes 10–12): valid everywhere.
        .event(10, 11, 400) // e11
        .event(11, 12, 404) // e12
        .event(10, 12, 408) // e13
        .build()
        .expect("figure 1 network is valid");
    let motifs = vec![vec![0, 1, 2], vec![4, 5, 6], vec![7, 9, 10], vec![11, 12, 13]];
    let expected = [
        [false, true, false, true],
        [false, true, false, false],
        [false, true, true, true],
        [true, true, true, true],
    ];
    Figure1 { graph, motifs, expected }
}

/// The Figure 2 left-panel examples: the triangle `011202` and the
/// four-event, four-node motif `01023132`, as concrete event sequences.
pub fn figure2_examples() -> TemporalGraph {
    TemporalGraphBuilder::new()
        // 011202: 0->1, 1->2, 0->2.
        .event(0, 1, 10)
        .event(1, 2, 20)
        .event(0, 2, 30)
        // 01023132 on fresh nodes (4..8): 4->5, 4->6, 7->5, 7->6.
        .event(4, 5, 100)
        .event(4, 6, 110)
        .event(7, 5, 120)
        .event(7, 6, 130)
        .build()
        .expect("figure 2 examples are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let f = figure1();
        assert_eq!(f.graph.num_events(), 14);
        assert_eq!(f.motifs.len(), 4);
        for m in &f.motifs {
            assert_eq!(m.len(), 3);
        }
    }

    #[test]
    fn figure1_motifs_are_time_ordered() {
        let f = figure1();
        for m in &f.motifs {
            let times: Vec<_> = m.iter().map(|&i| f.graph.event(i).time).collect();
            assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
        }
    }

    #[test]
    fn figure2_contains_both_examples() {
        let g = figure2_examples();
        assert_eq!(g.num_events(), 7);
    }
}
