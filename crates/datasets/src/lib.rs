//! # tnm-datasets — synthetic temporal networks for the evaluation
//!
//! The paper evaluates on nine real datasets (SNAP and the Copenhagen
//! Networks Study). Those traces are not redistributable here, so this
//! crate substitutes *seeded, domain-calibrated generators*: an
//! activity-driven process whose behavioural continuations (reply,
//! repetition, out-burst, forward, pile-on, carbon-copy bursts) map
//! one-to-one onto the event-pair types the paper analyzes. Each
//! [`spec::DatasetSpec`] carries the paper's reported Table 2 statistics
//! for its real counterpart so experiments can report both side by side.
//!
//! The crate also ships deterministic toy graphs reconstructing the
//! paper's Figure 1 validity matrix and Figure 2 notation examples
//! ([`figures`]).
//!
//! ```
//! use tnm_datasets::{generate, DatasetSpec};
//!
//! let spec = DatasetSpec::calls_copenhagen();
//! let g = generate(&spec, 42);
//! assert_eq!(g.num_events(), spec.num_events);
//! // Deterministic: same spec + seed => same network.
//! assert_eq!(g.events(), generate(&spec, 42).events());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod activity;
pub mod figures;
pub mod generator;
pub mod memory;
pub mod null_model;
pub mod spec;

pub use generator::{generate, generate_default};
pub use spec::{BehaviorMix, DatasetSpec, Domain, PaperStats};
