//! The seeded temporal-network generator.
//!
//! An activity-driven process with behavioural continuations: every tick
//! draws a heavy-tailed inter-event gap (log-normal, calibrated to the
//! spec's median), then either continues recent activity — reply,
//! repetition, out-burst, forward, pile-on — or emits a fresh event from
//! the activity/preferential-attachment baseline. Email-like specs also
//! spawn same-timestamp carbon-copy bursts, which reproduce the paper's
//! timestamp-collision statistics (`|Eu|/|E|` in Table 2).
//!
//! The generator is fully deterministic given `(spec, seed)`.

use crate::activity::ZipfSampler;
use crate::memory::RecentMemory;
use crate::spec::DatasetSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use tnm_graph::{Event, TemporalGraph, TemporalGraphBuilder, Time};

/// Capacity of the recent-event memory behind behavioural continuations.
const MEMORY_CAP: usize = 160;
/// Geometric recency bias of memory sampling.
const MEMORY_RECENCY: f64 = 0.35;
/// Probability that a *background* repetition is habitual (re-contacting
/// a partner after tens of minutes) rather than memory-recent. Rapid
/// conversational repetitions come from continuation runs, so background
/// repeats are mostly habitual; their long gap tail is what lets ΔC prune
/// repetition pairs harder than convey pairs (paper Figure 3).
const REPEAT_DELAYED_PROB: f64 = 0.85;
/// Habitual re-contact delay range in seconds (~15 min to 1 h).
const HABITUAL_GAP_MIN: Time = 900;
/// Upper end of the habitual re-contact delay range.
const HABITUAL_GAP_MAX: Time = 3600;
/// Probability that a conversational repetition is a *stalled nudge*
/// (double-texting after no reply, at a human timescale of tens of
/// minutes) rather than a rapid double-text. Ping-pongs and bursts stay
/// fast; this is why ΔC prunes repetition pairs harder than the other
/// types (paper Figure 3) while rapid double-texts still pin the second
/// event of `010102` near the first (paper Figure 4).
const NUDGE_PROB: f64 = 0.66;
/// Median of the nudge delay distribution (seconds; log-normal).
const NUDGE_MEDIAN: f64 = 2000.0;
/// Log-normal sigma of the nudge delay distribution.
const NUDGE_SIGMA: f64 = 0.8;
/// Probability that a finished conversation is followed by a *session
/// switch*: the same person starts a new interaction with someone else
/// after a nudge-scale delay. Session switches are what place a later
/// out-burst event far from a tight repetition pair — the source of the
/// near-zero peak in the paper's Figure 4 that ΔC then regularizes away.
const SESSION_SWITCH_PROB: f64 = 0.22;
/// Retry budget for constraint-respecting node resampling.
const MAX_TRIES: usize = 32;

/// Generates a temporal network from a dataset spec. The `seed` is mixed
/// with the spec's `base_seed`, so different specs disagree even for the
/// same caller seed.
pub fn generate(spec: &DatasetSpec, seed: u64) -> TemporalGraph {
    let mut gen = Generator::new(spec, seed);
    gen.run()
}

/// Convenience: generates with the default experiment seed used across
/// the repo's tables and figures.
pub fn generate_default(spec: &DatasetSpec) -> TemporalGraph {
    generate(spec, 0x0DA7_A5E7)
}

/// Which gap distribution the next continuation event uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GapKind {
    /// Conversation-turn pace.
    Short,
    /// Seconds-scale double-text.
    Rapid,
    /// Tens-of-minutes stalled nudge (dead end).
    Nudge,
}

struct Generator<'s> {
    spec: &'s DatasetSpec,
    rng: StdRng,
    activity: ZipfSampler,
    memory: RecentMemory,
    events: Vec<Event>,
    used_edges: HashSet<(u32, u32)>,
    clock: Time,
    /// When set, the next event continues this one after a short gap
    /// (a conversation run in progress) or switches session.
    pending: Option<(Event, Pending)>,
}

/// What the pending event is expected to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// Continue the conversation (behaviour-mix continuation).
    Conversation,
    /// Same source starts a new interaction elsewhere after a delay.
    SessionSwitch,
}

impl<'s> Generator<'s> {
    fn new(spec: &'s DatasetSpec, seed: u64) -> Self {
        assert!(spec.num_nodes >= 4, "need at least 4 nodes");
        assert!(spec.num_events > 0, "need at least one event");
        assert!(spec.behavior.total() < 1.0, "behaviour probabilities must leave fresh mass");
        let mixed = seed ^ spec.base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Generator {
            spec,
            rng: StdRng::seed_from_u64(mixed),
            activity: ZipfSampler::new(spec.num_nodes, spec.activity_exponent),
            memory: RecentMemory::new(MEMORY_CAP, MEMORY_RECENCY),
            events: Vec::with_capacity(spec.num_events),
            used_edges: HashSet::new(),
            clock: 0,
            pending: None,
        }
    }

    fn run(&mut self) -> TemporalGraph {
        while self.events.len() < self.spec.num_events {
            let mut dead_end = false;
            let pair = match self.pending.take() {
                Some((prev, Pending::Conversation)) => {
                    let (pair, kind) = self.continuation_pair(prev);
                    match kind {
                        GapKind::Nudge => {
                            // A stalled nudge is a dead end: the partner
                            // never replied, so no conversation follows.
                            self.advance_clock_nudge();
                            dead_end = true;
                        }
                        GapKind::Rapid => self.advance_clock_rapid(),
                        GapKind::Short => self.advance_clock_short(),
                    }
                    pair
                }
                Some((prev, Pending::SessionSwitch)) => {
                    self.advance_clock_nudge();
                    let u = prev.src.0;
                    self.other_node(u, prev.dst.0)
                        .map(|w| (u, w))
                        .unwrap_or_else(|| self.fresh_pair())
                }
                None => {
                    self.advance_clock();
                    self.next_pair()
                }
            };
            let (src, dst) = self.enforce_unique(pair);
            self.emit(src, dst);
            // Conversation runs: geometric continuation after every event;
            // finished conversations may spawn a delayed session switch.
            let last = self.events.last().copied().expect("just emitted");
            if !dead_end && self.rng.gen_bool(self.spec.continuation.clamp(0.0, 0.99)) {
                self.pending = Some((last, Pending::Conversation));
            } else if self.rng.gen_bool(SESSION_SWITCH_PROB) {
                self.pending = Some((last, Pending::SessionSwitch));
            }
            self.maybe_cc_burst(src, dst);
        }
        self.events.truncate(self.spec.num_events);
        TemporalGraphBuilder::from_events(std::mem::take(&mut self.events))
            .build()
            .expect("generator emits valid events")
    }

    /// Log-normal gap with the spec's median; rounding to whole seconds
    /// naturally produces timestamp ties for sub-second medians.
    fn advance_clock(&mut self) {
        let z = standard_normal(&mut self.rng);
        let gap = (self.spec.median_gap.max(0.5)).ln() + self.spec.gap_sigma * z;
        let gap = gap.exp().round().max(0.0) as Time;
        self.clock += gap;
    }

    /// Conversation-scale gap: shorter median, lighter tail than the
    /// background process.
    fn advance_clock_short(&mut self) {
        let z = standard_normal(&mut self.rng);
        let median = (self.spec.median_gap * 0.6).max(0.5);
        let gap = median.ln() + 1.0 * z;
        let gap = gap.exp().round().max(0.0) as Time;
        self.clock += gap;
    }

    /// Rapid double-text gap: seconds-scale ("sent too soon" follow-ups),
    /// much faster than a conversation turn.
    fn advance_clock_rapid(&mut self) {
        let z = standard_normal(&mut self.rng);
        let median = (self.spec.median_gap * 0.15).max(0.5);
        let gap = (median.ln() + 0.8 * z).exp().round().max(0.0) as Time;
        self.clock += gap;
    }

    /// Stalled-nudge gap: human-timescale delay before double-texting.
    fn advance_clock_nudge(&mut self) {
        let z = standard_normal(&mut self.rng);
        let gap = (NUDGE_MEDIAN.ln() + NUDGE_SIGMA * z).exp().round().max(1.0) as Time;
        self.clock += gap;
    }

    /// A continuation of `prev`: the behaviour mix renormalized over the
    /// five continuation types (falling back to a repetition when a third
    /// node cannot be found). Repetitions are bimodal: rapid double-texts
    /// (seconds) or stalled nudges (tens of minutes); everything else
    /// moves at conversation pace.
    fn continuation_pair(&mut self, prev: Event) -> ((u32, u32), GapKind) {
        let b = self.spec.behavior;
        let (u, v) = (prev.src.0, prev.dst.0);
        let total = b.total();
        if total <= 0.0 {
            return ((u, v), GapKind::Rapid);
        }
        let roll: f64 = self.rng.gen_range(0.0..total);
        let mut acc = b.reply;
        if roll < acc {
            return ((v, u), GapKind::Short); // ping-pong
        }
        acc += b.repeat;
        if roll < acc {
            let kind = if self.rng.gen_bool(NUDGE_PROB) { GapKind::Nudge } else { GapKind::Rapid };
            return ((u, v), kind);
        }
        acc += b.continue_burst;
        if roll < acc {
            return (self.other_node(u, v).map(|w| (u, w)).unwrap_or((u, v)), GapKind::Short);
        }
        acc += b.forward;
        if roll < acc {
            // Conveys are prompt relays ("FYI" forwards): information
            // moves on quickly, which is why ΔC affects them least
            // (paper Table 5).
            return (self.other_node(v, u).map(|w| (v, w)).unwrap_or((u, v)), GapKind::Rapid);
        }
        (self.other_node(v, u).map(|w| (w, v)).unwrap_or((u, v)), GapKind::Short)
    }

    /// Chooses the next event's endpoints by behaviour roll.
    fn next_pair(&mut self) -> (u32, u32) {
        let b = self.spec.behavior;
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        let thresholds = [b.reply, b.repeat, b.continue_burst, b.forward, b.group_in];
        let mut behavior = None;
        let mut acc = 0.0;
        for (i, p) in thresholds.iter().enumerate() {
            acc += p;
            if roll < acc {
                behavior = Some(i);
                break;
            }
        }
        let pair = behavior.and_then(|i| {
            // Repetitions mix rapid conversational recall with delayed
            // habitual recall; everything else is tightly recent.
            let recalled = if i == 1 && self.rng.gen_bool(REPEAT_DELAYED_PROB) {
                self.habitual_recall().or_else(|| self.memory.sample(&mut self.rng))
            } else {
                self.memory.sample(&mut self.rng)
            }?;
            let (u, v) = (recalled.src.0, recalled.dst.0);
            match i {
                0 => Some((v, u)),                          // ping-pong
                1 => Some((u, v)),                          // repetition
                2 => self.other_node(u, v).map(|w| (u, w)), // out-burst
                3 => self.other_node(v, u).map(|w| (v, w)), // convey
                _ => self.other_node(v, u).map(|w| (w, v)), // in-burst
            }
        });
        pair.unwrap_or_else(|| self.fresh_pair())
    }

    /// For unique-edge datasets, resamples until the pair is unused.
    fn enforce_unique(&mut self, mut pair: (u32, u32)) -> (u32, u32) {
        if !self.spec.unique_edges {
            return pair;
        }
        let mut tries = 0;
        while self.used_edges.contains(&pair) && tries < MAX_TRIES {
            pair = self.fresh_pair();
            tries += 1;
        }
        if self.used_edges.contains(&pair) {
            // Extremely dense corner: scan for any unused pair.
            pair = self.any_unused_pair().unwrap_or(pair);
        }
        pair
    }

    /// Habitual re-contact: re-emit the edge active `g` seconds ago, with
    /// `g` uniform in `[HABITUAL_GAP_MIN, HABITUAL_GAP_MAX]`. Returns
    /// `None` when history does not reach back that far.
    fn habitual_recall(&mut self) -> Option<Event> {
        let g = self.rng.gen_range(HABITUAL_GAP_MIN..=HABITUAL_GAP_MAX);
        let target = self.clock - g;
        if self.events.first().is_none_or(|e| e.time > target) {
            return None;
        }
        // Events are emitted in time order: binary search the nearest one.
        let idx = self.events.partition_point(|e| e.time < target);
        self.events.get(idx.min(self.events.len() - 1)).copied()
    }

    /// Fresh event: activity-driven source, preferential target (random
    /// endpoint of a random past event — the classic O(1) Barabási trick),
    /// uniform fallback.
    fn fresh_pair(&mut self) -> (u32, u32) {
        let src = self.activity.sample(&mut self.rng);
        for _ in 0..MAX_TRIES {
            let dst = if !self.events.is_empty() && self.rng.gen_bool(0.5) {
                let e = &self.events[self.rng.gen_range(0..self.events.len())];
                if self.rng.gen_bool(0.5) {
                    e.src.0
                } else {
                    e.dst.0
                }
            } else {
                self.rng.gen_range(0..self.spec.num_nodes)
            };
            if dst != src {
                return (src, dst);
            }
        }
        ((src + 1) % self.spec.num_nodes, src)
    }

    /// A node different from both `a` and `b` (uniform), or `None` when
    /// the graph is too small.
    fn other_node(&mut self, a: u32, b: u32) -> Option<u32> {
        if self.spec.num_nodes < 3 {
            return None;
        }
        for _ in 0..MAX_TRIES {
            let w = self.rng.gen_range(0..self.spec.num_nodes);
            if w != a && w != b {
                return Some(w);
            }
        }
        None
    }

    fn any_unused_pair(&mut self) -> Option<(u32, u32)> {
        let n = self.spec.num_nodes;
        let start = self.rng.gen_range(0..n);
        for i in 0..n {
            let u = (start + i) % n;
            for v in 0..n {
                if u != v && !self.used_edges.contains(&(u, v)) {
                    return Some((u, v));
                }
            }
        }
        None
    }

    fn emit(&mut self, src: u32, dst: u32) {
        debug_assert_ne!(src, dst);
        let e = Event::new(src, dst, self.clock);
        if self.spec.unique_edges {
            self.used_edges.insert((src, dst));
        }
        self.memory.push(e);
        self.events.push(e);
    }

    /// Same-timestamp multi-recipient burst (email cc).
    fn maybe_cc_burst(&mut self, src: u32, first_dst: u32) {
        if self.spec.simultaneous_burst <= 0.0 || self.events.len() >= self.spec.num_events {
            return;
        }
        if !self.rng.gen_bool(self.spec.simultaneous_burst.min(1.0)) {
            return;
        }
        let extra = self.rng.gen_range(1..=self.spec.simultaneous_burst_max.max(1));
        let mut sent = vec![first_dst];
        for _ in 0..extra {
            if self.events.len() >= self.spec.num_events {
                break;
            }
            let mut dst = None;
            for _ in 0..MAX_TRIES {
                let w = self.rng.gen_range(0..self.spec.num_nodes);
                if w != src && !sent.contains(&w) {
                    dst = Some(w);
                    break;
                }
            }
            if let Some(w) = dst {
                if self.spec.unique_edges && self.used_edges.contains(&(src, w)) {
                    continue;
                }
                sent.push(w);
                self.emit(src, w);
            }
        }
    }
}

/// Standard normal via Box–Muller (keeps us off rand_distr).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use tnm_graph::stats::GraphStats;

    #[test]
    fn deterministic_given_seed() {
        let spec = DatasetSpec::calls_copenhagen();
        let a = generate(&spec, 7);
        let b = generate(&spec, 7);
        assert_eq!(a.events(), b.events());
        let c = generate(&spec, 8);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn respects_event_budget_and_node_range() {
        for spec in [DatasetSpec::calls_copenhagen(), DatasetSpec::sms_copenhagen()] {
            let g = generate(&spec, 1);
            assert_eq!(g.num_events(), spec.num_events);
            assert!(g.num_nodes() <= spec.num_nodes);
        }
    }

    #[test]
    fn bitcoin_has_no_repeated_edges() {
        let spec = DatasetSpec::bitcoin_otc();
        let g = generate(&spec, 3);
        assert_eq!(g.num_static_edges(), g.num_events(), "every edge must be unique");
    }

    #[test]
    fn median_gap_roughly_calibrated() {
        let spec = DatasetSpec::calls_copenhagen();
        let g = generate(&spec, 2);
        let s = GraphStats::compute(&g);
        let target = spec.median_gap;
        assert!(
            s.median_inter_event_time > target * 0.4 && s.median_inter_event_time < target * 2.5,
            "median gap {} far from target {target}",
            s.median_inter_event_time
        );
    }

    #[test]
    fn email_has_many_timestamp_collisions() {
        let email = generate(&DatasetSpec::email(), 4);
        let calls = generate(&DatasetSpec::calls_copenhagen(), 4);
        let se = GraphStats::compute(&email);
        let sc = GraphStats::compute(&calls);
        assert!(
            se.unique_timestamp_fraction < sc.unique_timestamp_fraction,
            "email {} should collide more than calls {}",
            se.unique_timestamp_fraction,
            sc.unique_timestamp_fraction
        );
        assert!(se.unique_timestamp_fraction < 0.85);
    }

    #[test]
    fn message_networks_are_reciprocal() {
        use tnm_graph::StaticProjection;
        let sms = generate(&DatasetSpec::sms_copenhagen(), 5);
        let so = generate(&DatasetSpec::stack_overflow(), 5);
        let r_sms = StaticProjection::from_graph(&sms).reciprocity();
        let r_so = StaticProjection::from_graph(&so).reciprocity();
        assert!(r_sms > r_so, "SMS reciprocity {r_sms} should beat StackOverflow {r_so}");
    }

    #[test]
    fn timestamps_are_nondecreasing_and_start_nonnegative() {
        let g = generate(&DatasetSpec::college_msg(), 6);
        assert!(g.first_time().unwrap() >= 0);
        assert!(g.events().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
