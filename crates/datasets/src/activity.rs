//! Node activity sampling: who initiates events.
//!
//! Real communication networks have heavy-tailed activity: a few nodes
//! send most messages. We use a Zipf-like sampler (weight `rank^-α`) with
//! a cumulative table + binary search, which is deterministic, O(log n)
//! per draw, and needs no extra crates.

use rand::Rng;

/// Weighted node sampler with Zipf weights `((i+1))^-alpha`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` nodes with exponent `alpha >= 0`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: u32, alpha: f64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be finite and non-negative");
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += (f64::from(i) + 1.0).powf(-alpha);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Number of nodes.
    pub fn len(&self) -> u32 {
        self.cumulative.len() as u32
    }

    /// True if the sampler covers no nodes (cannot occur post-new).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one node id in `0..n`, lower ids more likely.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let s = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?} not uniform");
        }
    }

    #[test]
    fn skewed_when_alpha_positive() {
        let s = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut first_decile = 0u32;
        const DRAWS: u32 = 20_000;
        for _ in 0..DRAWS {
            if s.sample(&mut rng) < 10 {
                first_decile += 1;
            }
        }
        // With α=1.2, the top 10 of 100 nodes carry well over half the mass.
        assert!(first_decile > DRAWS / 2, "only {first_decile}/{DRAWS} in top decile");
    }

    #[test]
    fn all_ids_in_range() {
        let s = ZipfSampler::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) < 7);
        }
        assert_eq!(s.len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ZipfSampler::new(0, 1.0);
    }
}
