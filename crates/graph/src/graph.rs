//! The time-ordered temporal graph store with node and edge time indexes.
//!
//! [`TemporalGraph`] keeps the event list sorted by `(time, src, dst)` and
//! maintains two auxiliary indexes that the motif models need:
//!
//! * a **node index** (CSR layout): for every node, the time-ordered list of
//!   events it participates in. Kovanen et al.'s *consecutive events
//!   restriction* is a per-node range count on this index.
//! * an **edge index**: for every directed static edge, the time-ordered
//!   list of events on it. Hulovatyy et al.'s *constrained dynamic
//!   graphlet* restriction is a per-edge range count on this index.
//!
//! Both indexes store event indices rather than copies of the events, so a
//! graph with `m` events costs `O(m)` extra words.

use crate::columns::EventColumns;
use crate::error::{GraphError, Result};
use crate::event::Event;
use crate::ids::{Edge, EventIdx, NodeId, Time};
use std::collections::HashMap;
use std::sync::OnceLock;

/// An immutable temporal network: a time-ordered multiset of directed
/// events plus node/edge time indexes.
///
/// Construct one with [`crate::TemporalGraphBuilder`] or
/// [`TemporalGraph::from_events`].
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    events: Vec<Event>,
    num_nodes: u32,
    node_offsets: Vec<u32>,
    node_events: Vec<EventIdx>,
    edge_spans: HashMap<Edge, (u32, u32)>,
    edge_events: Vec<EventIdx>,
    /// Lazy SoA view of `events`; built at most once per graph (clones
    /// carry the already-built columns along).
    columns: OnceLock<EventColumns>,
}

impl TemporalGraph {
    /// Builds a graph from an unsorted batch of events.
    ///
    /// Events are sorted by `(time, src, dst)`; self-loops are rejected.
    pub fn from_events(events: Vec<Event>) -> Result<Self> {
        crate::builder::TemporalGraphBuilder::from_events(events).build()
    }

    /// Builds a graph from an **already time-sorted** event list with an
    /// explicit node-id space, skipping the builder's sort and
    /// compaction. This is the loader used for shard slices and for
    /// shard files arriving over the wire in worker processes: node ids
    /// stay in the parent graph's space (ids at or above the maximum
    /// present are simply isolated), and event indices match the input
    /// order exactly.
    ///
    /// # Panics
    ///
    /// Panics if the events are not sorted by
    /// `(time, src, dst, duration)`. The check is a single `O(m)` pass —
    /// cheap next to the index builds that follow — and it runs in
    /// release builds too: an unsorted buffer would otherwise corrupt
    /// every binary search silently.
    pub fn from_sorted_events(events: Vec<Event>, num_nodes: u32) -> Self {
        assert!(events.windows(2).all(|w| w[0] <= w[1]), "events must be sorted");
        let (node_offsets, node_events) = build_node_index(&events, num_nodes);
        let (edge_spans, edge_events) = build_edge_index(&events);
        TemporalGraph {
            events,
            num_nodes,
            node_offsets,
            node_events,
            edge_spans,
            edge_events,
            columns: OnceLock::new(),
        }
    }

    /// The structure-of-arrays view of the event log, built lazily on
    /// first use and shared for the graph's lifetime. Row `i` of every
    /// column mirrors [`TemporalGraph::event`]`(i)`, so the node/edge
    /// index slices can be resolved against dense `i64`/`u32` arrays
    /// instead of 24-byte `Event` structs.
    #[inline]
    pub fn columns(&self) -> &EventColumns {
        self.columns.get_or_init(|| EventColumns::build(&self.events))
    }

    /// The dense, ascending start-time column (`times()[i] ==
    /// event(i).time`). This is the array every window binary search
    /// and group scan should probe.
    #[inline]
    pub fn times(&self) -> &[Time] {
        self.columns().times()
    }

    /// The full time-ordered event list.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event at index `idx`.
    #[inline]
    pub fn event(&self, idx: EventIdx) -> &Event {
        &self.events[idx as usize]
    }

    /// Number of events (`|E|` in the paper's Table 2).
    #[inline]
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// True if the graph holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of nodes (`|V|`). Nodes are `0..num_nodes`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of distinct directed static edges ("Edges" in Table 2).
    #[inline]
    pub fn num_static_edges(&self) -> usize {
        self.edge_spans.len()
    }

    /// Time of the earliest event; `None` if empty.
    #[inline]
    pub fn first_time(&self) -> Option<Time> {
        self.events.first().map(|e| e.time)
    }

    /// Time of the latest event; `None` if empty.
    #[inline]
    pub fn last_time(&self) -> Option<Time> {
        self.events.last().map(|e| e.time)
    }

    /// `last_time - first_time`, or 0 for graphs with under two events.
    #[inline]
    pub fn timespan(&self) -> Time {
        match (self.first_time(), self.last_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// Time-ordered event indices adjacent to `node`.
    #[inline]
    pub fn node_events(&self, node: NodeId) -> &[EventIdx] {
        let lo = self.node_offsets[node.index()] as usize;
        let hi = self.node_offsets[node.index() + 1] as usize;
        &self.node_events[lo..hi]
    }

    /// Number of events adjacent to `node`.
    #[inline]
    pub fn node_degree(&self, node: NodeId) -> usize {
        self.node_events(node).len()
    }

    /// Time-ordered event indices on the directed edge `edge`
    /// (empty slice if the edge never occurs).
    #[inline]
    pub fn edge_events(&self, edge: Edge) -> &[EventIdx] {
        match self.edge_spans.get(&edge) {
            Some(&(start, len)) => &self.edge_events[start as usize..(start + len) as usize],
            None => &[],
        }
    }

    /// True if the directed edge occurs at least once (static projection
    /// membership). Used by the static-inducedness checks of Hulovatyy and
    /// Paranjape models.
    #[inline]
    pub fn has_edge(&self, edge: Edge) -> bool {
        self.edge_spans.contains_key(&edge)
    }

    /// Iterates over the distinct directed static edges.
    pub fn static_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edge_spans.keys().copied()
    }

    /// Counts events adjacent to `node` with time in the **inclusive**
    /// window `[t0, t1]`.
    ///
    /// This is the primitive behind Kovanen et al.'s consecutive events
    /// restriction: a motif node `x` engaged in `k` motif events spanning
    /// `[first_x, last_x]` is valid iff
    /// `count_node_events_between(x, first_x, last_x) == k`.
    pub fn count_node_events_between(&self, node: NodeId, t0: Time, t1: Time) -> usize {
        count_in_window(self.times(), self.node_events(node), t0, t1)
    }

    /// Counts events on `edge` with time in the inclusive window `[t0, t1]`.
    ///
    /// Primitive behind Hulovatyy et al.'s constrained dynamic graphlets.
    pub fn count_edge_events_between(&self, edge: Edge, t0: Time, t1: Time) -> usize {
        count_in_window(self.times(), self.edge_events(edge), t0, t1)
    }

    /// The contiguous slice of events with `t0 <= time <= t1` together with
    /// the index of its first element.
    pub fn events_in_window(&self, t0: Time, t1: Time) -> (EventIdx, &[Event]) {
        let range = self.columns().window_range(t0, t1);
        (range.start as EventIdx, &self.events[range])
    }

    /// Index of the first event with `time >= t`.
    pub fn first_event_at_or_after(&self, t: Time) -> EventIdx {
        self.columns().first_at_or_after(t) as EventIdx
    }

    /// Returns all directed static edges both of whose endpoints lie in
    /// `nodes`. `nodes` is expected to be tiny (motif node sets, ≤ 4).
    pub fn static_edges_within(&self, nodes: &[NodeId]) -> Vec<Edge> {
        let mut out = Vec::new();
        for &a in nodes {
            for &b in nodes {
                if a != b && self.has_edge(Edge { src: a, dst: b }) {
                    out.push(Edge { src: a, dst: b });
                }
            }
        }
        out
    }

    /// Validates internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<()> {
        if self.events.is_empty() {
            return Err(GraphError::Empty);
        }
        for e in &self.events {
            if e.src.0 >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: e.src.0,
                    num_nodes: self.num_nodes,
                });
            }
            if e.dst.0 >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: e.dst.0,
                    num_nodes: self.num_nodes,
                });
            }
            if e.is_self_loop() {
                return Err(GraphError::SelfLoop { node: e.src.0, time: e.time });
            }
        }
        assert!(self.events.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(self.node_events.len(), self.events.len() * 2);
        assert_eq!(self.edge_events.len(), self.events.len());
        Ok(())
    }
}

/// Counts how many event indices in the time-sorted `index` slice fall in
/// the inclusive window `[t0, t1]`, by binary search on the dense time
/// column (8-byte probes instead of 24-byte `Event` rows).
fn count_in_window(times: &[Time], index: &[EventIdx], t0: Time, t1: Time) -> usize {
    if t1 < t0 {
        return 0;
    }
    let lo = index.partition_point(|&i| times[i as usize] < t0);
    let hi = index.partition_point(|&i| times[i as usize] <= t1);
    hi - lo
}

fn build_node_index(events: &[Event], num_nodes: u32) -> (Vec<u32>, Vec<EventIdx>) {
    let n = num_nodes as usize;
    let mut counts = vec![0u32; n + 1];
    for e in events {
        counts[e.src.index() + 1] += 1;
        counts[e.dst.index() + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut lists = vec![0 as EventIdx; events.len() * 2];
    for (i, e) in events.iter().enumerate() {
        // Events are visited in time order, so each per-node list ends up
        // time-sorted without a separate sort pass.
        lists[cursor[e.src.index()] as usize] = i as EventIdx;
        cursor[e.src.index()] += 1;
        lists[cursor[e.dst.index()] as usize] = i as EventIdx;
        cursor[e.dst.index()] += 1;
    }
    (offsets, lists)
}

fn build_edge_index(events: &[Event]) -> (HashMap<Edge, (u32, u32)>, Vec<EventIdx>) {
    let mut by_edge: HashMap<Edge, u32> = HashMap::new();
    for e in events {
        *by_edge.entry(e.edge()).or_insert(0) += 1;
    }
    let mut spans: HashMap<Edge, (u32, u32)> = HashMap::with_capacity(by_edge.len());
    let mut cursor: HashMap<Edge, u32> = HashMap::with_capacity(by_edge.len());
    let mut start = 0u32;
    // Deterministic span layout: iterate events in time order and assign
    // spans on first sight of each edge.
    for e in events {
        let edge = e.edge();
        if let std::collections::hash_map::Entry::Vacant(e) = spans.entry(edge) {
            let len = by_edge[&edge];
            e.insert((start, len));
            cursor.insert(edge, start);
            start += len;
        }
    }
    let mut lists = vec![0 as EventIdx; events.len()];
    for (i, e) in events.iter().enumerate() {
        let c = cursor.get_mut(&e.edge()).expect("edge seen above");
        lists[*c as usize] = i as EventIdx;
        *c += 1;
    }
    (spans, lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TemporalGraph {
        // The six-event network of the paper's Figure 1 (approximately):
        // events at 3,7,8,9,11,15 seconds.
        TemporalGraph::from_events(vec![
            Event::new(0u32, 1u32, 3),
            Event::new(1u32, 2u32, 7),
            Event::new(1u32, 3u32, 8),
            Event::new(2u32, 0u32, 9),
            Event::new(0u32, 2u32, 11),
            Event::new(2u32, 3u32, 15),
        ])
        .unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = sample();
        assert_eq!(g.num_events(), 6);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_static_edges(), 6);
        assert_eq!(g.first_time(), Some(3));
        assert_eq!(g.last_time(), Some(15));
        assert_eq!(g.timespan(), 12);
    }

    #[test]
    fn node_index_is_time_sorted() {
        let g = sample();
        for n in 0..g.num_nodes() {
            let evs = g.node_events(NodeId(n));
            let times: Vec<_> = evs.iter().map(|&i| g.event(i).time).collect();
            let mut sorted = times.clone();
            sorted.sort();
            assert_eq!(times, sorted, "node {n} index not time-sorted");
        }
        assert_eq!(g.node_degree(NodeId(0)), 3);
        assert_eq!(g.node_degree(NodeId(1)), 3);
        assert_eq!(g.node_degree(NodeId(2)), 4);
        assert_eq!(g.node_degree(NodeId(3)), 2);
    }

    #[test]
    fn edge_index_lookup() {
        let g = sample();
        let e01 = g.edge_events(Edge::new(0u32, 1u32));
        assert_eq!(e01.len(), 1);
        assert_eq!(g.event(e01[0]).time, 3);
        assert!(g.has_edge(Edge::new(2u32, 3u32)));
        assert!(!g.has_edge(Edge::new(3u32, 2u32)));
        assert!(g.edge_events(Edge::new(3u32, 2u32)).is_empty());
    }

    #[test]
    fn window_counting() {
        let g = sample();
        // Node 1 events at 3, 7, 8.
        assert_eq!(g.count_node_events_between(NodeId(1), 3, 8), 3);
        assert_eq!(g.count_node_events_between(NodeId(1), 4, 8), 2);
        assert_eq!(g.count_node_events_between(NodeId(1), 9, 20), 0);
        assert_eq!(g.count_node_events_between(NodeId(1), 8, 3), 0);
        assert_eq!(g.count_edge_events_between(Edge::new(1u32, 2u32), 0, 100), 1);
    }

    #[test]
    fn events_in_window_slice() {
        let g = sample();
        let (start, evs) = g.events_in_window(7, 9);
        assert_eq!(start, 1);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].time, 7);
        assert_eq!(evs[2].time, 9);
        let (_, all) = g.events_in_window(i64::MIN, i64::MAX);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn static_edges_within_node_set() {
        let g = sample();
        let edges = g.static_edges_within(&[NodeId(0), NodeId(1), NodeId(2)]);
        // 0->1, 1->2, 2->0, 0->2 all exist among {0,1,2}.
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn invariants_hold() {
        sample().check_invariants().unwrap();
    }

    #[test]
    fn duplicate_events_are_kept() {
        let g =
            TemporalGraph::from_events(vec![Event::new(0u32, 1u32, 5), Event::new(0u32, 1u32, 5)])
                .unwrap();
        assert_eq!(g.num_events(), 2);
        assert_eq!(g.edge_events(Edge::new(0u32, 1u32)).len(), 2);
    }

    #[test]
    fn first_event_at_or_after_boundaries() {
        let g = sample();
        assert_eq!(g.first_event_at_or_after(0), 0);
        assert_eq!(g.first_event_at_or_after(7), 1);
        assert_eq!(g.first_event_at_or_after(10), 4);
        assert_eq!(g.first_event_at_or_after(100), 6);
    }
}
