//! Dataset statistics — the columns of the paper's Table 2.
//!
//! For each network the paper reports: nodes, events, edges (distinct
//! directed node pairs), `#T` (distinct timestamps), `|Eu|/|E|` (fraction
//! of events whose timestamp is unique), and `m(Δt)` (median inter-event
//! time over consecutive events of the global time-ordered stream).

use crate::graph::TemporalGraph;
use crate::ids::Time;
use serde::{Deserialize, Serialize};

/// Summary statistics for a temporal network (Table 2 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|V|`: number of nodes.
    pub nodes: u32,
    /// `|E|`: number of events.
    pub events: usize,
    /// Number of distinct directed static edges.
    pub static_edges: usize,
    /// `#T`: number of distinct timestamps.
    pub unique_timestamps: usize,
    /// `|Eu|/|E|`: fraction of events whose timestamp is shared with no
    /// other event.
    pub unique_timestamp_fraction: f64,
    /// `m(Δt)`: median of `t_{i+1} - t_i` over the global event stream,
    /// in seconds. Zero gaps (simultaneous events) are included.
    pub median_inter_event_time: f64,
    /// Mean of the same gaps.
    pub mean_inter_event_time: f64,
    /// `t_max - t_min`.
    pub timespan: Time,
}

impl GraphStats {
    /// Computes all statistics in one pass over the event list.
    pub fn compute(graph: &TemporalGraph) -> Self {
        let events = graph.events();
        let m = events.len();
        let mut unique_timestamps = 0usize;
        let mut unique_events = 0usize;
        let mut gaps: Vec<Time> = Vec::with_capacity(m.saturating_sub(1));
        let mut i = 0usize;
        while i < m {
            let mut j = i + 1;
            while j < m && events[j].time == events[i].time {
                j += 1;
            }
            unique_timestamps += 1;
            if j - i == 1 {
                unique_events += 1;
            }
            i = j;
        }
        for w in events.windows(2) {
            gaps.push(w[1].time - w[0].time);
        }
        let median = median_i64(&mut gaps);
        let mean = if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().map(|&g| g as f64).sum::<f64>() / gaps.len() as f64
        };
        GraphStats {
            nodes: graph.num_nodes(),
            events: m,
            static_edges: graph.num_static_edges(),
            unique_timestamps,
            unique_timestamp_fraction: if m == 0 { 0.0 } else { unique_events as f64 / m as f64 },
            median_inter_event_time: median,
            mean_inter_event_time: mean,
            timespan: graph.timespan(),
        }
    }
}

/// Median of an i64 sample (averaging the two middle elements for even
/// lengths). Sorts in place.
fn median_i64(xs: &mut [Time]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_unstable();
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2] as f64
    } else {
        (xs[n / 2 - 1] as f64 + xs[n / 2] as f64) / 2.0
    }
}

/// Human-readable quantity formatting matching the paper's Table 2 style:
/// `5.88K`, `35.6K`, `6.35M`, `536`.
pub fn humanize(n: f64) -> String {
    let (value, suffix) = if n >= 1e6 {
        (n / 1e6, "M")
    } else if n >= 1e3 {
        (n / 1e3, "K")
    } else {
        return format!("{}", n.round() as i64);
    };
    if value >= 100.0 {
        format!("{:.0}{}", value, suffix)
    } else if value >= 10.0 {
        format!("{:.1}{}", value, suffix)
    } else {
        format!("{:.2}{}", value, suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn graph(times: &[Time]) -> TemporalGraph {
        let events: Vec<Event> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(i as u32, (i + 1) as u32, t))
            .collect();
        TemporalGraph::from_events(events).unwrap()
    }

    #[test]
    fn unique_timestamp_fraction() {
        // times: 1, 2, 2, 5 -> unique timestamps {1,2,5} = 3; unique events: t=1, t=5 -> 2/4.
        let g = graph(&[1, 2, 2, 5]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.unique_timestamps, 3);
        assert!((s.unique_timestamp_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn median_inter_event() {
        // gaps: 1, 0, 3 -> sorted 0,1,3 -> median 1.
        let g = graph(&[1, 2, 2, 5]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.median_inter_event_time, 1.0);
        assert!((s.mean_inter_event_time - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn even_length_median_averages() {
        let mut xs = vec![4, 1, 3, 2];
        assert_eq!(median_i64(&mut xs), 2.5);
        let mut one = vec![7];
        assert_eq!(median_i64(&mut one), 7.0);
        assert_eq!(median_i64(&mut []), 0.0);
    }

    #[test]
    fn counts_match_graph() {
        let g = graph(&[1, 2, 3]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.events, 3);
        assert_eq!(s.nodes, g.num_nodes());
        assert_eq!(s.static_edges, 3);
        assert_eq!(s.timespan, 2);
    }

    #[test]
    fn humanize_matches_paper_style() {
        assert_eq!(humanize(536.0), "536");
        assert_eq!(humanize(5_880.0), "5.88K");
        assert_eq!(humanize(35_600.0), "35.6K");
        assert_eq!(humanize(260_000.0), "260K");
        assert_eq!(humanize(6_350_000.0), "6.35M");
        assert_eq!(humanize(0.0), "0");
    }

    #[test]
    fn single_event_stats() {
        let g = graph(&[42]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.median_inter_event_time, 0.0);
        assert_eq!(s.unique_timestamp_fraction, 1.0);
        assert_eq!(s.timespan, 0);
    }
}
