//! Structure-of-arrays view of the event log.
//!
//! Every hot loop in the counting engines ultimately asks one of two
//! questions about events: "what is the time of event *i*?" (window
//! binary searches, group scans, shard pad/halo planning) or "which
//! endpoint of event *i* is not the center?" (star sweeps). Answering
//! them through `&[Event]` drags the full 24-byte struct through the
//! cache for every 8-byte (or 4-byte) answer. [`EventColumns`] stores
//! the same log as four dense columns — `times: Vec<Time>`,
//! `srcs`/`dsts: Vec<u32>`, `durations: Vec<u32>` — so a timestamp
//! probe touches 3× fewer cache lines and the compiler is free to
//! vectorize linear scans.
//!
//! The columns are built lazily, exactly once per [`TemporalGraph`]
//! (`crate::TemporalGraph::columns` goes through a `OnceLock`), and
//! row `i` of every column describes `graph.event(i)` — the same
//! indices the node/edge/window indexes hand out, so the two views
//! compose without translation.

use crate::event::Event;
use crate::ids::Time;

/// Dense columnar copy of an event list: one `Vec` per field, row `i`
/// mirroring `events[i]`.
///
/// `times` is sorted ascending whenever the source list was (the
/// [`crate::TemporalGraph`] invariant), so `times.partition_point` is
/// the window probe primitive; see [`EventColumns::first_at_or_after`].
#[derive(Debug, Clone, Default)]
pub struct EventColumns {
    times: Vec<Time>,
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    durations: Vec<u32>,
    has_time_ties: bool,
}

impl EventColumns {
    /// Transposes an event list into columns. `O(m)` time and space.
    pub fn build(events: &[Event]) -> Self {
        let mut cols = EventColumns {
            times: Vec::with_capacity(events.len()),
            srcs: Vec::with_capacity(events.len()),
            dsts: Vec::with_capacity(events.len()),
            durations: Vec::with_capacity(events.len()),
            has_time_ties: false,
        };
        for e in events {
            cols.times.push(e.time);
            cols.srcs.push(e.src.0);
            cols.dsts.push(e.dst.0);
            cols.durations.push(e.duration);
        }
        cols.has_time_ties = cols.times.windows(2).any(|w| w[0] == w[1]);
        cols
    }

    /// Number of events (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the log is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Start times, ascending; `times()[i] == graph.event(i).time`.
    #[inline]
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// Source node ids; `srcs()[i] == graph.event(i).src.0`.
    #[inline]
    pub fn srcs(&self) -> &[u32] {
        &self.srcs
    }

    /// Target node ids; `dsts()[i] == graph.event(i).dst.0`.
    #[inline]
    pub fn dsts(&self) -> &[u32] {
        &self.dsts
    }

    /// Durations; `durations()[i] == graph.event(i).duration`.
    #[inline]
    pub fn durations(&self) -> &[u32] {
        &self.durations
    }

    /// True when at least two events share a timestamp. Tie-free logs
    /// (the common case for real corpora) let the stream DPs skip
    /// timestamp-group bookkeeping entirely; the flag is one adjacency
    /// scan at build time because `times` is sorted.
    #[inline]
    pub fn has_time_ties(&self) -> bool {
        self.has_time_ties
    }

    /// Index of the first event with `time >= t` (binary search over
    /// the dense time column).
    #[inline]
    pub fn first_at_or_after(&self, t: Time) -> usize {
        self.times.partition_point(|&x| x < t)
    }

    /// Half-open index range of events with `t0 <= time <= t1`.
    #[inline]
    pub fn window_range(&self, t0: Time, t1: Time) -> std::ops::Range<usize> {
        let lo = self.times.partition_point(|&x| x < t0);
        let hi = lo + self.times[lo..].partition_point(|&x| x <= t1);
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::new(0u32, 1u32, 3),
            Event::new(1u32, 2u32, 7),
            Event::with_duration(1u32, 3u32, 8, 5),
            Event::new(2u32, 0u32, 9),
            Event::new(0u32, 2u32, 11),
            Event::new(2u32, 3u32, 15),
        ]
    }

    #[test]
    fn columns_mirror_rows() {
        let events = sample();
        let cols = EventColumns::build(&events);
        assert_eq!(cols.len(), events.len());
        assert!(!cols.is_empty());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(cols.times()[i], e.time);
            assert_eq!(cols.srcs()[i], e.src.0);
            assert_eq!(cols.dsts()[i], e.dst.0);
            assert_eq!(cols.durations()[i], e.duration);
        }
    }

    #[test]
    fn window_probes_match_struct_scans() {
        let events = sample();
        let cols = EventColumns::build(&events);
        assert_eq!(cols.first_at_or_after(0), 0);
        assert_eq!(cols.first_at_or_after(7), 1);
        assert_eq!(cols.first_at_or_after(10), 4);
        assert_eq!(cols.first_at_or_after(100), 6);
        assert_eq!(cols.window_range(7, 9), 1..4);
        assert_eq!(cols.window_range(i64::MIN, i64::MAX), 0..6);
        assert_eq!(cols.window_range(4, 5), 1..1);
    }

    #[test]
    fn empty_log() {
        let cols = EventColumns::build(&[]);
        assert!(cols.is_empty());
        assert_eq!(cols.window_range(0, 10), 0..0);
        assert!(!cols.has_time_ties());
    }

    #[test]
    fn time_tie_detection() {
        assert!(!EventColumns::build(&sample()).has_time_ties());
        let tied =
            vec![Event::new(0u32, 1u32, 3), Event::new(1u32, 2u32, 7), Event::new(2u32, 0u32, 7)];
        assert!(EventColumns::build(&tied).has_time_ties());
    }
}
