//! Time-windowed candidate index: per-node CSR event lists with inline
//! timestamps.
//!
//! The motif walkers repeatedly answer one query: *"which events adjacent
//! to node `x` fall in the half-open time window `(after, upto]`?"*. The
//! node index on [`TemporalGraph`] can answer it, but every probe chases
//! `events[i].time` through an indirection, and the upper bound is found
//! by a linear scan. [`WindowIndex`] stores each node's event timestamps
//! **inline and contiguous**, so both window endpoints resolve with
//! `partition_point` binary searches over a dense `i64` array and the
//! result comes back as a ready-made `&[EventIdx]` slice — no per-element
//! time checks, no indirection, cache-line-friendly.
//!
//! [`WindowCursor`] complements the random-access query with a streaming
//! one: a consumer that sweeps time forward over a single node's list
//! advances a monotone position with galloping search, paying amortised
//! `O(1)` per advance instead of `O(log d)` per probe. The counting
//! engines ended up not needing it — their forward sweeps run over
//! *merged* per-pair/per-center/per-triangle lists in arena scratch
//! (see `tnm_motifs::engine::stream`), where window expiry is a
//! `partition_point` over precomputed group boundaries, not a per-node
//! cursor. The cursor stays as a tested standalone primitive (pinned by
//! this module's `cursor_*` tests) for consumers that do walk one
//! node's timeline monotonically, e.g. ad-hoc per-node sweeps.
//!
//! Build cost is `O(m)` time and `2m` words of memory (the event-id and
//! timestamp arrays), piggybacking on the already-sorted node index.

use crate::graph::TemporalGraph;
use crate::ids::{EventIdx, NodeId, Time};

/// Per-node CSR event lists with timestamps stored inline.
///
/// See the [module docs](self) for why this beats the plain node index
/// for windowed candidate generation.
#[derive(Debug, Clone)]
pub struct WindowIndex {
    /// `offsets[n]..offsets[n+1]` is node `n`'s span in the two arrays.
    offsets: Vec<u32>,
    /// Event indices, grouped by node, time-sorted within each group.
    event_ids: Vec<EventIdx>,
    /// `times[i]` is the timestamp of `event_ids[i]` (dense, searchable).
    times: Vec<Time>,
}

impl WindowIndex {
    /// Builds the index from a graph in `O(m)` (the graph's node index is
    /// already time-sorted; this only flattens timestamps inline).
    pub fn build(graph: &TemporalGraph) -> Self {
        let n = graph.num_nodes() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut event_ids = Vec::with_capacity(graph.num_events() * 2);
        let mut times = Vec::with_capacity(graph.num_events() * 2);
        // Gather through the dense SoA time column: each lookup reads an
        // 8-byte row instead of dereferencing a 24-byte `Event`.
        let col_times = graph.times();
        offsets.push(0);
        for node in 0..graph.num_nodes() {
            for &idx in graph.node_events(NodeId(node)) {
                event_ids.push(idx);
                times.push(col_times[idx as usize]);
            }
            offsets.push(event_ids.len() as u32);
        }
        WindowIndex { offsets, event_ids, times }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of `(node, event)` incidences indexed (`2m`).
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.event_ids.len()
    }

    #[inline]
    fn span(&self, node: NodeId) -> (usize, usize) {
        (self.offsets[node.index()] as usize, self.offsets[node.index() + 1] as usize)
    }

    /// Node `node`'s full `(event_ids, times)` parallel slices.
    #[inline]
    pub fn node_slices(&self, node: NodeId) -> (&[EventIdx], &[Time]) {
        let (lo, hi) = self.span(node);
        (&self.event_ids[lo..hi], &self.times[lo..hi])
    }

    /// Event indices adjacent to `node` with time in `(after, upto]`
    /// (`upto = None` means unbounded above). Both endpoints are resolved
    /// by binary search on the inline timestamp array.
    #[inline]
    pub fn events_in(&self, node: NodeId, after: Time, upto: Option<Time>) -> &[EventIdx] {
        let (ids, times) = self.node_slices(node);
        let start = times.partition_point(|&t| t <= after);
        let end = match upto {
            Some(b) => {
                // Search only the tail that survived the lower bound.
                start + times[start..].partition_point(|&t| t <= b)
            }
            None => ids.len(),
        };
        &ids[start..end]
    }

    /// Position (within `node`'s span) of the first event with
    /// `time > t`; equals the span length when none qualifies.
    #[inline]
    pub fn first_after(&self, node: NodeId, t: Time) -> usize {
        let (_, times) = self.node_slices(node);
        times.partition_point(|&x| x <= t)
    }

    /// Opens a streaming cursor over `node`'s events.
    pub fn cursor(&self, node: NodeId) -> WindowCursor {
        WindowCursor { node, pos: 0 }
    }

    /// True iff this index describes exactly `graph` — every per-node
    /// event list and every inline timestamp agrees with the graph's own
    /// node index. An allocation-free sequential `O(m)` pass, several
    /// times cheaper than [`WindowIndex::build`]; the
    /// [index cache](crate::index_cache) runs it on every key hit so a
    /// recycled buffer address can never smuggle in a stale index.
    pub fn matches(&self, graph: &TemporalGraph) -> bool {
        if self.num_nodes() != graph.num_nodes() || self.num_incidences() != graph.num_events() * 2
        {
            return false;
        }
        let col_times = graph.times();
        for node in 0..graph.num_nodes() {
            let (ids, times) = self.node_slices(NodeId(node));
            if ids != graph.node_events(NodeId(node)) {
                return false;
            }
            if !ids.iter().zip(times).all(|(&i, &t)| col_times[i as usize] == t) {
                return false;
            }
        }
        true
    }
}

/// A reusable, monotone streaming position inside one node's event list.
///
/// Cursors only move forward: [`WindowCursor::advance_past`] gallops from
/// the current position, so a full forward sweep over a node's `d` events
/// costs `O(d)` total regardless of how many advances are made. Reset by
/// opening a fresh cursor via [`WindowIndex::cursor`].
#[derive(Debug, Clone, Copy)]
pub struct WindowCursor {
    node: NodeId,
    pos: usize,
}

impl WindowCursor {
    /// The node this cursor walks.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current position within the node's span.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Advances the cursor to the first event with `time > t` (no-op when
    /// already past it) using galloping search from the current position.
    pub fn advance_past(&mut self, index: &WindowIndex, t: Time) {
        let (_, times) = index.node_slices(self.node);
        if self.pos >= times.len() || times[self.pos] > t {
            return;
        }
        // Gallop: double the step until overshooting, then binary-search
        // the last bracket. Amortised O(1) per advance on forward sweeps.
        let mut step = 1;
        let mut hi = self.pos + 1;
        while hi < times.len() && times[hi] <= t {
            self.pos = hi;
            hi += step;
            step *= 2;
        }
        let hi = hi.min(times.len());
        self.pos += times[self.pos..hi].partition_point(|&x| x <= t);
    }

    /// Events from the cursor position with time `<= upto` (unbounded when
    /// `None`), **without** moving the cursor.
    #[inline]
    pub fn window<'a>(&self, index: &'a WindowIndex, upto: Option<Time>) -> &'a [EventIdx] {
        let (ids, times) = index.node_slices(self.node);
        let end = match upto {
            Some(b) => self.pos + times[self.pos..].partition_point(|&t| t <= b),
            None => ids.len(),
        };
        &ids[self.pos..end]
    }

    /// True once the cursor has swept past every event of its node.
    #[inline]
    pub fn is_exhausted(&self, index: &WindowIndex) -> bool {
        let (lo, hi) = index.span(self.node);
        self.pos >= hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemporalGraphBuilder;

    fn sample() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .event(0, 1, 3)
            .event(1, 2, 7)
            .event(1, 3, 8)
            .event(2, 0, 9)
            .event(0, 2, 11)
            .event(2, 3, 15)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_graph_node_index() {
        let g = sample();
        let ix = WindowIndex::build(&g);
        assert_eq!(ix.num_nodes(), g.num_nodes());
        assert_eq!(ix.num_incidences(), g.num_events() * 2);
        for n in 0..g.num_nodes() {
            let (ids, times) = ix.node_slices(NodeId(n));
            assert_eq!(ids, g.node_events(NodeId(n)));
            for (&i, &t) in ids.iter().zip(times) {
                assert_eq!(g.event(i).time, t);
            }
        }
    }

    #[test]
    fn window_queries_agree_with_scan() {
        let g = sample();
        let ix = WindowIndex::build(&g);
        for n in 0..g.num_nodes() {
            let node = NodeId(n);
            for after in 0..20 {
                for upto in after..20 {
                    let fast = ix.events_in(node, after, Some(upto));
                    let slow: Vec<EventIdx> = g
                        .node_events(node)
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let t = g.event(i).time;
                            t > after && t <= upto
                        })
                        .collect();
                    assert_eq!(fast, slow.as_slice(), "node {n} ({after},{upto}]");
                }
                let unbounded = ix.events_in(node, after, None);
                let slow: Vec<EventIdx> = g
                    .node_events(node)
                    .iter()
                    .copied()
                    .filter(|&i| g.event(i).time > after)
                    .collect();
                assert_eq!(unbounded, slow.as_slice());
            }
        }
    }

    #[test]
    fn first_after_boundaries() {
        let g = sample();
        let ix = WindowIndex::build(&g);
        // Node 2 events at times 7, 9, 11, 15.
        assert_eq!(ix.first_after(NodeId(2), 0), 0);
        assert_eq!(ix.first_after(NodeId(2), 7), 1);
        assert_eq!(ix.first_after(NodeId(2), 10), 2);
        assert_eq!(ix.first_after(NodeId(2), 15), 4);
    }

    #[test]
    fn cursor_streams_forward() {
        let g = sample();
        let ix = WindowIndex::build(&g);
        let mut cur = ix.cursor(NodeId(2)); // times 7, 9, 11, 15
        assert_eq!(cur.window(&ix, Some(9)).len(), 2);
        cur.advance_past(&ix, 8);
        assert_eq!(cur.position(), 1);
        cur.advance_past(&ix, 8); // no-op: already past
        assert_eq!(cur.position(), 1);
        cur.advance_past(&ix, 11);
        assert_eq!(cur.position(), 3);
        assert_eq!(cur.window(&ix, None).len(), 1);
        assert!(!cur.is_exhausted(&ix));
        cur.advance_past(&ix, 100);
        assert!(cur.is_exhausted(&ix));
        assert!(cur.window(&ix, None).is_empty());
    }

    #[test]
    fn cursor_gallop_matches_binary_search() {
        // Long list with duplicate timestamps to stress the gallop.
        let mut b = TemporalGraphBuilder::new();
        for i in 0..200i64 {
            b.push(crate::event::Event::new(0u32, 1u32 + (i % 3) as u32, i / 2));
        }
        let g = b.build().unwrap();
        let ix = WindowIndex::build(&g);
        let mut cur = ix.cursor(NodeId(0));
        for t in 0..110 {
            cur.advance_past(&ix, t);
            assert_eq!(cur.position(), ix.first_after(NodeId(0), t), "t={t}");
        }
    }
}
