//! Identifier newtypes used throughout the workspace.
//!
//! Nodes are dense `u32` identifiers (`0..num_nodes`), timestamps are
//! `i64` seconds (the paper's datasets all have 1-second resolution), and
//! events are referred to by their index in the time-ordered event list.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node identifier. Nodes are dense integers in `0..num_nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index as `usize` for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Timestamp in seconds. All paper datasets use 1-second resolution;
/// [`crate::transform::degrade_resolution`] coarsens this to snapshots.
pub type Time = i64;

/// Index of an event inside a [`crate::TemporalGraph`]'s time-ordered list.
pub type EventIdx = u32;

/// A directed static edge: the static projection of one or more events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
}

impl Edge {
    /// Creates a directed edge.
    #[inline]
    pub fn new(src: impl Into<NodeId>, dst: impl Into<NodeId>) -> Self {
        Edge { src: src.into(), dst: dst.into() }
    }

    /// The edge with source and target swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge { src: self.dst, dst: self.src }
    }

    /// Canonical undirected representation (smaller node first).
    #[inline]
    pub fn undirected(self) -> (NodeId, NodeId) {
        if self.src.0 <= self.dst.0 {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(7u32);
        assert_eq!(u32::from(n), 7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "7");
    }

    #[test]
    fn edge_reversed_and_undirected() {
        let e = Edge::new(3u32, 1u32);
        assert_eq!(e.reversed(), Edge::new(1u32, 3u32));
        assert_eq!(e.undirected(), (NodeId(1), NodeId(3)));
        assert_eq!(Edge::new(1u32, 3u32).undirected(), (NodeId(1), NodeId(3)));
    }

    #[test]
    fn edge_display() {
        assert_eq!(Edge::new(0u32, 9u32).to_string(), "0->9");
    }
}
