//! Shared [`WindowIndex`] cache keyed on graph identity.
//!
//! The experiment drivers count the same [`TemporalGraph`] dozens of
//! times (one count per model × timing configuration), and the sampling
//! engine draws dozens of windows per estimate — yet every windowed
//! count used to rebuild the `O(m)` [`WindowIndex`] from scratch.
//! [`WindowIndexCache`] lets all of them share one index per graph.
//!
//! ## Identity without ownership
//!
//! Callers hand engines a plain `&TemporalGraph`, so the cache cannot key
//! on an owned handle. Instead an entry is keyed on the graph's **event
//! buffer address and length** — stable for the graph's whole lifetime
//! (moving a graph moves the `Vec` header, not its heap buffer; cloning
//! allocates a fresh buffer and therefore a fresh key). Addresses can be
//! recycled after a graph is dropped, so a key match alone is never
//! trusted: every hit is **verified** against the graph with
//! [`WindowIndex::matches`], an allocation-free sequential `O(m)` pass
//! that is several times cheaper than a rebuild. A verification failure
//! counts as a miss and the stale entry is replaced. The cache is
//! therefore exactly as correct as building fresh, merely faster.
//!
//! ## Concurrency
//!
//! Lookups take a short mutex; index construction happens **outside** the
//! lock, so concurrent counts of different graphs never serialize behind
//! one build. Two threads racing to build the same graph's index do
//! duplicate work once, then share the winning entry.
//!
//! Engines use the process-wide [`global_index_cache`]; tests and
//! special-purpose callers can construct private instances for
//! deterministic statistics.
//!
//! ## Memory
//!
//! The global cache retains up to [`DEFAULT_INDEX_CACHE_CAPACITY`]
//! indexes (`2m` words each) for the process lifetime, including
//! indexes of graphs that have since been dropped — a deliberate trade
//! for the common driver pattern of counting the same corpus
//! repeatedly. Long-lived consumers that churn through very large
//! graphs can call [`WindowIndexCache::clear`] on the global cache
//! after releasing a graph to return the memory immediately.

use crate::graph::TemporalGraph;
use crate::window_index::WindowIndex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of graphs the [`global_index_cache`] retains (LRU beyond this).
pub const DEFAULT_INDEX_CACHE_CAPACITY: usize = 8;

/// Observability counters for a [`WindowIndexCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCacheStats {
    /// Lookups answered by a verified cached index.
    pub hits: u64,
    /// Lookups that had no entry for the graph's key.
    pub misses: u64,
    /// Key collisions rejected by content verification (recycled buffer
    /// addresses); each also counts as a miss.
    pub rejected: u64,
}

/// One cached index with its identity key and LRU stamp.
struct Entry {
    /// `(events buffer address, event count)` of the graph indexed.
    key: (usize, usize),
    index: Arc<WindowIndex>,
    last_used: u64,
}

/// A bounded, verified cache of [`WindowIndex`]es keyed on graph
/// identity. See the [module docs](self) for the identity and
/// correctness model.
pub struct WindowIndexCache {
    entries: Mutex<Vec<Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl std::fmt::Debug for WindowIndexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowIndexCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl WindowIndexCache {
    /// An empty cache retaining at most `capacity` graphs.
    pub fn new(capacity: usize) -> Self {
        WindowIndexCache {
            entries: Mutex::new(Vec::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn key_of(graph: &TemporalGraph) -> (usize, usize) {
        (graph.events().as_ptr() as usize, graph.num_events())
    }

    /// Returns the cached index for `graph`, building (and caching) it on
    /// a miss. Hits are verified against the graph's actual content, so
    /// the returned index is always correct for `graph`.
    pub fn get_or_build(&self, graph: &TemporalGraph) -> Arc<WindowIndex> {
        let key = Self::key_of(graph);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut entries = self.entries.lock().expect("index cache poisoned");
            if let Some(e) = entries.iter_mut().find(|e| e.key == key) {
                let verify_start = tnm_obs::enabled().then(std::time::Instant::now);
                let verified = e.index.matches(graph);
                if let Some(t0) = verify_start {
                    tnm_obs::histogram_record_ns(
                        "cache.index.verify_ns",
                        t0.elapsed().as_nanos() as u64,
                    );
                }
                if verified {
                    e.last_used = stamp;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    tnm_obs::counter_add("cache.index.hits", 1);
                    return Arc::clone(&e.index);
                }
                // Recycled buffer address: the entry describes a dead
                // graph. Drop it; the rebuild below replaces it.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                tnm_obs::counter_add("cache.index.rejected", 1);
                entries.retain(|e| e.key != key);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        tnm_obs::counter_add("cache.index.misses", 1);
        let built = Arc::new(WindowIndex::build(graph));
        let mut entries = self.entries.lock().expect("index cache poisoned");
        match entries.iter_mut().find(|e| e.key == key) {
            // A racing thread cached the same graph while we built.
            Some(e) => {
                e.last_used = stamp;
                Arc::clone(&e.index)
            }
            None => {
                if entries.len() >= self.capacity {
                    let oldest = entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("capacity >= 1 implies non-empty");
                    entries.swap_remove(oldest);
                }
                entries.push(Entry { key, index: Arc::clone(&built), last_used: stamp });
                built
            }
        }
    }

    /// Number of graphs currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("index cache poisoned").len()
    }

    /// True if no index is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached index (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("index cache poisoned").clear();
    }

    /// Snapshot of the hit/miss/rejection counters.
    pub fn stats(&self) -> IndexCacheStats {
        IndexCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide cache used by the windowed counting engines.
pub fn global_index_cache() -> &'static WindowIndexCache {
    static CACHE: OnceLock<WindowIndexCache> = OnceLock::new();
    CACHE.get_or_init(|| WindowIndexCache::new(DEFAULT_INDEX_CACHE_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemporalGraphBuilder;

    fn graph(seed: i64, events: usize) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..events as i64 {
            let u = ((i + seed) % 7) as u32;
            let v = ((i + seed + 1 + i % 3) % 7) as u32;
            let v = if v == u { (v + 1) % 7 } else { v };
            b.push(crate::event::Event::new(u, v, seed + i * 2));
        }
        b.build().unwrap()
    }

    #[test]
    fn hit_on_same_graph_miss_on_other() {
        let cache = WindowIndexCache::new(4);
        let g1 = graph(1, 100);
        let g2 = graph(2, 100);
        let a = cache.get_or_build(&g1);
        assert_eq!(cache.stats(), IndexCacheStats { hits: 0, misses: 1, rejected: 0 });
        let b = cache.get_or_build(&g1);
        assert_eq!(cache.stats().hits, 1);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached index");
        cache.get_or_build(&g2);
        assert_eq!(cache.stats(), IndexCacheStats { hits: 1, misses: 2, rejected: 0 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clone_has_its_own_identity() {
        let cache = WindowIndexCache::new(4);
        let g = graph(3, 50);
        let copy = g.clone();
        cache.get_or_build(&g);
        cache.get_or_build(&copy);
        assert_eq!(cache.stats().misses, 2, "a clone is a different graph");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = WindowIndexCache::new(2);
        let g1 = graph(1, 40);
        let g2 = graph(2, 40);
        let g3 = graph(3, 40);
        cache.get_or_build(&g1);
        cache.get_or_build(&g2);
        cache.get_or_build(&g1); // g2 is now the LRU entry
        cache.get_or_build(&g3); // evicts g2
        assert_eq!(cache.len(), 2);
        cache.get_or_build(&g1);
        assert_eq!(cache.stats().hits, 2, "g1 must have survived eviction");
        cache.get_or_build(&g2);
        assert_eq!(cache.stats().misses, 4, "g2 was evicted and rebuilt");
    }

    #[test]
    fn cached_index_is_correct() {
        let cache = WindowIndexCache::new(2);
        let g = graph(5, 80);
        let fresh = WindowIndex::build(&g);
        let cached = cache.get_or_build(&g);
        let cached_again = cache.get_or_build(&g);
        for ix in [&fresh, cached.as_ref(), cached_again.as_ref()] {
            assert!(ix.matches(&g));
            assert_eq!(ix.num_incidences(), g.num_events() * 2);
        }
    }

    #[test]
    fn clear_and_capacity_floor() {
        let cache = WindowIndexCache::new(0); // clamped to 1
        let g1 = graph(1, 30);
        let g2 = graph(2, 30);
        cache.get_or_build(&g1);
        cache.get_or_build(&g2);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_build(&g1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn global_cache_is_shared() {
        let g = graph(9, 60);
        let a = global_index_cache().get_or_build(&g);
        let b = global_index_cache().get_or_build(&g);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
