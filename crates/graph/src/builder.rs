//! Builder for [`crate::TemporalGraph`].

use crate::error::{GraphError, Result};
use crate::event::Event;
use crate::graph::TemporalGraph;
use crate::ids::{NodeId, Time};

/// Accumulates events and produces a validated, index-backed
/// [`TemporalGraph`].
///
/// ```
/// use tnm_graph::TemporalGraphBuilder;
/// let g = TemporalGraphBuilder::new()
///     .event(0, 1, 10)
///     .event(1, 2, 12)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_events(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TemporalGraphBuilder {
    events: Vec<Event>,
    skip_self_loops: bool,
    num_nodes_hint: Option<u32>,
}

impl TemporalGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-seeded with `events`.
    pub fn from_events(events: Vec<Event>) -> Self {
        TemporalGraphBuilder { events, ..Self::default() }
    }

    /// Reserves capacity for `n` additional events.
    pub fn with_capacity(n: usize) -> Self {
        TemporalGraphBuilder { events: Vec::with_capacity(n), ..Self::default() }
    }

    /// When set, self-loop events are dropped silently instead of failing
    /// the build. Useful for raw real-world edge lists.
    pub fn skip_self_loops(mut self, yes: bool) -> Self {
        self.skip_self_loops = yes;
        self
    }

    /// Declares the node universe size up front (ids must stay below it).
    pub fn num_nodes(mut self, n: u32) -> Self {
        self.num_nodes_hint = Some(n);
        self
    }

    /// Adds an instantaneous event (chainable).
    pub fn event(mut self, src: u32, dst: u32, time: Time) -> Self {
        self.events.push(Event::new(src, dst, time));
        self
    }

    /// Adds an event with a duration (chainable).
    pub fn event_with_duration(mut self, src: u32, dst: u32, time: Time, duration: u32) -> Self {
        self.events.push(Event::with_duration(src, dst, time, duration));
        self
    }

    /// Adds an event in place (non-chaining form for loops).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts, validates, indexes, and returns the graph.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if there are no events;
    /// * [`GraphError::SelfLoop`] unless [`Self::skip_self_loops`] is set;
    /// * [`GraphError::NodeOutOfRange`] if a hinted node count is exceeded.
    pub fn build(self) -> Result<TemporalGraph> {
        let TemporalGraphBuilder { mut events, skip_self_loops, num_nodes_hint } = self;
        if skip_self_loops {
            events.retain(|e| !e.is_self_loop());
        } else if let Some(e) = events.iter().find(|e| e.is_self_loop()) {
            return Err(GraphError::SelfLoop { node: e.src.0, time: e.time });
        }
        if events.is_empty() {
            return Err(GraphError::Empty);
        }
        let max_node = events.iter().map(|e| e.src.0.max(e.dst.0)).max().unwrap_or(0);
        let num_nodes = match num_nodes_hint {
            Some(n) if max_node >= n => {
                return Err(GraphError::NodeOutOfRange { node: max_node, num_nodes: n })
            }
            Some(n) => n,
            None => max_node + 1,
        };
        events.sort_unstable();
        Ok(TemporalGraph::from_sorted_events(events, num_nodes))
    }
}

/// Remaps arbitrary (possibly sparse, e.g. hash-based) node identifiers to
/// the dense `0..n` space the graph requires, preserving first-appearance
/// order. Returns the dense events plus the forward map.
pub fn compact_node_ids(raw: &[(u64, u64, Time)]) -> (Vec<Event>, Vec<u64>) {
    let mut map: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut names: Vec<u64> = Vec::new();
    let mut dense = |v: u64, map: &mut std::collections::HashMap<u64, u32>| -> u32 {
        *map.entry(v).or_insert_with(|| {
            names.push(v);
            (names.len() - 1) as u32
        })
    };
    let mut events = Vec::with_capacity(raw.len());
    for &(u, v, t) in raw {
        let su = dense(u, &mut map);
        let sv = dense(v, &mut map);
        events.push(Event::new(su, sv, t));
    }
    (events, names)
}

/// Extracts the set of distinct nodes actually used by `events`.
pub fn used_nodes(events: &[Event]) -> Vec<NodeId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in events {
        if seen.insert(e.src) {
            out.push(e.src);
        }
        if seen.insert(e.dst) {
            out.push(e.dst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_build_sorts_events() {
        let g = TemporalGraphBuilder::new()
            .event(2, 3, 50)
            .event(0, 1, 10)
            .event(1, 2, 30)
            .build()
            .unwrap();
        let times: Vec<_> = g.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10, 30, 50]);
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn self_loop_rejected_by_default() {
        let err = TemporalGraphBuilder::new().event(1, 1, 5).build().unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { node: 1, time: 5 }));
    }

    #[test]
    fn self_loop_skipped_when_opted_in() {
        let g = TemporalGraphBuilder::new()
            .skip_self_loops(true)
            .event(1, 1, 5)
            .event(0, 1, 6)
            .build()
            .unwrap();
        assert_eq!(g.num_events(), 1);
    }

    #[test]
    fn empty_build_fails() {
        assert!(matches!(TemporalGraphBuilder::new().build(), Err(GraphError::Empty)));
    }

    #[test]
    fn node_hint_enforced() {
        let err = TemporalGraphBuilder::new().num_nodes(2).event(0, 5, 1).build().unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, num_nodes: 2 }));
        let g = TemporalGraphBuilder::new().num_nodes(10).event(0, 5, 1).build().unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn compact_ids_preserves_appearance_order() {
        let raw = vec![(100u64, 7u64, 1i64), (7, 100, 2), (9, 100, 3)];
        let (events, names) = compact_node_ids(&raw);
        assert_eq!(names, vec![100, 7, 9]);
        assert_eq!(events[0], Event::new(0u32, 1u32, 1));
        assert_eq!(events[1], Event::new(1u32, 0u32, 2));
        assert_eq!(events[2], Event::new(2u32, 0u32, 3));
    }

    #[test]
    fn used_nodes_distinct_in_order() {
        let events =
            vec![Event::new(3u32, 1u32, 1), Event::new(1u32, 3u32, 2), Event::new(0u32, 2u32, 3)];
        let nodes = used_nodes(&events);
        assert_eq!(nodes, vec![NodeId(3), NodeId(1), NodeId(0), NodeId(2)]);
    }

    #[test]
    fn push_and_len() {
        let mut b = TemporalGraphBuilder::with_capacity(4);
        assert!(b.is_empty());
        b.push(Event::new(0u32, 1u32, 1));
        assert_eq!(b.len(), 1);
    }
}
