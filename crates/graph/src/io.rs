//! Edge-list I/O in the SNAP text format used by the paper's datasets.
//!
//! Each line is `src dst time [duration]`, whitespace-separated; lines
//! beginning with `#` or `%` are comments. Node ids may be arbitrary u64
//! values; they are compacted to dense ids on load (first-appearance
//! order), matching how SNAP datasets are normally preprocessed.

use crate::builder::{compact_node_ids, TemporalGraphBuilder};
use crate::error::{GraphError, Result};
use crate::graph::TemporalGraph;
use crate::ids::Time;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a SNAP-style edge list from any reader.
///
/// Self-loops are skipped (real SNAP dumps contain a few), node ids are
/// compacted, events are sorted by time.
pub fn read_edge_list<R: Read>(reader: R) -> Result<TemporalGraph> {
    let buf = BufReader::new(reader);
    let mut raw: Vec<(u64, u64, Time)> = Vec::new();
    let mut durations: Vec<u32> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src = parse_field::<u64>(it.next(), lineno + 1, "source node")?;
        let dst = parse_field::<u64>(it.next(), lineno + 1, "target node")?;
        let time = parse_time(it.next(), lineno + 1)?;
        let duration = match it.next() {
            Some(tok) => tok.parse::<u32>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid duration `{tok}`"),
            })?,
            None => 0,
        };
        raw.push((src, dst, time));
        durations.push(duration);
    }
    if raw.is_empty() {
        return Err(GraphError::Empty);
    }
    let (mut events, _names) = compact_node_ids(&raw);
    for (ev, d) in events.iter_mut().zip(durations) {
        ev.duration = d;
    }
    TemporalGraphBuilder::from_events(events).skip_self_loops(true).build()
}

/// Loads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<TemporalGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Parses an edge list from an in-memory string (handy in tests/examples).
pub fn read_edge_list_str(s: &str) -> Result<TemporalGraph> {
    read_edge_list(s.as_bytes())
}

/// Writes the graph in the same text format (durations included only when
/// non-zero). The output round-trips through [`read_edge_list`].
pub fn write_edge_list<W: Write>(graph: &TemporalGraph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# temporal edge list: src dst time [duration]")?;
    for e in graph.events() {
        if e.duration == 0 {
            writeln!(out, "{} {} {}", e.src, e.dst, e.time)?;
        } else {
            writeln!(out, "{} {} {} {}", e.src, e.dst, e.time, e.duration)?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Writes the graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &TemporalGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

/// Writes an event slice as a self-describing **binary block**
/// ([`wire::encode_events`](crate::wire::encode_events)): a magic +
/// version + record-count header followed by fixed-width records, node
/// ids taken **literally**.
///
/// Unlike the [`write_edge_list`] / [`read_edge_list`] pair — which
/// compacts node ids on load and re-sorts events — the
/// [`read_events_raw`] round-trip preserves node ids, event order, and
/// durations exactly. That exactness is the contract the
/// [shard store](crate::shard::ShardStore) relies on to map slice-local
/// event indices back to parent-graph indices after a spill/reload
/// cycle, and the contract the distributed workers rely on when a shard
/// file crosses a process boundary.
pub fn write_events_raw<W: Write>(events: &[crate::event::Event], writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    out.write_all(&crate::wire::encode_events(events))?;
    out.flush()?;
    Ok(())
}

/// Reads a block written by [`write_events_raw`]: node ids are literal
/// `u32` values (no compaction), records are kept in file order (no
/// sort). An empty block is not an error — emptiness is the caller's
/// policy here.
///
/// The block's record-count header is **validated against the bytes
/// actually present before any allocation**
/// ([`wire::decode_events`](crate::wire::decode_events)): a truncated
/// or corrupt shard file — now also arriving from other processes —
/// fails with [`GraphError::Decode`] instead of attempting an
/// OOM-sized `Vec` or returning silently short data.
pub fn read_events_raw<R: Read>(reader: R) -> Result<Vec<crate::event::Event>> {
    let mut buf = Vec::new();
    BufReader::new(reader).read_to_end(&mut buf)?;
    Ok(crate::wire::decode_events(&buf)?)
}

fn parse_field<T: std::str::FromStr>(tok: Option<&str>, line: usize, what: &str) -> Result<T> {
    match tok {
        None => Err(GraphError::Parse { line, message: format!("missing {what}") }),
        Some(tok) => tok
            .parse::<T>()
            .map_err(|_| GraphError::Parse { line, message: format!("invalid {what} `{tok}`") }),
    }
}

/// Timestamps may appear as integers or floats (Copenhagen dumps use
/// floats); floats are truncated to whole seconds.
fn parse_time(tok: Option<&str>, line: usize) -> Result<Time> {
    let tok = tok.ok_or_else(|| GraphError::Parse { line, message: "missing timestamp".into() })?;
    if let Ok(t) = tok.parse::<i64>() {
        return Ok(t);
    }
    match tok.parse::<f64>() {
        Ok(f) if f.is_finite() => Ok(f.trunc() as Time),
        _ => Err(GraphError::Parse { line, message: format!("invalid timestamp `{tok}`") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn parse_basic_edge_list() {
        let g = read_edge_list_str(
            "# comment\n\
             % another comment\n\
             100 200 10\n\
             200 100 15\n\
             \n\
             300 100 12\n",
        )
        .unwrap();
        assert_eq!(g.num_events(), 3);
        assert_eq!(g.num_nodes(), 3);
        // Sorted by time: 10, 12, 15.
        let times: Vec<_> = g.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10, 12, 15]);
    }

    #[test]
    fn parse_durations() {
        let g = read_edge_list_str("1 2 10 30\n2 1 50\n").unwrap();
        assert_eq!(g.events()[0].duration, 30);
        assert_eq!(g.events()[1].duration, 0);
    }

    #[test]
    fn parse_float_timestamps() {
        let g = read_edge_list_str("1 2 10.75\n2 3 11.2\n").unwrap();
        assert_eq!(g.events()[0].time, 10);
        assert_eq!(g.events()[1].time, 11);
    }

    #[test]
    fn self_loops_skipped() {
        let g = read_edge_list_str("1 1 5\n1 2 6\n").unwrap();
        assert_eq!(g.num_events(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_edge_list_str("1 2 10\nxyz 2 11\n").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("source node"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list_str("1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(read_edge_list_str("# only comments\n"), Err(GraphError::Empty)));
    }

    #[test]
    fn roundtrip() {
        let g = read_edge_list_str("5 6 100 7\n6 5 120\n9 5 130\n").unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_events(), g2.num_events());
        assert_eq!(g.num_nodes(), g2.num_nodes());
        for (a, b) in g.events().iter().zip(g2.events()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.duration, b.duration);
        }
    }

    #[test]
    fn raw_roundtrip_preserves_ids_and_order() {
        use crate::event::Event;
        // Ties on time with descending node ids: a compacting reader
        // would relabel and a sorting reader would permute these.
        let events = vec![
            Event::new(9u32, 2u32, 5),
            Event::new(3u32, 9u32, 5),
            Event::with_duration(2u32, 3u32, 7, 11),
        ];
        let mut buf = Vec::new();
        write_events_raw(&events, &mut buf).unwrap();
        let back = read_events_raw(buf.as_slice()).unwrap();
        assert_eq!(back, events);
        let mut empty = Vec::new();
        write_events_raw(&[], &mut empty).unwrap();
        assert!(read_events_raw(empty.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn raw_rejects_truncated_and_corrupt_blocks() {
        use crate::event::Event;
        let events = vec![Event::new(1u32, 2u32, 5), Event::new(2u32, 1u32, 6)];
        let mut buf = Vec::new();
        write_events_raw(&events, &mut buf).unwrap();
        // Cut mid-record: the count header claims more than is present,
        // and the reader must say so instead of under-reading.
        assert!(matches!(
            read_events_raw(&buf[..buf.len() - 3]),
            Err(GraphError::Decode(crate::wire::WireError::Truncated { .. }))
        ));
        // An inflated count header fails validation before allocation.
        let mut bomb = buf.clone();
        bomb[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_events_raw(bomb.as_slice()), Err(GraphError::Decode(_))));
        // Trailing bytes after the declared records are garbage.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(matches!(
            read_events_raw(padded.as_slice()),
            Err(GraphError::Decode(crate::wire::WireError::TrailingBytes { .. }))
        ));
        // The old text format is no longer a valid block.
        assert!(matches!(read_events_raw("1 2 5\n".as_bytes()), Err(GraphError::Decode(_))));
    }

    #[test]
    fn node_compaction_on_load() {
        let g = read_edge_list_str("1000000 2000000 1\n2000000 1000000 2\n").unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.events()[0].src, NodeId(0));
    }
}
