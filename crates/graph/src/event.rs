//! Temporal events: directed timestamped interactions.
//!
//! Following the paper's Section 2, an event is a tuple `(u, v, t, Δt)`
//! where `Δt` is the (usually ignored) duration. Durations matter only for
//! Hulovatyy et al.'s dynamic graphlets, so they are stored but default to
//! zero and are skipped by every other model.

use crate::ids::{Edge, NodeId, Time};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single temporal event `(u, v, t, Δt)`.
///
/// Events compare by `(time, src, dst, duration)` so that sorting a batch
/// of events is deterministic even when timestamps collide (a situation
/// the paper measures explicitly via the `|Eu|/|E|` column of Table 2).
///
/// The layout is `#[repr(C)]` and pinned by test: 24 bytes, align 8,
/// fields at offsets 0/4/8/16 (the tail is padding). Three things must
/// stay in lockstep — this struct, the packed 20-byte wire record
/// ([`crate::wire::EVENT_RECORD_BYTES`]), and the SoA column builder
/// ([`crate::EventColumns`]) — and the layout test is what catches a
/// field being added or reordered in one of them but not the others.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Source node of the interaction.
    pub src: NodeId,
    /// Target node of the interaction.
    pub dst: NodeId,
    /// Start time in seconds.
    pub time: Time,
    /// Duration in seconds; zero for instantaneous events.
    pub duration: u32,
}

impl Event {
    /// Creates an instantaneous event.
    #[inline]
    pub fn new(src: impl Into<NodeId>, dst: impl Into<NodeId>, time: Time) -> Self {
        Event { src: src.into(), dst: dst.into(), time, duration: 0 }
    }

    /// Creates an event with an explicit duration (Section 4.2 of the paper).
    #[inline]
    pub fn with_duration(
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        time: Time,
        duration: u32,
    ) -> Self {
        Event { src: src.into(), dst: dst.into(), time, duration }
    }

    /// The static projection of this event.
    #[inline]
    pub fn edge(&self) -> Edge {
        Edge { src: self.src, dst: self.dst }
    }

    /// End time: `time + duration`.
    #[inline]
    pub fn end_time(&self) -> Time {
        self.time + self.duration as Time
    }

    /// True if `node` participates in this event (as source or target).
    #[inline]
    pub fn touches(&self, node: NodeId) -> bool {
        self.src == node || self.dst == node
    }

    /// True if the two events share at least one node.
    #[inline]
    pub fn shares_node_with(&self, other: &Event) -> bool {
        self.touches(other.src) || self.touches(other.dst)
    }

    /// True if this is a self-loop (`u == v`). Self-loops are rejected by
    /// the graph builder because no motif model in the paper admits them.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.src == self.dst
    }
}

impl PartialOrd for Event {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.src, self.dst, self.duration).cmp(&(
            other.time,
            other.src,
            other.dst,
            other.duration,
        ))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.duration == 0 {
            write!(f, "({}, {}, {})", self.src, self.dst, self.time)
        } else {
            write!(f, "({}, {}, {}, {})", self.src, self.dst, self.time, self.duration)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let e = Event::new(1u32, 2u32, 100);
        assert_eq!(e.edge(), Edge::new(1u32, 2u32));
        assert_eq!(e.end_time(), 100);
        assert!(e.touches(NodeId(1)));
        assert!(e.touches(NodeId(2)));
        assert!(!e.touches(NodeId(3)));
        assert!(!e.is_self_loop());
        assert!(Event::new(4u32, 4u32, 0).is_self_loop());
    }

    #[test]
    fn event_with_duration_end_time() {
        let e = Event::with_duration(1u32, 2u32, 100, 30);
        assert_eq!(e.end_time(), 130);
        assert_eq!(e.to_string(), "(1, 2, 100, 30)");
    }

    #[test]
    fn events_order_by_time_then_nodes() {
        let a = Event::new(5u32, 6u32, 10);
        let b = Event::new(1u32, 2u32, 11);
        let c = Event::new(0u32, 9u32, 10);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn shares_node() {
        let a = Event::new(1u32, 2u32, 0);
        let b = Event::new(2u32, 3u32, 1);
        let c = Event::new(4u32, 5u32, 2);
        assert!(a.shares_node_with(&b));
        assert!(!a.shares_node_with(&c));
    }

    #[test]
    fn display_instantaneous() {
        assert_eq!(Event::new(3u32, 7u32, 42).to_string(), "(3, 7, 42)");
    }

    /// Pins the `#[repr(C)]` layout so the in-memory struct, the packed
    /// 20-byte wire record, and the SoA column builder cannot drift
    /// apart silently: any field added, widened, or reordered trips at
    /// least one of these assertions.
    #[test]
    fn repr_c_layout_is_pinned() {
        use std::mem::{align_of, offset_of, size_of};
        assert_eq!(size_of::<Event>(), 24, "src+dst+time+duration plus 4B tail padding");
        assert_eq!(align_of::<Event>(), 8, "aligned to the i64 time field");
        assert_eq!(offset_of!(Event, src), 0);
        assert_eq!(offset_of!(Event, dst), 4);
        assert_eq!(offset_of!(Event, time), 8);
        assert_eq!(offset_of!(Event, duration), 16);
        // The wire record packs the same four fields with no padding:
        // the struct's payload (24 - 4 tail bytes) is exactly one record.
        assert_eq!(crate::wire::EVENT_RECORD_BYTES, 4 + 4 + 8 + 4);
        assert_eq!(size_of::<Event>() - 4, crate::wire::EVENT_RECORD_BYTES);
    }
}
