//! Time-slice sharding: planner, materialized shard views, and a
//! spillable shard store for out-of-core counting.
//!
//! δ-bounded motif enumeration has a locality property the paper's
//! evaluation leans on (and Paranjape et al. make explicit): an instance
//! whose first event happens at time `t` lies entirely inside
//! `[t, t + reach]`, where `reach` is the largest admissible
//! first-to-last timespan (`min(ΔC·(k−1), ΔW)`, duration-widened for
//! duration-aware ΔC). A time-ordered event log therefore splits into
//! contiguous **shards** that only interact through a bounded trailing
//! **halo**, and each shard can be counted independently — sequentially
//! under a memory budget, or spilled to disk and loaded one at a time
//! for graphs larger than memory.
//!
//! Three pieces live here:
//!
//! * [`plan_shards`] — partitions the event range into owned start-event
//!   slices ([`ShardSpec::own`]) and computes each shard's materialized
//!   range ([`ShardSpec::range`]): the owned slice plus a **left pad**
//!   (earlier events sharing the first owned timestamp) and the trailing
//!   halo (every event within `reach` of the last owned start).
//!   Ownership is by start event, so instance sets of different shards
//!   are disjoint — nothing is counted twice, nothing is missed.
//! * [`materialize`] / [`Shard`] — an independent [`TemporalGraph`] view
//!   of one shard's event slice, with [`Shard::to_global`] mapping
//!   slice-local event indices back to parent indices.
//! * [`ShardStore`] — loads shards under a resident budget, either by
//!   rematerializing from the parent's buffer or, in **spill mode**, by
//!   serializing every shard up front (via
//!   [`io::write_events_raw`](crate::io::write_events_raw)) and
//!   (re)reading from disk, so peak residency is bounded by
//!   `max_resident × max shard size` regardless of graph size.
//!
//! ## What a shard view can and cannot answer
//!
//! The pad+halo construction guarantees a shard contains **every** graph
//! event with time in `[first owned time, last owned time + reach]`.
//! Time-windowed queries inside that closed interval — candidate
//! generation, Kovanen's consecutive-events counts, Hulovatyy's
//! constrained-freshness counts — answer identically on the shard and on
//! the parent. The one graph-global question a time slice cannot answer
//! is **static-projection membership** (`has_edge` over the whole
//! timeline), which is why the sharded engine in `tnm-motifs` evaluates
//! static inducedness against the parent graph via [`Shard::to_global`].

use crate::error::Result;
use crate::event::Event;
use crate::graph::TemporalGraph;
use crate::ids::{EventIdx, Time};
use std::collections::VecDeque;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// How [`plan_shards`] sizes the owned slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardGoal {
    /// Target this many owned start events per shard.
    EventsPerShard(usize),
    /// Split into this many shards of near-equal owned size.
    ShardCount(usize),
}

/// One planned shard: which start events it owns and which event slice
/// it materializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard position in time order (0-based).
    pub id: usize,
    /// Global indices of the start events this shard **owns**: walks are
    /// launched only from these, which is what makes per-shard instance
    /// sets disjoint.
    pub own: Range<usize>,
    /// Global indices of the events the shard **materializes**:
    /// `own` widened by the left pad (earlier events sharing
    /// `events[own.start]`'s timestamp, needed by inclusive
    /// restriction windows) and the trailing halo (events within `reach`
    /// of the last owned start's time).
    pub range: Range<usize>,
}

impl ShardSpec {
    /// Number of owned start events.
    pub fn num_owned(&self) -> usize {
        self.own.len()
    }

    /// Number of materialized events (owned + pad + halo).
    pub fn num_events(&self) -> usize {
        self.range.len()
    }

    /// Number of trailing halo events.
    pub fn halo_len(&self) -> usize {
        self.range.end - self.own.end
    }

    /// Number of left-pad events (equal-timestamp run before the first
    /// owned event).
    pub fn pad_len(&self) -> usize {
        self.own.start - self.range.start
    }

    /// The owned slice in shard-local coordinates.
    pub fn own_local(&self) -> Range<usize> {
        (self.own.start - self.range.start)..(self.own.end - self.range.start)
    }
}

/// The output of [`plan_shards`]: per-shard specs plus the reach they
/// were planned for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The halo reach used (`None` = unbounded timing: one shard).
    pub reach: Option<Time>,
    /// Shard specs in time order.
    pub shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// Number of planned shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the plan holds no shards (empty graph).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The largest materialized shard (events incl. pad and halo) — the
    /// unit the spill mode's memory bound is expressed in.
    pub fn max_shard_events(&self) -> usize {
        self.shards.iter().map(ShardSpec::num_events).max().unwrap_or(0)
    }

    /// Total materialized events across shards (≥ the graph's event
    /// count; the excess is pad/halo duplication).
    pub fn total_materialized_events(&self) -> usize {
        self.shards.iter().map(ShardSpec::num_events).sum()
    }
}

/// Plans contiguous time-slice shards over `graph`'s event range.
///
/// `reach` is the largest admissible first-to-last instance timespan
/// (see the [module docs](self)); `None` means unbounded timing, for
/// which every halo would cover the rest of the log, so the plan
/// degenerates to a single shard. Owned ranges partition `0..m`
/// exactly; materialized ranges overlap through their pads and halos.
pub fn plan_shards(graph: &TemporalGraph, reach: Option<Time>, goal: ShardGoal) -> ShardPlan {
    let m = graph.num_events();
    if m == 0 {
        return ShardPlan { reach, shards: Vec::new() };
    }
    let Some(reach) = reach else {
        return ShardPlan {
            reach: None,
            shards: vec![ShardSpec { id: 0, own: 0..m, range: 0..m }],
        };
    };
    let target = match goal {
        ShardGoal::EventsPerShard(n) => n.max(1),
        ShardGoal::ShardCount(c) => m.div_ceil(c.max(1)),
    };
    // Left-pad and halo scans probe the dense SoA time column: the
    // binary searches touch 8-byte rows instead of 24-byte `Event`s.
    let times = graph.times();
    let mut shards = Vec::with_capacity(m.div_ceil(target));
    let mut lo = 0usize;
    while lo < m {
        let hi = (lo + target).min(m);
        let first_owned_time = times[lo];
        let pad_start = times.partition_point(|&t| t < first_owned_time);
        let t_hi = times[hi - 1].saturating_add(reach);
        let halo_end = times.partition_point(|&t| t <= t_hi);
        shards.push(ShardSpec { id: shards.len(), own: lo..hi, range: pad_start..halo_end });
        lo = hi;
    }
    ShardPlan { reach: Some(reach), shards }
}

/// A materialized shard: an independent [`TemporalGraph`] over the
/// spec's event slice, in the parent's node-id space.
#[derive(Debug, Clone)]
pub struct Shard {
    spec: ShardSpec,
    graph: TemporalGraph,
}

impl Shard {
    /// The plan entry this shard was materialized from.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The shard's own graph view. Local event index `i` is parent event
    /// `range.start + i` ([`Shard::to_global`]).
    pub fn graph(&self) -> &TemporalGraph {
        &self.graph
    }

    /// The owned start events in shard-local coordinates.
    pub fn own_local(&self) -> Range<usize> {
        self.spec.own_local()
    }

    /// Maps a shard-local event index back to the parent graph.
    #[inline]
    pub fn to_global(&self, local: EventIdx) -> EventIdx {
        self.spec.range.start as EventIdx + local
    }
}

/// Builds the shard graph from the parent's already-sorted event slice.
/// The parent's node count is kept so node ids remain valid across the
/// shard boundary.
pub fn materialize(graph: &TemporalGraph, spec: &ShardSpec) -> Shard {
    let events = graph.events()[spec.range.clone()].to_vec();
    Shard { spec: spec.clone(), graph: shard_graph(events, graph.num_nodes()) }
}

fn shard_graph(events: Vec<Event>, num_nodes: u32) -> TemporalGraph {
    TemporalGraph::from_sorted_events(events, num_nodes)
}

/// Where an evicted shard is reloaded from.
#[derive(Debug)]
enum StoreBacking {
    /// Rematerialize from the parent graph's resident event buffer.
    Parent,
    /// Read back from per-shard files under `dir` (written up front).
    Spill {
        dir: PathBuf,
        /// Remove `dir` on drop (set for auto-created temp dirs).
        cleanup: bool,
    },
}

/// Loads shards under a resident-shard budget.
///
/// Construct with [`ShardStore::in_memory`] (unbounded residency),
/// [`ShardStore::in_memory_bounded`], or [`ShardStore::spill`] /
/// [`ShardStore::spill_to`] (out-of-core mode: every shard is serialized
/// to disk up front and (re)loaded on demand). Eviction is
/// least-recently-used; with budget `k` and a plan whose largest shard
/// holds `s` events, peak residency never exceeds `k × s` events — the
/// `shard.resident_events` gauge in the obs metrics registry tracks the
/// observed peak so tests and benches can assert the bound.
#[derive(Debug)]
pub struct ShardStore<'g> {
    parent: &'g TemporalGraph,
    plan: ShardPlan,
    backing: StoreBacking,
    /// 0 = unbounded.
    max_resident: usize,
    resident: Vec<Option<Shard>>,
    /// Resident ids, least-recently-used first.
    lru: VecDeque<usize>,
    resident_events: usize,
    loads: u64,
    evictions: u64,
}

impl<'g> ShardStore<'g> {
    fn new(
        parent: &'g TemporalGraph,
        plan: ShardPlan,
        backing: StoreBacking,
        budget: usize,
    ) -> Self {
        let n = plan.len();
        ShardStore {
            parent,
            plan,
            backing,
            max_resident: budget,
            resident: (0..n).map(|_| None).collect(),
            lru: VecDeque::new(),
            resident_events: 0,
            loads: 0,
            evictions: 0,
        }
    }

    /// A store that materializes lazily from the parent and keeps every
    /// shard resident.
    pub fn in_memory(parent: &'g TemporalGraph, plan: ShardPlan) -> Self {
        Self::new(parent, plan, StoreBacking::Parent, 0)
    }

    /// Like [`ShardStore::in_memory`], but keeps at most `max_resident`
    /// shards alive; evicted shards are rematerialized from the parent
    /// on the next access.
    pub fn in_memory_bounded(
        parent: &'g TemporalGraph,
        plan: ShardPlan,
        max_resident: usize,
    ) -> Self {
        Self::new(parent, plan, StoreBacking::Parent, max_resident.max(1))
    }

    /// Spill mode under an auto-created temporary directory (removed
    /// when the store drops).
    pub fn spill(parent: &'g TemporalGraph, plan: ShardPlan, max_resident: usize) -> Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tnm-shards-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // If serialization fails partway, remove the partial spill dir
        // before propagating — out-of-core runs hit disk pressure
        // exactly when leaked multi-shard temp files hurt most.
        let mut store = Self::spill_to(parent, plan, &dir, max_resident).inspect_err(|_| {
            let _ = std::fs::remove_dir_all(&dir);
        })?;
        if let StoreBacking::Spill { cleanup, .. } = &mut store.backing {
            *cleanup = true;
        }
        Ok(store)
    }

    /// Spill mode under an explicit directory (created if absent, left
    /// in place on drop). Every shard's event slice is written up front
    /// as `shard_<id>.events` via
    /// [`io::write_events_raw`](crate::io::write_events_raw).
    pub fn spill_to(
        parent: &'g TemporalGraph,
        plan: ShardPlan,
        dir: &Path,
        max_resident: usize,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        for spec in &plan.shards {
            let file = std::fs::File::create(shard_path(dir, spec.id))?;
            crate::io::write_events_raw(&parent.events()[spec.range.clone()], file)?;
        }
        tnm_obs::counter_add("shard.spills", plan.len() as u64);
        Ok(Self::new(
            parent,
            plan,
            StoreBacking::Spill { dir: dir.to_path_buf(), cleanup: false },
            max_resident.max(1),
        ))
    }

    /// The plan this store serves.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.plan.len()
    }

    /// True for stores that (re)load shards from disk.
    pub fn is_spilled(&self) -> bool {
        matches!(self.backing, StoreBacking::Spill { .. })
    }

    /// Path of shard `id`'s spilled event block (`None` unless the store
    /// is in spill mode). The distributed coordinator hands these paths
    /// to worker processes, which read them back with
    /// [`io::read_events_raw`](crate::io::read_events_raw).
    pub fn shard_file(&self, id: usize) -> Option<PathBuf> {
        match &self.backing {
            StoreBacking::Spill { dir, .. } => Some(shard_path(dir, id)),
            StoreBacking::Parent => None,
        }
    }

    /// Events currently held by resident shards.
    pub fn resident_events(&self) -> usize {
        self.resident_events
    }

    /// Shard loads performed (a shard accessed twice without eviction
    /// loads once).
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Evictions performed to honor the resident budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns shard `id`, loading (and evicting) as needed.
    pub fn get(&mut self, id: usize) -> Result<&Shard> {
        assert!(id < self.plan.len(), "shard id {id} out of range");
        if self.resident[id].is_some() {
            if let Some(pos) = self.lru.iter().position(|&r| r == id) {
                self.lru.remove(pos);
                self.lru.push_back(id);
            }
            return Ok(self.resident[id].as_ref().expect("checked resident"));
        }
        if self.max_resident > 0 {
            while self.lru.len() >= self.max_resident {
                let evicted = self.lru.pop_front().expect("non-empty LRU");
                if let Some(shard) = self.resident[evicted].take() {
                    self.resident_events -= shard.graph().num_events();
                    self.evictions += 1;
                    tnm_obs::counter_add("shard.evictions", 1);
                }
            }
        }
        let spec = self.plan.shards[id].clone();
        let shard = match &self.backing {
            StoreBacking::Parent => materialize(self.parent, &spec),
            StoreBacking::Spill { dir, .. } => {
                let file = std::fs::File::open(shard_path(dir, id))?;
                let events = crate::io::read_events_raw(file)?;
                if events.len() != spec.num_events() {
                    // A truncated or tampered spill file is an I/O-level
                    // failure the caller may handle, not a programming
                    // error worth aborting the whole run for.
                    return Err(crate::error::GraphError::Io(std::io::Error::other(format!(
                        "spilled shard {id} is corrupt: {} events on disk, {} planned",
                        events.len(),
                        spec.num_events()
                    ))));
                }
                Shard { spec, graph: shard_graph(events, self.parent.num_nodes()) }
            }
        };
        self.loads += 1;
        self.resident_events += shard.graph().num_events();
        tnm_obs::counter_add("shard.loads", 1);
        tnm_obs::gauge_set("shard.resident_events", self.resident_events as u64);
        self.lru.push_back(id);
        self.resident[id] = Some(shard);
        Ok(self.resident[id].as_ref().expect("just inserted"))
    }
}

impl Drop for ShardStore<'_> {
    fn drop(&mut self) {
        if let StoreBacking::Spill { dir, cleanup: true } = &self.backing {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn shard_path(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("shard_{id}.events"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemporalGraphBuilder;

    /// 40 events over 20 nodes with duplicate timestamps (two events per
    /// tick) so cuts land inside tie runs.
    fn tied_graph() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..40u32 {
            let t = (i / 2) as Time; // ties: events 2k and 2k+1 share t=k
            b.push(Event::new(i % 19, (i % 19) + 1, t));
        }
        b.build().unwrap()
    }

    fn check_plan_invariants(graph: &TemporalGraph, plan: &ShardPlan) {
        let m = graph.num_events();
        let events = graph.events();
        // Owned ranges partition 0..m.
        let mut next = 0usize;
        for s in &plan.shards {
            assert_eq!(s.own.start, next, "shard {} ownership gap", s.id);
            assert!(!s.own.is_empty());
            next = s.own.end;
            // Materialized range covers the owned range.
            assert!(s.range.start <= s.own.start && s.own.end <= s.range.end);
            // Left pad: everything sharing the first owned timestamp.
            let t_lo = events[s.own.start].time;
            if s.range.start > 0 {
                assert!(events[s.range.start - 1].time < t_lo, "pad too short");
            }
            assert!(events[s.range.start].time >= t_lo);
            // Halo: everything within reach of the last owned start.
            if let Some(reach) = plan.reach {
                let t_hi = events[s.own.end - 1].time.saturating_add(reach);
                if s.range.end < m {
                    assert!(events[s.range.end].time > t_hi, "halo too short");
                }
                assert!(events[s.range.end - 1].time <= t_hi, "halo too long");
            }
        }
        assert_eq!(next, m, "ownership must cover the whole event range");
    }

    #[test]
    fn plan_partitions_and_halos() {
        let g = tied_graph();
        for target in [1usize, 3, 7, 16, 100] {
            for reach in [0i64, 2, 5, 100] {
                let plan = plan_shards(&g, Some(reach), ShardGoal::EventsPerShard(target));
                check_plan_invariants(&g, &plan);
            }
        }
        let by_count = plan_shards(&g, Some(3), ShardGoal::ShardCount(4));
        assert_eq!(by_count.len(), 4);
        check_plan_invariants(&g, &by_count);
    }

    #[test]
    fn unbounded_reach_is_one_shard() {
        let g = tied_graph();
        let plan = plan_shards(&g, None, ShardGoal::EventsPerShard(4));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.shards[0].own, 0..g.num_events());
        assert_eq!(plan.shards[0].range, 0..g.num_events());
    }

    #[test]
    fn pad_covers_equal_timestamps_on_the_cut() {
        let g = tied_graph();
        // Odd target: some cuts fall between two events sharing a tick.
        let plan = plan_shards(&g, Some(2), ShardGoal::EventsPerShard(3));
        let cut_inside_tie = plan.shards.iter().any(|s| s.pad_len() > 0);
        assert!(cut_inside_tie, "test graph must produce a cut inside a tie run");
        for s in &plan.shards {
            let t_lo = g.events()[s.own.start].time;
            for e in &g.events()[s.range.start..s.own.start] {
                assert_eq!(e.time, t_lo, "pad may only hold the equal-timestamp run");
            }
        }
    }

    #[test]
    fn materialized_shard_matches_parent_slice() {
        let g = tied_graph();
        let plan = plan_shards(&g, Some(3), ShardGoal::EventsPerShard(7));
        for spec in &plan.shards {
            let shard = materialize(&g, spec);
            assert_eq!(shard.graph().events(), &g.events()[spec.range.clone()]);
            assert_eq!(shard.graph().num_nodes(), g.num_nodes());
            let local = shard.own_local();
            assert_eq!(local.len(), spec.num_owned());
            for l in local {
                let global = shard.to_global(l as EventIdx) as usize;
                assert!(spec.own.contains(&global));
                assert_eq!(shard.graph().event(l as EventIdx), g.event(global as EventIdx));
            }
        }
    }

    #[test]
    fn bounded_store_evicts_lru() {
        let _obs = tnm_obs::test_guard();
        tnm_obs::set_enabled(true);
        tnm_obs::global().reset();
        let g = tied_graph();
        let plan = plan_shards(&g, Some(2), ShardGoal::EventsPerShard(8));
        assert!(plan.len() >= 3, "need several shards");
        let max_shard = plan.max_shard_events();
        let n = plan.len();
        let mut store = ShardStore::in_memory_bounded(&g, plan, 2);
        for id in 0..n {
            store.get(id).unwrap();
            assert!(store.resident_events() <= 2 * max_shard);
        }
        assert_eq!(store.loads(), n as u64);
        assert_eq!(store.evictions(), (n - 2) as u64);
        // The memory high-water mark is read from the obs registry: the
        // `shard.resident_events` gauge peak must honor the `k × s`
        // residency bound.
        let snap = tnm_obs::global().snapshot();
        tnm_obs::set_enabled(false);
        assert!(snap.gauges["shard.resident_events"].peak as usize <= 2 * max_shard);
        // Re-access of a resident shard is not a load.
        store.get(n - 1).unwrap();
        assert_eq!(store.loads(), n as u64);
        // Re-access of an evicted shard is.
        store.get(0).unwrap();
        assert_eq!(store.loads(), n as u64 + 1);
    }

    #[test]
    fn spill_store_roundtrips_shards() {
        let _obs = tnm_obs::test_guard();
        tnm_obs::set_enabled(true);
        tnm_obs::global().reset();
        let mut b = TemporalGraphBuilder::new();
        for i in 0..30u32 {
            b.push(Event::with_duration(i % 9, (i % 9) + 3, (i / 3) as Time, i % 4));
        }
        let g = b.build().unwrap();
        let plan = plan_shards(&g, Some(2), ShardGoal::EventsPerShard(5));
        let n = plan.len();
        let mut spilled = ShardStore::spill(&g, plan.clone(), 1).unwrap();
        assert!(spilled.is_spilled());
        let mut direct = ShardStore::in_memory(&g, plan);
        for id in 0..n {
            let a = spilled.get(id).unwrap().graph().events().to_vec();
            let b = direct.get(id).unwrap().graph().events();
            assert_eq!(a.as_slice(), b, "spilled shard {id} differs from direct materialization");
            assert!(spilled.resident_events() <= spilled.plan().max_shard_events());
        }
        // The gauge is process-global, so its peak is the unbounded
        // in-memory mirror's full residency (every shard resident at
        // once) — which dominates the spill store's one-shard budget.
        let total: usize = direct.plan().shards.iter().map(|s| s.num_events()).sum();
        let snap = tnm_obs::global().snapshot();
        tnm_obs::set_enabled(false);
        assert_eq!(snap.gauges["shard.resident_events"].peak as usize, total);
    }

    #[test]
    fn spill_dir_is_cleaned_up() {
        let g = tied_graph();
        let plan = plan_shards(&g, Some(2), ShardGoal::EventsPerShard(8));
        let dir;
        {
            let mut store = ShardStore::spill(&g, plan, 1).unwrap();
            dir = match &store.backing {
                StoreBacking::Spill { dir, .. } => dir.clone(),
                _ => unreachable!(),
            };
            assert!(dir.exists());
            store.get(0).unwrap();
        }
        assert!(!dir.exists(), "temp spill dir must be removed on drop");
    }
}
