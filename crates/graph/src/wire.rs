//! Framed, versioned binary wire encoding for crossing process
//! boundaries.
//!
//! The distributed counting engine ships shard jobs to worker processes
//! over pipes and reads count replies back; spilled shard files cross
//! the same boundary on disk. There is no serde backend in this
//! offline workspace, so this module defines the encoding from scratch,
//! in three layers:
//!
//! * **Primitives** — [`WireWriter`] / [`WireReader`]: little-endian
//!   fixed-width integers, booleans, optional values, and
//!   length-prefixed byte strings over a plain byte buffer. Every read
//!   is bounds-checked and returns [`WireError::Truncated`] instead of
//!   panicking; [`WireReader::finish`] rejects trailing bytes so a
//!   decoder cannot silently ignore garbage.
//! * **Frames** — [`write_frame`] / [`read_frame`]: a stream of
//!   self-delimiting messages, each `magic(4) ‖ version(2) ‖ kind(1) ‖
//!   payload_len(4) ‖ payload`. The length header is validated against
//!   an explicit limit **before** any allocation, so a corrupt or
//!   malicious peer cannot trigger an OOM-sized buffer; a clean EOF at
//!   a frame boundary decodes as `None`, an EOF anywhere else is
//!   [`WireError::Truncated`].
//! * **Event blocks** — [`encode_events`] / [`decode_events`]: the
//!   on-disk format of spilled shards
//!   ([`io::write_events_raw`](crate::io::write_events_raw)), `magic ‖
//!   version ‖ count(8)` followed by fixed 20-byte records. The count
//!   header is validated against the remaining input before the event
//!   vector is allocated, and the record area must divide exactly —
//!   truncated and padded files both fail loudly.
//!
//! ## Invariants
//!
//! * Every message starts with a magic and a version; decoders reject
//!   unknown values of either, so a protocol revision can never be
//!   misread as the current one.
//! * Length headers are *claims to be verified*, never trusted:
//!   [`read_frame`] checks the payload length against its limit before
//!   allocating, [`decode_events`] checks the record count against the
//!   bytes actually present.
//! * Decoding consumes the input exactly: trailing bytes after a
//!   well-formed message are an error, not slack.
//!
//! Message *schemas* (job descriptors, count replies) live with the
//! types they serialize, in `tnm-motifs`' distributed engine — this
//! module deliberately knows nothing about motifs.

use crate::event::Event;
use crate::ids::Time;
use std::fmt;
use std::io::{Read, Write};

/// Magic bytes opening every wire frame.
pub const FRAME_MAGIC: [u8; 4] = *b"TNMW";

/// Magic bytes opening every serialized event block.
pub const EVENT_BLOCK_MAGIC: [u8; 4] = *b"TNME";

/// Current protocol version, embedded in every frame and event block.
pub const WIRE_VERSION: u16 = 1;

/// Ceiling on a single frame's payload (64 MiB). [`read_frame`] rejects
/// larger length headers before allocating anything.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 26;

/// Bytes per serialized event record: `src(4) ‖ dst(4) ‖ time(8) ‖
/// duration(4)`, little-endian.
pub const EVENT_RECORD_BYTES: usize = 20;

/// Bytes of the event-block header: magic, version, record count.
const EVENT_BLOCK_HEADER_BYTES: usize = 4 + 2 + 8;

/// Bytes of a frame header: magic, version, kind, payload length.
const FRAME_HEADER_BYTES: usize = 4 + 2 + 1 + 4;

/// Decode/transport failures of the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// Input ended before a declared structure was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The magic bytes did not match any known block type.
    BadMagic {
        /// The four bytes found.
        got: [u8; 4],
    },
    /// The version field named a protocol this build does not speak.
    BadVersion {
        /// The version found.
        got: u16,
    },
    /// A length header claimed more than the decoder's limit allows.
    Oversized {
        /// Claimed length in bytes (or records, for event blocks).
        len: u64,
        /// The limit it exceeded.
        limit: u64,
    },
    /// Well-formed content followed by unconsumed bytes.
    TrailingBytes {
        /// Number of leftover bytes.
        extra: usize,
    },
    /// Structurally invalid content (bad tag, bad UTF-8, out-of-range
    /// field).
    Malformed(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, {available} available")
            }
            WireError::BadMagic { got } => write!(f, "bad magic bytes {got:?}"),
            WireError::BadVersion { got } => {
                write!(f, "unsupported wire version {got} (this build speaks {WIRE_VERSION})")
            }
            WireError::Oversized { len, limit } => {
                write!(f, "length header claims {len}, over the limit {limit}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::Malformed(msg) => write!(f, "malformed message: {msg}"),
            WireError::Io(e) => write!(f, "i/o error on the wire: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Builds a message payload out of primitive fields.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends an optional `i64` as a presence byte plus the value.
    pub fn put_opt_i64(&mut self, v: Option<i64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_i64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked reader over an encoded payload.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, available: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a boolean byte, rejecting anything but `0` / `1`.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!("boolean byte {other}"))),
        }
    }

    /// Reads an optional `i64` written by [`WireWriter::put_opt_i64`].
    pub fn opt_i64(&mut self) -> Result<Option<i64>, WireError> {
        Ok(if self.bool()? { Some(self.i64()?) } else { None })
    }

    /// Reads a `u32`-length-prefixed byte string. The length is checked
    /// against the bytes actually remaining before anything is sliced.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| WireError::Malformed(format!("non-UTF-8 string: {e}")))
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes { extra: self.remaining() });
        }
        Ok(())
    }
}

/// Writes one frame: header (magic, version, kind, payload length) plus
/// payload. The caller flushes the underlying writer when the message
/// must become visible to the peer.
///
/// Payloads above [`MAX_FRAME_PAYLOAD`] are rejected **on the writing
/// side**: the peer's [`read_frame`] would refuse them anyway, and a
/// local [`WireError::Oversized`] is diagnosable where an apparent
/// remote crash is not (it also rules out the `u32` length field ever
/// wrapping and desyncing the stream).
pub fn write_frame<W: Write>(mut w: W, kind: u8, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized {
            len: payload.len() as u64,
            limit: MAX_FRAME_PAYLOAD as u64,
        });
    }
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    header[6] = kind;
    header[7..11].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, returning `(kind, payload)`.
///
/// `Ok(None)` means the stream ended cleanly **at a frame boundary**
/// (the peer closed after its last message); EOF anywhere inside a
/// frame is [`WireError::Truncated`]. The payload length header is
/// validated against `max_payload` before the buffer is allocated.
pub fn read_frame<R: Read>(
    mut r: R,
    max_payload: usize,
) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let mut filled = 0usize;
    while filled < header.len() {
        // EINTR is a retry, not a failure — a stray signal must never
        // make a healthy peer look crashed (read_exact does the same,
        // but cannot distinguish clean EOF from truncation).
        let n = match r.read(&mut header[filled..]) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(WireError::Truncated { needed: header.len(), available: filled });
        }
        filled += n;
    }
    if header[..4] != FRAME_MAGIC {
        return Err(WireError::BadMagic { got: header[..4].try_into().expect("4 bytes") });
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let kind = header[6];
    let len = u32::from_le_bytes(header[7..11].try_into().expect("4 bytes")) as usize;
    if len > max_payload {
        return Err(WireError::Oversized { len: len as u64, limit: max_payload as u64 });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        let n = match r.read(&mut payload[filled..]) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            return Err(WireError::Truncated { needed: len, available: filled });
        }
        filled += n;
    }
    Ok(Some((kind, payload)))
}

/// Serializes an event slice as a self-describing binary block: header
/// (magic, version, record count) plus fixed-width records. Node ids,
/// order, and durations are preserved exactly — the contract the shard
/// store and the distributed workers rely on.
pub fn encode_events(events: &[Event]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(EVENT_BLOCK_HEADER_BYTES + events.len() * EVENT_RECORD_BYTES);
    buf.extend_from_slice(&EVENT_BLOCK_MAGIC);
    buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        buf.extend_from_slice(&e.src.0.to_le_bytes());
        buf.extend_from_slice(&e.dst.0.to_le_bytes());
        buf.extend_from_slice(&e.time.to_le_bytes());
        buf.extend_from_slice(&e.duration.to_le_bytes());
    }
    buf
}

/// Decodes a block written by [`encode_events`].
///
/// The count header is validated against the bytes actually present
/// **before** the event vector is allocated: a truncated file fails
/// with [`WireError::Truncated`] and a padded one with
/// [`WireError::TrailingBytes`], never with an OOM-sized allocation or
/// a silently short read.
pub fn decode_events(buf: &[u8]) -> Result<Vec<Event>, WireError> {
    if buf.len() < EVENT_BLOCK_HEADER_BYTES {
        return Err(WireError::Truncated {
            needed: EVENT_BLOCK_HEADER_BYTES,
            available: buf.len(),
        });
    }
    if buf[..4] != EVENT_BLOCK_MAGIC {
        return Err(WireError::BadMagic { got: buf[..4].try_into().expect("4 bytes") });
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let count = u64::from_le_bytes(buf[6..14].try_into().expect("8 bytes"));
    let body = &buf[EVENT_BLOCK_HEADER_BYTES..];
    let available = (body.len() / EVENT_RECORD_BYTES) as u64;
    if count > available {
        // The length header claims more records than the input holds:
        // reject before allocating `count` events.
        return Err(WireError::Truncated {
            needed: (count as usize).saturating_mul(EVENT_RECORD_BYTES),
            available: body.len(),
        });
    }
    if count < available || !body.len().is_multiple_of(EVENT_RECORD_BYTES) {
        return Err(WireError::TrailingBytes {
            extra: body.len() - count as usize * EVENT_RECORD_BYTES,
        });
    }
    let mut events = Vec::with_capacity(count as usize);
    for rec in body.chunks_exact(EVENT_RECORD_BYTES) {
        let src = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        let time = Time::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
        let duration = u32::from_le_bytes(rec[16..20].try_into().expect("4 bytes"));
        events.push(Event::with_duration(src, dst, time, duration));
    }
    Ok(events)
}

/// Appends a [`tnm_obs::Snapshot`] to a payload: three `u32`-counted
/// sections (counters, gauges, histograms), entries name-ascending —
/// snapshots iterate sorted maps, so the encoding is deterministic.
/// Both wire protocols reuse this: worker replies carry per-shard
/// metrics back to the distributed coordinator, and the serve
/// protocol's Metrics response ships the daemon's registry.
pub fn put_obs_snapshot(w: &mut WireWriter, snap: &tnm_obs::Snapshot) {
    w.put_u32(snap.counters.len() as u32);
    for (name, v) in &snap.counters {
        w.put_str(name);
        w.put_u64(*v);
    }
    w.put_u32(snap.gauges.len() as u32);
    for (name, g) in &snap.gauges {
        w.put_str(name);
        w.put_u64(g.value);
        w.put_u64(g.peak);
    }
    w.put_u32(snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        w.put_str(name);
        w.put_u64(h.count);
        w.put_u64(h.sum);
        w.put_u32(h.buckets.len() as u32);
        for &(i, n) in &h.buckets {
            w.put_u8(i);
            w.put_u64(n);
        }
    }
}

/// Reads a snapshot written by [`put_obs_snapshot`]. Maps are built
/// incrementally (a corrupt count header runs out of input, never
/// pre-allocates), histogram bucket indices must be strictly ascending
/// and within [`tnm_obs::HISTOGRAM_BUCKETS`], and duplicate names are
/// rejected — the canonical form is the only decodable one.
pub fn get_obs_snapshot(r: &mut WireReader<'_>) -> Result<tnm_obs::Snapshot, WireError> {
    let mut snap = tnm_obs::Snapshot::default();
    for _ in 0..r.u32()? {
        let name = r.str()?.to_string();
        let v = r.u64()?;
        if snap.counters.insert(name, v).is_some() {
            return Err(WireError::Malformed("duplicate counter name".into()));
        }
    }
    for _ in 0..r.u32()? {
        let name = r.str()?.to_string();
        let g = tnm_obs::GaugeSnapshot { value: r.u64()?, peak: r.u64()? };
        if snap.gauges.insert(name, g).is_some() {
            return Err(WireError::Malformed("duplicate gauge name".into()));
        }
    }
    for _ in 0..r.u32()? {
        let name = r.str()?.to_string();
        let count = r.u64()?;
        let sum = r.u64()?;
        let num_buckets = r.u32()?;
        let mut buckets = Vec::new();
        let mut last: Option<u8> = None;
        for _ in 0..num_buckets {
            let i = r.u8()?;
            let n = r.u64()?;
            if i as usize >= tnm_obs::HISTOGRAM_BUCKETS {
                return Err(WireError::Malformed(format!("histogram bucket index {i}")));
            }
            if last.is_some_and(|p| p >= i) {
                return Err(WireError::Malformed("histogram buckets not ascending".into()));
            }
            last = Some(i);
            buckets.push((i, n));
        }
        let h = tnm_obs::HistogramSnapshot { count, sum, buckets };
        if snap.histograms.insert(name, h).is_some() {
            return Err(WireError::Malformed("duplicate histogram name".into()));
        }
    }
    Ok(snap)
}

/// Appends a list of [`tnm_obs::SpanRecord`]s: a `u32` count, then per
/// record `name ‖ args ‖ start_ns ‖ dur_ns ‖ tid ‖ depth ‖ trace_id ‖
/// span_id ‖ parent_id`. This is how distributed workers ship their
/// side of a request trace back to the coordinator, and how the serve
/// daemon returns a stitched span tree to `tnm client --trace`.
pub fn put_span_records(w: &mut WireWriter, spans: &[tnm_obs::SpanRecord]) {
    w.put_u32(spans.len() as u32);
    for s in spans {
        w.put_str(&s.name);
        w.put_u32(s.args.len() as u32);
        for (k, v) in &s.args {
            w.put_str(k);
            w.put_str(v);
        }
        w.put_u64(s.start_ns);
        w.put_u64(s.dur_ns);
        w.put_u64(s.tid);
        w.put_u32(s.depth);
        w.put_u64(s.trace_id);
        w.put_u64(s.span_id);
        w.put_u64(s.parent_id);
    }
}

/// Reads span records written by [`put_span_records`]. The vector is
/// built incrementally, so a forged count header runs out of input
/// instead of pre-allocating; a recorded span id of 0 is rejected (it
/// is the "no parent" sentinel and can never be a real span).
pub fn get_span_records(r: &mut WireReader<'_>) -> Result<Vec<tnm_obs::SpanRecord>, WireError> {
    let count = r.u32()?;
    let mut spans = Vec::new();
    for _ in 0..count {
        let name = r.str()?.to_string();
        let num_args = r.u32()?;
        let mut args = Vec::new();
        for _ in 0..num_args {
            args.push((r.str()?.to_string(), r.str()?.to_string()));
        }
        let span = tnm_obs::SpanRecord {
            name,
            args,
            start_ns: r.u64()?,
            dur_ns: r.u64()?,
            tid: r.u64()?,
            depth: r.u32()?,
            trace_id: r.u64()?,
            span_id: r.u64()?,
            parent_id: r.u64()?,
        };
        if span.span_id == 0 {
            return Err(WireError::Malformed("span id 0 is reserved".into()));
        }
        spans.push(span);
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_opt_i64(Some(-9));
        w.put_opt_i64(None);
        w.put_str("shard_3.events");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_i64().unwrap(), Some(-9));
        assert_eq!(r.opt_i64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "shard_3.events");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_trailing() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(WireError::Truncated { needed: 4, available: 2 })));
        // A byte-string length claiming past the end must not slice.
        let mut w = WireWriter::new();
        w.put_u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(WireError::Truncated { .. })));
        // finish() flags leftovers.
        let mut r = WireReader::new(&[0, 1, 2]);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(WireError::TrailingBytes { extra: 2 })));
        // Booleans reject non-0/1 bytes.
        assert!(matches!(WireReader::new(&[9]).bool(), Err(WireError::Malformed(_))));
        // Strings reject invalid UTF-8.
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(matches!(WireReader::new(&bytes).str(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn oversized_payload_rejected_on_write() {
        let big = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, 1, &big),
            Err(WireError::Oversized { limit, .. }) if limit == MAX_FRAME_PAYLOAD as u64
        ));
        assert!(out.is_empty(), "nothing may reach the stream");
    }

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 3, b"hello").unwrap();
        write_frame(&mut stream, 4, b"").unwrap();
        let mut cursor = stream.as_slice();
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), Some((3, b"hello".to_vec())));
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), Some((4, Vec::new())));
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn frame_rejects_corruption() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 1, b"payload").unwrap();
        // Truncated header.
        assert!(matches!(
            read_frame(&stream[..5], 1024),
            Err(WireError::Truncated { available: 5, .. })
        ));
        // Truncated payload.
        let cut = stream.len() - 2;
        assert!(matches!(read_frame(&stream[..cut], 1024), Err(WireError::Truncated { .. })));
        // Bad magic.
        let mut bad = stream.clone();
        bad[0] = b'X';
        assert!(matches!(read_frame(bad.as_slice(), 1024), Err(WireError::BadMagic { .. })));
        // Future version.
        let mut bad = stream.clone();
        bad[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(matches!(read_frame(bad.as_slice(), 1024), Err(WireError::BadVersion { got: 99 })));
        // Oversized length header: rejected before allocation.
        let mut bad = stream.clone();
        bad[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(bad.as_slice(), 1024), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn event_block_roundtrip() {
        let events = vec![
            Event::new(9u32, 2u32, 5),
            Event::new(3u32, 9u32, 5),
            Event::with_duration(2u32, 3u32, -7, 11),
        ];
        let block = encode_events(&events);
        assert_eq!(block.len(), EVENT_BLOCK_HEADER_BYTES + 3 * EVENT_RECORD_BYTES);
        assert_eq!(decode_events(&block).unwrap(), events);
        assert!(decode_events(&encode_events(&[])).unwrap().is_empty());
    }

    #[test]
    fn event_block_rejects_corruption() {
        let events = vec![Event::new(1u32, 2u32, 10), Event::new(2u32, 1u32, 12)];
        let block = encode_events(&events);
        // Truncated header and truncated records.
        assert!(matches!(decode_events(&block[..6]), Err(WireError::Truncated { .. })));
        // Cut mid-record: fewer whole records than the header claims.
        assert!(matches!(
            decode_events(&block[..block.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        // Count header claims more records than are present.
        assert!(matches!(
            decode_events(&block[..block.len() - EVENT_RECORD_BYTES]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing bytes after the declared records.
        let mut padded = block.clone();
        padded.extend_from_slice(&[0u8; EVENT_RECORD_BYTES]);
        assert!(matches!(decode_events(&padded), Err(WireError::TrailingBytes { .. })));
        // Bad magic / version.
        let mut bad = block.clone();
        bad[0] = b'x';
        assert!(matches!(decode_events(&bad), Err(WireError::BadMagic { .. })));
        let mut bad = block.clone();
        bad[4..6].copy_from_slice(&7u16.to_le_bytes());
        assert!(matches!(decode_events(&bad), Err(WireError::BadVersion { got: 7 })));
        // An OOM-sized count header must fail by validation, not by
        // allocation: claim u64::MAX records over a 2-record body.
        let mut bomb = block;
        bomb[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode_events(&bomb), Err(WireError::Truncated { .. })));
    }

    fn sample_snapshot() -> tnm_obs::Snapshot {
        let r = tnm_obs::Registry::new();
        r.counter("engine.events_scanned").add(41);
        r.counter("shard.loads").add(3);
        r.gauge("shard.resident_events").set(512);
        let h = r.histogram("distributed.shard_wall_ns");
        h.record(0);
        h.record(900);
        h.record(u64::MAX);
        r.snapshot()
    }

    #[test]
    fn obs_snapshot_roundtrips_exactly() {
        let snap = sample_snapshot();
        let mut w = WireWriter::new();
        put_obs_snapshot(&mut w, &snap);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let decoded = get_obs_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, snap);
        // Deterministic: re-encoding the decoded snapshot is bit-identical.
        let mut w2 = WireWriter::new();
        put_obs_snapshot(&mut w2, &decoded);
        assert_eq!(w2.into_bytes(), bytes);
        // Empty snapshots work too.
        let mut w = WireWriter::new();
        put_obs_snapshot(&mut w, &tnm_obs::Snapshot::default());
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(get_obs_snapshot(&mut r).unwrap().is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn obs_snapshot_rejects_corruption() {
        let mut w = WireWriter::new();
        put_obs_snapshot(&mut w, &sample_snapshot());
        let bytes = w.into_bytes();
        // Truncation at every prefix fails loudly (never panics, never
        // silently succeeds on a strict prefix).
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let result = get_obs_snapshot(&mut r).and_then(|_| r.finish());
            assert!(result.is_err(), "prefix of {cut} bytes must not decode");
        }
        // A count header claiming entries past the input must not
        // pre-allocate or succeed.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let bomb = w.into_bytes();
        let mut r = WireReader::new(&bomb);
        assert!(matches!(get_obs_snapshot(&mut r), Err(WireError::Truncated { .. })));
        // Out-of-range and non-ascending bucket indices are malformed.
        let mut w = WireWriter::new();
        let mut bad = tnm_obs::Snapshot::default();
        bad.histograms.insert(
            "h".into(),
            tnm_obs::HistogramSnapshot { count: 1, sum: 1, buckets: vec![(65, 1)] },
        );
        put_obs_snapshot(&mut w, &bad);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(get_obs_snapshot(&mut r), Err(WireError::Malformed(_))));
        let mut w = WireWriter::new();
        let mut bad = tnm_obs::Snapshot::default();
        bad.histograms.insert(
            "h".into(),
            tnm_obs::HistogramSnapshot { count: 2, sum: 2, buckets: vec![(5, 1), (5, 1)] },
        );
        put_obs_snapshot(&mut w, &bad);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(get_obs_snapshot(&mut r), Err(WireError::Malformed(_))));
    }

    fn sample_spans() -> Vec<tnm_obs::SpanRecord> {
        vec![
            tnm_obs::SpanRecord {
                name: "walk.shard0".to_string(),
                args: vec![("shard".to_string(), "0".to_string())],
                start_ns: 0,
                dur_ns: 1_000,
                tid: 1,
                depth: 0,
                trace_id: 0xABCD,
                span_id: 1,
                parent_id: 0,
            },
            tnm_obs::SpanRecord {
                name: "walk.worker1".to_string(),
                args: vec![],
                start_ns: 10,
                dur_ns: 500,
                tid: 2,
                depth: 1,
                trace_id: 0xABCD,
                span_id: 2,
                parent_id: 1,
            },
        ]
    }

    #[test]
    fn span_records_roundtrip_exactly() {
        let spans = sample_spans();
        let mut w = WireWriter::new();
        put_span_records(&mut w, &spans);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let decoded = get_span_records(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, spans);
        // Empty lists work.
        let mut w = WireWriter::new();
        put_span_records(&mut w, &[]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(get_span_records(&mut r).unwrap().is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn span_records_reject_corruption() {
        let mut w = WireWriter::new();
        put_span_records(&mut w, &sample_spans());
        let bytes = w.into_bytes();
        // Every strict prefix fails loudly.
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let result = get_span_records(&mut r).and_then(|_| r.finish());
            assert!(result.is_err(), "prefix of {cut} bytes must not decode");
        }
        // A forged count header must not pre-allocate or succeed.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let bomb = w.into_bytes();
        let mut r = WireReader::new(&bomb);
        assert!(matches!(get_span_records(&mut r), Err(WireError::Truncated { .. })));
        // Span id 0 is the "no parent" sentinel — never a real record.
        let mut bad = sample_spans();
        bad[0].span_id = 0;
        let mut w = WireWriter::new();
        put_span_records(&mut w, &bad);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(get_span_records(&mut r), Err(WireError::Malformed(_))));
    }

    #[test]
    fn errors_display() {
        assert!(WireError::Truncated { needed: 4, available: 1 }.to_string().contains("truncated"));
        assert!(WireError::BadVersion { got: 9 }.to_string().contains("version 9"));
        assert!(WireError::Oversized { len: 10, limit: 5 }.to_string().contains("limit"));
        assert!(WireError::from(std::io::Error::other("x")).to_string().contains("i/o"));
    }
}
