//! Graph transformations used by the paper's experimental protocol.
//!
//! * **Resolution degrading** (Section 5.1.2): timestamps are floored to a
//!   bucket size (300 s in the paper) to emulate snapshot-based data and
//!   surface the constrained-dynamic-graphlet behaviour.
//! * **Slicing** (Section 5, Datasets): the paper keeps only the earliest
//!   10 % of StackOverflow events "for efficiency purposes".
//! * **Node compaction**: drops unused node ids after filtering.

use crate::builder::TemporalGraphBuilder;
use crate::event::Event;
use crate::graph::TemporalGraph;
use crate::ids::Time;

/// Floors every timestamp to a multiple of `bucket` seconds, emulating a
/// snapshot representation (paper Section 5.1.2 uses `bucket = 300`).
///
/// Durations are preserved. Events keep their identity, so counts per edge
/// do not change — only timestamp collisions increase.
///
/// # Panics
///
/// Panics if `bucket <= 0`.
pub fn degrade_resolution(graph: &TemporalGraph, bucket: Time) -> TemporalGraph {
    assert!(bucket > 0, "bucket size must be positive");
    let events: Vec<Event> = graph
        .events()
        .iter()
        .map(|e| Event { time: e.time.div_euclid(bucket) * bucket, ..*e })
        .collect();
    TemporalGraphBuilder::from_events(events).build().expect("degrading a valid graph cannot fail")
}

/// Keeps the earliest `fraction` of events (by position in the
/// time-ordered stream), as the paper does for StackOverflow (10 %).
///
/// `fraction` is clamped to `[0, 1]`; the slice always keeps at least one
/// event so the result stays a valid graph.
pub fn slice_earliest_fraction(graph: &TemporalGraph, fraction: f64) -> TemporalGraph {
    let m = graph.num_events();
    let keep = ((m as f64 * fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, m);
    let events: Vec<Event> = graph.events()[..keep].to_vec();
    TemporalGraphBuilder::from_events(events).build().expect("non-empty slice of a valid graph")
}

/// Keeps only events within the inclusive time window `[t0, t1]`.
/// Returns `None` if the window is empty.
pub fn slice_time_window(graph: &TemporalGraph, t0: Time, t1: Time) -> Option<TemporalGraph> {
    let (_, evs) = graph.events_in_window(t0, t1);
    if evs.is_empty() {
        return None;
    }
    Some(
        TemporalGraphBuilder::from_events(evs.to_vec())
            .build()
            .expect("non-empty window of a valid graph"),
    )
}

/// Retains events satisfying `keep`, returning `None` when nothing
/// survives the filter.
pub fn filter_events<F>(graph: &TemporalGraph, mut keep: F) -> Option<TemporalGraph>
where
    F: FnMut(&Event) -> bool,
{
    let events: Vec<Event> = graph.events().iter().filter(|e| keep(e)).copied().collect();
    if events.is_empty() {
        None
    } else {
        Some(TemporalGraphBuilder::from_events(events).build().expect("non-empty filter result"))
    }
}

/// Shifts all timestamps so the earliest event starts at `origin`.
pub fn rebase_time(graph: &TemporalGraph, origin: Time) -> TemporalGraph {
    let offset = origin - graph.first_time().unwrap_or(0);
    let events: Vec<Event> =
        graph.events().iter().map(|e| Event { time: e.time + offset, ..*e }).collect();
    TemporalGraphBuilder::from_events(events).build().expect("rebasing a valid graph")
}

/// Renumbers nodes densely by first appearance, dropping unused ids.
/// Useful after [`filter_events`] or [`slice_time_window`].
pub fn compact_nodes(graph: &TemporalGraph) -> TemporalGraph {
    let raw: Vec<(u64, u64, Time)> =
        graph.events().iter().map(|e| (e.src.0 as u64, e.dst.0 as u64, e.time)).collect();
    let (mut events, _names) = crate::builder::compact_node_ids(&raw);
    // compact_node_ids drops durations; restore them positionally.
    for (ev, orig) in events.iter_mut().zip(graph.events()) {
        ev.duration = orig.duration;
    }
    TemporalGraphBuilder::from_events(events).build().expect("compacting a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn sample() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .event(0, 1, 3)
            .event(1, 2, 307)
            .event(2, 0, 432)
            .event(0, 2, 650)
            .build()
            .unwrap()
    }

    #[test]
    fn degrade_floors_to_bucket() {
        let g = degrade_resolution(&sample(), 300);
        let times: Vec<_> = g.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 300, 300, 600]);
        assert_eq!(g.num_events(), 4);
    }

    #[test]
    fn degrade_handles_negative_times() {
        let g = TemporalGraphBuilder::new().event(0, 1, -10).event(1, 2, 10).build().unwrap();
        let d = degrade_resolution(&g, 300);
        assert_eq!(d.events()[0].time, -300);
        assert_eq!(d.events()[1].time, 0);
    }

    #[test]
    #[should_panic(expected = "bucket size must be positive")]
    fn degrade_rejects_zero_bucket() {
        degrade_resolution(&sample(), 0);
    }

    #[test]
    fn slice_fraction_keeps_prefix() {
        let g = slice_earliest_fraction(&sample(), 0.5);
        assert_eq!(g.num_events(), 2);
        assert_eq!(g.last_time(), Some(307));
        // Never empty:
        assert_eq!(slice_earliest_fraction(&sample(), 0.0).num_events(), 1);
        assert_eq!(slice_earliest_fraction(&sample(), 2.0).num_events(), 4);
    }

    #[test]
    fn window_slice() {
        let g = slice_time_window(&sample(), 300, 500).unwrap();
        assert_eq!(g.num_events(), 2);
        assert!(slice_time_window(&sample(), 1000, 2000).is_none());
    }

    #[test]
    fn filtering() {
        let g = filter_events(&sample(), |e| e.src == NodeId(0)).unwrap();
        assert_eq!(g.num_events(), 2);
        assert!(filter_events(&sample(), |_| false).is_none());
    }

    #[test]
    fn rebase_shifts_all() {
        let g = rebase_time(&sample(), 0);
        assert_eq!(g.first_time(), Some(0));
        assert_eq!(g.last_time(), Some(647));
    }

    #[test]
    fn compaction_renumbers() {
        let g = TemporalGraphBuilder::new().event(10, 20, 1).event(20, 30, 2).build().unwrap();
        assert_eq!(g.num_nodes(), 31);
        let c = compact_nodes(&g);
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.events()[0].src, NodeId(0));
        assert_eq!(c.events()[0].dst, NodeId(1));
    }

    #[test]
    fn compaction_preserves_durations() {
        let g = TemporalGraphBuilder::new()
            .event_with_duration(5, 9, 1, 60)
            .event(9, 5, 2)
            .build()
            .unwrap();
        let c = compact_nodes(&g);
        assert_eq!(c.events()[0].duration, 60);
        assert_eq!(c.events()[1].duration, 0);
    }
}
