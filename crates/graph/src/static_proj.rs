//! Static projection of a temporal network.
//!
//! The paper distinguishes *edges* (static projections, unique node pairs)
//! from *events* (timestamped interactions). Inducedness for Hulovatyy and
//! Paranjape models is defined against this projection, and the dataset
//! generators use its degree distributions for preferential attachment.

use crate::graph::TemporalGraph;
use crate::ids::{Edge, NodeId};
use std::collections::HashMap;

/// The static directed graph underlying a temporal network, with
/// multiplicity (events-per-edge) information.
#[derive(Debug, Clone)]
pub struct StaticProjection {
    out_neighbors: Vec<Vec<NodeId>>,
    in_neighbors: Vec<Vec<NodeId>>,
    multiplicity: HashMap<Edge, u32>,
}

impl StaticProjection {
    /// Builds the projection from a temporal graph.
    pub fn from_graph(graph: &TemporalGraph) -> Self {
        let n = graph.num_nodes() as usize;
        let mut multiplicity: HashMap<Edge, u32> = HashMap::new();
        for e in graph.events() {
            *multiplicity.entry(e.edge()).or_insert(0) += 1;
        }
        let mut out_neighbors = vec![Vec::new(); n];
        let mut in_neighbors = vec![Vec::new(); n];
        for edge in multiplicity.keys() {
            out_neighbors[edge.src.index()].push(edge.dst);
            in_neighbors[edge.dst.index()].push(edge.src);
        }
        for list in out_neighbors.iter_mut().chain(in_neighbors.iter_mut()) {
            list.sort_unstable();
        }
        StaticProjection { out_neighbors, in_neighbors, multiplicity }
    }

    /// Distinct out-neighbors of `node`.
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.out_neighbors[node.index()]
    }

    /// Distinct in-neighbors of `node`.
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.in_neighbors[node.index()]
    }

    /// Static out-degree.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_neighbors[node.index()].len()
    }

    /// Static in-degree.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_neighbors[node.index()].len()
    }

    /// Number of events projected onto `edge` (0 if absent).
    pub fn multiplicity(&self, edge: Edge) -> u32 {
        self.multiplicity.get(&edge).copied().unwrap_or(0)
    }

    /// True if the directed edge exists.
    pub fn has_edge(&self, edge: Edge) -> bool {
        self.multiplicity.contains_key(&edge)
    }

    /// Number of distinct directed edges.
    pub fn num_edges(&self) -> usize {
        self.multiplicity.len()
    }

    /// Distinct neighbors of `node` ignoring direction, sorted and
    /// deduplicated. The adjacency the undirected triangle walk uses.
    pub fn undirected_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.out_neighbors[node.index()]
            .iter()
            .chain(self.in_neighbors[node.index()].iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Invokes `f` once per undirected triangle `{a, b, c}` (as a sorted
    /// `[a, b, c]` with `a < b < c`) of the projection, regardless of
    /// event directions on its three node pairs. This is the classic
    /// forward-adjacency walk: each node keeps only its higher-id
    /// undirected neighbors, and each triangle is discovered exactly once
    /// from its lowest edge. Cost `O(Σ_edges min-degree)` — the standard
    /// triangle-listing bound.
    ///
    /// The streaming motif engine enumerates static triangles once
    /// through this hook and then runs its δ-window merge DP over each
    /// triangle's event list.
    pub fn for_each_undirected_triangle<F: FnMut([NodeId; 3])>(&self, mut f: F) {
        let n = self.out_neighbors.len();
        // Forward adjacency: undirected neighbors with a strictly higher id.
        let forward: Vec<Vec<NodeId>> = (0..n)
            .map(|u| {
                let mut fwd = self.undirected_neighbors(NodeId(u as u32));
                fwd.retain(|v| v.index() > u);
                fwd
            })
            .collect();
        for a in 0..n {
            let fa = &forward[a];
            for (i, &b) in fa.iter().enumerate() {
                let fb = &forward[b.index()];
                // Intersect the two sorted higher-neighbor runs; every
                // common member c closes the triangle a < b < c.
                let (mut x, mut y) = (i + 1, 0);
                while x < fa.len() && y < fb.len() {
                    match fa[x].cmp(&fb[y]) {
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                        std::cmp::Ordering::Equal => {
                            f([NodeId(a as u32), b, fa[x]]);
                            x += 1;
                            y += 1;
                        }
                    }
                }
            }
        }
    }

    /// Fraction of directed edges whose reverse edge also exists
    /// (a reciprocity measure: message networks are highly reciprocal,
    /// stack-exchange networks much less so).
    pub fn reciprocity(&self) -> f64 {
        if self.multiplicity.is_empty() {
            return 0.0;
        }
        let reciprocated = self
            .multiplicity
            .keys()
            .filter(|e| self.multiplicity.contains_key(&e.reversed()))
            .count();
        reciprocated as f64 / self.multiplicity.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemporalGraphBuilder;

    fn sample() -> StaticProjection {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(0, 1, 5)
            .event(1, 0, 7)
            .event(1, 2, 9)
            .event(2, 0, 11)
            .build()
            .unwrap();
        StaticProjection::from_graph(&g)
    }

    #[test]
    fn neighbors_and_degrees() {
        let p = sample();
        assert_eq!(p.out_neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(p.out_neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(p.in_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(p.out_degree(NodeId(1)), 2);
        assert_eq!(p.in_degree(NodeId(2)), 1);
    }

    #[test]
    fn multiplicity_counts_events() {
        let p = sample();
        assert_eq!(p.multiplicity(Edge::new(0u32, 1u32)), 2);
        assert_eq!(p.multiplicity(Edge::new(1u32, 0u32)), 1);
        assert_eq!(p.multiplicity(Edge::new(2u32, 1u32)), 0);
        assert_eq!(p.num_edges(), 4);
    }

    #[test]
    fn reciprocity_ratio() {
        let p = sample();
        // Edges: 0->1, 1->0 (reciprocated pair), 1->2, 2->0.
        // Reciprocated directed edges: 0->1 and 1->0 => 2 of 4.
        assert!((p.reciprocity() - 0.5).abs() < 1e-12);
    }
}
