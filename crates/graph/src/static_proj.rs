//! Static projection of a temporal network.
//!
//! The paper distinguishes *edges* (static projections, unique node pairs)
//! from *events* (timestamped interactions). Inducedness for Hulovatyy and
//! Paranjape models is defined against this projection, and the dataset
//! generators use its degree distributions for preferential attachment.
//!
//! Building the projection costs an `O(m)` multiplicity pass plus
//! neighbor-list sorts, and the streaming motif engine needs it once per
//! *count* — a ΔW sweep over one graph would rebuild it dozens of times.
//! [`StaticProjectionCache`] (and the process-wide
//! [`global_projection_cache`]) lets every consumer share one projection
//! per graph, with the same identity-plus-verification model as
//! [`WindowIndexCache`](crate::index_cache::WindowIndexCache): entries
//! are keyed on the graph's event-buffer address and **exactly verified**
//! against the graph's content on every hit, so a recycled allocation
//! can never serve a stale projection.

use crate::graph::TemporalGraph;
use crate::ids::{Edge, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The static directed graph underlying a temporal network, with
/// multiplicity (events-per-edge) information.
#[derive(Debug, Clone)]
pub struct StaticProjection {
    out_neighbors: Vec<Vec<NodeId>>,
    in_neighbors: Vec<Vec<NodeId>>,
    multiplicity: HashMap<Edge, u32>,
    /// Events of the graph this was built from, for [`Self::matches`].
    num_events: usize,
}

impl StaticProjection {
    /// Builds the projection from a temporal graph.
    pub fn from_graph(graph: &TemporalGraph) -> Self {
        let n = graph.num_nodes() as usize;
        let mut multiplicity: HashMap<Edge, u32> = HashMap::new();
        for e in graph.events() {
            *multiplicity.entry(e.edge()).or_insert(0) += 1;
        }
        let mut out_neighbors = vec![Vec::new(); n];
        let mut in_neighbors = vec![Vec::new(); n];
        for edge in multiplicity.keys() {
            out_neighbors[edge.src.index()].push(edge.dst);
            in_neighbors[edge.dst.index()].push(edge.src);
        }
        for list in out_neighbors.iter_mut().chain(in_neighbors.iter_mut()) {
            list.sort_unstable();
        }
        StaticProjection {
            out_neighbors,
            in_neighbors,
            multiplicity,
            num_events: graph.num_events(),
        }
    }

    /// True if this projection exactly describes `graph`: same node-id
    /// space, same event count, and an identical edge-multiplicity map
    /// recomputed from the graph's events. One `O(m)` counting pass plus
    /// a map comparison — cheaper than a rebuild (no neighbor-list
    /// allocation or sorting), and exact: two different graphs can never
    /// both match one projection.
    pub fn matches(&self, graph: &TemporalGraph) -> bool {
        if self.num_events != graph.num_events()
            || self.out_neighbors.len() != graph.num_nodes() as usize
        {
            return false;
        }
        let mut seen: HashMap<Edge, u32> = HashMap::with_capacity(self.multiplicity.len());
        for e in graph.events() {
            *seen.entry(e.edge()).or_insert(0) += 1;
        }
        seen == self.multiplicity
    }

    /// Distinct out-neighbors of `node`.
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.out_neighbors[node.index()]
    }

    /// Distinct in-neighbors of `node`.
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.in_neighbors[node.index()]
    }

    /// Static out-degree.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_neighbors[node.index()].len()
    }

    /// Static in-degree.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_neighbors[node.index()].len()
    }

    /// Number of events projected onto `edge` (0 if absent).
    pub fn multiplicity(&self, edge: Edge) -> u32 {
        self.multiplicity.get(&edge).copied().unwrap_or(0)
    }

    /// True if the directed edge exists.
    pub fn has_edge(&self, edge: Edge) -> bool {
        self.multiplicity.contains_key(&edge)
    }

    /// Number of distinct directed edges.
    pub fn num_edges(&self) -> usize {
        self.multiplicity.len()
    }

    /// Distinct neighbors of `node` ignoring direction, sorted and
    /// deduplicated. The adjacency the undirected triangle walk uses.
    pub fn undirected_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.out_neighbors[node.index()]
            .iter()
            .chain(self.in_neighbors[node.index()].iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Invokes `f` once per undirected triangle `{a, b, c}` (as a sorted
    /// `[a, b, c]` with `a < b < c`) of the projection, regardless of
    /// event directions on its three node pairs. This is the classic
    /// forward-adjacency walk: each node keeps only its higher-id
    /// undirected neighbors, and each triangle is discovered exactly once
    /// from its lowest edge. Cost `O(Σ_edges min-degree)` — the standard
    /// triangle-listing bound.
    ///
    /// The streaming motif engine enumerates static triangles once
    /// through this hook and then runs its δ-window merge DP over each
    /// triangle's event list.
    pub fn for_each_undirected_triangle<F: FnMut([NodeId; 3])>(&self, mut f: F) {
        let n = self.out_neighbors.len();
        // Forward adjacency: undirected neighbors with a strictly higher id.
        let forward: Vec<Vec<NodeId>> = (0..n)
            .map(|u| {
                let mut fwd = self.undirected_neighbors(NodeId(u as u32));
                fwd.retain(|v| v.index() > u);
                fwd
            })
            .collect();
        for a in 0..n {
            let fa = &forward[a];
            for (i, &b) in fa.iter().enumerate() {
                let fb = &forward[b.index()];
                // Intersect the two sorted higher-neighbor runs; every
                // common member c closes the triangle a < b < c.
                let (mut x, mut y) = (i + 1, 0);
                while x < fa.len() && y < fb.len() {
                    match fa[x].cmp(&fb[y]) {
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                        std::cmp::Ordering::Equal => {
                            f([NodeId(a as u32), b, fa[x]]);
                            x += 1;
                            y += 1;
                        }
                    }
                }
            }
        }
    }

    /// Fraction of directed edges whose reverse edge also exists
    /// (a reciprocity measure: message networks are highly reciprocal,
    /// stack-exchange networks much less so).
    pub fn reciprocity(&self) -> f64 {
        if self.multiplicity.is_empty() {
            return 0.0;
        }
        let reciprocated = self
            .multiplicity
            .keys()
            .filter(|e| self.multiplicity.contains_key(&e.reversed()))
            .count();
        reciprocated as f64 / self.multiplicity.len() as f64
    }
}

/// Number of graphs the [`global_projection_cache`] retains (LRU beyond
/// this).
pub const DEFAULT_PROJECTION_CACHE_CAPACITY: usize = 8;

/// One cached projection with its identity key and LRU stamp.
struct Entry {
    /// `(events buffer address, event count)` of the graph projected.
    key: (usize, usize),
    proj: Arc<StaticProjection>,
    last_used: u64,
}

/// A bounded, verified cache of [`StaticProjection`]s keyed on graph
/// identity, mirroring
/// [`WindowIndexCache`](crate::index_cache::WindowIndexCache): an entry
/// is keyed on the graph's event-buffer address and length (stable for
/// the graph's lifetime; a clone allocates a fresh buffer and therefore
/// a fresh key), and every key hit is verified with
/// [`StaticProjection::matches`] before being served — a recycled
/// buffer address can never leak a dead graph's projection. Lookups
/// take a short mutex; both projection construction and the `O(m)`
/// hit verification happen outside the lock, so concurrent consumers
/// of different graphs never serialize behind each other.
pub struct StaticProjectionCache {
    entries: Mutex<Vec<Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl std::fmt::Debug for StaticProjectionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses, rejected) = self.stats();
        f.debug_struct("StaticProjectionCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &hits)
            .field("misses", &misses)
            .field("rejected", &rejected)
            .finish()
    }
}

impl StaticProjectionCache {
    /// An empty cache retaining at most `capacity` graphs.
    pub fn new(capacity: usize) -> Self {
        StaticProjectionCache {
            entries: Mutex::new(Vec::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn key_of(graph: &TemporalGraph) -> (usize, usize) {
        (graph.events().as_ptr() as usize, graph.num_events())
    }

    /// Returns the cached projection for `graph`, building (and caching)
    /// it on a miss. Hits are verified against the graph's actual
    /// content, so the returned projection is always correct for
    /// `graph`.
    pub fn get_or_build(&self, graph: &TemporalGraph) -> Arc<StaticProjection> {
        let key = Self::key_of(graph);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        // Fetch the candidate under the lock, but run the O(m) content
        // verification *outside* it — concurrent consumers of different
        // graphs must never serialize behind each other's verification
        // passes (construction already happens outside for the same
        // reason).
        let candidate = {
            let mut entries = self.entries.lock().expect("projection cache poisoned");
            entries.iter_mut().find(|e| e.key == key).map(|e| {
                e.last_used = stamp;
                Arc::clone(&e.proj)
            })
        };
        if let Some(proj) = candidate {
            let verify_start = tnm_obs::enabled().then(std::time::Instant::now);
            let verified = proj.matches(graph);
            if let Some(t0) = verify_start {
                tnm_obs::histogram_record_ns(
                    "cache.proj.verify_ns",
                    t0.elapsed().as_nanos() as u64,
                );
            }
            if verified {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tnm_obs::counter_add("cache.proj.hits", 1);
                return proj;
            }
            // Recycled buffer address: the entry describes a dead
            // graph. Drop exactly the projection we verified (a racing
            // thread may already have replaced it with a fresh, correct
            // one); the rebuild below replaces it.
            self.rejected.fetch_add(1, Ordering::Relaxed);
            tnm_obs::counter_add("cache.proj.rejected", 1);
            let mut entries = self.entries.lock().expect("projection cache poisoned");
            entries.retain(|e| e.key != key || !Arc::ptr_eq(&e.proj, &proj));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        tnm_obs::counter_add("cache.proj.misses", 1);
        let built = Arc::new(StaticProjection::from_graph(graph));
        let mut entries = self.entries.lock().expect("projection cache poisoned");
        match entries.iter_mut().find(|e| e.key == key) {
            // A racing thread cached the same graph while we built: the
            // caller's graph is alive, so an entry under its buffer
            // address can only have been built from that same graph —
            // no verification needed here.
            Some(e) => {
                e.last_used = stamp;
                Arc::clone(&e.proj)
            }
            None => {
                if entries.len() >= self.capacity {
                    let oldest = entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("capacity >= 1 implies non-empty");
                    entries.swap_remove(oldest);
                }
                entries.push(Entry { key, proj: Arc::clone(&built), last_used: stamp });
                built
            }
        }
    }

    /// Number of graphs currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("projection cache poisoned").len()
    }

    /// True if no projection is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached projection (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("projection cache poisoned").clear();
    }

    /// `(hits, misses, rejected)` counter snapshot; `rejected` counts
    /// key collisions refused by content verification (each also counts
    /// as a miss).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }
}

/// The process-wide projection cache shared by the streaming engine's
/// triad class and the coordinator-side induced rechecks.
pub fn global_projection_cache() -> &'static StaticProjectionCache {
    static CACHE: OnceLock<StaticProjectionCache> = OnceLock::new();
    CACHE.get_or_init(|| StaticProjectionCache::new(DEFAULT_PROJECTION_CACHE_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TemporalGraphBuilder;

    fn sample() -> StaticProjection {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(0, 1, 5)
            .event(1, 0, 7)
            .event(1, 2, 9)
            .event(2, 0, 11)
            .build()
            .unwrap();
        StaticProjection::from_graph(&g)
    }

    #[test]
    fn neighbors_and_degrees() {
        let p = sample();
        assert_eq!(p.out_neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(p.out_neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(p.in_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(p.out_degree(NodeId(1)), 2);
        assert_eq!(p.in_degree(NodeId(2)), 1);
    }

    #[test]
    fn multiplicity_counts_events() {
        let p = sample();
        assert_eq!(p.multiplicity(Edge::new(0u32, 1u32)), 2);
        assert_eq!(p.multiplicity(Edge::new(1u32, 0u32)), 1);
        assert_eq!(p.multiplicity(Edge::new(2u32, 1u32)), 0);
        assert_eq!(p.num_edges(), 4);
    }

    #[test]
    fn reciprocity_ratio() {
        let p = sample();
        // Edges: 0->1, 1->0 (reciprocated pair), 1->2, 2->0.
        // Reciprocated directed edges: 0->1 and 1->0 => 2 of 4.
        assert!((p.reciprocity() - 0.5).abs() < 1e-12);
    }

    fn graph(seed: i64, events: usize) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..events as i64 {
            let u = ((i + seed) % 7) as u32;
            let v = ((i + seed + 1 + i % 3) % 7) as u32;
            let v = if v == u { (v + 1) % 7 } else { v };
            b.push(crate::event::Event::new(u, v, seed + i * 2));
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_is_exact() {
        let g = graph(1, 60);
        let p = StaticProjection::from_graph(&g);
        assert!(p.matches(&g));
        // A clone has identical content: matches (identity is the
        // *cache's* concern, content verification is this method's).
        assert!(p.matches(&g.clone()));
        // Same edges, different multiplicities: rejected.
        let mut b = TemporalGraphBuilder::new();
        b.push(crate::event::Event::new(0u32, 1u32, 0));
        b.push(crate::event::Event::new(0u32, 1u32, 1));
        b.push(crate::event::Event::new(1u32, 2u32, 2));
        let a = b.build().unwrap();
        let mut b = TemporalGraphBuilder::new();
        b.push(crate::event::Event::new(0u32, 1u32, 0));
        b.push(crate::event::Event::new(1u32, 2u32, 1));
        b.push(crate::event::Event::new(1u32, 2u32, 2));
        let c = b.build().unwrap();
        assert!(!StaticProjection::from_graph(&a).matches(&c));
        assert!(!StaticProjection::from_graph(&c).matches(&a));
        assert!(!p.matches(&graph(2, 60)));
        assert!(!p.matches(&graph(1, 59)));
    }

    #[test]
    fn cache_hits_verified_and_shared() {
        let cache = StaticProjectionCache::new(4);
        let g1 = graph(1, 80);
        let g2 = graph(2, 80);
        let a = cache.get_or_build(&g1);
        assert_eq!(cache.stats(), (0, 1, 0));
        let b = cache.get_or_build(&g1);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached projection");
        assert_eq!(cache.stats(), (1, 1, 0));
        cache.get_or_build(&g2);
        assert_eq!(cache.stats(), (1, 2, 0));
        assert_eq!(cache.len(), 2);
        // A clone is a different graph (fresh buffer, fresh key).
        cache.get_or_build(&g1.clone());
        assert_eq!(cache.stats(), (1, 3, 0));
        // Cached projections answer like fresh ones.
        for e in g1.events() {
            assert!(a.has_edge(e.edge()));
        }
    }

    #[test]
    fn cache_evicts_lru_and_clears() {
        let cache = StaticProjectionCache::new(2);
        let g1 = graph(1, 40);
        let g2 = graph(2, 40);
        let g3 = graph(3, 40);
        cache.get_or_build(&g1);
        cache.get_or_build(&g2);
        cache.get_or_build(&g1); // g2 becomes LRU
        cache.get_or_build(&g3); // evicts g2
        assert_eq!(cache.len(), 2);
        cache.get_or_build(&g1);
        assert_eq!(cache.stats().0, 2, "g1 must have survived eviction");
        cache.get_or_build(&g2);
        assert_eq!(cache.stats().1, 4, "g2 was evicted and rebuilt");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn global_cache_is_shared() {
        let g = graph(9, 50);
        let a = global_projection_cache().get_or_build(&g);
        let b = global_projection_cache().get_or_build(&g);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
