//! Error types for the temporal graph substrate.

use crate::ids::Time;
use std::fmt;

/// Errors produced while building or loading a temporal graph.
#[derive(Debug)]
pub enum GraphError {
    /// A self-loop event `(u, u, t)` was supplied; no motif model in the
    /// paper admits self-loops.
    SelfLoop {
        /// Offending node.
        node: u32,
        /// Event time.
        time: Time,
    },
    /// The graph has no events.
    Empty,
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A binary block (spilled shard, wire frame) failed validation
    /// while decoding.
    Decode(crate::wire::WireError),
    /// An event referenced a node id beyond the declared node count.
    NodeOutOfRange {
        /// Offending node id.
        node: u32,
        /// Declared number of nodes.
        num_nodes: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node, time } => {
                write!(f, "self-loop event on node {node} at time {time}")
            }
            GraphError::Empty => write!(f, "temporal graph has no events"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Decode(e) => write!(f, "decode error: {e}"),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (num_nodes = {num_nodes})")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl From<crate::wire::WireError> for GraphError {
    fn from(e: crate::wire::WireError) -> Self {
        // A wire-level I/O failure is an I/O failure, not a decode bug.
        match e {
            crate::wire::WireError::Io(io) => GraphError::Io(io),
            other => GraphError::Decode(other),
        }
    }
}

/// Convenience alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::SelfLoop { node: 3, time: 9 }.to_string(),
            "self-loop event on node 3 at time 9"
        );
        assert_eq!(GraphError::Empty.to_string(), "temporal graph has no events");
        let p = GraphError::Parse { line: 4, message: "bad token".into() };
        assert_eq!(p.to_string(), "parse error on line 4: bad token");
        let o = GraphError::NodeOutOfRange { node: 10, num_nodes: 5 };
        assert!(o.to_string().contains("out of range"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
