//! # tnm-graph — temporal network substrate
//!
//! Data model and indexes for temporal networks as defined in Section 2 of
//! *Temporal Network Motifs: Models, Limitations, Evaluation* (Liu,
//! Guarrasi, Sarıyüce; ICDE 2022 / arXiv:2005.11817):
//!
//! * a temporal network `G(V, E)` is a time-ordered list of **events**
//!   `(u, v, t, Δt)` over directed node pairs;
//! * an **edge** `(u, v)` is the static projection of an event;
//! * event durations exist in the model but are ignored by most motif
//!   definitions (they matter only for dynamic graphlets).
//!
//! The crate provides the event store ([`TemporalGraph`]) with per-node and
//! per-edge time indexes, the windowed candidate index
//! ([`WindowIndex`]) with its shared per-graph cache ([`index_cache`]),
//! time-slice sharding with a spillable shard store for out-of-core
//! counting ([`shard`]), the framed binary [`wire`] encoding that
//! carries shard files and worker messages across process boundaries,
//! Table 2 statistics ([`stats::GraphStats`]), transformations used by
//! the paper's protocol (resolution degrading, slicing), SNAP-style
//! I/O, and the static projection with its shared per-graph cache
//! ([`static_proj`]).
//!
//! ## Data layout
//!
//! The event log exists in two layouts that always describe the same
//! rows:
//!
//! * **AoS** — `&[Event]`, the canonical store. [`Event`] is
//!   `#[repr(C)]` (`src: u32`, `dst: u32`, `time: i64`, `duration:
//!   u32`; 24 bytes with trailing padding, pinned by test) so the
//!   struct, the packed 20-byte [`wire`] record
//!   ([`wire::EVENT_RECORD_BYTES`]), and the column builder cannot
//!   drift apart silently.
//! * **SoA** — [`EventColumns`], dense `times`/`srcs`/`dsts`/
//!   `durations` columns built lazily once per graph
//!   ([`TemporalGraph::columns`]). Row `i` of every column mirrors
//!   `graph.event(i)`, so the node/edge/window index slices resolve
//!   against either view without translation.
//!
//! Hot paths — window binary searches ([`TemporalGraph::times`]),
//! [`WindowIndex`] construction, [`shard`]'s left-pad/halo planning,
//! and the engines' candidate-time checks and merge sweeps — probe the
//! SoA columns: a timestamp scan touches 8-byte rows instead of
//! 24-byte structs, and dense `i64` arrays are what the compiler can
//! vectorize. Code that needs a whole event (emission, wire encoding)
//! keeps using the AoS view.
//!
//! ```
//! use tnm_graph::{TemporalGraphBuilder, stats::GraphStats};
//!
//! let g = TemporalGraphBuilder::new()
//!     .event(0, 1, 10)
//!     .event(1, 2, 15)
//!     .event(2, 0, 18)
//!     .build()
//!     .unwrap();
//! let s = GraphStats::compute(&g);
//! assert_eq!(s.events, 3);
//! assert_eq!(s.nodes, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod columns;
pub mod error;
pub mod event;
pub mod graph;
pub mod ids;
pub mod index_cache;
pub mod io;
pub mod shard;
pub mod static_proj;
pub mod stats;
pub mod transform;
pub mod window_index;
pub mod wire;

pub use builder::TemporalGraphBuilder;
pub use columns::EventColumns;
pub use error::{GraphError, Result};
pub use event::Event;
pub use graph::TemporalGraph;
pub use ids::{Edge, EventIdx, NodeId, Time};
pub use index_cache::{global_index_cache, IndexCacheStats, WindowIndexCache};
pub use shard::{plan_shards, Shard, ShardGoal, ShardPlan, ShardSpec, ShardStore};
pub use static_proj::{global_projection_cache, StaticProjection, StaticProjectionCache};
pub use window_index::{WindowCursor, WindowIndex};
pub use wire::WireError;
