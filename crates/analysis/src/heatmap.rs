//! 6×6 event-pair sequence heat maps — the text equivalent of the
//! paper's Figure 6 (and appendix Figure 11).
//!
//! Rows are the first event pair of a 3-event motif, columns the second;
//! cells are motif counts, colour-coded in the paper and rendered here as
//! a log-scaled intensity ramp.

use tnm_motifs::event_pair::ALL_PAIR_TYPES;

/// Intensity ramp from empty to max (log scale).
const RAMP: [char; 6] = ['.', '1', '2', '3', '4', '#'];

/// Renders the 6×6 matrix with single-character log-scaled intensities
/// plus a count legend.
pub fn render_heatmap(title: &str, matrix: &[[u64; 6]; 6]) -> String {
    let max = matrix.iter().flatten().copied().max().unwrap_or(0);
    let min_nonzero = matrix.iter().flatten().copied().filter(|&c| c > 0).min().unwrap_or(1);
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str("    (rows: first pair, cols: second pair; log-scaled . < 1 < 2 < 3 < 4 < #)\n");
    out.push_str("      ");
    for t in ALL_PAIR_TYPES {
        out.push_str(&format!("{} ", t.letter()));
    }
    out.push('\n');
    for (i, t) in ALL_PAIR_TYPES.iter().enumerate() {
        out.push_str(&format!("    {} ", t.letter()));
        for &cell in &matrix[i] {
            out.push(intensity(cell, min_nonzero, max));
            out.push(' ');
        }
        out.push('\n');
    }
    out.push_str(&format!("    max cell = {max}, min non-zero = {min_nonzero}\n"));
    out
}

/// Log-scaled intensity character for a count.
fn intensity(count: u64, min_nonzero: u64, max: u64) -> char {
    if count == 0 {
        return RAMP[0];
    }
    if max <= min_nonzero {
        return RAMP[RAMP.len() - 1];
    }
    let lo = (min_nonzero as f64).ln();
    let hi = (max as f64).ln();
    let frac = ((count as f64).ln() - lo) / (hi - lo);
    let idx = 1 + (frac * (RAMP.len() - 2) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// The matrix as CSV (row label, then one column per second-pair type).
pub fn heatmap_csv(matrix: &[[u64; 6]; 6]) -> String {
    let mut out = String::from("first\\second,R,P,I,O,C,W\n");
    for (i, t) in ALL_PAIR_TYPES.iter().enumerate() {
        out.push(t.letter());
        for &cell in &matrix[i] {
            out.push_str(&format!(",{cell}"));
        }
        out.push('\n');
    }
    out
}

/// Row/column marginals, useful for asymmetry analysis (e.g. the paper's
/// "conveys are often followed by out-bursts but not the reverse").
pub fn marginals(matrix: &[[u64; 6]; 6]) -> ([u64; 6], [u64; 6]) {
    let mut rows = [0u64; 6];
    let mut cols = [0u64; 6];
    for i in 0..6 {
        for j in 0..6 {
            rows[i] += matrix[i][j];
            cols[j] += matrix[i][j];
        }
    }
    (rows, cols)
}

/// Asymmetry of a pair of cells `(a→b, b→a)` as a signed ratio in
/// `[-1, 1]`: +1 = all mass on `a→b`, 0 = symmetric.
pub fn asymmetry(matrix: &[[u64; 6]; 6], a: usize, b: usize) -> f64 {
    let ab = matrix[a][b] as f64;
    let ba = matrix[b][a] as f64;
    if ab + ba == 0.0 {
        0.0
    } else {
        (ab - ba) / (ab + ba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> [[u64; 6]; 6] {
        let mut m = [[0u64; 6]; 6];
        m[0][0] = 1000; // R -> R
        m[0][1] = 100; // R -> P
        m[4][3] = 50; // C -> O
        m[3][4] = 5; // O -> C
        m[5][5] = 1; // W -> W
        m
    }

    #[test]
    fn render_contains_labels_and_scale() {
        let s = render_heatmap("demo", &sample());
        assert!(s.contains("== demo =="));
        assert!(s.contains("R P I O C W"));
        assert!(s.contains("max cell = 1000"));
        // The largest cell renders as '#', empty cells as '.'.
        let r_row: &str = s.lines().nth(3).unwrap();
        assert!(r_row.trim_start().starts_with("R #"));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = heatmap_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[1].starts_with("R,1000,100,0,0,0,0"));
    }

    #[test]
    fn marginals_sum() {
        let (rows, cols) = marginals(&sample());
        assert_eq!(rows.iter().sum::<u64>(), 1156);
        assert_eq!(cols.iter().sum::<u64>(), 1156);
        assert_eq!(rows[0], 1100);
        assert_eq!(cols[0], 1000);
    }

    #[test]
    fn asymmetry_measure() {
        let m = sample();
        // C->O = 50 vs O->C = 5: strong positive asymmetry.
        let a = asymmetry(&m, 4, 3);
        assert!(a > 0.8, "{a}");
        assert_eq!(asymmetry(&m, 1, 2), 0.0);
        // Symmetric diagonal cell compares with itself:
        assert_eq!(asymmetry(&m, 0, 0), 0.0);
    }

    #[test]
    fn intensity_extremes() {
        assert_eq!(intensity(0, 1, 100), '.');
        assert_eq!(intensity(100, 1, 100), '#');
        assert_eq!(intensity(5, 5, 5), '#');
    }
}
