//! Table 2: dataset statistics, synthetic vs paper-reported.

use super::Corpus;
use crate::report::{fmt_count, fmt_pct, Table};
use serde::{Deserialize, Serialize};
use tnm_datasets::PaperStats;
use tnm_graph::stats::GraphStats;

/// One dataset's row: measured statistics on the synthetic network plus
/// the paper's reported values for the real counterpart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub name: String,
    /// Statistics of the synthetic network.
    pub synthetic: GraphStats,
    /// Statistics the paper reports for the real network.
    pub paper: PaperStats,
}

/// The full Table 2 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// One row per dataset, in Table 2 order.
    pub rows: Vec<Table2Row>,
}

/// Computes Table 2 over a corpus.
pub fn run(corpus: &Corpus) -> Table2 {
    let rows = corpus
        .entries
        .iter()
        .map(|e| Table2Row {
            name: e.spec.name.clone(),
            synthetic: GraphStats::compute(&e.graph),
            paper: e.spec.paper,
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// Renders the synthetic-network statistics in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 2: temporal network statistics (synthetic)",
            &["Name", "Nodes", "Events", "Edges", "#T", "|Eu|/|E|", "m(dt)"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_count(r.synthetic.nodes as u64),
                fmt_count(r.synthetic.events as u64),
                fmt_count(r.synthetic.static_edges as u64),
                fmt_count(r.synthetic.unique_timestamps as u64),
                fmt_pct(r.synthetic.unique_timestamp_fraction),
                format!("{:.0}", r.synthetic.median_inter_event_time),
            ]);
        }
        let mut out = t.render();
        out.push('\n');
        let mut p = Table::new(
            "Paper-reported values (real datasets, for comparison)",
            &["Name", "Nodes", "Events", "Edges", "#T", "|Eu|/|E|", "m(dt)"],
        );
        for r in &self.rows {
            p.row(vec![
                r.name.clone(),
                fmt_count(r.paper.nodes as u64),
                fmt_count(r.paper.events as u64),
                fmt_count(r.paper.edges as u64),
                fmt_count(r.paper.timestamps as u64),
                fmt_pct(r.paper.unique_fraction),
                format!("{:.0}", r.paper.median_gap),
            ]);
        }
        out.push_str(&p.render());
        out
    }

    /// CSV with both synthetic and paper columns.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(
            "",
            &[
                "name",
                "nodes",
                "events",
                "edges",
                "timestamps",
                "unique_fraction",
                "median_gap",
                "paper_nodes",
                "paper_events",
                "paper_edges",
                "paper_timestamps",
                "paper_unique_fraction",
                "paper_median_gap",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.synthetic.nodes.to_string(),
                r.synthetic.events.to_string(),
                r.synthetic.static_edges.to_string(),
                r.synthetic.unique_timestamps.to_string(),
                format!("{:.4}", r.synthetic.unique_timestamp_fraction),
                format!("{:.1}", r.synthetic.median_inter_event_time),
                format!("{:.0}", r.paper.nodes),
                format!("{:.0}", r.paper.events),
                format!("{:.0}", r.paper.edges),
                format!("{:.0}", r.paper.timestamps),
                format!("{:.4}", r.paper.unique_fraction),
                format!("{:.1}", r.paper.median_gap),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_scaled_corpus() {
        let corpus = Corpus::scaled(0.05, 1);
        let t2 = run(&corpus);
        assert_eq!(t2.rows.len(), 9);
        let rendered = t2.render();
        assert!(rendered.contains("Bitcoin-otc"));
        assert!(rendered.contains("SuperUser"));
        let csv = t2.to_csv();
        assert_eq!(csv.lines().count(), 10);
    }

    #[test]
    fn email_collides_most() {
        let corpus = Corpus::scaled(0.2, 2);
        let t2 = run(&corpus);
        let email =
            t2.rows.iter().find(|r| r.name == "Email").unwrap().synthetic.unique_timestamp_fraction;
        for r in &t2.rows {
            if r.name != "Email" {
                assert!(
                    email <= r.synthetic.unique_timestamp_fraction + 0.05,
                    "Email ({email}) should have the lowest unique fraction, but {} has {}",
                    r.name,
                    r.synthetic.unique_timestamp_fraction
                );
            }
        }
    }
}
