//! Experiment runners: one module per table/figure of the paper.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table2`] | Table 2 — dataset statistics |
//! | [`table3`] | Table 3 + appendix Table 6 — consecutive events restriction |
//! | [`table4`] | Table 4 + appendix Table 7 — constrained dynamic graphlets |
//! | [`table5`] | Table 5 — event-pair counts vs timing configuration |
//! | [`fig1`] | Figure 1 — model validity matrix |
//! | [`fig2`] | Figure 2 — notation and the event-pair alphabet |
//! | [`fig3`] | Figure 3 + appendix Figures 7–8 — event-pair ratios |
//! | [`fig4`] | Figure 4 + appendix Figure 9 — intermediate event behaviour |
//! | [`fig5`] | Figure 5 + appendix Figure 10 — motif timespan distributions |
//! | [`fig6`] | Figure 6 + appendix Figure 11 — pair-sequence heat maps |
//!
//! All experiments run on a shared [`Corpus`] of synthetic datasets so a
//! full reproduction generates each network exactly once.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use tnm_datasets::{generate, DatasetSpec};
use tnm_graph::TemporalGraph;
use tnm_motifs::engine::EngineKind;

/// Default seed for the experiment corpus (all tables/figures).
pub const CORPUS_SEED: u64 = 0x0DA7_A5E7;

/// The ΔC used by the temporal-inducedness experiments (paper: 1500 s).
pub const DELTA_C_INDUCEDNESS: i64 = 1500;

/// The ΔW anchor of the timing-constraint experiments (paper: 3000 s).
pub const DELTA_W: i64 = 3000;

/// Snapshot resolution for the constrained-dynamic-graphlet experiment
/// (paper: 300 s).
pub const DEGRADED_RESOLUTION: i64 = 300;

/// ΔC/ΔW ratios swept for 3-event motifs (paper Section 5.2).
pub const RATIOS_3E: [f64; 3] = [0.5, 0.66, 1.0];

/// ΔC/ΔW ratios swept for 4-event motifs (paper Section 5.2).
pub const RATIOS_4E: [f64; 4] = [0.33, 0.5, 0.66, 1.0];

/// One generated dataset with its spec.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The dataset specification (including paper statistics).
    pub spec: DatasetSpec,
    /// The generated temporal network.
    pub graph: TemporalGraph,
}

/// The collection of datasets shared by every experiment.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Generated datasets in Table 2 order.
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// Generates all nine datasets with the standard seed.
    pub fn standard() -> Self {
        Self::with_seed(CORPUS_SEED)
    }

    /// Generates all nine datasets with a custom seed.
    pub fn with_seed(seed: u64) -> Self {
        let entries = DatasetSpec::all()
            .into_iter()
            .map(|spec| {
                let graph = generate(&spec, seed);
                CorpusEntry { spec, graph }
            })
            .collect();
        Corpus { entries }
    }

    /// Generates a reduced corpus: event budgets scaled by `factor`
    /// (clamped to at least 500 events). Used by benches and smoke tests.
    pub fn scaled(factor: f64, seed: u64) -> Self {
        let entries = DatasetSpec::all()
            .into_iter()
            .map(|mut spec| {
                spec.num_events = ((spec.num_events as f64 * factor) as usize).max(500);
                let graph = generate(&spec, seed);
                CorpusEntry { spec, graph }
            })
            .collect();
        Corpus { entries }
    }

    /// A corpus restricted to the named datasets (order preserved).
    pub fn only(&self, names: &[&str]) -> Corpus {
        let entries = self
            .entries
            .iter()
            .filter(|e| names.iter().any(|n| n.eq_ignore_ascii_case(&e.spec.name)))
            .cloned()
            .collect();
        Corpus { entries }
    }

    /// Finds one dataset by name.
    pub fn get(&self, name: &str) -> Option<&CorpusEntry> {
        self.entries.iter().find(|e| e.spec.name.eq_ignore_ascii_case(name))
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Number of worker threads used by the counting-heavy experiments.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}

/// How the counting-heavy experiments execute: which
/// [`EngineKind`] drives the enumeration and with how many threads.
/// Threaded from the CLI's `--engine`/`--threads`/`--samples`/
/// `--shard-events`/`--max-resident-shards` flags down to every
/// table/figure driver via the `run_with` variants.
///
/// [`EngineKind::Sampling`] (with its embedded budget and seed) makes
/// the drivers *approximate*: tables are computed from rounded point
/// estimates — the scaling escape hatch for window configurations too
/// expensive to count exactly (under a `threads` budget the sampler
/// evaluates its window draws in parallel with bit-identical seeded
/// results). [`EngineKind::Sharded`] keeps them exact while bounding
/// the counting working set (and, with a resident budget, spilling
/// time slices to disk) — the out-of-core escape hatch for corpora
/// larger than memory. [`EngineKind::Distributed`] takes the same
/// shard plan across **process boundaries**: spilled shards are
/// counted by `tnm worker` children over a framed wire protocol, with
/// crashed workers' shards rescheduled onto survivors — still exact,
/// and the scale-out escape hatch once one process's cores are the
/// bottleneck. [`EngineKind::Stream`] (which `auto` picks whenever a
/// driver's configuration is Paranjape-shaped) counts eligible only-ΔW
/// spectra without enumerating instances and is the fastest exact
/// option there by an asymptotic margin. All windowed engines share one
/// `WindowIndex` per graph through
/// [`tnm_graph::index_cache::global_index_cache`] (and the streaming
/// triad class shares its static projection through
/// `tnm_graph::static_proj::global_projection_cache`), so the dozens of
/// counts a driver performs on the same corpus entry build each index
/// once; the sharded engine instead builds a transient index per time
/// slice, deliberately bypassing that cache.
///
/// Drivers that sweep several configurations over one graph (the
/// table3 restriction pair, the table5 ratio sweep, fig5's panels) go
/// through the **batch API** — [`tnm_motifs::engine::count_batch`] /
/// `enumerate_batch` via `rc.engine.count_batch(..)`: the
/// [`tnm_motifs::engine::BatchPlanner`] groups compatible
/// configurations into shared traversals (one walk or one stream pass
/// plus per-config projections), honoring this `engine`/`threads`
/// choice per group, with results bit-identical to per-config counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Counting engine (defaults to [`EngineKind::Auto`]).
    pub engine: EngineKind,
    /// Thread budget for engines that can go parallel.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { engine: EngineKind::Auto, threads: default_threads() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_corpus_is_small() {
        let c = Corpus::scaled(0.05, 1);
        assert_eq!(c.len(), 9);
        for e in &c.entries {
            assert!(e.graph.num_events() <= 2_000, "{}", e.spec.name);
        }
    }

    #[test]
    fn subsetting() {
        let c = Corpus::scaled(0.05, 1);
        let sub = c.only(&["email", "SMS-A"]);
        assert_eq!(sub.len(), 2);
        assert!(c.get("Email").is_some());
        assert!(c.get("missing").is_none());
    }
}
