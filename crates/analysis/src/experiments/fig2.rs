//! Figure 2: the digit-pair notation and the event-pair alphabet.
//!
//! This "experiment" validates and renders the notation machinery: the
//! catalog sizes the paper quotes (36 three-event, 696 four-event, of
//! which 480 are 4n4e), the six event-pair types, and worked examples of
//! motifs as pair sequences.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use tnm_motifs::catalog;
use tnm_motifs::prelude::*;

/// Summary of the notation system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Catalog sizes by class name.
    pub catalog_sizes: Vec<(String, usize)>,
    /// Worked examples: signature → pair-sequence letters.
    pub examples: Vec<(String, String)>,
}

/// Builds the notation summary.
pub fn run() -> Fig2 {
    let catalog_sizes = vec![
        ("2n3e".to_string(), catalog::all_2n3e().len()),
        ("3n3e".to_string(), catalog::all_3n3e().len()),
        ("3e total".to_string(), catalog::all_3e().len()),
        ("2n4e+3n4e".to_string(), catalog::all_4e_up_to_3n().len()),
        ("4n4e".to_string(), catalog::all_4n4e().len()),
        ("4e total".to_string(), catalog::all_4e().len()),
    ];
    let examples = ["011202", "01023132", "010102", "01011221", "010210"]
        .iter()
        .map(|s| {
            let m = sig(s);
            let seq: String = m
                .event_pair_sequence()
                .into_iter()
                .map(|p| p.map_or('-', |t| t.letter()))
                .collect();
            (s.to_string(), seq)
        })
        .collect();
    Fig2 { catalog_sizes, examples }
}

impl Fig2 {
    /// Renders the alphabet, catalog sizes, and worked examples.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 2: motif notation and event pairs ==\n");
        out.push_str("Event-pair alphabet:\n");
        for t in ALL_PAIR_TYPES {
            out.push_str(&format!("  {} = {}\n", t.letter(), t.name()));
        }
        let mut t = Table::new("Motif catalogs (single-component growth)", &["Class", "Count"]);
        for (name, n) in &self.catalog_sizes {
            t.row(vec![name.clone(), n.to_string()]);
        }
        out.push_str(&t.render());
        let mut ex = Table::new("Examples: motif as event-pair sequence", &["Motif", "Pairs"]);
        for (m, seq) in &self.examples {
            ex.row(vec![m.clone(), seq.clone()]);
        }
        out.push_str(&ex.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_numbers() {
        let f = run();
        let get = |name: &str| f.catalog_sizes.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(get("3e total"), 36);
        assert_eq!(get("3n3e"), 32);
        assert_eq!(get("2n4e+3n4e"), 216);
        assert_eq!(get("4n4e"), 480);
        assert_eq!(get("4e total"), 696);
    }

    #[test]
    fn figure2_worked_examples() {
        let f = run();
        let get = |m: &str| f.examples.iter().find(|(s, _)| s == m).unwrap().1.clone();
        assert_eq!(get("011202"), "CI");
        assert_eq!(get("010102"), "RO");
        assert_eq!(get("01011221"), "RCP");
        assert_eq!(get("010210"), "OW");
    }

    #[test]
    fn render_lists_alphabet() {
        let text = run().render();
        assert!(text.contains("R = Repetition"));
        assert!(text.contains("W = Weakly-connected"));
    }
}
