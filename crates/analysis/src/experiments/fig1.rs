//! Figure 1: the model validity matrix — four candidate motifs checked
//! against the four models, each failing (or passing) for a different
//! reason.

use crate::report::Table;
use serde::{Deserialize, Serialize};
use tnm_datasets::figures::{figure1, FIGURE1_DELTA_C, FIGURE1_DELTA_W};
use tnm_motifs::prelude::*;

/// One motif row: the verdicts of the four models plus explanations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Row number (1-based, as in the figure).
    pub motif: usize,
    /// The motif's canonical signature.
    pub signature: String,
    /// Verdicts for Kovanen, Song, Hulovatyy, Paranjape, in order.
    pub verdicts: Vec<Verdict>,
}

/// The Figure 1 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// One row per candidate motif.
    pub rows: Vec<Fig1Row>,
    /// Whether every verdict matches the figure's expected matrix.
    pub matches_expected: bool,
}

/// Runs the validity-matrix experiment on the Figure 1 reconstruction.
pub fn run() -> Fig1 {
    let fig = figure1();
    let models = MotifModel::all_four(FIGURE1_DELTA_C, FIGURE1_DELTA_W);
    let mut rows = Vec::new();
    let mut matches_expected = true;
    for (i, motif) in fig.motifs.iter().enumerate() {
        let verdicts = check_against_all(&fig.graph, motif, &models);
        for (j, v) in verdicts.iter().enumerate() {
            if v.is_valid() != fig.expected[i][j] {
                matches_expected = false;
            }
        }
        let events: Vec<tnm_graph::Event> =
            motif.iter().map(|&idx| *fig.graph.event(idx)).collect();
        rows.push(Fig1Row {
            motif: i + 1,
            signature: MotifSignature::from_events(&events).to_string(),
            verdicts,
        });
    }
    Fig1 { rows, matches_expected }
}

impl Fig1 {
    /// Renders the validity matrix with per-cell reasons.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Figure 1: motif validity per model (dC={FIGURE1_DELTA_C}s, dW={FIGURE1_DELTA_W}s)"
            ),
            &["Motif", "Signature", "Kovanen[11]", "Song[12]", "Hulovatyy[13]", "Paranjape[14]"],
        );
        for r in &self.rows {
            let cell =
                |v: &Verdict| if v.is_valid() { "valid".to_string() } else { "NO".to_string() };
            t.row(vec![
                format!("#{}", r.motif),
                r.signature.clone(),
                cell(&r.verdicts[0]),
                cell(&r.verdicts[1]),
                cell(&r.verdicts[2]),
                cell(&r.verdicts[3]),
            ]);
        }
        let mut out = t.render();
        out.push('\n');
        for r in &self.rows {
            for v in &r.verdicts {
                if !v.is_valid() {
                    out.push_str(&format!("  motif #{}: {v}\n", r.motif));
                }
            }
        }
        out.push_str(&format!(
            "\n  matrix matches the paper's Figure 1: {}\n",
            if self.matches_expected { "yes" } else { "NO" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper() {
        let f = run();
        assert!(f.matches_expected, "{}", f.render());
        assert_eq!(f.rows.len(), 4);
    }

    #[test]
    fn row_reasons_are_the_papers() {
        let f = run();
        // Row 1: ΔC violation in Kovanen and Hulovatyy.
        assert!(f.rows[0].verdicts[0]
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DeltaCExceeded { .. })));
        // Row 2: inducedness violation in Paranjape.
        assert!(f.rows[1].verdicts[3].violations.contains(&Violation::NotStaticInduced));
        // Row 3: consecutive-events violation in Kovanen only.
        assert!(f.rows[2].verdicts[0].violations.contains(&Violation::ConsecutiveEvents));
        assert!(f.rows[2].verdicts[2].is_valid());
        // Row 4: valid everywhere.
        assert!(f.rows[3].verdicts.iter().all(|v| v.is_valid()));
    }

    #[test]
    fn render_mentions_all_models() {
        let text = run().render();
        for m in ["Kovanen", "Song", "Hulovatyy", "Paranjape"] {
            assert!(text.contains(m), "{text}");
        }
    }
}
