//! Table 3 (+ appendix Table 6): the impact of Kovanen et al.'s
//! consecutive events restriction on 3n3e motif counts and rankings,
//! at ΔC = 1500 s.
//!
//! The paper's findings to reproduce:
//! * the restriction removes the overwhelming majority of motifs (>95 %
//!   in all real datasets except Bitcoin-otc);
//! * four *ask-reply* motifs — `010210`, `011210`, `012010`, `012110`,
//!   whose last event answers the first — are consistently *amplified*
//!   (rise in the count ranking), most strongly in message networks.

use super::{Corpus, RunConfig, DELTA_C_INDUCEDNESS};
use crate::report::{fmt_count, fmt_rank_change, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tnm_motifs::catalog::all_3n3e;
use tnm_motifs::count::ranking_changes;
use tnm_motifs::prelude::*;

/// The four ask-reply motifs Table 3 highlights.
pub const ASK_REPLY: [&str; 4] = ["010210", "011210", "012010", "012110"];

/// One dataset's Table 3 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset name.
    pub name: String,
    /// Total 3n3e motifs without the restriction.
    pub non_consecutive_total: u64,
    /// Total 3n3e motifs with the restriction.
    pub consecutive_total: u64,
    /// Rank change of each [`ASK_REPLY`] motif (positive = ascended).
    pub ask_reply_changes: [i64; 4],
    /// Rank changes of all 32 3n3e motifs (appendix Table 6).
    pub all_changes: HashMap<String, i64>,
}

impl Table3Row {
    /// Fraction of motifs removed by the restriction.
    pub fn removal_fraction(&self) -> f64 {
        if self.non_consecutive_total == 0 {
            return 0.0;
        }
        1.0 - self.consecutive_total as f64 / self.non_consecutive_total as f64
    }
}

/// The full Table 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per dataset.
    pub rows: Vec<Table3Row>,
    /// The ΔC used (seconds).
    pub delta_c: i64,
}

/// Runs the consecutive-events-restriction experiment with the default
/// engine selection.
pub fn run(corpus: &Corpus) -> Table3 {
    run_with(corpus, &RunConfig::default())
}

/// Runs the experiment with an explicit engine/thread configuration.
pub fn run_with(corpus: &Corpus, rc: &RunConfig) -> Table3 {
    let universe = all_3n3e();
    let timing = Timing::only_c(DELTA_C_INDUCEDNESS);
    let rows = corpus
        .entries
        .iter()
        .map(|e| {
            // Both restriction variants as one batch plan: the planner
            // keeps them in separate walk groups (the consecutive flag
            // changes the walk shape) but answers them in one call.
            let base = EnumConfig::new(3, 3).exact_nodes(3).with_timing(timing);
            let cons_cfg = base.clone().with_consecutive(true);
            let batch = [base, cons_cfg];
            let mut results = rc.engine.count_batch(&e.graph, &batch, rc.threads).into_iter();
            let non_cons = results.next().expect("one table per config");
            let cons = results.next().expect("one table per config");
            let changes = ranking_changes(&non_cons, &cons, &universe);
            let mut ask_reply = [0i64; 4];
            for (i, s) in ASK_REPLY.iter().enumerate() {
                ask_reply[i] = changes[&sig(s)];
            }
            Table3Row {
                name: e.spec.name.clone(),
                non_consecutive_total: non_cons.total(),
                consecutive_total: cons.total(),
                ask_reply_changes: ask_reply,
                all_changes: changes.into_iter().map(|(s, d)| (s.to_string(), d)).collect(),
            }
        })
        .collect();
    Table3 { rows, delta_c: DELTA_C_INDUCEDNESS }
}

impl Table3 {
    /// Renders the paper's Table 3 layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("Table 3: consecutive events restriction (dC={}s)", self.delta_c),
            &["Network", "Non-cons.", "Cons.", "Removed", "010210", "011210", "012010", "012110"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt_count(r.non_consecutive_total),
                fmt_count(r.consecutive_total),
                format!("{:.1}%", r.removal_fraction() * 100.0),
                fmt_rank_change(r.ask_reply_changes[0]),
                fmt_rank_change(r.ask_reply_changes[1]),
                fmt_rank_change(r.ask_reply_changes[2]),
                fmt_rank_change(r.ask_reply_changes[3]),
            ]);
        }
        t.render()
    }

    /// Renders the appendix Table 6 (all 32 motifs × all datasets).
    pub fn render_full(&self) -> String {
        let mut header: Vec<String> = vec!["Motif".to_string()];
        header.extend(self.rows.iter().map(|r| r.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            "Table 6 (appendix): rank changes of all 3n3e motifs after the restriction",
            &header_refs,
        );
        for m in all_3n3e() {
            let name = m.to_string();
            let mut row = vec![name.clone()];
            for r in &self.rows {
                row.push(fmt_rank_change(r.all_changes.get(&name).copied().unwrap_or(0)));
            }
            t.row(row);
        }
        t.render()
    }

    /// CSV of the headline numbers.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(
            "",
            &[
                "name",
                "non_consecutive_total",
                "consecutive_total",
                "removal_fraction",
                "d_010210",
                "d_011210",
                "d_012010",
                "d_012110",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.non_consecutive_total.to_string(),
                r.consecutive_total.to_string(),
                format!("{:.4}", r.removal_fraction()),
                r.ask_reply_changes[0].to_string(),
                r.ask_reply_changes[1].to_string(),
                r.ask_reply_changes[2].to_string(),
                r.ask_reply_changes[3].to_string(),
            ]);
        }
        t.to_csv()
    }

    /// Mean rank change of the ask-reply motifs in the given datasets —
    /// the paper's amplification claim in one number.
    pub fn mean_ask_reply_change(&self, names: &[&str]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in &self.rows {
            if names.iter().any(|x| x.eq_ignore_ascii_case(&r.name)) {
                sum += r.ask_reply_changes.iter().sum::<i64>() as f64;
                n += 4;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restriction_massively_reduces_counts() {
        let corpus = Corpus::scaled(0.25, 3).only(&["CollegeMsg", "SMS-Copenhagen"]);
        let t3 = run(&corpus);
        for r in &t3.rows {
            assert!(r.consecutive_total <= r.non_consecutive_total, "{}", r.name);
            assert!(
                r.removal_fraction() > 0.5,
                "{}: removal {:.2} too small",
                r.name,
                r.removal_fraction()
            );
        }
    }

    /// The batch-planned driver must emit exactly what two independent
    /// per-config counts did before the rewrite — the CSV is pinned
    /// byte-for-byte through the totals and rank changes it contains.
    #[test]
    fn batch_plan_matches_per_config_counts() {
        let corpus = Corpus::scaled(0.1, 5).only(&["Calls-Copenhagen"]);
        let rc = RunConfig::default();
        let t3 = run_with(&corpus, &rc);
        let e = &corpus.entries[0];
        let base =
            EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(DELTA_C_INDUCEDNESS));
        let non_cons = rc.engine.count(&e.graph, &base, rc.threads);
        let cons = rc.engine.count(&e.graph, &base.clone().with_consecutive(true), rc.threads);
        assert_eq!(t3.rows[0].non_consecutive_total, non_cons.total());
        assert_eq!(t3.rows[0].consecutive_total, cons.total());
        let changes = ranking_changes(&non_cons, &cons, &all_3n3e());
        for (s, d) in changes {
            assert_eq!(t3.rows[0].all_changes[&s.to_string()], d, "{s}");
        }
    }

    #[test]
    fn render_has_all_rows() {
        let corpus = Corpus::scaled(0.05, 4).only(&["Calls-Copenhagen"]);
        let t3 = run(&corpus);
        let text = t3.render();
        assert!(text.contains("Calls-Copenhagen"));
        let full = t3.render_full();
        assert_eq!(full.lines().count(), 3 + 32, "header+rule+32 motifs");
        let csv = t3.to_csv();
        assert_eq!(csv.lines().count(), 2);
    }
}
