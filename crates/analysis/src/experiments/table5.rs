//! Table 5: event-pair counts across timing configurations.
//!
//! For 3n3e motifs with ΔW = 3000 s fixed, the paper sweeps
//! ΔC/ΔW ∈ {1.0 (only-ΔW), 0.66 (both), 0.5 (only-ΔC)} and groups event
//! pairs into {R, P, I, O} vs {C, W}. Findings to reproduce:
//!
//! * every count shrinks when tightening from only-ΔW to only-ΔC;
//! * the {R, P, I, O} group shrinks *faster* than {C, W} — i.e. only-ΔW
//!   amplifies bursty/reciprocal pairs;
//! * {R, P, I, O} outnumbers {C, W} by roughly an order of magnitude.

use super::{Corpus, RunConfig, DELTA_W, RATIOS_3E};
use crate::report::{fmt_count, fmt_pct, Table};
use serde::{Deserialize, Serialize};
use tnm_motifs::count::PairGroupCounts;
use tnm_motifs::prelude::*;

/// One dataset × one timing configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Cell {
    /// ΔC/ΔW ratio of this configuration.
    pub ratio: f64,
    /// Configuration label (`only-ΔW`, `ΔW-and-ΔC`, `only-ΔC`).
    pub label: String,
    /// Grouped pair counts.
    pub groups: PairGroupCounts,
}

/// One dataset's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Dataset name.
    pub name: String,
    /// Cells ordered from only-ΔW down to only-ΔC.
    pub cells: Vec<Table5Cell>,
}

impl Table5Row {
    /// The only-ΔW cell (baseline of the reduction ratios).
    pub fn baseline(&self) -> &Table5Cell {
        self.cells.first().expect("at least one configuration")
    }
}

/// The full Table 5 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// One row per dataset.
    pub rows: Vec<Table5Row>,
    /// ΔW anchor (seconds).
    pub delta_w: i64,
}

fn config_label(ratio: f64, num_events: usize) -> String {
    let timing = Timing::from_ratio(DELTA_W, ratio);
    timing.regime(num_events).to_string()
}

/// Runs the Table 5 sweep on 3n3e motifs with the default engine
/// selection.
pub fn run(corpus: &Corpus) -> Table5 {
    run_with(corpus, &RunConfig::default())
}

/// Runs the sweep with an explicit engine/thread configuration.
pub fn run_with(corpus: &Corpus, rc: &RunConfig) -> Table5 {
    // Descending ratio = only-ΔW first, as in the paper's columns.
    let mut ratios = RATIOS_3E.to_vec();
    ratios.sort_by(|a, b| b.partial_cmp(a).expect("finite ratios"));
    let rows = corpus
        .entries
        .iter()
        .map(|e| {
            // The whole ratio sweep as one batch plan: only-ΔW streams,
            // and the bounded-ΔC ratios share a single walk under the
            // widest ΔC with per-ratio admission masks.
            let batch: Vec<EnumConfig> = ratios
                .iter()
                .map(|&ratio| {
                    EnumConfig::new(3, 3)
                        .exact_nodes(3)
                        .with_timing(Timing::from_ratio(DELTA_W, ratio))
                })
                .collect();
            let results = rc.engine.count_batch(&e.graph, &batch, rc.threads);
            let cells = ratios
                .iter()
                .zip(&results)
                .map(|(&ratio, counts)| {
                    let pairs = counts.event_pair_counts();
                    Table5Cell {
                        ratio,
                        label: config_label(ratio, 3),
                        groups: PairGroupCounts::from_counts(&pairs),
                    }
                })
                .collect();
            Table5Row { name: e.spec.name.clone(), cells }
        })
        .collect();
    Table5 { rows, delta_w: DELTA_W }
}

impl Table5 {
    /// Renders the paper's Table 5 layout (counts + reduction ratios
    /// relative to only-ΔW).
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("Table 5: event-pair counts vs timing constraints (dW={}s)", self.delta_w),
            &["Network", "Type", "only-dW", "dW-and-dC", "ratio", "only-dC", "ratio"],
        );
        for r in &self.rows {
            let base = r.baseline().groups;
            let g = |i: usize| r.cells[i].groups;
            t.row(vec![
                r.name.clone(),
                "R,P,I,O".into(),
                fmt_count(base.rpio),
                fmt_count(g(1).rpio),
                fmt_pct(g(1).ratio_vs(&base).0),
                fmt_count(g(2).rpio),
                fmt_pct(g(2).ratio_vs(&base).0),
            ]);
            t.row(vec![
                String::new(),
                "C,W".into(),
                fmt_count(base.cw),
                fmt_count(g(1).cw),
                fmt_pct(g(1).ratio_vs(&base).1),
                fmt_count(g(2).cw),
                fmt_pct(g(2).ratio_vs(&base).1),
            ]);
        }
        t.render()
    }

    /// CSV of all cells.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new("", &["name", "ratio", "label", "rpio", "cw"]);
        for r in &self.rows {
            for c in &r.cells {
                t.row(vec![
                    r.name.clone(),
                    format!("{:.2}", c.ratio),
                    c.label.clone(),
                    c.groups.rpio.to_string(),
                    c.groups.cw.to_string(),
                ]);
            }
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_shrink_monotonically() {
        let corpus = Corpus::scaled(0.2, 8).only(&["CollegeMsg", "SMS-Copenhagen"]);
        let t5 = run(&corpus);
        for r in &t5.rows {
            assert_eq!(r.cells.len(), 3);
            assert_eq!(r.cells[0].label, "only-ΔW");
            for w in r.cells.windows(2) {
                assert!(
                    w[1].groups.rpio <= w[0].groups.rpio,
                    "{}: RPIO must shrink with tighter ΔC",
                    r.name
                );
                assert!(w[1].groups.cw <= w[0].groups.cw, "{}: CW must shrink", r.name);
            }
        }
    }

    #[test]
    fn rpio_reduced_more_than_cw() {
        let corpus = Corpus::scaled(0.3, 9).only(&["Email"]);
        let t5 = run(&corpus);
        let r = &t5.rows[0];
        let base = r.baseline().groups;
        let tight = r.cells.last().unwrap().groups;
        let (rpio_ratio, cw_ratio) = tight.ratio_vs(&base);
        assert!(
            rpio_ratio < cw_ratio,
            "RPIO ratio {rpio_ratio:.3} should fall below CW ratio {cw_ratio:.3}"
        );
    }

    /// The batch-planned sweep must reproduce the per-config counts
    /// cell for cell — same grouped pair totals, so the rendered table
    /// and CSV are identical to the pre-batch driver's.
    #[test]
    fn batch_sweep_matches_per_config_counts() {
        let corpus = Corpus::scaled(0.1, 11).only(&["CollegeMsg"]);
        let rc = RunConfig::default();
        let t5 = run_with(&corpus, &rc);
        let e = &corpus.entries[0];
        for c in &t5.rows[0].cells {
            let cfg = EnumConfig::new(3, 3)
                .exact_nodes(3)
                .with_timing(Timing::from_ratio(DELTA_W, c.ratio));
            let counts = rc.engine.count(&e.graph, &cfg, rc.threads);
            assert_eq!(
                c.groups,
                PairGroupCounts::from_counts(&counts.event_pair_counts()),
                "ratio {}",
                c.ratio
            );
        }
    }

    #[test]
    fn render_two_rows_per_dataset() {
        let corpus = Corpus::scaled(0.05, 10).only(&["Calls-Copenhagen"]);
        let t5 = run(&corpus);
        let text = t5.render();
        assert!(text.contains("R,P,I,O"));
        assert!(text.contains("C,W"));
        let csv = t5.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3);
    }
}
