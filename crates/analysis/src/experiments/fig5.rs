//! Figure 5 (+ appendix Figure 10): motif timespan distributions.
//!
//! ΔC only bounds a motif's span loosely (`(m−1)·ΔC`), so under only-ΔC
//! the span distribution humps around ΔC with a long tail; ΔW truncates
//! it hard at ΔW and flattens it. We reproduce the histograms for the
//! paper's targets and summarize the hard-cap/flatness claims.

use super::{Corpus, DELTA_W, RATIOS_3E};
use crate::hist::Histogram;
use serde::{Deserialize, Serialize};
use tnm_motifs::prelude::*;

/// Bins for the timespan histograms.
pub const BINS: usize = 15;

/// Timespan distribution of one motif × dataset × config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// ΔC/ΔW ratio.
    pub ratio: f64,
    /// Configuration label.
    pub label: String,
    /// Histogram of spans (seconds), over `[0, 2·ΔW]`.
    pub histogram: Histogram,
    /// Number of instances.
    pub instances: u64,
    /// Maximum observed span (seconds).
    pub max_span: i64,
    /// Mean observed span (seconds).
    pub mean_span: f64,
}

/// The Figure 5 reproduction for one (motif, dataset) target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Target {
    /// Dataset name.
    pub name: String,
    /// Motif signature.
    pub motif: String,
    /// Cells ordered only-ΔC → both → only-ΔW (the paper's panels).
    pub cells: Vec<Fig5Cell>,
}

/// The full Figure 5 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// All analyzed targets.
    pub targets: Vec<Fig5Target>,
}

/// The paper's main-text target.
pub const MAIN_TARGETS: [(&str, &str); 1] = [("010102", "CollegeMsg")];

/// The appendix Figure 10 targets.
pub const APPENDIX_TARGETS: [(&str, &str); 5] = [
    ("010102", "FBWall"),
    ("010102", "SMS-Copenhagen"),
    ("010102", "SuperUser"),
    ("010102", "Calls-Copenhagen"),
    ("011012", "Bitcoin-otc"),
];

/// Analyzes one (motif, dataset) target.
pub fn run_target(corpus: &Corpus, motif: &str, dataset: &str) -> Option<Fig5Target> {
    let entry = corpus.get(dataset)?;
    let signature = sig(motif);
    // Ascending ratio: only-ΔC first, as in the figure's panels.
    let mut ratios = RATIOS_3E.to_vec();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    // All three ratio panels from ONE shared walk: the batch planner
    // merges the per-ratio configs (same motif target, ΔW anchor) into
    // a single prefix-pruned traversal under the widest ΔC, and each
    // visited instance folds into every panel whose timing admits it.
    let batch: Vec<EnumConfig> = ratios
        .iter()
        .map(|&ratio| {
            EnumConfig::for_signature(signature).with_timing(Timing::from_ratio(DELTA_W, ratio))
        })
        .collect();
    struct SpanAcc {
        histogram: Histogram,
        instances: u64,
        max_span: i64,
        sum_span: i64,
    }
    let mut accs: Vec<SpanAcc> = ratios
        .iter()
        .map(|_| SpanAcc {
            histogram: Histogram::new(0.0, (2 * DELTA_W) as f64, BINS),
            instances: 0,
            max_span: 0,
            sum_span: 0,
        })
        .collect();
    enumerate_batch(&entry.graph, &batch, |slot, inst| {
        let span = inst.timespan(&entry.graph);
        let acc = &mut accs[slot];
        acc.histogram.add(span as f64);
        acc.instances += 1;
        acc.max_span = acc.max_span.max(span);
        acc.sum_span += span;
    });
    let cells = ratios
        .iter()
        .zip(accs)
        .map(|(&ratio, acc)| Fig5Cell {
            ratio,
            label: Timing::from_ratio(DELTA_W, ratio).regime(signature.num_events()).to_string(),
            histogram: acc.histogram,
            instances: acc.instances,
            max_span: acc.max_span,
            mean_span: if acc.instances == 0 {
                0.0
            } else {
                acc.sum_span as f64 / acc.instances as f64
            },
        })
        .collect();
    Some(Fig5Target { name: entry.spec.name.clone(), motif: motif.to_string(), cells })
}

/// Runs the main target (plus appendix targets when `appendix`).
pub fn run(corpus: &Corpus, appendix: bool) -> Fig5 {
    let mut wanted: Vec<(&str, &str)> = MAIN_TARGETS.to_vec();
    if appendix {
        wanted.extend(APPENDIX_TARGETS);
    }
    let targets = wanted.iter().filter_map(|(m, d)| run_target(corpus, m, d)).collect();
    Fig5 { targets }
}

impl Fig5 {
    /// Renders the histograms with summary statistics.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 5: motif timespan distributions ==\n");
        for t in &self.targets {
            out.push_str(&format!("\n-- motif {} in {} --\n", t.motif, t.name));
            for c in &t.cells {
                out.push_str(&format!(
                    "  ΔC/ΔW = {:.2} ({}): {} instances, mean span {:.0}s, max span {}s\n",
                    c.ratio, c.label, c.instances, c.mean_span, c.max_span
                ));
                out.push_str(&c.histogram.render("  span histogram (s)", 40));
            }
        }
        out
    }

    /// CSV rows: one per (target, ratio, bin).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,motif,ratio,label,bin_center_s,count\n");
        for t in &self.targets {
            for c in &t.cells {
                for (b, &count) in c.histogram.counts().iter().enumerate() {
                    out.push_str(&format!(
                        "{},{},{:.2},{},{:.0},{}\n",
                        t.name,
                        t.motif,
                        c.ratio,
                        c.label,
                        c.histogram.bin_center(b),
                        count
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_w_caps_spans_delta_c_does_not() {
        let corpus = Corpus::scaled(0.4, 17).only(&["CollegeMsg"]);
        let t = run_target(&corpus, "010102", "CollegeMsg").unwrap();
        let only_c = &t.cells[0];
        let only_w = t.cells.last().unwrap();
        assert_eq!(only_c.label, "only-ΔC");
        assert_eq!(only_w.label, "only-ΔW");
        assert!(only_w.max_span <= DELTA_W, "ΔW must hard-cap spans");
        // only-ΔC (ratio 0.5 -> ΔC = 1500) allows spans up to 2·ΔC = 3000,
        // i.e. the same numeric bound; but the distribution differs: under
        // only-ΔW the mass beyond ΔC must be richer than under only-ΔC.
        let beyond = |c: &Fig5Cell| {
            let cutoff = DELTA_W / 2;
            let mut n = 0u64;
            for (b, &count) in c.histogram.counts().iter().enumerate() {
                if c.histogram.bin_center(b) > cutoff as f64 {
                    n += count;
                }
            }
            n as f64 / c.instances.max(1) as f64
        };
        assert!(
            beyond(only_w) > beyond(only_c),
            "only-ΔW should carry more mass beyond ΔC: {:.3} vs {:.3}",
            beyond(only_w),
            beyond(only_c)
        );
    }

    #[test]
    fn instances_grow_with_ratio() {
        // Larger ΔC admits strictly more instances (supersets).
        let corpus = Corpus::scaled(0.3, 18).only(&["SMS-Copenhagen"]);
        let t = run_target(&corpus, "010102", "SMS-Copenhagen").unwrap();
        for w in t.cells.windows(2) {
            assert!(w[0].instances <= w[1].instances);
        }
    }

    /// The shared-walk rewrite must fold each instance into exactly the
    /// panels its timing admits — per-cell statistics (and therefore the
    /// CSV histograms) identical to three independent enumerations.
    #[test]
    fn shared_walk_matches_per_config_enumeration() {
        let corpus = Corpus::scaled(0.15, 21).only(&["CollegeMsg"]);
        let t = run_target(&corpus, "010102", "CollegeMsg").unwrap();
        let e = corpus.get("CollegeMsg").unwrap();
        for cell in &t.cells {
            let cfg = EnumConfig::for_signature(sig("010102"))
                .with_timing(Timing::from_ratio(DELTA_W, cell.ratio));
            let mut histogram = Histogram::new(0.0, (2 * DELTA_W) as f64, BINS);
            let mut instances = 0u64;
            let mut max_span = 0i64;
            enumerate_instances(&e.graph, &cfg, |inst| {
                let span = inst.timespan(&e.graph);
                histogram.add(span as f64);
                instances += 1;
                max_span = max_span.max(span);
            });
            assert_eq!(cell.instances, instances, "ratio {}", cell.ratio);
            assert_eq!(cell.max_span, max_span, "ratio {}", cell.ratio);
            assert_eq!(cell.histogram.counts(), histogram.counts(), "ratio {}", cell.ratio);
        }
    }

    #[test]
    fn csv_shape() {
        let corpus = Corpus::scaled(0.1, 19).only(&["CollegeMsg"]);
        let f = run(&corpus, false);
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3 * BINS);
    }
}
