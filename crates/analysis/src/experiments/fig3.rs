//! Figure 3 (+ appendix Figures 7–8): event-pair type ratios under
//! only-ΔW vs only-ΔC, for 3-event and 4-event motifs.
//!
//! Findings to reproduce:
//! * the proportion of repetitions *decreases* when going from only-ΔW to
//!   only-ΔC in almost all datasets;
//! * what increases instead varies by domain: in-bursts for the
//!   stack-exchange networks, ping-pongs/conveys for CDR-like networks.

use super::{Corpus, RunConfig, DELTA_W};
use crate::report::{fmt_pct, Table};
use serde::{Deserialize, Serialize};
use tnm_motifs::prelude::*;

/// Event-pair ratio distribution for one dataset × motif size × config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Cell {
    /// Dataset name.
    pub name: String,
    /// Number of events per motif (3 or 4).
    pub num_events: usize,
    /// Configuration label (`only-ΔW` or `only-ΔC`).
    pub label: String,
    /// Ratio per pair type, in R,P,I,O,C,W order.
    pub ratios: [f64; 6],
    /// Total pair occurrences behind the ratios.
    pub total_pairs: u64,
}

/// The Figure 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// All cells (dataset-major, 3e before 4e, only-ΔW before only-ΔC).
    pub cells: Vec<Fig3Cell>,
}

/// The two extreme configurations for a motif size (paper Section 5.2):
/// only-ΔW is ratio 1.0; only-ΔC is the boundary ratio `1/(m−1)`.
pub fn extreme_timings(num_events: usize) -> [(String, Timing); 2] {
    let only_w = Timing::from_ratio(DELTA_W, 1.0);
    let ratio_c = 1.0 / (num_events as f64 - 1.0);
    let only_c = Timing::from_ratio(DELTA_W, ratio_c);
    [("only-ΔW".to_string(), only_w), ("only-ΔC".to_string(), only_c)]
}

/// Runs the event-pair ratio sweep. `include_4e` adds the (much heavier)
/// four-event motif pass.
pub fn run(corpus: &Corpus, include_4e: bool) -> Fig3 {
    run_with(corpus, include_4e, &RunConfig::default())
}

/// Runs the sweep with an explicit engine/thread configuration.
pub fn run_with(corpus: &Corpus, include_4e: bool, rc: &RunConfig) -> Fig3 {
    let sizes: &[usize] = if include_4e { &[3, 4] } else { &[3] };
    let mut cells = Vec::new();
    for e in &corpus.entries {
        for &m in sizes {
            for (label, timing) in extreme_timings(m) {
                let cfg = EnumConfig::new(m, m).with_timing(timing);
                let counts = rc.engine.count(&e.graph, &cfg, rc.threads);
                let pairs = counts.event_pair_counts();
                cells.push(Fig3Cell {
                    name: e.spec.name.clone(),
                    num_events: m,
                    label,
                    ratios: pairs.ratios(),
                    total_pairs: pairs.total(),
                });
            }
        }
    }
    Fig3 { cells }
}

impl Fig3 {
    /// Renders one row per cell with the six percentages.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 3: event-pair ratios, only-ΔW vs only-ΔC",
            &["Network", "Motifs", "Config", "R", "P", "I", "O", "C", "W"],
        );
        for c in &self.cells {
            t.row(vec![
                c.name.clone(),
                format!("{}e", c.num_events),
                c.label.clone(),
                fmt_pct(c.ratios[0]),
                fmt_pct(c.ratios[1]),
                fmt_pct(c.ratios[2]),
                fmt_pct(c.ratios[3]),
                fmt_pct(c.ratios[4]),
                fmt_pct(c.ratios[5]),
            ]);
        }
        t.render()
    }

    /// CSV of all cells.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(
            "",
            &["name", "num_events", "config", "R", "P", "I", "O", "C", "W", "total_pairs"],
        );
        for c in &self.cells {
            let mut row = vec![c.name.clone(), c.num_events.to_string(), c.label.clone()];
            row.extend(c.ratios.iter().map(|r| format!("{r:.4}")));
            row.push(c.total_pairs.to_string());
            t.row(row);
        }
        t.to_csv()
    }

    /// Repetition-ratio change from only-ΔW to only-ΔC for one dataset
    /// and motif size (negative = decreased, the paper's headline).
    pub fn repetition_change(&self, name: &str, num_events: usize) -> Option<f64> {
        let find = |label: &str| {
            self.cells.iter().find(|c| {
                c.name.eq_ignore_ascii_case(name) && c.num_events == num_events && c.label == label
            })
        };
        let w = find("only-ΔW")?;
        let c = find("only-ΔC")?;
        Some(c.ratios[0] - w.ratios[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_ratio_decreases_under_delta_c() {
        // Datasets where the decrease is robust at reduced scale (the
        // message networks sit within noise of zero there; the full-scale
        // run in EXPERIMENTS.md shows 8/9 decreasing).
        let corpus = Corpus::scaled(0.25, 11).only(&["Email", "StackOverflow"]);
        let f3 = run(&corpus, false);
        for name in ["Email", "StackOverflow"] {
            let d = f3.repetition_change(name, 3).unwrap();
            assert!(d < 0.0, "{name}: repetition ratio should fall, changed by {d:+.4}");
        }
    }

    #[test]
    fn ratios_sum_to_one() {
        let corpus = Corpus::scaled(0.1, 12).only(&["Calls-Copenhagen"]);
        let f3 = run(&corpus, true);
        for c in &f3.cells {
            if c.total_pairs > 0 {
                let s: f64 = c.ratios.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "{}: ratios sum {s}", c.name);
            }
        }
        // 3e and 4e, two configs each:
        assert_eq!(f3.cells.len(), 4);
    }

    #[test]
    fn extreme_timing_regimes() {
        let [w3, c3] = extreme_timings(3);
        assert_eq!(w3.1.regime(3), ConstraintRegime::OnlyDeltaW);
        assert_eq!(c3.1.regime(3), ConstraintRegime::OnlyDeltaC);
        let [_, c4] = extreme_timings(4);
        assert_eq!(c4.1.regime(4), ConstraintRegime::OnlyDeltaC);
    }
}
