//! Figure 6 (+ appendix Figure 11): ordered sequences of event pairs as
//! 6×6 heat maps.
//!
//! Every 3-event motif is a sequence of two event pairs; counting motifs
//! by (first pair, second pair) yields a 6×6 matrix whose structure the
//! paper reads off: message networks are dominated by repetition/
//! ping-pong sequences, calls/emails by repetitions and out-bursts,
//! weakly-connected pairs are rare everywhere, and the off-diagonal
//! asymmetries (C→O common, O→C rare; I→C common, C→I rare) reflect how
//! information flows.

use super::{Corpus, RunConfig, DELTA_W};
use crate::heatmap::{asymmetry, heatmap_csv, render_heatmap};
use serde::{Deserialize, Serialize};
use tnm_motifs::event_pair::EventPairType;
use tnm_motifs::prelude::*;

/// ΔC used for the heat maps (the paper's Figure 6 uses ΔC = 2000 s with
/// ΔW = 3000 s).
pub const DELTA_C: i64 = 2000;

/// One dataset's heat map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Map {
    /// Dataset name.
    pub name: String,
    /// Counts: `matrix[first_pair][second_pair]`.
    pub matrix: [[u64; 6]; 6],
    /// Total 3-event motifs behind the matrix.
    pub total: u64,
}

impl Fig6Map {
    /// Signed asymmetry between sequences `a→b` and `b→a` (+1 = all mass
    /// on `a→b`).
    pub fn asymmetry(&self, a: EventPairType, b: EventPairType) -> f64 {
        asymmetry(&self.matrix, a.index(), b.index())
    }

    /// Fraction of motifs whose two pairs are both in {R, P} — the
    /// "local one-to-one conversation" share the paper reads off message
    /// networks.
    pub fn rp_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rp = [EventPairType::Repetition, EventPairType::PingPong];
        let mut n = 0u64;
        for a in rp {
            for b in rp {
                n += self.matrix[a.index()][b.index()];
            }
        }
        n as f64 / self.total as f64
    }

    /// Fraction of motifs containing a weakly-connected pair.
    pub fn w_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = EventPairType::WeaklyConnected.index();
        let mut n = 0u64;
        for i in 0..6 {
            n += self.matrix[w][i];
            if i != w {
                n += self.matrix[i][w];
            }
        }
        n as f64 / self.total as f64
    }
}

/// The full Figure 6 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// One heat map per dataset.
    pub maps: Vec<Fig6Map>,
    /// Timing used.
    pub delta_c: i64,
    /// Timing used.
    pub delta_w: i64,
}

/// Runs the heat-map experiment over all 3-event (2n/3n) motifs with
/// both constraints, as the paper does, using the default engine
/// selection.
pub fn run(corpus: &Corpus) -> Fig6 {
    run_with(corpus, &RunConfig::default())
}

/// Runs the experiment with an explicit engine/thread configuration.
pub fn run_with(corpus: &Corpus, rc: &RunConfig) -> Fig6 {
    let timing = Timing::both(DELTA_C, DELTA_W);
    let maps = corpus
        .entries
        .iter()
        .map(|e| {
            let cfg = EnumConfig::new(3, 3).with_timing(timing);
            let counts = rc.engine.count(&e.graph, &cfg, rc.threads);
            let matrix = counts.pair_sequence_matrix();
            let total: u64 = matrix.iter().flatten().sum();
            Fig6Map { name: e.spec.name.clone(), matrix, total }
        })
        .collect();
    Fig6 { maps, delta_c: DELTA_C, delta_w: DELTA_W }
}

impl Fig6 {
    /// Renders every heat map plus the asymmetry summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== Figure 6: ordered event-pair sequences (dC={}s, dW={}s) ==\n",
            self.delta_c, self.delta_w
        );
        use EventPairType::*;
        for m in &self.maps {
            out.push('\n');
            out.push_str(&render_heatmap(&format!("{} ({} motifs)", m.name, m.total), &m.matrix));
            out.push_str(&format!(
                "    R/P share {:.1}%, W share {:.1}%, C->O asym {:+.2}, I->C asym {:+.2}\n",
                m.rp_share() * 100.0,
                m.w_share() * 100.0,
                m.asymmetry(Convey, OutBurst),
                m.asymmetry(InBurst, Convey),
            ));
        }
        out
    }

    /// CSV with one 6×6 block per dataset.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for m in &self.maps {
            out.push_str(&format!("# {}\n", m.name));
            out.push_str(&heatmap_csv(&m.matrix));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_networks_are_rp_dominated() {
        let corpus = Corpus::scaled(0.3, 20).only(&["SMS-Copenhagen", "StackOverflow"]);
        let f6 = run(&corpus);
        let sms = f6.maps.iter().find(|m| m.name == "SMS-Copenhagen").unwrap();
        let so = f6.maps.iter().find(|m| m.name == "StackOverflow").unwrap();
        assert!(
            sms.rp_share() > so.rp_share(),
            "SMS R/P share {:.3} should beat StackOverflow {:.3}",
            sms.rp_share(),
            so.rp_share()
        );
    }

    #[test]
    fn weakly_connected_is_rare() {
        let corpus = Corpus::scaled(0.3, 21).only(&["SMS-Copenhagen", "CollegeMsg"]);
        let f6 = run(&corpus);
        for m in &f6.maps {
            assert!(m.total > 0, "{} produced no motifs", m.name);
            assert!(m.w_share() < 0.35, "{}: W share {:.3} too high", m.name, m.w_share());
        }
    }

    #[test]
    fn render_and_csv_shapes() {
        let corpus = Corpus::scaled(0.05, 22).only(&["Calls-Copenhagen"]);
        let f6 = run(&corpus);
        let text = f6.render();
        assert!(text.contains("Calls-Copenhagen"));
        assert!(text.contains("R/P share"));
        let csv = f6.to_csv();
        assert_eq!(csv.lines().count(), 8);
    }
}
