//! Table 4 (+ appendix Table 7): vanilla temporal motifs vs constrained
//! dynamic graphlets after degrading the time resolution to 300 s.
//!
//! The paper's findings to reproduce:
//! * Bitcoin-otc shows **zero** difference (no edge ever repeats, so the
//!   freshness restriction never fires);
//! * the delayed repetition `010201` loses proportion, while immediate
//!   repetitions (`010102`, `010202`, `012020`) gain;
//! * Email behaves differently (carbon copies land on both repetition
//!   timestamps) and has the largest variance;
//! * stack-exchange networks barely move (variance < 0.1).

use super::{Corpus, RunConfig, DEGRADED_RESOLUTION, DELTA_C_INDUCEDNESS};
use crate::report::{fmt_pp, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tnm_graph::transform::degrade_resolution;
use tnm_motifs::catalog::all_3n3e;
use tnm_motifs::count::proportion_changes;
use tnm_motifs::prelude::*;

/// The four motifs Table 4 highlights.
pub const HIGHLIGHT: [&str; 4] = ["010102", "010202", "012020", "010201"];

/// One dataset's Table 4 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Dataset name.
    pub name: String,
    /// Total vanilla 3n3e motifs at 300 s resolution.
    pub vanilla_total: u64,
    /// Total constrained dynamic graphlets at 300 s resolution.
    pub constrained_total: u64,
    /// Variance of the per-motif proportion changes (percentage points²).
    pub variance: f64,
    /// Proportion change (pp) of each [`HIGHLIGHT`] motif.
    pub highlight_changes: [f64; 4],
    /// Proportion changes of all 32 motifs (appendix Table 7).
    pub all_changes: HashMap<String, f64>,
}

/// The full Table 4 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    /// One row per dataset.
    pub rows: Vec<Table4Row>,
    /// Snapshot resolution used (seconds).
    pub resolution: i64,
    /// ΔC used (seconds).
    pub delta_c: i64,
}

/// Runs the constrained-dynamic-graphlet experiment with the default
/// engine selection.
pub fn run(corpus: &Corpus) -> Table4 {
    run_with(corpus, &RunConfig::default())
}

/// Runs the experiment with an explicit engine/thread configuration.
pub fn run_with(corpus: &Corpus, rc: &RunConfig) -> Table4 {
    let universe = all_3n3e();
    let timing = Timing::only_c(DELTA_C_INDUCEDNESS);
    let rows = corpus
        .entries
        .iter()
        .map(|e| {
            let degraded = degrade_resolution(&e.graph, DEGRADED_RESOLUTION);
            let base = EnumConfig::new(3, 3).exact_nodes(3).with_timing(timing);
            let vanilla = rc.engine.count(&degraded, &base, rc.threads);
            let constrained_cfg = base.clone().with_constrained(true);
            let constrained = rc.engine.count(&degraded, &constrained_cfg, rc.threads);
            let (changes, variance) = proportion_changes(&vanilla, &constrained, &universe);
            let mut highlight = [0.0f64; 4];
            for (i, s) in HIGHLIGHT.iter().enumerate() {
                highlight[i] = changes[&sig(s)];
            }
            Table4Row {
                name: e.spec.name.clone(),
                vanilla_total: vanilla.total(),
                constrained_total: constrained.total(),
                variance,
                highlight_changes: highlight,
                all_changes: changes.into_iter().map(|(s, d)| (s.to_string(), d)).collect(),
            }
        })
        .collect();
    Table4 { rows, resolution: DEGRADED_RESOLUTION, delta_c: DELTA_C_INDUCEDNESS }
}

impl Table4 {
    /// Renders the paper's Table 4 layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Table 4: constrained dynamic graphlets vs vanilla (resolution={}s, dC={}s)",
                self.resolution, self.delta_c
            ),
            &["Network", "Variance", "010102", "010202", "012020", "010201"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                format!("{:.2}", r.variance),
                fmt_pp(r.highlight_changes[0]),
                fmt_pp(r.highlight_changes[1]),
                fmt_pp(r.highlight_changes[2]),
                fmt_pp(r.highlight_changes[3]),
            ]);
        }
        t.render()
    }

    /// Renders the appendix Table 7 (all 32 motifs × all datasets).
    pub fn render_full(&self) -> String {
        let mut header: Vec<String> = vec!["Motif".to_string()];
        header.extend(self.rows.iter().map(|r| r.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            "Table 7 (appendix): proportion changes of all 3n3e motifs (pp)",
            &header_refs,
        );
        for m in all_3n3e() {
            let name = m.to_string();
            let mut row = vec![name.clone()];
            for r in &self.rows {
                row.push(fmt_pp(r.all_changes.get(&name).copied().unwrap_or(0.0)));
            }
            t.row(row);
        }
        t.render()
    }

    /// CSV of the headline numbers.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(
            "",
            &[
                "name",
                "vanilla_total",
                "constrained_total",
                "variance",
                "d_010102",
                "d_010202",
                "d_012020",
                "d_010201",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.vanilla_total.to_string(),
                r.constrained_total.to_string(),
                format!("{:.4}", r.variance),
                format!("{:.4}", r.highlight_changes[0]),
                format!("{:.4}", r.highlight_changes[1]),
                format!("{:.4}", r.highlight_changes[2]),
                format!("{:.4}", r.highlight_changes[3]),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcoin_shows_zero_difference() {
        let corpus = Corpus::scaled(0.3, 5).only(&["Bitcoin-otc"]);
        let t4 = run(&corpus);
        let r = &t4.rows[0];
        assert_eq!(r.vanilla_total, r.constrained_total);
        assert_eq!(r.variance, 0.0);
        assert_eq!(r.highlight_changes, [0.0; 4]);
    }

    #[test]
    fn constrained_is_subset_of_vanilla() {
        let corpus = Corpus::scaled(0.15, 6).only(&["SMS-Copenhagen", "Email"]);
        let t4 = run(&corpus);
        for r in &t4.rows {
            assert!(r.constrained_total <= r.vanilla_total, "{}", r.name);
        }
    }

    #[test]
    fn render_shapes() {
        let corpus = Corpus::scaled(0.05, 7).only(&["Calls-Copenhagen"]);
        let t4 = run(&corpus);
        assert!(t4.render().contains("Variance"));
        assert_eq!(t4.render_full().lines().count(), 3 + 32);
    }
}
