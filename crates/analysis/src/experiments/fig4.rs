//! Figure 4 (+ appendix Figure 9): intermediate event behaviour.
//!
//! For a fixed motif, where inside the motif's `[first, last]` span do
//! the intermediate events occur? ΔW says nothing about them, so under
//! only-ΔW they skew hard toward one end (e.g. the repetition in
//! `010102` pins the 2nd event near the 1st); adding ΔC regularizes the
//! distribution. We reproduce the histograms and summarize each with a
//! signed skew statistic.

use super::{Corpus, DELTA_W, RATIOS_3E, RATIOS_4E};
use crate::hist::Histogram;
use serde::{Deserialize, Serialize};
use tnm_motifs::prelude::*;

/// Bins used for the 0–100 % occurrence histograms.
pub const BINS: usize = 10;

/// The intermediate-event distribution of one motif × dataset × config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Cell {
    /// Dataset name.
    pub name: String,
    /// Target motif signature.
    pub motif: String,
    /// ΔC/ΔW ratio of this configuration.
    pub ratio: f64,
    /// Configuration label.
    pub label: String,
    /// One histogram per intermediate event (1 for 3e, 2 for 4e motifs),
    /// over normalized position in `[0, 1]`.
    pub histograms: Vec<Histogram>,
    /// Number of instances observed.
    pub instances: u64,
}

impl Fig4Cell {
    /// Signed skew of the `i`-th intermediate event
    /// (−1 = at the first event, +1 = at the last).
    pub fn skew(&self, i: usize) -> f64 {
        self.histograms[i].skew_position()
    }

    /// Largest absolute skew across intermediate events.
    pub fn max_abs_skew(&self) -> f64 {
        self.histograms.iter().map(|h| h.skew_position().abs()).fold(0.0, f64::max)
    }
}

/// The Figure 4 reproduction for one target motif on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Target {
    /// Dataset name.
    pub name: String,
    /// Target motif signature.
    pub motif: String,
    /// One cell per ΔC/ΔW ratio, descending (only-ΔW first).
    pub cells: Vec<Fig4Cell>,
}

/// The full Figure 4 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// All analyzed targets.
    pub targets: Vec<Fig4Target>,
}

/// The paper's main-text targets: (motif, dataset). The paper's 4-event
/// pick `01212303` is kept for fidelity but is rare in the synthetic
/// corpus, so the prominent 4-event motif `01100102` (ping-pong, then a
/// later out-burst) is analyzed alongside it.
pub const MAIN_TARGETS: [(&str, &str); 4] = [
    ("010102", "SMS-Copenhagen"),
    ("011221", "FBWall"),
    ("01212303", "CollegeMsg"),
    ("01100102", "CollegeMsg"),
];

/// The appendix Figure 9 targets (paper's picks plus a 4-event motif
/// that is prominent in the synthetic corpus).
pub const APPENDIX_TARGETS: [(&str, &str); 6] = [
    ("010102", "Calls-Copenhagen"),
    ("010102", "Email"),
    ("01022123", "FBWall"),
    ("01022123", "Bitcoin-otc"),
    ("01022123", "SuperUser"),
    ("01100203", "FBWall"),
];

/// Analyzes one (motif, dataset) target across the ratio sweep.
pub fn run_target(corpus: &Corpus, motif: &str, dataset: &str) -> Option<Fig4Target> {
    let entry = corpus.get(dataset)?;
    let signature = sig(motif);
    let mut ratios: Vec<f64> =
        if signature.num_events() == 3 { RATIOS_3E.to_vec() } else { RATIOS_4E.to_vec() };
    ratios.sort_by(|a, b| b.partial_cmp(a).expect("finite ratios"));
    let n_intermediate = signature.num_events() - 2;
    let cells = ratios
        .iter()
        .map(|&ratio| {
            let timing = Timing::from_ratio(DELTA_W, ratio);
            let cfg = EnumConfig::for_signature(signature).with_timing(timing);
            let mut histograms = vec![Histogram::new(0.0, 1.0, BINS); n_intermediate];
            let mut instances = 0u64;
            enumerate_instances(&entry.graph, &cfg, |inst| {
                let times = inst.times(&entry.graph);
                let first = times[0] as f64;
                let last = *times.last().expect("non-empty") as f64;
                let span = last - first;
                if span <= 0.0 {
                    return;
                }
                instances += 1;
                for (k, h) in histograms.iter_mut().enumerate() {
                    h.add((times[k + 1] as f64 - first) / span);
                }
            });
            Fig4Cell {
                name: entry.spec.name.clone(),
                motif: motif.to_string(),
                ratio,
                label: timing.regime(signature.num_events()).to_string(),
                histograms,
                instances,
            }
        })
        .collect();
    Some(Fig4Target { name: entry.spec.name.clone(), motif: motif.to_string(), cells })
}

/// Runs the main-text targets (plus appendix targets when `appendix`).
pub fn run(corpus: &Corpus, appendix: bool) -> Fig4 {
    let mut targets = Vec::new();
    let mut wanted: Vec<(&str, &str)> = MAIN_TARGETS.to_vec();
    if appendix {
        wanted.extend(APPENDIX_TARGETS);
    }
    for (motif, dataset) in wanted {
        if let Some(t) = run_target(corpus, motif, dataset) {
            targets.push(t);
        }
    }
    Fig4 { targets }
}

impl Fig4 {
    /// Renders histograms and skew summaries.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 4: intermediate event occurrences ==\n");
        for t in &self.targets {
            out.push_str(&format!("\n-- motif {} in {} --\n", t.motif, t.name));
            for c in &t.cells {
                out.push_str(&format!(
                    "  ΔC/ΔW = {:.2} ({}), {} instances:\n",
                    c.ratio, c.label, c.instances
                ));
                for (k, h) in c.histograms.iter().enumerate() {
                    let label = format!(
                        "  event #{} position (0%=first, 100%=last), skew {:+.3}",
                        k + 2,
                        h.skew_position()
                    );
                    out.push_str(&h.render(&label, 40));
                }
            }
        }
        out
    }

    /// CSV rows: one per (target, ratio, intermediate event, bin).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,motif,ratio,label,event_position,bin_center,count\n");
        for t in &self.targets {
            for c in &t.cells {
                for (k, h) in c.histograms.iter().enumerate() {
                    for (b, &count) in h.counts().iter().enumerate() {
                        out.push_str(&format!(
                            "{},{},{:.2},{},{},{:.2},{}\n",
                            t.name,
                            t.motif,
                            c.ratio,
                            c.label,
                            k + 2,
                            h.bin_center(b),
                            count
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_c_regularizes_skew() {
        let corpus = Corpus::scaled(0.4, 13).only(&["SMS-Copenhagen"]);
        let t = run_target(&corpus, "010102", "SMS-Copenhagen").unwrap();
        let only_w = &t.cells[0];
        let only_c = t.cells.last().unwrap();
        assert_eq!(only_w.label, "only-ΔW");
        assert!(only_w.instances > 0, "need instances under only-ΔW");
        // The repetition pins the second event near the first under
        // only-ΔW: skew clearly negative; ΔC reduces the magnitude. The
        // exact value is sensitive to the generator's RNG stream, so only
        // the sign and a conservative magnitude are asserted.
        assert!(
            only_w.skew(0) < -0.1,
            "only-ΔW skew should be clearly negative, got {:+.3}",
            only_w.skew(0)
        );
        assert!(
            only_c.max_abs_skew() < only_w.max_abs_skew() + 1e-9,
            "ΔC should not worsen skew: {:+.3} vs {:+.3}",
            only_c.max_abs_skew(),
            only_w.max_abs_skew()
        );
    }

    #[test]
    fn four_event_targets_have_two_histograms() {
        let corpus = Corpus::scaled(0.2, 14).only(&["CollegeMsg"]);
        let t = run_target(&corpus, "01212303", "CollegeMsg").unwrap();
        assert_eq!(t.cells.len(), 4);
        for c in &t.cells {
            assert_eq!(c.histograms.len(), 2);
        }
    }

    #[test]
    fn missing_dataset_is_none() {
        let corpus = Corpus::scaled(0.05, 15).only(&["Email"]);
        assert!(run_target(&corpus, "010102", "Nope").is_none());
    }

    #[test]
    fn csv_shape() {
        let corpus = Corpus::scaled(0.1, 16).only(&["SMS-Copenhagen"]);
        let f = Fig4 { targets: vec![run_target(&corpus, "010102", "SMS-Copenhagen").unwrap()] };
        let csv = f.to_csv();
        // header + 3 ratios * 1 intermediate * 10 bins.
        assert_eq!(csv.lines().count(), 1 + 3 * BINS);
    }
}
