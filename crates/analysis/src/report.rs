//! ASCII table rendering and CSV serialization for experiment reports.
//!
//! The paper's artifacts are tables and matplotlib figures; we render
//! deterministic text tables (inspectable in a terminal, diffable in
//! tests) and CSV series (re-plottable with any tool).

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names, labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers; columns default to
    /// right alignment except the first.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        let mut aligns = vec![Align::Right; header.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        Table { title: title.into(), header, aligns, rows: Vec::new() }
    }

    /// Overrides column alignments.
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.header.len(), "alignment per column");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as ASCII text.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                let c = &cells[i];
                let pad = w.saturating_sub(c.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(c);
                        line.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        line.extend(std::iter::repeat_n(' ', pad));
                        line.push_str(c);
                    }
                }
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths, &self.aligns));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }

    /// Serializes the table as CSV (header + rows, comma-separated,
    /// quoting cells that contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a count the way the paper does (`1.02M`, `58.3K`, `904`).
pub fn fmt_count(n: u64) -> String {
    tnm_graph::stats::humanize(n as f64)
}

/// Formats a ratio as a percentage with one decimal (`82.6%`).
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a signed percentage-point change (`+3.31%`, `-0.78%`).
pub fn fmt_pp(x: f64) -> String {
    format!("{:+.2}%", x)
}

/// Formats a signed rank change (`+18`, `-9`, `0`).
pub fn fmt_rank_change(d: i64) -> String {
    if d == 0 {
        "0".to_string()
    } else {
        format!("{d:+}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["Name", "Count"]);
        t.row(vec!["alpha".into(), "5".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("Name"));
        assert!(lines[3].ends_with("    5"));
        assert!(lines[4].ends_with("12345"));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("x", &["A", "B"]);
        t.row(vec!["v,1".into(), "plain".into()]);
        t.row(vec!["q\"q".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "A,B");
        assert!(csv.contains("\"v,1\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("x", &["A", "B"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_count(1_020_000), "1.02M");
        assert_eq!(fmt_count(904), "904");
        assert_eq!(fmt_pct(0.826), "82.6%");
        assert_eq!(fmt_pp(3.312), "+3.31%");
        assert_eq!(fmt_pp(-0.78), "-0.78%");
        assert_eq!(fmt_rank_change(18), "+18");
        assert_eq!(fmt_rank_change(-9), "-9");
        assert_eq!(fmt_rank_change(0), "0");
    }
}
