//! # tnm-analysis — the experiment harness
//!
//! Regenerates every table and figure of *Temporal Network Motifs:
//! Models, Limitations, Evaluation* on the synthetic corpus:
//!
//! * [`experiments::table2`] … [`experiments::table5`] — the paper's
//!   tables (plus appendix Tables 6–7);
//! * [`experiments::fig1`] … [`experiments::fig6`] — the figures (plus
//!   appendix Figures 7–11);
//! * [`report`], [`hist`], [`heatmap`] — deterministic ASCII/CSV
//!   rendering of tables, histograms, and heat maps.
//!
//! ```no_run
//! use tnm_analysis::experiments::{self, Corpus};
//!
//! let corpus = Corpus::standard();
//! println!("{}", experiments::table3::run(&corpus).render());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod heatmap;
pub mod hist;
pub mod report;

pub use experiments::{Corpus, CorpusEntry};
