//! Histogram utilities with ASCII rendering — the text equivalent of the
//! paper's Figure 4/5 frequency plots.

use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over a numeric range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or above `hi`.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is empty/invalid.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo && lo.is_finite() && hi.is_finite(), "invalid range");
        Histogram { lo, hi, counts: vec![0; bins], outliers: 0 }
    }

    /// Adds one sample. The top edge is inclusive (a sample exactly at
    /// `hi` lands in the last bin), matching the paper's 0–100 % axes.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo || x > self.hi {
            self.outliers += 1;
            return;
        }
        let bins = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Mean of the binned distribution (bin centers weighted by counts).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 =
            self.counts.iter().enumerate().map(|(i, &c)| self.bin_center(i) * c as f64).sum();
        sum / total as f64
    }

    /// Standard deviation of the binned distribution.
    pub fn std_dev(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = self.bin_center(i) - mean;
                d * d * c as f64
            })
            .sum::<f64>()
            / total as f64;
        var.sqrt()
    }

    /// A skew measure tailored to the Figure 4 analysis: the mean of the
    /// distribution normalized to `[-1, 1]` across the range
    /// (0 = centered, -1 = piled at `lo`, +1 = piled at `hi`).
    pub fn skew_position(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        let mid = (self.lo + self.hi) / 2.0;
        let half = (self.hi - self.lo) / 2.0;
        (self.mean() - mid) / half
    }

    /// Renders as horizontal ASCII bars, one line per bin.
    pub fn render(&self, label: &str, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        out.push_str(label);
        out.push('\n');
        let bins = self.counts.len();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.lo + (self.hi - self.lo) * i as f64 / bins as f64;
            let hi = self.lo + (self.hi - self.lo) * (i + 1) as f64 / bins as f64;
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "  [{lo:>8.1}, {hi:>8.1})  {:<w$}  {c}\n",
                "#".repeat(bar_len),
                w = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.0, 0.1, 0.3, 0.5, 0.74, 0.75, 1.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 2, 2]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.outliers(), 0);
        h.add(-0.1);
        h.add(1.5);
        h.add(f64::NAN);
        assert_eq!(h.outliers(), 3);
    }

    #[test]
    fn moments() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..10 {
            h.add(0.5); // bin 0, center 0.5
        }
        assert!((h.mean() - 0.5).abs() < 1e-12);
        assert!(h.std_dev() < 1e-12);
        h.add(9.5);
        assert!(h.mean() > 0.5);
    }

    #[test]
    fn skew_position_signs() {
        let mut low = Histogram::new(0.0, 1.0, 10);
        for _ in 0..100 {
            low.add(0.05);
        }
        assert!(low.skew_position() < -0.8);
        let mut high = Histogram::new(0.0, 1.0, 10);
        for _ in 0..100 {
            high.add(0.95);
        }
        assert!(high.skew_position() > 0.8);
        let mut mid = Histogram::new(0.0, 1.0, 10);
        for _ in 0..100 {
            mid.add(0.45);
            mid.add(0.55);
        }
        assert!(mid.skew_position().abs() < 0.05);
    }

    #[test]
    fn render_is_stable() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        let s = h.render("demo", 10);
        assert!(s.starts_with("demo\n"));
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("##########  2"));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new(0.0, 1.0, 5);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std_dev(), 0.0);
        assert_eq!(h.skew_position(), 0.0);
    }
}
