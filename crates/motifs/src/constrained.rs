//! Hulovatyy et al.'s *constrained dynamic graphlet* restriction
//! (Sections 4.1 and 5.1.2).
//!
//! If two events `(u1,v1,t1)` and `(u2,v2,t2)` are consecutive in a motif
//! and lie on *different* edges, the graph must contain no event on edge
//! `(u2,v2)` with `t1 ≤ t' ≤ t2` other than the motif's own — the second
//! event must be *fresh*, not stale information repeated from an earlier
//! snapshot. Section 5.1.2 shows this suppresses delayed repetitions
//! (e.g. motif `010201`) and amplifies immediate ones.

use tnm_graph::{EventIdx, TemporalGraph};

/// Checks the constrained-dynamic-graphlet restriction for a time-ordered
/// motif instance.
pub fn constrained_ok(graph: &TemporalGraph, motif_events: &[EventIdx]) -> bool {
    for w in motif_events.windows(2) {
        let a = graph.event(w[0]);
        let b = graph.event(w[1]);
        if a.edge() == b.edge() {
            continue; // the restriction only applies across different edges
        }
        // The motif's own event at `b.time` is included in the count, so
        // exactly 1 means "no other event on this edge in the interval".
        // Timestamp ties with a foreign event on the same edge also fail.
        if graph.count_edge_events_between(b.edge(), a.time, b.time) != 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnm_graph::TemporalGraphBuilder;

    #[test]
    fn fresh_events_pass() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(0, 2, 30)
            .build()
            .unwrap();
        assert!(constrained_ok(&g, &[0, 1, 2]));
    }

    #[test]
    fn stale_second_event_fails() {
        // Edge (1,2) already fired at t=12 inside the interval [10, 20]:
        // picking the t=20 copy as the motif's second event is "stale".
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 12)
            .event(1, 2, 20)
            .event(0, 2, 30)
            .build()
            .unwrap();
        assert!(!constrained_ok(&g, &[0, 2, 3]));
        // The fresh copy at t=12 is fine.
        assert!(constrained_ok(&g, &[0, 1, 3]));
    }

    #[test]
    fn same_edge_consecutive_events_unrestricted() {
        // Repetitions are exempt: (0,1,10) -> (0,1,20) is allowed even
        // with another (0,1) event in between, because the rule only
        // applies when the edges differ.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(0, 1, 15)
            .event(0, 1, 20)
            .build()
            .unwrap();
        assert!(constrained_ok(&g, &[0, 2]));
    }

    #[test]
    fn delayed_repetition_via_other_edge_fails() {
        // Motif 010201 with many 01 events after the 02: only the first
        // 01 after 02 forms a valid constrained graphlet (Section 5.1.2).
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10) // 01
            .event(0, 2, 20) // 02
            .event(0, 1, 30) // first 01 after 02 -> fresh
            .event(0, 1, 40) // delayed repetition -> stale
            .build()
            .unwrap();
        assert!(constrained_ok(&g, &[0, 1, 2]));
        assert!(!constrained_ok(&g, &[0, 1, 3]));
    }

    #[test]
    fn boundary_tie_counts_as_stale() {
        // A foreign event on the same edge at exactly t1 violates t1 <= t'.
        let g = TemporalGraphBuilder::new()
            .event(1, 2, 10) // foreign event on (1,2) at t1
            .event(0, 1, 10) // motif first event at t1
            .event(1, 2, 20) // motif second event
            .build()
            .unwrap();
        // Motif = events (0,1,10) and (1,2,20); indices after sorting:
        let first = g.events().iter().position(|e| e.src.0 == 0).unwrap() as u32;
        let second = g.events().iter().position(|e| e.time == 20).unwrap() as u32;
        assert!(!constrained_ok(&g, &[first, second]));
    }

    #[test]
    fn single_event_trivially_passes() {
        let g = TemporalGraphBuilder::new().event(0, 1, 1).build().unwrap();
        assert!(constrained_ok(&g, &[0]));
    }
}
