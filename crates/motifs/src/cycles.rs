//! Simple temporal cycle enumeration — the 2SCENT problem (Kumar &
//! Calders, PVLDB 2018) from the paper's related work, built on
//! Johnson-style path extension.
//!
//! A *simple temporal cycle* of length `l` is a sequence of events
//! `e_1 < e_2 < … < e_l` (strictly increasing times) such that the target
//! of each event is the source of the next, the target of `e_l` is the
//! source of `e_1`, all intermediate nodes are distinct, and the whole
//! cycle fits in a ΔW window. Temporal cycles are a classic fraud signal
//! in transaction networks (money looping back to its origin), which the
//! `fraud_detection` example exercises.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tnm_graph::{EventIdx, NodeId, TemporalGraph, Time};

/// Search bounds for cycle enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleConfig {
    /// Maximum cycle length in events (≥ 2).
    pub max_length: usize,
    /// Whole-cycle time window ΔW.
    pub delta_w: Time,
}

impl CycleConfig {
    /// Creates a config, validating bounds.
    pub fn new(max_length: usize, delta_w: Time) -> Self {
        assert!(max_length >= 2, "cycles need at least two events");
        assert!(delta_w >= 0, "window must be non-negative");
        CycleConfig { max_length, delta_w }
    }
}

/// Enumerates all simple temporal cycles, invoking `callback` with the
/// time-ordered event indices of each cycle.
pub fn enumerate_temporal_cycles<F: FnMut(&[EventIdx])>(
    graph: &TemporalGraph,
    cfg: &CycleConfig,
    mut callback: F,
) {
    let mut path: Vec<EventIdx> = Vec::with_capacity(cfg.max_length);
    let mut nodes: Vec<NodeId> = Vec::with_capacity(cfg.max_length + 1);
    for (i, first) in graph.events().iter().enumerate() {
        path.push(i as EventIdx);
        nodes.push(first.src);
        nodes.push(first.dst);
        extend(graph, cfg, &mut path, &mut nodes, first.src, first.time, &mut callback);
        path.pop();
        nodes.clear();
    }
}

fn extend<F: FnMut(&[EventIdx])>(
    graph: &TemporalGraph,
    cfg: &CycleConfig,
    path: &mut Vec<EventIdx>,
    nodes: &mut Vec<NodeId>,
    origin: NodeId,
    t_first: Time,
    callback: &mut F,
) {
    let last = graph.event(*path.last().expect("non-empty path"));
    let current = last.dst;
    let t_last = last.time;
    let bound = t_first + cfg.delta_w;
    let list = graph.node_events(current);
    let start = list.partition_point(|&i| graph.event(i).time <= t_last);
    for &i in &list[start..] {
        let e = graph.event(i);
        if e.time > bound {
            break;
        }
        if e.src != current {
            continue; // must continue the chain out of `current`
        }
        if e.dst == origin {
            // Closing the cycle (length >= 2 guaranteed: first event's
            // dst != origin because self-loops are rejected).
            path.push(i);
            callback(path);
            path.pop();
            continue;
        }
        if path.len() + 1 >= cfg.max_length {
            continue; // would need the next event to close, but dst != origin
        }
        if nodes.contains(&e.dst) {
            continue; // simple cycles: no repeated intermediate nodes
        }
        path.push(i);
        nodes.push(e.dst);
        extend(graph, cfg, path, nodes, origin, t_first, callback);
        nodes.pop();
        path.pop();
    }
}

/// Counts simple temporal cycles grouped by length.
pub fn count_temporal_cycles(graph: &TemporalGraph, cfg: &CycleConfig) -> HashMap<usize, u64> {
    let mut out = HashMap::new();
    enumerate_temporal_cycles(graph, cfg, |cycle| {
        *out.entry(cycle.len()).or_insert(0) += 1;
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnm_graph::TemporalGraphBuilder;

    #[test]
    fn triangle_cycle_found() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(2, 0, 30)
            .build()
            .unwrap();
        let mut cycles = Vec::new();
        enumerate_temporal_cycles(&g, &CycleConfig::new(4, 100), |c| cycles.push(c.to_vec()));
        assert_eq!(cycles, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn window_bound_respected() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(2, 0, 30)
            .build()
            .unwrap();
        let counts = count_temporal_cycles(&g, &CycleConfig::new(4, 19));
        assert!(counts.is_empty());
    }

    #[test]
    fn two_cycles_counted_by_length() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10) // 2-cycle: 0->1->0
            .event(1, 0, 15)
            .event(2, 3, 20) // 3-cycle: 2->3->4->2
            .event(3, 4, 25)
            .event(4, 2, 30)
            .build()
            .unwrap();
        let counts = count_temporal_cycles(&g, &CycleConfig::new(5, 100));
        assert_eq!(counts.get(&2), Some(&1));
        assert_eq!(counts.get(&3), Some(&1));
    }

    #[test]
    fn length_cap_prunes() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(2, 3, 30)
            .event(3, 0, 40)
            .build()
            .unwrap();
        assert!(count_temporal_cycles(&g, &CycleConfig::new(3, 100)).is_empty());
        let counts = count_temporal_cycles(&g, &CycleConfig::new(4, 100));
        assert_eq!(counts.get(&4), Some(&1));
    }

    #[test]
    fn non_simple_paths_excluded() {
        // 0->1->2->1 would revisit node 1; only the 2-cycle 1->2->1 counts.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(2, 1, 30)
            .build()
            .unwrap();
        let counts = count_temporal_cycles(&g, &CycleConfig::new(5, 100));
        assert_eq!(counts.get(&2), Some(&1));
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn strict_time_order_excludes_ties() {
        let g = TemporalGraphBuilder::new().event(0, 1, 10).event(1, 0, 10).build().unwrap();
        assert!(count_temporal_cycles(&g, &CycleConfig::new(3, 100)).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two events")]
    fn bad_config_rejected() {
        CycleConfig::new(1, 10);
    }
}
