//! Deprecated pre-trait sampling entry point.
//!
//! The interval sampler now lives behind the [`CountEngine`] seam as
//! [`SamplingEngine`](crate::engine::SamplingEngine), which adds
//! variance-tracked confidence intervals
//! ([`CountEngine::report`](crate::engine::CountEngine::report)), reuses
//! the shared [`WindowIndex`](tnm_graph::WindowIndex) instead of
//! building a subgraph per window, and supports the graph-global
//! restrictions this free function had to reject. This module keeps the
//! original signatures source-compatible as thin deprecated wrappers —
//! there is exactly one sampling code path, the engine's.

#![allow(deprecated)]

use crate::count::MotifCounts;
use crate::engine::{CountEngine, SamplingEngine};
use crate::enumerate::EnumConfig;
use crate::notation::MotifSignature;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tnm_graph::{TemporalGraph, Time};

/// Configuration for the interval sampler.
#[deprecated(since = "0.1.0", note = "construct an `engine::SamplingEngine` instead")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Window length `L`; must exceed the largest motif timespan of
    /// interest (use ≥ 2·ΔW).
    pub window_len: Time,
    /// Number of windows to sample.
    pub num_samples: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

/// Estimated per-signature counts (floating point, unbiased).
#[deprecated(since = "0.1.0", note = "use `engine::EngineReport` from `CountEngine::report`")]
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EstimatedCounts {
    map: HashMap<MotifSignature, f64>,
}

impl EstimatedCounts {
    /// Estimate for one signature (0.0 when never observed).
    pub fn get(&self, sig: MotifSignature) -> f64 {
        self.map.get(&sig).copied().unwrap_or(0.0)
    }

    /// Total estimated instances.
    pub fn total(&self) -> f64 {
        self.map.values().sum()
    }

    /// Iterates `(signature, estimate)`.
    pub fn iter(&self) -> impl Iterator<Item = (MotifSignature, f64)> + '_ {
        self.map.iter().map(|(&s, &v)| (s, v))
    }

    /// Rounds estimates into an integral [`MotifCounts`].
    pub fn rounded(&self) -> MotifCounts {
        self.iter().map(|(s, v)| (s, v.round().max(0.0) as u64)).collect()
    }
}

/// Estimates motif counts by interval sampling.
///
/// Kept for source compatibility, including the original contract:
/// graph-global restrictions are rejected here even though the
/// underlying [`SamplingEngine`](crate::engine::SamplingEngine) now
/// supports them — migrate to the engine to lift the restriction.
///
/// # Panics
///
/// Panics if `cfg` enables a graph-global restriction, if
/// `window_len <= 0`, or if `num_samples == 0`.
#[deprecated(
    since = "0.1.0",
    note = "use `engine::SamplingEngine::new(samples, seed).report(graph, cfg)` instead"
)]
pub fn estimate_motif_counts(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    sampling: &SamplingConfig,
) -> EstimatedCounts {
    assert!(
        !cfg.consecutive_events && !cfg.constrained_dynamic && !cfg.static_induced,
        "sampling supports timing-only configurations"
    );
    let engine = SamplingEngine::new(sampling.num_samples, sampling.seed)
        .with_window_len(sampling.window_len);
    let report = engine.report(graph, cfg);
    EstimatedCounts { map: report.iter().map(|(s, e)| (s, e.point)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tnm_graph::TemporalGraphBuilder;

    /// Random-ish but deterministic graph with plenty of 2/3-event motifs.
    fn test_graph() -> TemporalGraph {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = TemporalGraphBuilder::new();
        let mut t = 0i64;
        for _ in 0..2000 {
            t += rng.gen_range(1i64..6);
            let u: u32 = rng.gen_range(0..30);
            let mut v: u32 = rng.gen_range(0..30);
            if v == u {
                v = (v + 1) % 30;
            }
            b.push(tnm_graph::Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn wrapper_matches_engine_point_estimates() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(20));
        let s = SamplingConfig { window_len: 100, num_samples: 50, seed: 9 };
        let legacy = estimate_motif_counts(&g, &cfg, &s);
        let report = SamplingEngine::new(s.num_samples, s.seed)
            .with_window_len(s.window_len)
            .report(&g, &cfg);
        // Per-signature points are bit-identical; the legacy total sums
        // them in map order, so compare it only up to rounding.
        assert!((legacy.total() - report.total.point).abs() < 1e-6);
        for (sig, v) in legacy.iter() {
            assert_eq!(report.estimate(sig).point, v);
        }
        assert_eq!(legacy.rounded(), report.counts);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(20));
        let s = SamplingConfig { window_len: 100, num_samples: 50, seed: 9 };
        assert_eq!(estimate_motif_counts(&g, &cfg, &s), estimate_motif_counts(&g, &cfg, &s));
    }

    #[test]
    #[should_panic(expected = "timing-only")]
    fn rejects_global_restrictions() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(10)).with_consecutive(true);
        estimate_motif_counts(
            &g,
            &cfg,
            &SamplingConfig { window_len: 100, num_samples: 10, seed: 1 },
        );
    }
}
