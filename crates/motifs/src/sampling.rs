//! Interval-sampling approximate motif counting, in the spirit of Liu,
//! Benson & Charikar, "Sampling methods for counting temporal motifs"
//! (WSDM 2019) — the algorithmic-improvement line of work the paper's
//! related-work section surveys.
//!
//! The estimator samples random windows of length `L` from the timeline,
//! counts motifs wholly inside each window, and importance-weights every
//! detected instance by the inverse probability that a random window
//! contains it. An instance with timespan `s < L` is contained by a
//! window starting in an interval of length `L − s`, out of `T + L`
//! possible starts, so its weight is `(T + L) / (n · (L − s))` over `n`
//! samples. Instances with `s ≥ L` are never observed: pick `L`
//! comfortably above the timing bound (e.g. `2·ΔW`).

use crate::count::MotifCounts;
use crate::enumerate::{enumerate_instances, EnumConfig};
use crate::notation::MotifSignature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tnm_graph::{TemporalGraph, TemporalGraphBuilder, Time};

/// Configuration for the interval sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Window length `L`; must exceed the largest motif timespan of
    /// interest (use ≥ 2·ΔW).
    pub window_len: Time,
    /// Number of windows to sample.
    pub num_samples: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

/// Estimated per-signature counts (floating point, unbiased).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EstimatedCounts {
    map: HashMap<MotifSignature, f64>,
}

impl EstimatedCounts {
    /// Estimate for one signature (0.0 when never observed).
    pub fn get(&self, sig: MotifSignature) -> f64 {
        self.map.get(&sig).copied().unwrap_or(0.0)
    }

    /// Total estimated instances.
    pub fn total(&self) -> f64 {
        self.map.values().sum()
    }

    /// Iterates `(signature, estimate)`.
    pub fn iter(&self) -> impl Iterator<Item = (MotifSignature, f64)> + '_ {
        self.map.iter().map(|(&s, &v)| (s, v))
    }

    /// Rounds estimates into an integral [`MotifCounts`].
    pub fn rounded(&self) -> MotifCounts {
        self.iter().map(|(s, v)| (s, v.round().max(0.0) as u64)).collect()
    }
}

/// Estimates motif counts by interval sampling.
///
/// Only timing-based configurations are supported: the graph-global
/// restrictions (consecutive events, constrained dynamic graphlets,
/// static inducedness) cannot be evaluated inside an isolated window
/// without bias, so configurations enabling them are rejected.
///
/// # Panics
///
/// Panics if `cfg` enables a graph-global restriction, if
/// `window_len <= 0`, or if `num_samples == 0`.
pub fn estimate_motif_counts(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    sampling: &SamplingConfig,
) -> EstimatedCounts {
    assert!(
        !cfg.consecutive_events && !cfg.constrained_dynamic && !cfg.static_induced,
        "sampling supports timing-only configurations"
    );
    assert!(sampling.window_len > 0, "window length must be positive");
    assert!(sampling.num_samples > 0, "need at least one sample");
    let t0 = graph.first_time().expect("non-empty graph");
    let t1 = graph.last_time().expect("non-empty graph");
    let horizon = (t1 - t0) + sampling.window_len; // T + L possible starts
    let mut rng = StdRng::seed_from_u64(sampling.seed);
    let mut acc: HashMap<MotifSignature, f64> = HashMap::new();
    let n = sampling.num_samples as f64;
    for _ in 0..sampling.num_samples {
        let offset = rng.gen_range(0..horizon.max(1));
        let start = t0 - sampling.window_len + 1 + offset;
        let end_exclusive = start + sampling.window_len;
        let (_, events) = graph.events_in_window(start, end_exclusive - 1);
        if events.len() < cfg.num_events {
            continue;
        }
        let window =
            TemporalGraphBuilder::from_events(events.to_vec()).build().expect("window non-empty");
        enumerate_instances(&window, cfg, |inst| {
            let span = inst.timespan(&window);
            let containing = (sampling.window_len - span) as f64;
            if containing <= 0.0 {
                return; // span >= L: unobservable, skip (documented bias)
            }
            let weight = horizon as f64 / (n * containing);
            *acc.entry(inst.signature).or_insert(0.0) += weight;
        });
    }
    EstimatedCounts { map: acc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random-ish but deterministic graph with plenty of 2/3-event motifs.
    fn test_graph() -> TemporalGraph {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = TemporalGraphBuilder::new();
        let mut t = 0i64;
        for _ in 0..4000 {
            t += rng.gen_range(1i64..6);
            let u: u32 = rng.gen_range(0..30);
            let mut v: u32 = rng.gen_range(0..30);
            if v == u {
                v = (v + 1) % 30;
            }
            b.push(tnm_graph::Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn estimates_close_to_exact() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(20));
        let exact = crate::enumerate::count_motifs(&g, &cfg);
        let est = estimate_motif_counts(
            &g,
            &cfg,
            &SamplingConfig { window_len: 200, num_samples: 400, seed: 42 },
        );
        let exact_total = exact.total() as f64;
        let est_total = est.total();
        let rel_err = (est_total - exact_total).abs() / exact_total;
        assert!(
            rel_err < 0.15,
            "estimate {est_total} too far from exact {exact_total} (rel err {rel_err:.3})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(20));
        let s = SamplingConfig { window_len: 100, num_samples: 50, seed: 9 };
        let a = estimate_motif_counts(&g, &cfg, &s);
        let b = estimate_motif_counts(&g, &cfg, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn rounded_counts() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(10));
        let est = estimate_motif_counts(
            &g,
            &cfg,
            &SamplingConfig { window_len: 100, num_samples: 50, seed: 1 },
        );
        let rounded = est.rounded();
        for (s, v) in est.iter() {
            assert_eq!(rounded.get(s), v.round() as u64);
        }
    }

    #[test]
    #[should_panic(expected = "timing-only")]
    fn rejects_global_restrictions() {
        let g = test_graph();
        let cfg = EnumConfig::new(2, 3).with_timing(Timing::only_w(10)).with_consecutive(true);
        estimate_motif_counts(
            &g,
            &cfg,
            &SamplingConfig { window_len: 100, num_samples: 10, seed: 1 },
        );
    }
}
