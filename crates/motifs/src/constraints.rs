//! Timing constraints ΔC and ΔW (paper Sections 4.5 and 5.2).
//!
//! * **ΔC** bounds the gap between every pair of *consecutive* events in a
//!   motif: it captures temporal correlation but only bounds the whole
//!   motif loosely by `(m−1)·ΔC`.
//! * **ΔW** bounds the gap between the *first and last* events: it gives
//!   a holistic view but says nothing about intermediate events.
//!
//! Section 4.5 derives when each constraint is actually binding for an
//! `m`-event motif: with `r = ΔC/ΔW`, only ΔC binds when `r ≤ 1/(m−1)`,
//! only ΔW binds when `r ≥ 1`, and both bind in between. The experiments
//! of Section 5.2 sweep exactly this ratio.

use serde::{Deserialize, Serialize};
use std::fmt;
use tnm_graph::Time;

/// A ΔC/ΔW timing configuration. `None` disables a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Timing {
    /// Maximum allowed gap between consecutive motif events (seconds).
    pub delta_c: Option<Time>,
    /// Maximum allowed gap between first and last motif events (seconds).
    pub delta_w: Option<Time>,
}

impl Timing {
    /// Neither constraint (useful for tiny toy graphs only).
    pub const UNBOUNDED: Timing = Timing { delta_c: None, delta_w: None };

    /// Only-ΔC configuration (Kovanen, Hulovatyy style).
    pub fn only_c(delta_c: Time) -> Self {
        assert!(delta_c >= 0, "ΔC must be non-negative");
        Timing { delta_c: Some(delta_c), delta_w: None }
    }

    /// Only-ΔW configuration (Song, Paranjape style).
    pub fn only_w(delta_w: Time) -> Self {
        assert!(delta_w >= 0, "ΔW must be non-negative");
        Timing { delta_c: None, delta_w: Some(delta_w) }
    }

    /// Both constraints (the trade-off configuration of Section 5.2).
    pub fn both(delta_c: Time, delta_w: Time) -> Self {
        assert!(delta_c >= 0 && delta_w >= 0, "timing bounds must be non-negative");
        Timing { delta_c: Some(delta_c), delta_w: Some(delta_w) }
    }

    /// Builds the configuration the paper writes as `ΔC/ΔW = r` for a fixed
    /// ΔW: `r >= 1` degenerates to only-ΔW, otherwise both constraints are
    /// kept (callers picking `r ≤ 1/(m−1)` get an effectively-only-ΔC
    /// configuration, as the paper notes).
    pub fn from_ratio(delta_w: Time, ratio: f64) -> Self {
        assert!(ratio > 0.0, "ΔC/ΔW ratio must be positive");
        if ratio >= 1.0 {
            Timing::only_w(delta_w)
        } else {
            Timing::both((delta_w as f64 * ratio).round() as Time, delta_w)
        }
    }

    /// The ΔC/ΔW ratio, when both are present.
    pub fn ratio(&self) -> Option<f64> {
        match (self.delta_c, self.delta_w) {
            (Some(c), Some(w)) if w > 0 => Some(c as f64 / w as f64),
            _ => None,
        }
    }

    /// True if a consecutive-event gap is admissible.
    #[inline]
    pub fn pair_ok(&self, gap: Time) -> bool {
        match self.delta_c {
            Some(c) => gap <= c,
            None => true,
        }
    }

    /// True if a whole-motif span is admissible.
    #[inline]
    pub fn span_ok(&self, span: Time) -> bool {
        match self.delta_w {
            Some(w) => span <= w,
            None => true,
        }
    }

    /// Latest admissible timestamp for the next event of a motif whose
    /// first event is at `t_first` and whose current last event is at
    /// `t_last`. `None` means unbounded.
    #[inline]
    pub fn latest_next(&self, t_first: Time, t_last: Time) -> Option<Time> {
        match (self.delta_c, self.delta_w) {
            (Some(c), Some(w)) => Some((t_last + c).min(t_first + w)),
            (Some(c), None) => Some(t_last + c),
            (None, Some(w)) => Some(t_first + w),
            (None, None) => None,
        }
    }

    /// Which constraints are *binding* for an `m`-event motif
    /// (Section 4.5's case analysis).
    pub fn regime(&self, num_events: usize) -> ConstraintRegime {
        match (self.delta_c, self.delta_w) {
            (None, None) => ConstraintRegime::Unbounded,
            (Some(_), None) => ConstraintRegime::OnlyDeltaC,
            (None, Some(_)) => ConstraintRegime::OnlyDeltaW,
            (Some(c), Some(w)) => {
                let m = num_events.max(2) as f64;
                let r = c as f64 / w as f64;
                if r >= 1.0 {
                    // ΔC never binds: ΔW alone already enforces it.
                    ConstraintRegime::OnlyDeltaW
                } else if r <= 1.0 / (m - 1.0) {
                    // ΔW never binds: (m−1)·ΔC ≤ ΔW.
                    ConstraintRegime::OnlyDeltaC
                } else {
                    ConstraintRegime::Both
                }
            }
        }
    }
}

impl fmt::Display for Timing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.delta_c, self.delta_w) {
            (None, None) => write!(f, "unbounded"),
            (Some(c), None) => write!(f, "ΔC={c}s"),
            (None, Some(w)) => write!(f, "ΔW={w}s"),
            (Some(c), Some(w)) => write!(f, "ΔC={c}s, ΔW={w}s"),
        }
    }
}

/// The binding-constraint regimes of Section 4.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintRegime {
    /// Only ΔC effectively constrains the motif.
    OnlyDeltaC,
    /// Both constraints bind (`1/(m−1) < ΔC/ΔW < 1`).
    Both,
    /// Only ΔW effectively constrains the motif.
    OnlyDeltaW,
    /// No timing constraint at all.
    Unbounded,
}

impl fmt::Display for ConstraintRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintRegime::OnlyDeltaC => "only-ΔC",
            ConstraintRegime::Both => "ΔW-and-ΔC",
            ConstraintRegime::OnlyDeltaW => "only-ΔW",
            ConstraintRegime::Unbounded => "unbounded",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = Timing::only_c(1500);
        assert_eq!(c.delta_c, Some(1500));
        assert_eq!(c.delta_w, None);
        let w = Timing::only_w(3000);
        assert_eq!(w.delta_c, None);
        assert_eq!(w.delta_w, Some(3000));
        let b = Timing::both(2000, 3000);
        assert_eq!(b.ratio(), Some(2000.0 / 3000.0));
    }

    #[test]
    fn from_ratio_matches_paper_configs() {
        // Section 5.2: ΔW = 3000s, ratios 0.5 / 0.66 / 1.0 for 3-event motifs.
        let half = Timing::from_ratio(3000, 0.5);
        assert_eq!(half, Timing::both(1500, 3000));
        let two_thirds = Timing::from_ratio(3000, 0.66);
        assert_eq!(two_thirds, Timing::both(1980, 3000));
        let one = Timing::from_ratio(3000, 1.0);
        assert_eq!(one, Timing::only_w(3000));
    }

    #[test]
    fn pair_and_span_checks() {
        let t = Timing::both(5, 10);
        assert!(t.pair_ok(5));
        assert!(!t.pair_ok(6));
        assert!(t.span_ok(10));
        assert!(!t.span_ok(11));
        assert!(Timing::UNBOUNDED.pair_ok(1_000_000));
        assert!(Timing::UNBOUNDED.span_ok(1_000_000));
    }

    #[test]
    fn latest_next_combines_bounds() {
        let t = Timing::both(5, 10);
        // first at 0, last at 7: ΔC allows 12, ΔW allows 10.
        assert_eq!(t.latest_next(0, 7), Some(10));
        // first at 0, last at 2: ΔC allows 7, ΔW allows 10.
        assert_eq!(t.latest_next(0, 2), Some(7));
        assert_eq!(Timing::only_c(5).latest_next(0, 2), Some(7));
        assert_eq!(Timing::only_w(10).latest_next(0, 2), Some(10));
        assert_eq!(Timing::UNBOUNDED.latest_next(0, 2), None);
    }

    #[test]
    fn regimes_follow_section_4_5() {
        // m = 3 events: boundary at ratio 1/2 and 1.
        let m = 3;
        assert_eq!(Timing::both(1500, 3000).regime(m), ConstraintRegime::OnlyDeltaC);
        assert_eq!(Timing::both(1000, 3000).regime(m), ConstraintRegime::OnlyDeltaC);
        assert_eq!(Timing::both(2000, 3000).regime(m), ConstraintRegime::Both);
        assert_eq!(Timing::both(3000, 3000).regime(m), ConstraintRegime::OnlyDeltaW);
        assert_eq!(Timing::both(4000, 3000).regime(m), ConstraintRegime::OnlyDeltaW);
        // m = 4 events: boundary at ratio 1/3.
        assert_eq!(Timing::both(1000, 3000).regime(4), ConstraintRegime::OnlyDeltaC);
        assert_eq!(Timing::both(1500, 3000).regime(4), ConstraintRegime::Both);
        assert_eq!(Timing::only_c(5).regime(3), ConstraintRegime::OnlyDeltaC);
        assert_eq!(Timing::only_w(5).regime(3), ConstraintRegime::OnlyDeltaW);
        assert_eq!(Timing::UNBOUNDED.regime(3), ConstraintRegime::Unbounded);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Timing::both(5, 10).to_string(), "ΔC=5s, ΔW=10s");
        assert_eq!(Timing::only_c(5).to_string(), "ΔC=5s");
        assert_eq!(Timing::only_w(10).to_string(), "ΔW=10s");
        assert_eq!(Timing::UNBOUNDED.to_string(), "unbounded");
        assert_eq!(ConstraintRegime::Both.to_string(), "ΔW-and-ΔC");
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn zero_ratio_rejected() {
        Timing::from_ratio(3000, 0.0);
    }
}
