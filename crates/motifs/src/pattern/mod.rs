//! Event pattern matching over graph streams — Song et al.'s actual
//! problem setting (PVLDB 2014), which their motif model serves.
//!
//! An [`EventPattern`] is a small directed multigraph of *pattern edges*
//! over node *variables*, a [`crate::partial_order::PartialOrder`] over
//! those edges, a ΔW window, and optional node-label / duration
//! predicates. The [`matcher::StreamingMatcher`] finds all matches
//! on-the-fly as events stream in time order — no precomputed indexes,
//! bounded state, expired partial matches evicted.

pub mod matcher;

use crate::partial_order::PartialOrder;
use serde::{Deserialize, Serialize};
use tnm_graph::Time;

/// One edge of a pattern: `src_var → dst_var` with optional predicates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternEdge {
    /// Source node variable (dense, `0..num_vars`).
    pub src_var: usize,
    /// Target node variable.
    pub dst_var: usize,
    /// If set, the concrete source node must carry this label.
    pub src_label: Option<u32>,
    /// If set, the concrete target node must carry this label.
    pub dst_label: Option<u32>,
    /// If set, the matched event's duration must not exceed this bound
    /// (Song et al. treat durations as edge labels, Section 4.2).
    pub max_duration: Option<u32>,
}

impl PatternEdge {
    /// An unlabelled pattern edge.
    pub fn new(src_var: usize, dst_var: usize) -> Self {
        PatternEdge { src_var, dst_var, src_label: None, dst_label: None, max_duration: None }
    }
}

/// A partially-ordered, windowed event pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventPattern {
    /// The pattern edges, in declaration order.
    pub edges: Vec<PatternEdge>,
    /// Number of node variables.
    pub num_vars: usize,
    /// Precedence constraints among pattern edges.
    pub order: PartialOrder,
    /// Whole-match window ΔW.
    pub delta_w: Time,
    /// Require distinct variables to bind distinct nodes (isomorphic
    /// matching). Song's event patterns are injective; set `false` for
    /// homomorphic matching.
    pub injective: bool,
}

/// Errors constructing an [`EventPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A pattern edge references a variable `>= num_vars`.
    VarOutOfRange,
    /// A pattern edge is a self-loop.
    SelfLoop,
    /// The order's length differs from the edge count.
    OrderMismatch,
    /// The pattern has no edges.
    Empty,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::VarOutOfRange => write!(f, "pattern edge variable out of range"),
            PatternError::SelfLoop => write!(f, "pattern edges may not be self-loops"),
            PatternError::OrderMismatch => {
                write!(f, "partial order size must equal the number of pattern edges")
            }
            PatternError::Empty => write!(f, "pattern has no edges"),
        }
    }
}

impl std::error::Error for PatternError {}

impl EventPattern {
    /// Validates and builds a pattern.
    pub fn new(
        edges: Vec<PatternEdge>,
        num_vars: usize,
        order: PartialOrder,
        delta_w: Time,
    ) -> Result<Self, PatternError> {
        if edges.is_empty() {
            return Err(PatternError::Empty);
        }
        if order.len() != edges.len() {
            return Err(PatternError::OrderMismatch);
        }
        for e in &edges {
            if e.src_var >= num_vars || e.dst_var >= num_vars {
                return Err(PatternError::VarOutOfRange);
            }
            if e.src_var == e.dst_var {
                return Err(PatternError::SelfLoop);
            }
        }
        Ok(EventPattern { edges, num_vars, order, delta_w, injective: true })
    }

    /// A totally-ordered pattern from `(src_var, dst_var)` pairs — the
    /// common case, equivalent to a motif signature with a ΔW window.
    pub fn totally_ordered(pairs: &[(usize, usize)], delta_w: Time) -> Result<Self, PatternError> {
        let num_vars = pairs.iter().flat_map(|&(a, b)| [a, b]).max().map_or(0, |m| m + 1);
        let edges = pairs.iter().map(|&(a, b)| PatternEdge::new(a, b)).collect::<Vec<_>>();
        let order = PartialOrder::total(edges.len());
        Self::new(edges, num_vars, order, delta_w)
    }

    /// Builds a pattern from a motif signature (total order, ΔW window).
    pub fn from_signature(sig: crate::notation::MotifSignature, delta_w: Time) -> Self {
        let pairs: Vec<(usize, usize)> =
            sig.pairs().iter().map(|&(a, b)| (a as usize, b as usize)).collect();
        Self::totally_ordered(&pairs, delta_w).expect("signatures are valid patterns")
    }

    /// Number of pattern edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the pattern has no edges (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;

    #[test]
    fn totally_ordered_construction() {
        let p = EventPattern::totally_ordered(&[(0, 1), (1, 2), (0, 2)], 100).unwrap();
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.len(), 3);
        assert!(p.injective);
        assert_eq!(p.order.count_linear_extensions(), 1);
    }

    #[test]
    fn from_signature_roundtrip() {
        let p = EventPattern::from_signature(sig("011202"), 50);
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.edges[2], PatternEdge::new(0, 2));
        assert_eq!(p.delta_w, 50);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(EventPattern::totally_ordered(&[], 10).unwrap_err(), PatternError::Empty);
        let self_loop = vec![PatternEdge::new(0, 0)];
        assert_eq!(
            EventPattern::new(self_loop, 1, PartialOrder::total(1), 10).unwrap_err(),
            PatternError::SelfLoop
        );
        let bad_var = vec![PatternEdge::new(0, 9)];
        assert_eq!(
            EventPattern::new(bad_var, 2, PartialOrder::total(1), 10).unwrap_err(),
            PatternError::VarOutOfRange
        );
        let mismatch = vec![PatternEdge::new(0, 1)];
        assert_eq!(
            EventPattern::new(mismatch, 2, PartialOrder::total(2), 10).unwrap_err(),
            PatternError::OrderMismatch
        );
    }
}
