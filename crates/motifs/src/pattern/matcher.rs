//! The streaming matcher for [`super::EventPattern`].
//!
//! Events are fed in non-decreasing time order (the natural stream
//! order). The matcher maintains partial matches; each arriving event may
//! extend a partial match by binding any *enabled* pattern edge — one
//! whose predecessors in the partial order are already bound. Partial
//! matches older than ΔW are evicted before each step, so state stays
//! proportional to the traffic inside one window.

use super::{EventPattern, PatternEdge};
use tnm_graph::{Event, EventIdx, NodeId, TemporalGraph, Time};

/// A completed pattern match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternMatch {
    /// For each pattern edge (in declaration order), the matched event.
    pub events: Vec<EventIdx>,
    /// For each variable, the bound node.
    pub bindings: Vec<NodeId>,
    /// Time of the earliest matched event.
    pub t_first: Time,
    /// Time of the latest matched event.
    pub t_last: Time,
}

#[derive(Debug, Clone)]
struct Partial {
    /// Event index per pattern edge; `EventIdx::MAX` = unbound.
    assigned: Vec<EventIdx>,
    /// Node per variable; `None` = unbound.
    bindings: Vec<Option<NodeId>>,
    /// Bitmask of bound pattern edges.
    mask: u32,
    t_first: Time,
}

/// Streaming matcher state. Feed events with [`Self::process`]; completed
/// matches are returned as they close.
#[derive(Debug)]
pub struct StreamingMatcher {
    pattern: EventPattern,
    partials: Vec<Partial>,
    /// Soft cap on live partial matches; oldest are evicted beyond it.
    max_partials: usize,
    /// Count of partial matches dropped by the cap (for diagnostics).
    pub dropped_partials: u64,
    last_time: Option<Time>,
}

impl StreamingMatcher {
    /// Creates a matcher with the default state cap (65 536 partials).
    pub fn new(pattern: EventPattern) -> Self {
        Self::with_capacity(pattern, 1 << 16)
    }

    /// Creates a matcher with an explicit partial-match cap.
    pub fn with_capacity(pattern: EventPattern, max_partials: usize) -> Self {
        StreamingMatcher {
            pattern,
            partials: Vec::new(),
            max_partials: max_partials.max(1),
            dropped_partials: 0,
            last_time: None,
        }
    }

    /// The pattern being matched.
    pub fn pattern(&self) -> &EventPattern {
        &self.pattern
    }

    /// Number of live partial matches (diagnostics / tests).
    pub fn live_partials(&self) -> usize {
        self.partials.len()
    }

    /// Feeds one event (with its stream index); returns matches completed
    /// by this event. Events must arrive in non-decreasing time order.
    ///
    /// `node_labels`, when provided, gives each node's label for the
    /// pattern's label predicates; unlabelled matching passes `None`.
    ///
    /// # Panics
    ///
    /// Panics if events arrive out of time order.
    pub fn process(
        &mut self,
        idx: EventIdx,
        event: &Event,
        node_labels: Option<&[u32]>,
    ) -> Vec<PatternMatch> {
        if let Some(last) = self.last_time {
            assert!(event.time >= last, "events must stream in time order");
        }
        self.last_time = Some(event.time);

        // Evict expired partials: nothing starting before this horizon
        // can still complete within ΔW.
        let horizon = event.time - self.pattern.delta_w;
        self.partials.retain(|p| p.t_first >= horizon);

        let mut completed = Vec::new();
        let mut spawned: Vec<Partial> = Vec::new();

        // Try to extend every live partial (and the implicit empty one).
        for pi in 0..self.partials.len() {
            let extensions = self.extensions_of(&self.partials[pi], idx, event, node_labels);
            for ext in extensions {
                if ext.mask.count_ones() as usize == self.pattern.len() {
                    completed.push(self.finish(ext));
                } else {
                    spawned.push(ext);
                }
            }
        }
        let empty = Partial {
            assigned: vec![EventIdx::MAX; self.pattern.len()],
            bindings: vec![None; self.pattern.num_vars],
            mask: 0,
            t_first: event.time,
        };
        for ext in self.extensions_of(&empty, idx, event, node_labels) {
            if ext.mask.count_ones() as usize == self.pattern.len() {
                completed.push(self.finish(ext));
            } else {
                spawned.push(ext);
            }
        }

        self.partials.extend(spawned);
        if self.partials.len() > self.max_partials {
            let excess = self.partials.len() - self.max_partials;
            // Oldest first: earlier t_first sorts first; drain them.
            self.partials.sort_by_key(|p| std::cmp::Reverse(p.t_first));
            self.partials.truncate(self.max_partials);
            self.dropped_partials += excess as u64;
        }
        completed
    }

    /// All single-edge extensions of `partial` by `event`.
    fn extensions_of(
        &self,
        partial: &Partial,
        idx: EventIdx,
        event: &Event,
        node_labels: Option<&[u32]>,
    ) -> Vec<Partial> {
        if event.time - partial.t_first > self.pattern.delta_w {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (ei, pe) in self.pattern.edges.iter().enumerate() {
            if partial.mask & (1 << ei) != 0 {
                continue; // already bound
            }
            // All predecessors must be bound (time order then follows
            // from stream order).
            let enabled = (0..self.pattern.len())
                .all(|pj| !self.pattern.order.precedes(pj, ei) || partial.mask & (1 << pj) != 0);
            if !enabled {
                continue;
            }
            if !edge_predicates_ok(pe, event, node_labels) {
                continue;
            }
            if let Some(ext) = self.bind(partial, ei, idx, event) {
                out.push(ext);
            }
        }
        out
    }

    fn bind(
        &self,
        partial: &Partial,
        edge_index: usize,
        idx: EventIdx,
        event: &Event,
    ) -> Option<Partial> {
        let pe = &self.pattern.edges[edge_index];
        let mut bindings = partial.bindings.clone();
        for (var, node) in [(pe.src_var, event.src), (pe.dst_var, event.dst)] {
            match bindings[var] {
                Some(bound) if bound != node => return None,
                Some(_) => {}
                None => {
                    if self.pattern.injective && bindings.contains(&Some(node)) {
                        return None;
                    }
                    bindings[var] = Some(node);
                }
            }
        }
        let mut assigned = partial.assigned.clone();
        assigned[edge_index] = idx;
        Some(Partial {
            assigned,
            bindings,
            mask: partial.mask | (1 << edge_index),
            t_first: partial.t_first.min(event.time),
        })
    }

    fn finish(&self, partial: Partial) -> PatternMatch {
        let bindings: Vec<NodeId> = partial
            .bindings
            .into_iter()
            .map(|b| b.expect("complete match binds all vars"))
            .collect();
        PatternMatch {
            events: partial.assigned,
            bindings,
            t_first: partial.t_first,
            t_last: self.last_time.expect("process ran"),
        }
    }

    /// Runs the matcher over a whole graph, returning all matches.
    pub fn match_graph(pattern: EventPattern, graph: &TemporalGraph) -> Vec<PatternMatch> {
        let mut matcher = StreamingMatcher::new(pattern);
        let mut out = Vec::new();
        for (i, e) in graph.events().iter().enumerate() {
            out.extend(matcher.process(i as EventIdx, e, None));
        }
        out
    }
}

fn edge_predicates_ok(pe: &PatternEdge, event: &Event, node_labels: Option<&[u32]>) -> bool {
    if let Some(maxd) = pe.max_duration {
        if event.duration > maxd {
            return false;
        }
    }
    if let Some(labels) = node_labels {
        if let Some(want) = pe.src_label {
            if labels.get(event.src.index()).copied() != Some(want) {
                return false;
            }
        }
        if let Some(want) = pe.dst_label {
            if labels.get(event.dst.index()).copied() != Some(want) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial_order::PartialOrder;
    use tnm_graph::TemporalGraphBuilder;

    fn triangle_graph() -> TemporalGraph {
        TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(0, 2, 30)
            .event(5, 6, 40)
            .build()
            .unwrap()
    }

    #[test]
    fn totally_ordered_triangle_matches_once() {
        let p = EventPattern::totally_ordered(&[(0, 1), (1, 2), (0, 2)], 100).unwrap();
        let matches = StreamingMatcher::match_graph(p, &triangle_graph());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].events, vec![0, 1, 2]);
        assert_eq!(matches[0].bindings, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(matches[0].t_first, 10);
        assert_eq!(matches[0].t_last, 30);
    }

    #[test]
    fn window_excludes_slow_matches() {
        let p = EventPattern::totally_ordered(&[(0, 1), (1, 2), (0, 2)], 15).unwrap();
        let matches = StreamingMatcher::match_graph(p, &triangle_graph());
        assert!(matches.is_empty());
    }

    #[test]
    fn partial_order_matches_both_orders() {
        // Pattern: edges e0 = 0->1, e1 = 1->2, unordered.
        let p = EventPattern::new(
            vec![PatternEdge::new(0, 1), PatternEdge::new(1, 2)],
            3,
            PartialOrder::unordered(2),
            100,
        )
        .unwrap();
        // Stream where the convey happens "backwards" in time:
        // (1,2) at t=10 then (0,1) at t=20.
        let g = TemporalGraphBuilder::new().event(1, 2, 10).event(0, 1, 20).build().unwrap();
        let matches = StreamingMatcher::match_graph(p.clone(), &g);
        assert_eq!(matches.len(), 1, "unordered pattern must match reversed arrival");
        // A totally ordered version must not match.
        let total = EventPattern::totally_ordered(&[(0, 1), (1, 2)], 100).unwrap();
        assert!(StreamingMatcher::match_graph(total, &g).is_empty());
    }

    #[test]
    fn injectivity_blocks_variable_aliasing() {
        // Pattern square 0->1->2->3 requires 4 distinct nodes.
        let p = EventPattern::totally_ordered(&[(0, 1), (1, 2), (2, 3)], 100).unwrap();
        // Chain that folds back onto node 0: 0->1->2->0.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 2, 2)
            .event(2, 0, 3)
            .build()
            .unwrap();
        assert!(StreamingMatcher::match_graph(p.clone(), &g).is_empty());
        let mut homo = p;
        homo.injective = false;
        assert_eq!(StreamingMatcher::match_graph(homo, &g).len(), 1);
    }

    #[test]
    fn label_predicates() {
        let mut edge = PatternEdge::new(0, 1);
        edge.src_label = Some(7);
        let p = EventPattern::new(vec![edge], 2, PartialOrder::total(1), 100).unwrap();
        let labels = vec![7u32, 0, 0];
        let g = TemporalGraphBuilder::new().event(0, 1, 1).event(1, 2, 2).build().unwrap();
        let mut matcher = StreamingMatcher::new(p);
        let m0 = matcher.process(0, &g.events()[0], Some(&labels));
        assert_eq!(m0.len(), 1, "node 0 has label 7");
        let m1 = matcher.process(1, &g.events()[1], Some(&labels));
        assert!(m1.is_empty(), "node 1 lacks label 7");
    }

    #[test]
    fn duration_predicate() {
        let mut edge = PatternEdge::new(0, 1);
        edge.max_duration = Some(30);
        let p = EventPattern::new(vec![edge], 2, PartialOrder::total(1), 100).unwrap();
        let g = TemporalGraphBuilder::new()
            .event_with_duration(0, 1, 1, 10)
            .event_with_duration(0, 1, 2, 60)
            .build()
            .unwrap();
        let matches = StreamingMatcher::match_graph(p, &g);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].events, vec![0]);
    }

    #[test]
    fn expired_partials_are_evicted() {
        let p = EventPattern::totally_ordered(&[(0, 1), (1, 2)], 10).unwrap();
        let g = TemporalGraphBuilder::new().event(0, 1, 0).event(3, 4, 100).build().unwrap();
        let mut matcher = StreamingMatcher::new(p);
        matcher.process(0, &g.events()[0], None);
        assert_eq!(matcher.live_partials(), 1);
        matcher.process(1, &g.events()[1], None);
        // The t=0 partial is long expired at t=100.
        assert_eq!(matcher.live_partials(), 1, "only the new partial remains");
    }

    #[test]
    fn state_cap_drops_oldest() {
        let p = EventPattern::totally_ordered(&[(0, 1), (1, 2)], 1_000_000).unwrap();
        let mut matcher = StreamingMatcher::with_capacity(p, 4);
        let mut b = TemporalGraphBuilder::new();
        for t in 0..20 {
            b.push(Event::new(t as u32 * 2, t as u32 * 2 + 1, t));
        }
        let g = b.build().unwrap();
        for (i, e) in g.events().iter().enumerate() {
            matcher.process(i as EventIdx, e, None);
        }
        assert_eq!(matcher.live_partials(), 4);
        assert!(matcher.dropped_partials > 0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_stream_panics() {
        let p = EventPattern::totally_ordered(&[(0, 1)], 10).unwrap();
        let mut matcher = StreamingMatcher::new(p);
        matcher.process(0, &Event::new(0u32, 1u32, 10), None);
        matcher.process(1, &Event::new(0u32, 1u32, 5), None);
    }
}
