//! The four temporal motif models surveyed by the paper (Section 4).
//!
//! Every model is expressed as a [`MotifModel`]: a bundle of the aspects
//! from the paper's Table 1 — timing constraints (ΔC vs ΔW), temporal or
//! static inducedness, duration awareness, and ordering discipline. The
//! unified representation is what lets the experiments switch a single
//! aspect on or off and measure its bias, which is the paper's core
//! methodology.
//!
//! | Aspect | Kovanen [11] | Song [12] | Hulovatyy [13] | Paranjape [14] |
//! |---|---|---|---|---|
//! | Induced subgraph | node-based temporal | — | static only | static only |
//! | Event durations | — | as labels | ✓ | — |
//! | Partial ordering | ✓ | ✓ | — | — |
//! | Directed edges | ✓ | ✓ | — | ✓ |
//! | Node/edge labels | — | ✓ | — | — |
//! | Adjacent events in ΔC | ✓ | — | ✓ | — |
//! | Entire motif in ΔW | — | ✓ | — | ✓ |

pub mod hulovatyy;
pub mod kovanen;
pub mod paranjape;
pub mod song;

use crate::constraints::Timing;
use serde::{Deserialize, Serialize};
use std::fmt;
use tnm_graph::Time;

/// Ordering discipline among the events of a motif (Section 4.3).
///
/// Partial orders are representable as unions of total orders; the
/// counting engine always works with total orders and
/// [`crate::partial_order`] expands partial patterns into them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventOrdering {
    /// Every pair of events is ordered (Hulovatyy, Paranjape).
    Total,
    /// Some event pairs may be unordered (Kovanen, Song).
    Partial,
}

/// A unified temporal motif model: the configuration space spanned by the
/// four surveyed models.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MotifModel {
    /// Human-readable model name for reports.
    pub name: String,
    /// ΔC / ΔW configuration.
    pub timing: Timing,
    /// Kovanen's consecutive events restriction (node-based temporal
    /// inducedness, Section 4.1).
    pub consecutive_events: bool,
    /// Static-projection inducedness (Hulovatyy, Paranjape).
    pub static_induced: bool,
    /// Hulovatyy's constrained dynamic graphlet restriction.
    pub constrained_dynamic: bool,
    /// Measure consecutive-event gaps from the *end* of the previous
    /// event (Hulovatyy's duration-aware dynamic graphlets, Section 4.2).
    pub duration_aware: bool,
    /// Ordering discipline the model natively supports.
    pub ordering: EventOrdering,
    /// Whether the model natively supports node/edge labels (Song).
    pub supports_labels: bool,
}

impl MotifModel {
    /// A "vanilla" model: timing constraints only, no inducedness
    /// restrictions. This is the baseline the paper counts against in
    /// Sections 5.1 and 5.2.
    pub fn vanilla(timing: Timing) -> Self {
        MotifModel {
            name: format!("vanilla ({timing})"),
            timing,
            consecutive_events: false,
            static_induced: false,
            constrained_dynamic: false,
            duration_aware: false,
            ordering: EventOrdering::Total,
            supports_labels: false,
        }
    }

    /// Kovanen et al. [11] — see [`kovanen`].
    pub fn kovanen(delta_c: Time) -> Self {
        kovanen::model(delta_c)
    }

    /// Song et al. [12] — see [`song`].
    pub fn song(delta_w: Time) -> Self {
        song::model(delta_w)
    }

    /// Hulovatyy et al. [13] — see [`hulovatyy`].
    pub fn hulovatyy(delta_c: Time) -> Self {
        hulovatyy::model(delta_c)
    }

    /// Hulovatyy et al.'s constrained dynamic graphlets — see [`hulovatyy`].
    pub fn hulovatyy_constrained(delta_c: Time) -> Self {
        hulovatyy::constrained_model(delta_c)
    }

    /// Paranjape et al. [14] — see [`paranjape`].
    pub fn paranjape(delta_w: Time) -> Self {
        paranjape::model(delta_w)
    }

    /// All four paper models with the given parameters, in citation order.
    /// Handy for Figure 1-style side-by-side comparisons.
    pub fn all_four(delta_c: Time, delta_w: Time) -> Vec<MotifModel> {
        vec![
            Self::kovanen(delta_c),
            Self::song(delta_w),
            Self::hulovatyy(delta_c),
            Self::paranjape(delta_w),
        ]
    }
}

impl fmt::Display for MotifModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_aspects() {
        let k = MotifModel::kovanen(5);
        assert!(k.consecutive_events);
        assert!(!k.static_induced);
        assert_eq!(k.ordering, EventOrdering::Partial);
        assert_eq!(k.timing.delta_c, Some(5));
        assert_eq!(k.timing.delta_w, None);

        let s = MotifModel::song(10);
        assert!(!s.consecutive_events);
        assert!(!s.static_induced);
        assert!(s.supports_labels);
        assert_eq!(s.timing.delta_w, Some(10));
        assert_eq!(s.timing.delta_c, None);

        let h = MotifModel::hulovatyy(5);
        assert!(h.static_induced);
        assert!(!h.consecutive_events);
        assert!(!h.constrained_dynamic);
        assert!(h.duration_aware);
        assert_eq!(h.ordering, EventOrdering::Total);

        let hc = MotifModel::hulovatyy_constrained(5);
        assert!(hc.constrained_dynamic);
        assert!(hc.static_induced);

        let p = MotifModel::paranjape(10);
        assert!(p.static_induced);
        assert!(!p.consecutive_events);
        assert_eq!(p.timing.delta_w, Some(10));
    }

    #[test]
    fn vanilla_has_no_restrictions() {
        let v = MotifModel::vanilla(Timing::only_c(1500));
        assert!(!v.consecutive_events && !v.static_induced && !v.constrained_dynamic);
    }

    #[test]
    fn all_four_ordering() {
        let models = MotifModel::all_four(5, 10);
        assert_eq!(models.len(), 4);
        assert!(models[0].name.contains("Kovanen"));
        assert!(models[1].name.contains("Song"));
        assert!(models[2].name.contains("Hulovatyy"));
        assert!(models[3].name.contains("Paranjape"));
    }

    #[test]
    fn display_includes_timing() {
        let s = MotifModel::paranjape(3000).to_string();
        assert!(s.contains("ΔW=3000s"), "{s}");
    }
}
