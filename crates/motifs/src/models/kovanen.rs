//! Kovanen et al. [11]: the first holistic temporal motif model.
//!
//! *L. Kovanen, M. Karsai, K. Kaski, J. Kertész, J. Saramäki, "Temporal
//! motifs in time-dependent networks", J. Stat. Mech. (2011).*
//!
//! Defining features (paper Section 4):
//!
//! 1. **ΔC temporal adjacency** — every pair of consecutive events must be
//!    within ΔC seconds, aimed at capturing causality. There is no bound
//!    on the whole motif beyond the loose `(m−1)·ΔC`.
//! 2. **Consecutive events restriction** — a node engaged in a motif may
//!    not participate in any outside event between its motif events
//!    (node-based temporal inducedness). This keeps star-burst nodes from
//!    generating quadratically many motifs, but Section 5.1.1 shows it
//!    removes >95 % of 3n3e motifs and consistently amplifies ask-reply
//!    shapes — useful for message/email analysis, biased elsewhere.
//! 3. **Partial ordering support** — motifs may leave some event pairs
//!    unordered; such a motif is the union of its linear extensions
//!    (see [`crate::partial_order`]).
//!
//! Durations are acknowledged but omitted; edges are directed; labels are
//! not part of the model.

use super::{EventOrdering, MotifModel};
use crate::constraints::Timing;
use tnm_graph::Time;

/// Builds the Kovanen et al. model with inter-event threshold `delta_c`.
pub fn model(delta_c: Time) -> MotifModel {
    MotifModel {
        name: "Kovanen et al. [11]".to_string(),
        timing: Timing::only_c(delta_c),
        consecutive_events: true,
        static_induced: false,
        constrained_dynamic: false,
        duration_aware: false,
        ordering: EventOrdering::Partial,
        supports_labels: false,
    }
}

/// The "non-consecutive" ablation used by Table 3: Kovanen's timing
/// without the consecutive events restriction.
pub fn without_consecutive_restriction(delta_c: Time) -> MotifModel {
    MotifModel {
        name: "Kovanen et al. [11] w/o consecutive restriction".to_string(),
        consecutive_events: false,
        ..model(delta_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_aspects() {
        let m = model(1500);
        assert_eq!(m.timing, Timing::only_c(1500));
        assert!(m.consecutive_events);
        assert_eq!(m.ordering, EventOrdering::Partial);
    }

    #[test]
    fn ablation_differs_only_in_restriction() {
        let a = model(1500);
        let b = without_consecutive_restriction(1500);
        assert!(a.consecutive_events && !b.consecutive_events);
        assert_eq!(a.timing, b.timing);
        assert_eq!(a.static_induced, b.static_induced);
    }
}
