//! Song et al. [12]: event pattern matching over graph streams.
//!
//! *C. Song, T. Ge, C. Chen, J. Wang, "Event pattern matching over graph
//! streams", PVLDB 8(4), 2014.*
//!
//! Defining features (paper Section 4):
//!
//! 1. **ΔW window** — all events of a match must fall within ΔW seconds
//!    of the first; there is no per-gap constraint.
//! 2. **Non-induced** — deliberately: in streaming fraud detection one
//!    wants to catch a pattern (e.g. a temporal square) regardless of
//!    other transactions among the same accounts.
//! 3. **Node/edge labels** — patterns can constrain labels; durations can
//!    be treated as edge labels.
//! 4. **Partial ordering** — patterns order only the event pairs that
//!    matter.
//!
//! The model is designed for *on-the-fly* matching; the
//! [`crate::pattern`] module implements that streaming matcher, while
//! this module contributes the batch-counting view used in comparisons.

use super::{EventOrdering, MotifModel};
use crate::constraints::Timing;
use tnm_graph::Time;

/// Builds the Song et al. model with whole-motif window `delta_w`.
pub fn model(delta_w: Time) -> MotifModel {
    MotifModel {
        name: "Song et al. [12]".to_string(),
        timing: Timing::only_w(delta_w),
        consecutive_events: false,
        static_induced: false,
        constrained_dynamic: false,
        duration_aware: false,
        ordering: EventOrdering::Partial,
        supports_labels: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_aspects() {
        let m = model(3000);
        assert_eq!(m.timing, Timing::only_w(3000));
        assert!(!m.static_induced);
        assert!(m.supports_labels);
        assert_eq!(m.ordering, EventOrdering::Partial);
    }
}
