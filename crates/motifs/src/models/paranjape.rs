//! Paranjape et al. [14]: δ-temporal motifs.
//!
//! *A. Paranjape, A. R. Benson, J. Leskovec, "Motifs in temporal
//! networks", WSDM 2017.*
//!
//! Defining features (paper Section 4):
//!
//! 1. **ΔW window** — the whole motif must fit in a δ-window
//!    (`t_last − t_first ≤ ΔW`), giving a holistic temporal view and a
//!    hard timespan bound; there is no per-gap constraint, so motifs in
//!    short bursts are caught (the explicit relaxation of Kovanen's
//!    consecutive events restriction).
//! 2. **Static inducedness** — like Hulovatyy, induced in the static
//!    projection only (the survey's reading of Figure 1's second motif).
//! 3. **Total ordering** over directed edges; partial ordering and
//!    durations are mentioned as possible extensions only.
//!
//! Section 5.2 shows the flip side: ΔW alone biases the *timing* of
//! intermediate events (they skew towards the first or last event) even
//! though it regularizes motif timespans.

use super::{EventOrdering, MotifModel};
use crate::constraints::Timing;
use tnm_graph::Time;

/// Builds the Paranjape et al. model with window `delta_w`.
pub fn model(delta_w: Time) -> MotifModel {
    MotifModel {
        name: "Paranjape et al. [14]".to_string(),
        timing: Timing::only_w(delta_w),
        consecutive_events: false,
        static_induced: true,
        constrained_dynamic: false,
        duration_aware: false,
        ordering: EventOrdering::Total,
        supports_labels: false,
    }
}

/// The non-induced ablation (vanilla ΔW counting), used when comparing
/// against Song et al.'s semantics and in the Section 5.2 sweeps.
pub fn without_inducedness(delta_w: Time) -> MotifModel {
    MotifModel {
        name: "Paranjape et al. [14] w/o inducedness".to_string(),
        static_induced: false,
        ..model(delta_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_aspects() {
        let m = model(3000);
        assert_eq!(m.timing, Timing::only_w(3000));
        assert!(m.static_induced);
        assert!(!m.consecutive_events);
        assert_eq!(m.ordering, EventOrdering::Total);
    }

    #[test]
    fn ablation() {
        assert!(!without_inducedness(3000).static_induced);
    }
}
