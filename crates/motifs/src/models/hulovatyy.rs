//! Hulovatyy et al. [13]: dynamic graphlets.
//!
//! *Y. Hulovatyy, H. Chen, T. Milenković, "Exploring the structure and
//! function of temporal networks with dynamic graphlets", Bioinformatics
//! 31(12), 2015.*
//!
//! Defining features (paper Section 4):
//!
//! 1. **Static inducedness** — motifs must be induced in the static
//!    projection (following Pržulj's graphlets), fixing Kovanen's
//!    non-inducedness; but there is *no* temporal inducedness: the
//!    consecutive events restriction is dropped.
//! 2. **ΔC timing** — like Kovanen, consecutive events must be within ΔC.
//! 3. **Durations** — uniquely among the four models, the gap between
//!    consecutive events is measured from the *end* of the first event to
//!    the *start* of the second ([`super::MotifModel::duration_aware`]).
//! 4. **Total ordering** — no partial-order support; undirected in the
//!    original (directedness "extendible"); our engine treats it as
//!    directed for comparability, as the survey's experiments do.
//! 5. **Constrained dynamic graphlets** — an optional restriction that
//!    consecutive motif events on different edges must not repeat an edge
//!    observation seen since the previous motif event (filtering "stale"
//!    snapshot information; evaluated in Section 5.1.2 / Table 4).

use super::{EventOrdering, MotifModel};
use crate::constraints::Timing;
use tnm_graph::Time;

/// Builds the (unconstrained) dynamic graphlet model.
pub fn model(delta_c: Time) -> MotifModel {
    MotifModel {
        name: "Hulovatyy et al. [13]".to_string(),
        timing: Timing::only_c(delta_c),
        consecutive_events: false,
        static_induced: true,
        constrained_dynamic: false,
        duration_aware: true,
        ordering: EventOrdering::Total,
        supports_labels: false,
    }
}

/// Builds the *constrained* dynamic graphlet variant (Section 5.1.2).
pub fn constrained_model(delta_c: Time) -> MotifModel {
    MotifModel {
        name: "Hulovatyy et al. [13] (constrained)".to_string(),
        constrained_dynamic: true,
        ..model(delta_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_aspects() {
        let m = model(1500);
        assert!(m.static_induced);
        assert!(!m.consecutive_events);
        assert!(m.duration_aware);
        assert_eq!(m.timing, Timing::only_c(1500));
        assert_eq!(m.ordering, EventOrdering::Total);
    }

    #[test]
    fn constrained_variant() {
        let c = constrained_model(1500);
        assert!(c.constrained_dynamic);
        assert!(c.static_induced);
        assert!(c.name.contains("constrained"));
    }
}
