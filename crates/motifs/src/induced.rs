//! Static inducedness (Sections 4.1, models of Hulovatyy and Paranjape).
//!
//! Both models require the motif to be induced *in the static projection*:
//! every directed edge of the graph whose endpoints both belong to the
//! motif's node set must be covered by (the static projection of) at least
//! one motif event. The classic example: a square motif `1→2→3→4→1` is
//! only induced if the graph has no diagonal `1→3`/`2→4` edges among those
//! four nodes.
//!
//! There is deliberately **no** temporal component here — the paper
//! stresses that [13] and [14] capture only static inducedness (e.g. the
//! triangle formed by events 1, 2, 4 of `(a,b,2),(b,c,4),(c,a,5),(c,a,6)`
//! is valid even though event 3 is skipped, because edge `c→a` is covered).

use tnm_graph::{Edge, EventIdx, NodeId, StaticProjection, TemporalGraph};

/// Maximum node count the scratch buffers support (motifs are tiny).
const MAX_MOTIF_NODES: usize = 8;

/// Checks static inducedness of a motif instance: the static projections
/// of the motif events must cover every graph edge internal to the
/// motif's node set.
pub fn static_induced_ok(graph: &TemporalGraph, motif_events: &[EventIdx]) -> bool {
    check_induced(graph, motif_events, |edge| graph.has_edge(edge))
}

/// [`static_induced_ok`] with edge membership answered by a prebuilt
/// [`StaticProjection`] instead of the graph's own edge index. The two
/// are equivalent on a projection of `graph`; this variant exists so
/// callers that already hold a shared projection (via
/// [`global_projection_cache`](tnm_graph::static_proj::global_projection_cache))
/// reuse it rather than touching two structures. The distributed
/// coordinator goes one step further and checks pre-extracted groups
/// with [`induced_cover_ok`] directly.
pub fn static_induced_ok_with(
    proj: &StaticProjection,
    graph: &TemporalGraph,
    motif_events: &[EventIdx],
) -> bool {
    check_induced(graph, motif_events, |edge| proj.has_edge(edge))
}

fn check_induced(
    graph: &TemporalGraph,
    motif_events: &[EventIdx],
    has_edge: impl Fn(Edge) -> bool,
) -> bool {
    let mut nodes: [NodeId; MAX_MOTIF_NODES] = [NodeId(0); MAX_MOTIF_NODES];
    let mut n = 0usize;
    let mut covered: [Edge; MAX_MOTIF_NODES * 2] = [Edge::new(0u32, 0u32); MAX_MOTIF_NODES * 2];
    let mut n_cov = 0usize;
    for &idx in motif_events {
        let e = graph.event(idx);
        for node in [e.src, e.dst] {
            if !nodes[..n].contains(&node) {
                assert!(n < MAX_MOTIF_NODES, "motif too large for inducedness check");
                nodes[n] = node;
                n += 1;
            }
        }
        let edge = e.edge();
        if !covered[..n_cov].contains(&edge) {
            covered[n_cov] = edge;
            n_cov += 1;
        }
    }
    induced_cover_ok(&nodes[..n], &covered[..n_cov], has_edge)
}

/// The inducedness predicate over an already-extracted **node set** and
/// **covered-edge set**: every graph edge internal to `nodes` must
/// appear in `covered`. This is the whole check — it never looks at the
/// instance's events or times — which is what lets the distributed
/// workers ship induced instances as aggregated
/// `(signature, nodes, covered edges)` groups and the coordinator
/// recheck each *group* once against the parent graph.
pub fn induced_cover_ok(
    nodes: &[NodeId],
    covered: &[Edge],
    has_edge: impl Fn(Edge) -> bool,
) -> bool {
    for &a in nodes {
        for &b in nodes {
            if a == b {
                continue;
            }
            let edge = Edge { src: a, dst: b };
            if has_edge(edge) && !covered.contains(&edge) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnm_graph::TemporalGraphBuilder;

    #[test]
    fn covered_edges_pass() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 2, 2)
            .event(0, 2, 3)
            .build()
            .unwrap();
        assert!(static_induced_ok(&g, &[0, 1, 2]));
    }

    #[test]
    fn missing_diagonal_fails() {
        // Square 0->1->2->3->0 plus a diagonal 0->2 that the square motif
        // does not cover: not induced.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 2, 2)
            .event(2, 3, 3)
            .event(3, 0, 4)
            .event(0, 2, 5)
            .build()
            .unwrap();
        let square = [0u32, 1, 2, 3];
        assert!(!static_induced_ok(&g, &square));
        // Including the diagonal event restores inducedness.
        assert!(static_induced_ok(&g, &[0, 1, 2, 3, 4]));
    }

    #[test]
    fn paper_triangle_with_skipped_repeat_is_induced() {
        // (a,b,2), (b,c,4), (c,a,5), (c,a,6): events 1, 2, 4 form a valid
        // induced triangle because edge c->a is covered (by the 4th event)
        // even though the 3rd event is skipped.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 2)
            .event(1, 2, 4)
            .event(2, 0, 5)
            .event(2, 0, 6)
            .build()
            .unwrap();
        assert!(static_induced_ok(&g, &[0, 1, 3]));
    }

    #[test]
    fn direction_matters() {
        // Graph has both 0->1 and 1->0; a motif using only 0->1 twice
        // leaves 1->0 uncovered.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 0, 2)
            .event(0, 1, 3)
            .build()
            .unwrap();
        assert!(!static_induced_ok(&g, &[0, 2]));
        assert!(static_induced_ok(&g, &[0, 1]));
    }

    #[test]
    fn projection_variant_agrees_with_graph_variant() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 2, 2)
            .event(2, 3, 3)
            .event(3, 0, 4)
            .event(0, 2, 5)
            .build()
            .unwrap();
        let proj = StaticProjection::from_graph(&g);
        for evs in [&[0u32, 1, 2, 3][..], &[0, 1, 2, 3, 4], &[0, 1, 4], &[2, 3]] {
            assert_eq!(
                static_induced_ok(&g, evs),
                static_induced_ok_with(&proj, &g, evs),
                "events {evs:?}"
            );
        }
    }

    #[test]
    fn edges_outside_node_set_ignored() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 0, 2)
            .event(5, 6, 3)
            .build()
            .unwrap();
        assert!(static_induced_ok(&g, &[0, 1]));
    }
}
