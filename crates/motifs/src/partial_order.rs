//! Partial orderings among motif events (paper Section 4.3).
//!
//! Kovanen et al. and Song et al. allow motifs whose events are only
//! *partially* ordered. A partially-ordered motif is semantically the
//! union of its linear extensions — each a totally-ordered motif — so the
//! counting engine only ever needs total orders. This module represents
//! partial-order patterns and enumerates their linear extensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A strict partial order over `n` motif events, given as a set of
/// `before ≺ after` constraints.
///
/// The relation must be irreflexive and acyclic; transitivity is implied
/// (we operate on the closure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialOrder {
    n: usize,
    /// `edges[i]` holds the events that must come after event `i`.
    succ: Vec<Vec<usize>>,
}

/// Errors building a [`PartialOrder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError {
    /// A constraint references an event index `>= n`.
    OutOfRange {
        /// The offending index.
        index: usize,
    },
    /// A constraint `i ≺ i` or a cycle was introduced.
    Cyclic,
}

impl fmt::Display for OrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderError::OutOfRange { index } => write!(f, "event index {index} out of range"),
            OrderError::Cyclic => write!(f, "ordering constraints contain a cycle"),
        }
    }
}

impl std::error::Error for OrderError {}

impl PartialOrder {
    /// The empty order over `n` events (every permutation is a linear
    /// extension).
    pub fn unordered(n: usize) -> Self {
        PartialOrder { n, succ: vec![Vec::new(); n] }
    }

    /// The unique total order `0 ≺ 1 ≺ ... ≺ n-1`.
    pub fn total(n: usize) -> Self {
        let mut po = Self::unordered(n);
        for i in 1..n {
            po.succ[i - 1].push(i);
        }
        po
    }

    /// Builds from explicit `(before, after)` constraints.
    pub fn from_constraints(n: usize, constraints: &[(usize, usize)]) -> Result<Self, OrderError> {
        let mut po = Self::unordered(n);
        for &(a, b) in constraints {
            if a >= n {
                return Err(OrderError::OutOfRange { index: a });
            }
            if b >= n {
                return Err(OrderError::OutOfRange { index: b });
            }
            if a == b {
                return Err(OrderError::Cyclic);
            }
            po.succ[a].push(b);
        }
        if po.has_cycle() {
            return Err(OrderError::Cyclic);
        }
        Ok(po)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no events.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True if `a ≺ b` in the transitive closure.
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        let mut stack = vec![a];
        let mut seen = vec![false; self.n];
        while let Some(x) = stack.pop() {
            for &y in &self.succ[x] {
                if y == b {
                    return true;
                }
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        false
    }

    fn has_cycle(&self) -> bool {
        (0..self.n).any(|i| self.precedes(i, i))
    }

    /// Enumerates every linear extension (each a permutation of `0..n`
    /// respecting all constraints), in lexicographic order.
    ///
    /// The paper's example: an acyclic triangle where `B→C` precedes both
    /// `A→B` and `A→C` is the union of two totally-ordered motifs.
    pub fn linear_extensions(&self) -> Vec<Vec<usize>> {
        let mut indegree = vec![0usize; self.n];
        for succs in &self.succ {
            for &s in succs {
                indegree[s] += 1;
            }
        }
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(self.n);
        let mut used = vec![false; self.n];
        self.extend_recursive(&mut indegree, &mut used, &mut current, &mut out);
        out
    }

    fn extend_recursive(
        &self,
        indegree: &mut Vec<usize>,
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == self.n {
            out.push(current.clone());
            return;
        }
        for i in 0..self.n {
            if used[i] || indegree[i] != 0 {
                continue;
            }
            used[i] = true;
            current.push(i);
            for &s in &self.succ[i] {
                indegree[s] -= 1;
            }
            self.extend_recursive(indegree, used, current, out);
            for &s in &self.succ[i] {
                indegree[s] += 1;
            }
            current.pop();
            used[i] = false;
        }
    }

    /// Number of linear extensions without materializing them.
    pub fn count_linear_extensions(&self) -> usize {
        self.linear_extensions().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_has_single_extension() {
        let po = PartialOrder::total(4);
        let exts = po.linear_extensions();
        assert_eq!(exts, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn unordered_has_factorial_extensions() {
        assert_eq!(PartialOrder::unordered(3).count_linear_extensions(), 6);
        assert_eq!(PartialOrder::unordered(4).count_linear_extensions(), 24);
    }

    #[test]
    fn paper_triangle_example() {
        // Events: 0 = A->B, 1 = A->C, 2 = B->C; constraint: 2 before 0 and 1.
        let po = PartialOrder::from_constraints(3, &[(2, 0), (2, 1)]).unwrap();
        let exts = po.linear_extensions();
        // (B→C)≺(A→B)≺(A→C) and (B→C)≺(A→C)≺(A→B).
        assert_eq!(exts, vec![vec![2, 0, 1], vec![2, 1, 0]]);
    }

    #[test]
    fn precedes_is_transitive() {
        let po = PartialOrder::from_constraints(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(po.precedes(0, 2));
        assert!(!po.precedes(2, 0));
    }

    #[test]
    fn cycles_rejected() {
        assert_eq!(PartialOrder::from_constraints(2, &[(0, 1), (1, 0)]), Err(OrderError::Cyclic));
        assert_eq!(PartialOrder::from_constraints(2, &[(0, 0)]), Err(OrderError::Cyclic));
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            PartialOrder::from_constraints(2, &[(0, 5)]),
            Err(OrderError::OutOfRange { index: 5 })
        );
    }

    #[test]
    fn extension_count_matches_hook_length_known_case() {
        // A "V" order: 0 before 1 and 2 (3 events): extensions = 2.
        let po = PartialOrder::from_constraints(3, &[(0, 1), (0, 2)]).unwrap();
        assert_eq!(po.count_linear_extensions(), 2);
    }
}
