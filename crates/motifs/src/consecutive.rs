//! Kovanen et al.'s *consecutive events restriction* (Section 4.1).
//!
//! A node's adjacent events inside a motif must be consecutive among all
//! of that node's events in the whole graph: while a node is engaged in a
//! motif it may not participate in any outside event. The paper calls
//! this *node-based temporal inducedness*; Section 5.1.1 shows it removes
//! over 95 % of 3n3e motifs and amplifies ask-reply shapes.

use tnm_graph::{EventIdx, NodeId, TemporalGraph, Time};

/// Scratch buffers reused across many checks to avoid per-instance
/// allocation in the hot counting loop.
#[derive(Debug, Default)]
pub struct ConsecutiveScratch {
    nodes: Vec<(NodeId, Time, Time, usize)>,
}

impl ConsecutiveScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Checks the consecutive events restriction for a time-ordered motif
/// instance given by event indices into `graph`.
///
/// For every node `x` touched by the motif, let `[first_x, last_x]` span
/// x's own motif events and `k_x` be how many motif events touch `x`; the
/// instance passes iff the graph contains exactly `k_x` events adjacent to
/// `x` in `[first_x, last_x]` — i.e. no extra engagement.
pub fn consecutive_ok(
    graph: &TemporalGraph,
    motif_events: &[EventIdx],
    scratch: &mut ConsecutiveScratch,
) -> bool {
    let nodes = &mut scratch.nodes;
    nodes.clear();
    for &idx in motif_events {
        let e = graph.event(idx);
        for node in [e.src, e.dst] {
            match nodes.iter_mut().find(|(n, ..)| *n == node) {
                Some((_, _, last, k)) => {
                    // Motif events arrive in time order, so `last` only grows.
                    *last = e.time;
                    *k += 1;
                }
                None => nodes.push((node, e.time, e.time, 1)),
            }
        }
    }
    nodes
        .iter()
        .all(|&(node, first, last, k)| graph.count_node_events_between(node, first, last) == k)
}

/// Convenience wrapper allocating its own scratch space.
pub fn is_consecutive(graph: &TemporalGraph, motif_events: &[EventIdx]) -> bool {
    consecutive_ok(graph, motif_events, &mut ConsecutiveScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnm_graph::TemporalGraphBuilder;

    /// The paper's running example: motif events (u,v,5), (v,w,8), (u,v,12)
    /// with u=0, v=1, w=2. Any extra event touching u in [5,12] or v in
    /// [5,12] (v's motif span is [5,12] too) breaks the restriction.
    fn base() -> TemporalGraphBuilder {
        TemporalGraphBuilder::new().event(0, 1, 5).event(1, 2, 8).event(0, 1, 12)
    }

    #[test]
    fn clean_motif_passes() {
        let g = base().build().unwrap();
        assert!(is_consecutive(&g, &[0, 1, 2]));
    }

    #[test]
    fn outside_event_on_u_fails() {
        // Extra event (0,3,9): node 0 engaged outside the motif during [5,12].
        let g = base().event(0, 3, 9).build().unwrap();
        // Motif = events at times 5, 8, 12 -> indices 0, 1, 3.
        assert!(!is_consecutive(&g, &[0, 1, 3]));
    }

    #[test]
    fn outside_event_on_v_fails() {
        // Extra event (3,1,10): node 1 engaged during its span [5,12].
        let g = base().event(3, 1, 10).build().unwrap();
        assert!(!is_consecutive(&g, &[0, 1, 3]));
    }

    #[test]
    fn outside_event_before_span_is_fine() {
        let g = base().event(0, 3, 1).build().unwrap();
        // Motif events are now indices 1, 2, 3.
        assert!(is_consecutive(&g, &[1, 2, 3]));
    }

    #[test]
    fn outside_event_after_span_is_fine() {
        let g = base().event(0, 3, 20).build().unwrap();
        assert!(is_consecutive(&g, &[0, 1, 2]));
    }

    #[test]
    fn w_span_is_only_its_own_events() {
        // Node 2 participates only in the event at t=8; an event touching
        // node 2 at t=10 is outside its (degenerate) span [8,8].
        let g = base().event(3, 2, 10).build().unwrap();
        assert!(is_consecutive(&g, &[0, 1, 3]));
    }

    #[test]
    fn figure1_third_motif_violation() {
        // Figure 1, third motif: white node (1) interacts with a dashed
        // node at t=8 while engaged in the motif spanning [7, 11].
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 7) // motif event 1
            .event(1, 3, 8) // outside interaction of node 1
            .event(1, 2, 9) // motif event 2
            .event(0, 2, 11) // motif event 3
            .build()
            .unwrap();
        assert!(!is_consecutive(&g, &[0, 2, 3]));
        // Without the dashed event it passes.
        let g2 = TemporalGraphBuilder::new()
            .event(0, 1, 7)
            .event(1, 2, 9)
            .event(0, 2, 11)
            .build()
            .unwrap();
        assert!(is_consecutive(&g2, &[0, 1, 2]));
    }

    #[test]
    fn boundary_times_count_as_engagement() {
        // An outside event exactly at the span edge (t=12, touching node 1)
        // is within the inclusive interval and must fail.
        let g = base().event(1, 3, 12).build().unwrap();
        let motif: Vec<u32> = (0..g.num_events() as u32)
            .filter(|&i| {
                let e = g.event(i);
                !(e.src == NodeId(1) && e.dst == NodeId(3))
            })
            .collect();
        assert!(!is_consecutive(&g, &motif));
    }

    #[test]
    fn scratch_reuse() {
        let g = base().build().unwrap();
        let mut scratch = ConsecutiveScratch::new();
        assert!(consecutive_ok(&g, &[0, 1, 2], &mut scratch));
        assert!(consecutive_ok(&g, &[0, 1, 2], &mut scratch));
    }
}
