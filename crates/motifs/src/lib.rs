//! # tnm-motifs — temporal network motif models and counting engines
//!
//! The core library of the reproduction of *Temporal Network Motifs:
//! Models, Limitations, Evaluation* (Liu, Guarrasi, Sarıyüce; ICDE 2022 /
//! arXiv:2005.11817). It implements:
//!
//! * the paper's **digit-pair motif notation** and canonical signatures
//!   ([`notation`]), with exhaustive catalogs (36 three-event and 696
//!   four-event motifs, [`catalog`]);
//! * the **event-pair lens** — the 6-letter alphabet {R, P, I, O, C, W}
//!   over consecutive events ([`event_pair`]);
//! * the **four surveyed models** — Kovanen [11], Song [12], Hulovatyy
//!   [13], Paranjape [14] — unified as a configuration space ([`models`]);
//! * the **timing constraints** ΔC and ΔW with the Section 4.5 regime
//!   analysis ([`constraints`]);
//! * the three inducedness/freshness restrictions: consecutive events
//!   ([`consecutive`]), static inducedness ([`induced`]), constrained
//!   dynamic graphlets ([`constrained`]);
//! * a pluggable **counting-engine subsystem** ([`engine`]): one shared
//!   backtracking walk behind the [`engine::CountEngine`] trait, with
//!   serial, window-indexed, work-stealing parallel, time-slice sharded
//!   (in-memory or spilled to disk for out-of-core runs),
//!   **distributed** (coordinator/worker processes over the framed
//!   [`tnm_graph::wire`] protocol, crash-detected shards rescheduled),
//!   and interval-sampling implementations (the sampler reports
//!   confidence intervals through [`engine::CountEngine::report`] and
//!   evaluates draws in parallel with bit-identical seeded results),
//!   plus the **streaming fast path** ([`engine::StreamEngine`]) that
//!   counts eligible δ-window spectra without enumerating instances;
//!   legacy entry points ([`enumerate`]), and spectrum analytics
//!   ([`count`]);
//! * a serializable **Query API** ([`engine::Query`] /
//!   [`engine::QueryResponse`]) shared by the CLI verbs, the library,
//!   and **`tnm serve`** — a resident counting daemon
//!   ([`engine::MotifServer`] / [`engine::ServeClient`]) that keeps
//!   loaded graphs and their window indexes warm across queries and
//!   updates per-subscription motif counts **incrementally** under
//!   live event appends ([`engine::IncrementalStream`]);
//! * per-instance **validity checking** for Figure 1-style model
//!   comparisons ([`validity`]);
//! * **partial orders** and Song et al.'s **streaming event-pattern
//!   matcher** ([`partial_order`], [`pattern`]);
//! * extensions from the related-work program: **temporal cycle
//!   enumeration** ([`cycles`]) and interval-sampling approximate
//!   counting on the engine seam ([`engine::SamplingEngine`]; the
//!   pre-trait free-function `sampling` module has been removed).
//!
//! ```
//! use tnm_graph::TemporalGraphBuilder;
//! use tnm_motifs::prelude::*;
//!
//! let g = TemporalGraphBuilder::new()
//!     .event(0, 1, 7)
//!     .event(1, 2, 9)
//!     .event(0, 2, 11)
//!     .build()
//!     .unwrap();
//!
//! // Count all 3-event motifs within a 10-second window:
//! let counts = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_w(10)));
//! assert_eq!(counts.get(sig("011202")), 1);
//!
//! // And check the instance against all four models (Figure 1 style):
//! for verdict in check_against_all(&g, &[0, 1, 2], &MotifModel::all_four(5, 10)) {
//!     assert!(verdict.is_valid());
//! }
//! ```
//!
//! ## Choosing an engine
//!
//! Counting runs behind the [`engine::CountEngine`] trait; pick an
//! implementation with [`engine::EngineKind`] (or `--engine` on the
//! `tnm` CLI):
//!
//! * [`engine::BacktrackEngine`] (`backtrack`) — the serial reference
//!   walker over the plain node index. Use it as the baseline for
//!   differential tests and on tiny graphs where index construction is
//!   not worth it.
//! * [`engine::WindowedEngine`] (`windowed`) — the same walk driven by a
//!   [`tnm_graph::WindowIndex`]: candidate events resolve with binary
//!   searches over inline timestamps, so bounded ΔC/ΔW configurations
//!   skip non-admissible events entirely. The best single-threaded
//!   choice for realistic workloads.
//! * [`engine::ParallelEngine`] (`parallel`) — work-stealing workers
//!   (atomic start-event cursor, per-worker local tables merged
//!   lock-free at join) over the windowed index. The best choice for
//!   large graphs on multi-core hardware.
//! * [`engine::ShardedEngine`] (`sharded`) — time-slice shards with
//!   bounded halos ([`tnm_graph::shard`]), counted one at a time with
//!   the work-stealing executor inside each shard; optional spill mode
//!   serializes shards to disk and bounds peak residency for logs
//!   larger than memory. Exact.
//! * [`engine::DistributedEngine`] (`distributed`) — the same shard
//!   plan farmed out to **worker processes**: the coordinator spills
//!   every shard, spawns `tnm worker` children, ships framed job
//!   descriptors over the [`tnm_graph::wire`] protocol, and merges the
//!   framed count replies — with crash-detected shards rescheduled onto
//!   surviving workers, and the one whole-timeline predicate (static
//!   inducedness) re-checked on the coordinator against the parent
//!   graph. Exact; the stepping stone to multi-machine merging.
//! * [`engine::StreamEngine`] (`stream`) — **count without
//!   enumerating**: for eligible Paranjape-shape jobs (only-ΔW,
//!   non-induced, no restrictions, ≤ 3 events on ≤ 3 nodes) the
//!   spectrum comes from sliding-window dynamic programs over node
//!   pairs, star centers, and static triangles — near-linear in events
//!   where every walker is linear in instances. Exact; ineligible
//!   configurations transparently fall back to the windowed walker.
//! * [`engine::SamplingEngine`] (`sampling`) — **approximate** interval
//!   sampling: unbiased point estimates with ~95 % confidence intervals
//!   via [`engine::CountEngine::report`], at a fraction of exact cost on
//!   large windows; window draws parallelize with bit-identical seeded
//!   results. The other six engines are exact and produce identical
//!   counts.
//! * [`engine::EngineKind::Auto`] (`auto`, the default) — resolves per
//!   workload via [`engine::auto_select`]: the stream fast path whenever
//!   eligible, backtrack for small unbounded-timing jobs, distributed
//!   for bounded-timing graphs above [`engine::DISTRIBUTED_MIN_EVENTS`]
//!   with a multi-worker budget, sharded above
//!   [`engine::SHARDED_MIN_EVENTS`], work-stealing parallel when the
//!   graph and its ΔC/ΔW windows carry enough work for multiple
//!   threads, serial windowed otherwise.
//!
//! All windowed engines share one [`tnm_graph::WindowIndex`] per graph
//! through [`tnm_graph::index_cache::global_index_cache`], so repeated
//! counts of the same graph build the index once.
//!
//! Every engine layer is instrumented through `tnm_obs`: hierarchical
//! timed spans (Chrome-trace export via `tnm count --trace`) and named
//! counters/gauges/histograms (Prometheus text via `tnm client
//! --metrics`), all behind one atomic flag that costs a single branch
//! when disabled. See the [engine module docs](engine#observability)
//! for the span/metric naming contract, and `tnm count --explain` for
//! [`engine::auto_select`]'s measured decision.
//!
//! Many configurations against one graph — all 36 Paranjape 3-event
//! motifs, ΔW sweeps, model comparisons — should go through the **batch
//! API** ([`engine::count_batch`] / [`engine::EngineKind::count_batch`]
//! / [`engine::enumerate_batch`]): [`engine::BatchPlanner`] groups
//! compatible configs so N configs cost ~1 traversal + N projections
//! instead of N traversals, with results bit-identical to per-config
//! calls.
//!
//! ```
//! use tnm_graph::TemporalGraphBuilder;
//! use tnm_motifs::engine::{CountEngine, EngineKind, WindowedEngine};
//! use tnm_motifs::prelude::*;
//!
//! let g = TemporalGraphBuilder::new()
//!     .event(0, 1, 7)
//!     .event(1, 2, 9)
//!     .event(0, 2, 11)
//!     .build()
//!     .unwrap();
//! let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(10));
//!
//! // Explicit engine choice...
//! let counts = WindowedEngine.count(&g, &cfg);
//! // ...or parse one from a CLI string and let `auto` resolve.
//! let kind: EngineKind = "auto".parse().unwrap();
//! assert_eq!(kind.count(&g, &cfg, 4), counts);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod consecutive;
pub mod constrained;
pub mod constraints;
pub mod count;
pub mod cycles;
pub mod engine;
pub mod enumerate;
pub mod event_pair;
pub mod induced;
pub mod models;
pub mod notation;
pub mod partial_order;
pub mod pattern;
pub mod validity;

/// Commonly used items, importable with `use tnm_motifs::prelude::*`.
pub mod prelude {
    pub use crate::catalog::{all_2n3e, all_3e, all_3n3e, all_4e, all_4e_up_to_3n, all_4n4e};
    pub use crate::constraints::{ConstraintRegime, Timing};
    pub use crate::count::{
        pair_type_ratios, proportion_changes, ranking_changes, MotifCounts, PairGroupCounts,
    };
    pub use crate::engine::{
        count_batch, enumerate_batch, AppendAck, BacktrackEngine, BatchPlan, BatchPlanner,
        ConfigError, CountEngine, EngineCaps, EngineKind, EngineReport, Estimate,
        IncrementalStream, MotifServer, ParallelConfig, ParallelEngine, Query, QueryError,
        QueryLogEntry, QueryResponse, SamplingEngine, ServeClient, ServeOptions, ServerStats,
        ShardedEngine, TraceReply, WindowedEngine,
    };
    #[allow(deprecated)]
    pub use crate::enumerate::count_motifs_parallel;
    pub use crate::enumerate::{
        count_motifs, count_signature, enumerate_instances, EnumConfig, MotifInstance,
    };
    pub use crate::event_pair::{EventPairCounts, EventPairType, ALL_PAIR_TYPES};
    pub use crate::models::{EventOrdering, MotifModel};
    pub use crate::notation::{sig, MotifSignature};
    pub use crate::validity::{check_against_all, check_instance, Verdict, Violation};
}

pub use constraints::Timing;
pub use count::MotifCounts;
pub use engine::{CountEngine, EngineKind};
#[allow(deprecated)]
pub use enumerate::count_motifs_parallel;
pub use enumerate::{count_motifs, EnumConfig};
pub use event_pair::EventPairType;
pub use models::MotifModel;
pub use notation::MotifSignature;
