//! The motif enumeration engine.
//!
//! A single backtracking walker covers every configuration in the paper:
//! it enumerates time-ordered, single-component event sequences of an
//! exact size under ΔC/ΔW pruning, then applies the per-model
//! restrictions (consecutive events, static inducedness, constrained
//! dynamic graphlets) as emission filters.
//!
//! Correctness relies on three facts:
//!
//! * instances are *sets* of events visited in strictly increasing time
//!   order, so each set is enumerated exactly once;
//! * events with equal timestamps never co-occur in a motif (the paper's
//!   total-ordering rule), enforced by strict `>` on timestamps;
//! * candidate events are drawn from the node index of the current node
//!   set, which is exactly the "grows as a single component" rule.

use crate::consecutive::{consecutive_ok, ConsecutiveScratch};
use crate::constrained::constrained_ok;
use crate::constraints::Timing;
use crate::count::MotifCounts;
use crate::induced::static_induced_ok;
use crate::models::MotifModel;
use crate::notation::MotifSignature;
use parking_lot::Mutex;
use tnm_graph::{EventIdx, NodeId, TemporalGraph, Time};

/// Configuration for one enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumConfig {
    /// Exact number of events per motif (`e` in `XnYe`).
    pub num_events: usize,
    /// Maximum number of distinct nodes.
    pub max_nodes: usize,
    /// Minimum number of distinct nodes (filter at emission).
    pub min_nodes: usize,
    /// ΔC / ΔW configuration.
    pub timing: Timing,
    /// Apply Kovanen's consecutive events restriction.
    pub consecutive_events: bool,
    /// Apply static-projection inducedness.
    pub static_induced: bool,
    /// Apply the constrained dynamic graphlet restriction.
    pub constrained_dynamic: bool,
    /// Measure ΔC gaps from the previous event's end time.
    pub duration_aware: bool,
    /// Only enumerate instances of this exact signature (prefix-pruned,
    /// so targeted runs are much faster than full spectra).
    pub signature_filter: Option<MotifSignature>,
}

impl EnumConfig {
    /// A permissive configuration: `num_events` events on at most
    /// `max_nodes` nodes, unbounded timing, no restrictions.
    pub fn new(num_events: usize, max_nodes: usize) -> Self {
        assert!(num_events >= 1, "motifs need at least one event");
        assert!(max_nodes >= 2, "motifs need at least two nodes");
        EnumConfig {
            num_events,
            max_nodes,
            min_nodes: 2,
            timing: Timing::UNBOUNDED,
            consecutive_events: false,
            static_induced: false,
            constrained_dynamic: false,
            duration_aware: false,
            signature_filter: None,
        }
    }

    /// Derives the engine configuration from a [`MotifModel`].
    pub fn for_model(model: &MotifModel, num_events: usize, max_nodes: usize) -> Self {
        EnumConfig {
            timing: model.timing,
            consecutive_events: model.consecutive_events,
            static_induced: model.static_induced,
            constrained_dynamic: model.constrained_dynamic,
            duration_aware: model.duration_aware,
            ..EnumConfig::new(num_events, max_nodes)
        }
    }

    /// Targets a single signature: size/node bounds are derived from it.
    pub fn for_signature(sig: MotifSignature) -> Self {
        EnumConfig {
            min_nodes: sig.num_nodes(),
            max_nodes: sig.num_nodes(),
            signature_filter: Some(sig),
            ..EnumConfig::new(sig.num_events(), sig.num_nodes().max(2))
        }
    }

    /// Sets the timing configuration (chainable).
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Requires exactly `n` nodes (chainable), e.g. 3 for the 3n3e tables.
    pub fn exact_nodes(mut self, n: usize) -> Self {
        self.min_nodes = n;
        self.max_nodes = n;
        self
    }

    /// Toggles the consecutive events restriction (chainable).
    pub fn with_consecutive(mut self, yes: bool) -> Self {
        self.consecutive_events = yes;
        self
    }

    /// Toggles the constrained dynamic graphlet restriction (chainable).
    pub fn with_constrained(mut self, yes: bool) -> Self {
        self.constrained_dynamic = yes;
        self
    }

    /// Toggles static inducedness (chainable).
    pub fn with_static_induced(mut self, yes: bool) -> Self {
        self.static_induced = yes;
        self
    }
}

/// A concrete motif occurrence handed to enumeration callbacks.
#[derive(Debug, Clone, Copy)]
pub struct MotifInstance<'a> {
    /// Time-ordered event indices into the graph.
    pub events: &'a [EventIdx],
    /// The instance's canonical signature.
    pub signature: MotifSignature,
}

impl MotifInstance<'_> {
    /// Timestamps of the instance's events, in order.
    pub fn times(&self, graph: &TemporalGraph) -> Vec<Time> {
        self.events.iter().map(|&i| graph.event(i).time).collect()
    }

    /// `t_last − t_first` for this instance.
    pub fn timespan(&self, graph: &TemporalGraph) -> Time {
        let first = graph.event(self.events[0]).time;
        let last = graph.event(*self.events.last().expect("non-empty motif")).time;
        last - first
    }
}

struct Walker<'g> {
    graph: &'g TemporalGraph,
    cfg: &'g EnumConfig,
    seq: Vec<EventIdx>,
    digits: Vec<NodeId>,
    pairs: Vec<(u8, u8)>,
    cand_bufs: Vec<Vec<EventIdx>>,
    scratch: ConsecutiveScratch,
}

impl<'g> Walker<'g> {
    fn new(graph: &'g TemporalGraph, cfg: &'g EnumConfig) -> Self {
        let k = cfg.num_events;
        Walker {
            graph,
            cfg,
            seq: Vec::with_capacity(k),
            digits: Vec::with_capacity(cfg.max_nodes),
            pairs: Vec::with_capacity(k),
            cand_bufs: (0..k).map(|_| Vec::new()).collect(),
            scratch: ConsecutiveScratch::new(),
        }
    }

    /// Maps a node to its digit, appending a fresh digit when new.
    /// Returns `(digit, was_new)`.
    #[inline]
    fn digit_of(&mut self, node: NodeId) -> (u8, bool) {
        match self.digits.iter().position(|&n| n == node) {
            Some(i) => (i as u8, false),
            None => {
                self.digits.push(node);
                ((self.digits.len() - 1) as u8, true)
            }
        }
    }

    /// Attempts to push `idx`; returns how many fresh digits were added
    /// (`None` if rejected by node budget or the signature filter).
    fn try_push(&mut self, idx: EventIdx) -> Option<usize> {
        let e = self.graph.event(idx);
        let new_needed = [e.src, e.dst]
            .iter()
            .filter(|&&n| !self.digits.contains(&n))
            .count();
        if self.digits.len() + new_needed > self.cfg.max_nodes {
            return None;
        }
        let depth = self.seq.len();
        let (a, a_new) = self.digit_of(e.src);
        let (b, b_new) = self.digit_of(e.dst);
        let added = a_new as usize + b_new as usize;
        if let Some(target) = &self.cfg.signature_filter {
            if target.pairs()[depth] != (a, b) {
                self.digits.truncate(self.digits.len() - added);
                return None;
            }
        }
        self.pairs.push((a, b));
        self.seq.push(idx);
        Some(added)
    }

    fn pop(&mut self, added: usize) {
        self.seq.pop();
        self.pairs.pop();
        self.digits.truncate(self.digits.len() - added);
    }

    fn descend<F: FnMut(&MotifInstance<'_>)>(&mut self, emit: &mut F) {
        if self.seq.len() == self.cfg.num_events {
            self.try_emit(emit);
            return;
        }
        let first = self.graph.event(self.seq[0]);
        let last = self.graph.event(*self.seq.last().expect("non-empty seq"));
        let t_last = last.time;
        let c_base = if self.cfg.duration_aware { last.end_time() } else { last.time };
        let bound: Option<Time> = match (self.cfg.timing.delta_c, self.cfg.timing.delta_w) {
            (Some(c), Some(w)) => Some((c_base + c).min(first.time + w)),
            (Some(c), None) => Some(c_base + c),
            (None, Some(w)) => Some(first.time + w),
            (None, None) => None,
        };
        if let Some(b) = bound {
            if b <= t_last {
                return; // no strictly-later event can qualify
            }
        }
        // Gather candidate events adjacent to the current node set with
        // time in (t_last, bound].
        let depth = self.seq.len();
        let mut cands = std::mem::take(&mut self.cand_bufs[depth]);
        cands.clear();
        for &node in &self.digits {
            let list = self.graph.node_events(node);
            let start = list
                .partition_point(|&i| self.graph.event(i).time <= t_last);
            for &i in &list[start..] {
                let t = self.graph.event(i).time;
                if let Some(b) = bound {
                    if t > b {
                        break;
                    }
                }
                cands.push(i);
            }
        }
        cands.sort_unstable();
        cands.dedup();
        let mut pos = 0;
        while pos < cands.len() {
            let idx = cands[pos];
            if let Some(added) = self.try_push(idx) {
                self.descend(emit);
                self.pop(added);
            }
            pos += 1;
        }
        self.cand_bufs[depth] = cands;
    }

    fn try_emit<F: FnMut(&MotifInstance<'_>)>(&mut self, emit: &mut F) {
        if self.digits.len() < self.cfg.min_nodes {
            return;
        }
        if self.cfg.consecutive_events
            && !consecutive_ok(self.graph, &self.seq, &mut self.scratch)
        {
            return;
        }
        if self.cfg.constrained_dynamic && !constrained_ok(self.graph, &self.seq) {
            return;
        }
        if self.cfg.static_induced && !static_induced_ok(self.graph, &self.seq) {
            return;
        }
        let signature =
            MotifSignature::from_pairs(&self.pairs).expect("walker builds canonical pairs");
        let inst = MotifInstance { events: &self.seq, signature };
        emit(&inst);
    }

    fn run_range<F: FnMut(&MotifInstance<'_>)>(
        &mut self,
        start_range: std::ops::Range<usize>,
        mut emit: F,
    ) {
        for start in start_range {
            debug_assert!(self.seq.is_empty() && self.digits.is_empty());
            if let Some(added) = self.try_push(start as EventIdx) {
                self.descend(&mut emit);
                self.pop(added);
            }
        }
    }
}

/// Enumerates every motif instance admitted by `cfg`, invoking `callback`
/// once per instance (events in time order).
pub fn enumerate_instances<F: FnMut(&MotifInstance<'_>)>(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    callback: F,
) {
    let mut walker = Walker::new(graph, cfg);
    walker.run_range(0..graph.num_events(), callback);
}

/// Counts instances per canonical signature.
pub fn count_motifs(graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
    let mut counts = MotifCounts::new();
    enumerate_instances(graph, cfg, |inst| counts.add(inst.signature, 1));
    counts
}

/// Parallel variant of [`count_motifs`]: start events are partitioned
/// across `threads` workers (crossbeam scoped threads), each counting
/// into a local table merged at the end. Results are identical to the
/// serial version.
pub fn count_motifs_parallel(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    threads: usize,
) -> MotifCounts {
    let threads = threads.max(1);
    let m = graph.num_events();
    if threads == 1 || m < 1024 {
        return count_motifs(graph, cfg);
    }
    let global = Mutex::new(MotifCounts::new());
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(m);
            if lo >= hi {
                continue;
            }
            let global = &global;
            scope.spawn(move || {
                let mut local = MotifCounts::new();
                let mut walker = Walker::new(graph, cfg);
                walker.run_range(lo..hi, |inst| local.add(inst.signature, 1));
                global.lock().merge(&local);
            });
        }
    });
    global.into_inner()
}

/// Counts instances of one specific signature (prefix-pruned fast path
/// used by the Figure 4/5 experiments).
pub fn count_signature(
    graph: &TemporalGraph,
    sig: MotifSignature,
    timing: Timing,
) -> u64 {
    let cfg = EnumConfig::for_signature(sig).with_timing(timing);
    let mut n = 0u64;
    enumerate_instances(graph, &cfg, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use tnm_graph::TemporalGraphBuilder;

    fn chain_graph() -> TemporalGraph {
        // 0->1 @10, 1->2 @20, 2->3 @30.
        TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 20)
            .event(2, 3, 30)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_simple_chain() {
        let g = chain_graph();
        let counts = count_motifs(&g, &EnumConfig::new(2, 4));
        // Two 2-event motifs: (e1,e2) convey and (e2,e3) convey. (e1,e3)
        // is disconnected (no shared node) so never enumerated... except
        // e1=0->1 and e3=2->3 share nothing. Correct total: 2.
        assert_eq!(counts.total(), 2);
        assert_eq!(counts.get(sig("0112")), 2);
        let three = count_motifs(&g, &EnumConfig::new(3, 4));
        assert_eq!(three.total(), 1);
        assert_eq!(three.get(sig("011223")), 1);
    }

    #[test]
    fn timing_pruning_delta_c() {
        let g = chain_graph();
        // Gaps are 10 and 10. ΔC=10 admits everything; ΔC=9 admits nothing.
        let ok = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_c(10)));
        assert_eq!(ok.total(), 1);
        let none = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_c(9)));
        assert_eq!(none.total(), 0);
    }

    #[test]
    fn timing_pruning_delta_w() {
        let g = chain_graph();
        // Span is 20. ΔW=20 admits the 3-event chain; ΔW=19 does not.
        let ok = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_w(20)));
        assert_eq!(ok.total(), 1);
        let none = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_w(19)));
        assert_eq!(none.total(), 0);
    }

    #[test]
    fn section_4_5_example() {
        // Events at times 1, 9, 10 sharing nodes: valid under ΔW=10,
        // invalid under ΔC=5 (gap 8 > 5).
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 2, 9)
            .event(2, 0, 10)
            .build()
            .unwrap();
        let w = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_w(10)));
        assert_eq!(w.total(), 1);
        let c = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_c(5)));
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn equal_timestamps_never_share_a_motif() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 10)
            .event(2, 0, 20)
            .build()
            .unwrap();
        let counts = count_motifs(&g, &EnumConfig::new(2, 3));
        // Valid 2-event motifs: (0,1,10)->(2,0,20), (1,2,10)->(2,0,20).
        assert_eq!(counts.total(), 2);
    }

    #[test]
    fn node_budget_respected() {
        let g = chain_graph();
        let counts = count_motifs(&g, &EnumConfig::new(3, 3));
        assert_eq!(counts.total(), 0, "chain needs 4 nodes");
        let exact = count_motifs(&g, &EnumConfig::new(2, 4).exact_nodes(3));
        assert_eq!(exact.total(), 2);
    }

    #[test]
    fn star_burst_counts() {
        // Out-burst star: 0->1, 0->2, 0->3 at 10, 20, 30.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(0, 2, 20)
            .event(0, 3, 30)
            .build()
            .unwrap();
        let counts = count_motifs(&g, &EnumConfig::new(3, 4));
        assert_eq!(counts.get(sig("010203")), 1);
        assert_eq!(counts.total(), 1);
        // With the consecutive events restriction the star still passes:
        // node 0 has no events outside the motif.
        let cons = count_motifs(&g, &EnumConfig::new(3, 4).with_consecutive(true));
        assert_eq!(cons.total(), 1);
    }

    #[test]
    fn consecutive_restriction_filters() {
        // Ask-reply 0->1, 1->2, 1->0 plus a distraction event touching
        // node 0 in the middle.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(3, 0, 15)
            .event(1, 2, 20)
            .event(1, 0, 30)
            .build()
            .unwrap();
        let free = count_motifs(
            &g,
            &EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(100)),
        );
        // 010 210 exists among {0,1,2}: events 0,2,3.
        assert!(free.get(sig("011210")) >= 1);
        let cons = count_motifs(
            &g,
            &EnumConfig::new(3, 3)
                .exact_nodes(3)
                .with_timing(Timing::only_c(100))
                .with_consecutive(true),
        );
        // Node 0 is engaged by (3,0,15) during [10,30]: filtered out.
        assert_eq!(cons.get(sig("011210")), 0);
    }

    #[test]
    fn signature_filter_matches_full_enumeration() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(0, 1, 3)
            .event(0, 2, 5)
            .event(1, 0, 6)
            .event(0, 1, 8)
            .event(2, 0, 9)
            .build()
            .unwrap();
        let full = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_w(10)));
        for (s, n) in full.iter() {
            let targeted = count_signature(&g, s, Timing::only_w(10));
            assert_eq!(targeted, n, "signature {s}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        // Deterministic medium-size graph.
        let mut b = TemporalGraphBuilder::new();
        let mut x = 12345u64;
        for t in 0..2000i64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 33) % 50;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut v = (x >> 33) % 50;
            if v == u {
                v = (v + 1) % 50;
            }
            b.push(tnm_graph::Event::new(u as u32, v as u32, t * 3));
        }
        let g = b.build().unwrap();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(30, 60));
        let serial = count_motifs(&g, &cfg);
        let par = count_motifs_parallel(&g, &cfg, 4);
        assert_eq!(serial, par);
    }

    #[test]
    fn duration_aware_gap_measurement() {
        // Event 1 lasts 10s (ends at 20); event 2 at t=24.
        // Plain ΔC=5: gap 14 > 5 -> rejected.
        // Duration-aware ΔC=5: gap from end = 4 <= 5 -> accepted.
        let g = TemporalGraphBuilder::new()
            .event_with_duration(0, 1, 10, 10)
            .event(1, 2, 24)
            .build()
            .unwrap();
        let plain = count_motifs(&g, &EnumConfig::new(2, 3).with_timing(Timing::only_c(5)));
        assert_eq!(plain.total(), 0);
        let mut cfg = EnumConfig::new(2, 3).with_timing(Timing::only_c(5));
        cfg.duration_aware = true;
        let aware = count_motifs(&g, &cfg);
        assert_eq!(aware.total(), 1);
    }

    #[test]
    fn model_config_roundtrip() {
        let m = MotifModel::paranjape(3000);
        let cfg = EnumConfig::for_model(&m, 3, 3);
        assert!(cfg.static_induced);
        assert_eq!(cfg.timing, Timing::only_w(3000));
    }

    #[test]
    fn instance_times_and_timespan() {
        let g = chain_graph();
        let mut spans = Vec::new();
        enumerate_instances(&g, &EnumConfig::new(3, 4), |inst| {
            spans.push((inst.times(&g), inst.timespan(&g)));
        });
        assert_eq!(spans, vec![(vec![10, 20, 30], 20)]);
    }
}
