//! Legacy enumeration entry points, now thin wrappers over the
//! [`engine`](crate::engine) subsystem.
//!
//! The machinery that used to live here — the backtracking walker, its
//! parallel driver — moved to `crate::engine`, which exposes it behind
//! the [`CountEngine`](crate::engine::CountEngine) trait with four
//! interchangeable implementations. This module keeps the original
//! public API source-compatible:
//!
//! * [`count_motifs`] — serial counting via the auto-selected serial
//!   engine (see [`auto_select`](crate::engine::auto_select));
//! * [`count_motifs_parallel`] — explicit parallelism via the
//!   work-stealing [`ParallelEngine`](crate::engine::ParallelEngine);
//!   unlike the old static-chunked version it **honors `threads`** even
//!   on small graphs instead of silently falling back to serial;
//! * [`enumerate_instances`] / [`count_signature`] — deterministic
//!   serial enumeration, unchanged semantics.
//!
//! New code that cares about strategy should select an engine through
//! [`EngineKind`](crate::engine::EngineKind) instead.

pub use crate::engine::{EnumConfig, MotifInstance};

use crate::constraints::Timing;
use crate::count::MotifCounts;
use crate::engine::{CountEngine, EngineKind, ParallelEngine, WindowedEngine};
use crate::notation::MotifSignature;
use tnm_graph::TemporalGraph;

/// Enumerates every motif instance admitted by `cfg`, invoking `callback`
/// once per instance (events in time order, deterministic order).
pub fn enumerate_instances<F: FnMut(&MotifInstance<'_>)>(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    mut callback: F,
) {
    WindowedEngine.enumerate(graph, cfg, &mut callback);
}

/// Counts instances per canonical signature with the auto-selected
/// serial engine.
pub fn count_motifs(graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
    EngineKind::Auto.count(graph, cfg, 1)
}

/// Parallel variant of [`count_motifs`]: the work-stealing executor
/// claims start events through an atomic cursor and merges per-worker
/// local tables lock-free at join. Results are identical to the serial
/// version for every configuration.
///
/// `threads` is honored as given (clamped to at least 1): callers who
/// explicitly ask for parallelism get it regardless of graph size. Use
/// [`EngineKind::Auto`](crate::engine::EngineKind) when you want the
/// small-graph serial fallback heuristic instead.
#[deprecated(
    since = "0.1.0",
    note = "route counting through the Query API (`Query::Count` with an \
            engine and thread budget) or `EngineKind::Parallel.count`"
)]
pub fn count_motifs_parallel(
    graph: &TemporalGraph,
    cfg: &EnumConfig,
    threads: usize,
) -> MotifCounts {
    ParallelEngine::new(threads).count(graph, cfg)
}

/// Counts instances of one specific signature (prefix-pruned fast path
/// used by the Figure 4/5 experiments).
pub fn count_signature(graph: &TemporalGraph, sig: MotifSignature, timing: Timing) -> u64 {
    let cfg = EnumConfig::for_signature(sig).with_timing(timing);
    let mut n = 0u64;
    enumerate_instances(graph, &cfg, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MotifModel;
    use crate::notation::sig;
    use tnm_graph::TemporalGraphBuilder;

    fn chain_graph() -> TemporalGraph {
        // 0->1 @10, 1->2 @20, 2->3 @30.
        TemporalGraphBuilder::new().event(0, 1, 10).event(1, 2, 20).event(2, 3, 30).build().unwrap()
    }

    #[test]
    fn counts_simple_chain() {
        let g = chain_graph();
        let counts = count_motifs(&g, &EnumConfig::new(2, 4));
        // Two 2-event motifs: (e1,e2) convey and (e2,e3) convey. (e1,e3)
        // is disconnected (no shared node) so never enumerated... except
        // e1=0->1 and e3=2->3 share nothing. Correct total: 2.
        assert_eq!(counts.total(), 2);
        assert_eq!(counts.get(sig("0112")), 2);
        let three = count_motifs(&g, &EnumConfig::new(3, 4));
        assert_eq!(three.total(), 1);
        assert_eq!(three.get(sig("011223")), 1);
    }

    #[test]
    fn timing_pruning_delta_c() {
        let g = chain_graph();
        // Gaps are 10 and 10. ΔC=10 admits everything; ΔC=9 admits nothing.
        let ok = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_c(10)));
        assert_eq!(ok.total(), 1);
        let none = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_c(9)));
        assert_eq!(none.total(), 0);
    }

    #[test]
    fn timing_pruning_delta_w() {
        let g = chain_graph();
        // Span is 20. ΔW=20 admits the 3-event chain; ΔW=19 does not.
        let ok = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_w(20)));
        assert_eq!(ok.total(), 1);
        let none = count_motifs(&g, &EnumConfig::new(3, 4).with_timing(Timing::only_w(19)));
        assert_eq!(none.total(), 0);
    }

    #[test]
    fn section_4_5_example() {
        // Events at times 1, 9, 10 sharing nodes: valid under ΔW=10,
        // invalid under ΔC=5 (gap 8 > 5).
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 2, 9)
            .event(2, 0, 10)
            .build()
            .unwrap();
        let w = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_w(10)));
        assert_eq!(w.total(), 1);
        let c = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_c(5)));
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn equal_timestamps_never_share_a_motif() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(1, 2, 10)
            .event(2, 0, 20)
            .build()
            .unwrap();
        let counts = count_motifs(&g, &EnumConfig::new(2, 3));
        // Valid 2-event motifs: (0,1,10)->(2,0,20), (1,2,10)->(2,0,20).
        assert_eq!(counts.total(), 2);
    }

    #[test]
    fn node_budget_respected() {
        let g = chain_graph();
        let counts = count_motifs(&g, &EnumConfig::new(3, 3));
        assert_eq!(counts.total(), 0, "chain needs 4 nodes");
        let exact = count_motifs(&g, &EnumConfig::new(2, 4).exact_nodes(3));
        assert_eq!(exact.total(), 2);
    }

    #[test]
    fn star_burst_counts() {
        // Out-burst star: 0->1, 0->2, 0->3 at 10, 20, 30.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(0, 2, 20)
            .event(0, 3, 30)
            .build()
            .unwrap();
        let counts = count_motifs(&g, &EnumConfig::new(3, 4));
        assert_eq!(counts.get(sig("010203")), 1);
        assert_eq!(counts.total(), 1);
        // With the consecutive events restriction the star still passes:
        // node 0 has no events outside the motif.
        let cons = count_motifs(&g, &EnumConfig::new(3, 4).with_consecutive(true));
        assert_eq!(cons.total(), 1);
    }

    #[test]
    fn consecutive_restriction_filters() {
        // Ask-reply 0->1, 1->2, 1->0 plus a distraction event touching
        // node 0 in the middle.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 10)
            .event(3, 0, 15)
            .event(1, 2, 20)
            .event(1, 0, 30)
            .build()
            .unwrap();
        let free = count_motifs(
            &g,
            &EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(100)),
        );
        // 010 210 exists among {0,1,2}: events 0,2,3.
        assert!(free.get(sig("011210")) >= 1);
        let cons = count_motifs(
            &g,
            &EnumConfig::new(3, 3)
                .exact_nodes(3)
                .with_timing(Timing::only_c(100))
                .with_consecutive(true),
        );
        // Node 0 is engaged by (3,0,15) during [10,30]: filtered out.
        assert_eq!(cons.get(sig("011210")), 0);
    }

    #[test]
    fn signature_filter_matches_full_enumeration() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(0, 1, 3)
            .event(0, 2, 5)
            .event(1, 0, 6)
            .event(0, 1, 8)
            .event(2, 0, 9)
            .build()
            .unwrap();
        let full = count_motifs(&g, &EnumConfig::new(3, 3).with_timing(Timing::only_w(10)));
        for (s, n) in full.iter() {
            let targeted = count_signature(&g, s, Timing::only_w(10));
            assert_eq!(targeted, n, "signature {s}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        // Deterministic medium-size graph.
        let mut b = TemporalGraphBuilder::new();
        let mut x = 12345u64;
        for t in 0..2000i64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 33) % 50;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut v = (x >> 33) % 50;
            if v == u {
                v = (v + 1) % 50;
            }
            b.push(tnm_graph::Event::new(u as u32, v as u32, t * 3));
        }
        let g = b.build().unwrap();
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(30, 60));
        let serial = count_motifs(&g, &cfg);
        #[allow(deprecated)]
        let par = count_motifs_parallel(&g, &cfg, 4);
        assert_eq!(serial, par);
    }

    #[test]
    #[allow(deprecated)]
    fn explicit_parallelism_is_honored_on_small_graphs() {
        // The old implementation silently went serial below 1024 events;
        // the work-stealing executor must still produce identical counts
        // when actually running multi-threaded on a tiny graph.
        let g = chain_graph();
        let cfg = EnumConfig::new(2, 4);
        assert_eq!(count_motifs_parallel(&g, &cfg, 8), count_motifs(&g, &cfg));
    }

    #[test]
    fn duration_aware_gap_measurement() {
        // Event 1 lasts 10s (ends at 20); event 2 at t=24.
        // Plain ΔC=5: gap 14 > 5 -> rejected.
        // Duration-aware ΔC=5: gap from end = 4 <= 5 -> accepted.
        let g = TemporalGraphBuilder::new()
            .event_with_duration(0, 1, 10, 10)
            .event(1, 2, 24)
            .build()
            .unwrap();
        let plain = count_motifs(&g, &EnumConfig::new(2, 3).with_timing(Timing::only_c(5)));
        assert_eq!(plain.total(), 0);
        let mut cfg = EnumConfig::new(2, 3).with_timing(Timing::only_c(5));
        cfg.duration_aware = true;
        let aware = count_motifs(&g, &cfg);
        assert_eq!(aware.total(), 1);
    }

    #[test]
    fn model_config_roundtrip() {
        let m = MotifModel::paranjape(3000);
        let cfg = EnumConfig::for_model(&m, 3, 3);
        assert!(cfg.static_induced);
        assert_eq!(cfg.timing, Timing::only_w(3000));
    }

    #[test]
    fn instance_times_and_timespan() {
        let g = chain_graph();
        let mut spans = Vec::new();
        enumerate_instances(&g, &EnumConfig::new(3, 4), |inst| {
            spans.push((inst.times(&g), inst.timespan(&g)));
        });
        assert_eq!(spans, vec![(vec![10, 20, 30], 20)]);
    }
}
