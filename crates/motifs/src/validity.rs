//! Per-instance validity checking against each model — the machinery
//! behind the paper's Figure 1, where the same four candidate motifs are
//! accepted or rejected by the four models for different reasons.

use crate::consecutive::is_consecutive;
use crate::constrained::constrained_ok;
use crate::induced::static_induced_ok;
use crate::models::MotifModel;
use serde::{Deserialize, Serialize};
use std::fmt;
use tnm_graph::{EventIdx, TemporalGraph, Time};

/// A reason an instance fails a model's definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Events are not sorted by strictly increasing time (ties count).
    NotTimeOrdered,
    /// Some event (after the first) shares no node with earlier events.
    NotSingleComponent,
    /// A consecutive gap exceeds ΔC.
    DeltaCExceeded {
        /// 0-based index of the *second* event of the offending pair.
        position: usize,
        /// Observed gap in seconds.
        gap: Time,
        /// The configured ΔC.
        limit: Time,
    },
    /// The whole-motif span exceeds ΔW.
    DeltaWExceeded {
        /// Observed span in seconds.
        span: Time,
        /// The configured ΔW.
        limit: Time,
    },
    /// Kovanen's consecutive events restriction is violated.
    ConsecutiveEvents,
    /// The instance is not induced in the static projection.
    NotStaticInduced,
    /// The constrained dynamic graphlet restriction is violated.
    ConstrainedDynamic,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotTimeOrdered => write!(f, "events not strictly time-ordered"),
            Violation::NotSingleComponent => write!(f, "does not grow as a single component"),
            Violation::DeltaCExceeded { position, gap, limit } => {
                write!(f, "gap before event {position} is {gap}s > ΔC={limit}s")
            }
            Violation::DeltaWExceeded { span, limit } => {
                write!(f, "motif spans {span}s > ΔW={limit}s")
            }
            Violation::ConsecutiveEvents => {
                write!(f, "a node has outside events during its motif engagement")
            }
            Violation::NotStaticInduced => {
                write!(f, "misses a static edge among the motif's nodes")
            }
            Violation::ConstrainedDynamic => {
                write!(f, "repeats an edge observation (stale information)")
            }
        }
    }
}

/// The verdict of checking one instance against one model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Name of the model checked.
    pub model: String,
    /// All violations found (empty = valid).
    pub violations: Vec<Violation>,
}

impl Verdict {
    /// True if the instance satisfies the model.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "{}: valid", self.model)
        } else {
            write!(f, "{}: invalid (", self.model)?;
            for (i, v) in self.violations.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")
        }
    }
}

/// Checks a candidate instance (event indices, any order) against a model,
/// collecting *all* violations rather than stopping at the first — that is
/// what lets a Figure 1-style report explain each cell.
pub fn check_instance(
    graph: &TemporalGraph,
    motif_events: &[EventIdx],
    model: &MotifModel,
) -> Verdict {
    let mut violations = Vec::new();
    let mut events = motif_events.to_vec();
    events.sort_by_key(|&i| (graph.event(i).time, i));

    let strictly_ordered =
        events.windows(2).all(|w| graph.event(w[0]).time < graph.event(w[1]).time);
    if !strictly_ordered {
        violations.push(Violation::NotTimeOrdered);
    }

    // Single-component growth.
    let mut connected = true;
    for (i, &idx) in events.iter().enumerate().skip(1) {
        let e = graph.event(idx);
        let touches_earlier = events[..i].iter().any(|&j| graph.event(j).shares_node_with(e));
        if !touches_earlier {
            connected = false;
        }
    }
    if !connected {
        violations.push(Violation::NotSingleComponent);
    }

    if let Some(limit) = model.timing.delta_c {
        for (pos, w) in events.windows(2).enumerate() {
            let prev = graph.event(w[0]);
            let next = graph.event(w[1]);
            let base = if model.duration_aware { prev.end_time() } else { prev.time };
            let gap = next.time - base;
            if gap > limit {
                violations.push(Violation::DeltaCExceeded { position: pos + 1, gap, limit });
            }
        }
    }
    if let Some(limit) = model.timing.delta_w {
        let span = graph.event(*events.last().expect("non-empty instance")).time
            - graph.event(events[0]).time;
        if span > limit {
            violations.push(Violation::DeltaWExceeded { span, limit });
        }
    }
    if model.consecutive_events && !is_consecutive(graph, &events) {
        violations.push(Violation::ConsecutiveEvents);
    }
    if model.static_induced && !static_induced_ok(graph, &events) {
        violations.push(Violation::NotStaticInduced);
    }
    if model.constrained_dynamic && !constrained_ok(graph, &events) {
        violations.push(Violation::ConstrainedDynamic);
    }
    Verdict { model: model.name.clone(), violations }
}

/// Checks one instance against several models at once (a Figure 1 row).
pub fn check_against_all(
    graph: &TemporalGraph,
    motif_events: &[EventIdx],
    models: &[MotifModel],
) -> Vec<Verdict> {
    models.iter().map(|m| check_instance(graph, motif_events, m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use tnm_graph::TemporalGraphBuilder;

    fn graph() -> TemporalGraph {
        TemporalGraphBuilder::new().event(0, 1, 3).event(1, 2, 9).event(0, 2, 11).build().unwrap()
    }

    #[test]
    fn delta_c_violation_reported() {
        let m = MotifModel::kovanen(5);
        let v = check_instance(&graph(), &[0, 1, 2], &m);
        assert!(!v.is_valid());
        assert!(v.violations.contains(&Violation::DeltaCExceeded {
            position: 1,
            gap: 6,
            limit: 5
        }));
    }

    #[test]
    fn delta_w_violation_reported() {
        let m = MotifModel::song(5);
        let v = check_instance(&graph(), &[0, 1, 2], &m);
        assert_eq!(v.violations, vec![Violation::DeltaWExceeded { span: 8, limit: 5 }]);
    }

    #[test]
    fn valid_instance_passes_everything() {
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 7)
            .event(1, 2, 9)
            .event(0, 2, 11)
            .build()
            .unwrap();
        for m in MotifModel::all_four(5, 10) {
            let v = check_instance(&g, &[0, 1, 2], &m);
            assert!(v.is_valid(), "{v}");
        }
    }

    #[test]
    fn unordered_input_is_sorted_then_checked() {
        let g = graph();
        let m = MotifModel::vanilla(Timing::UNBOUNDED);
        let v = check_instance(&g, &[2, 0, 1], &m);
        assert!(v.is_valid());
    }

    #[test]
    fn tie_detection() {
        let g = TemporalGraphBuilder::new().event(0, 1, 5).event(1, 2, 5).build().unwrap();
        let m = MotifModel::vanilla(Timing::UNBOUNDED);
        let v = check_instance(&g, &[0, 1], &m);
        assert!(v.violations.contains(&Violation::NotTimeOrdered));
    }

    #[test]
    fn disconnected_instance_flagged() {
        let g = TemporalGraphBuilder::new().event(0, 1, 5).event(2, 3, 8).build().unwrap();
        let m = MotifModel::vanilla(Timing::UNBOUNDED);
        let v = check_instance(&g, &[0, 1], &m);
        assert_eq!(v.violations, vec![Violation::NotSingleComponent]);
    }

    #[test]
    fn non_induced_instance_flagged_for_paranjape_only() {
        // Square 0->1->2->3->0 with diagonal 0->2 not covered.
        let g = TemporalGraphBuilder::new()
            .event(0, 1, 1)
            .event(1, 2, 2)
            .event(2, 3, 3)
            .event(3, 0, 4)
            .event(0, 2, 5)
            .build()
            .unwrap();
        let square = [0u32, 1, 2, 3];
        let p = check_instance(&g, &square, &MotifModel::paranjape(100));
        assert_eq!(p.violations, vec![Violation::NotStaticInduced]);
        let s = check_instance(&g, &square, &MotifModel::song(100));
        assert!(s.is_valid(), "Song is non-induced: {s}");
    }

    #[test]
    fn verdict_display() {
        let m = MotifModel::kovanen(5);
        let v = check_instance(&graph(), &[0, 1, 2], &m);
        let text = v.to_string();
        assert!(text.contains("invalid"), "{text}");
        assert!(text.contains("ΔC=5s"), "{text}");
    }
}
