//! The event-pair lens (paper Section 5, Figure 2 right panel).
//!
//! Given two consecutive events that share a node, `(u1, v1, t1)` and
//! `(u2, v2, t2)` with `t1 < t2`, there are exactly six possible
//! relationships — a "6-letter alphabet" that is expressive enough to
//! exactly represent every 2-/3-node motif and to broadly describe 4-node
//! motifs, while exposing temporal correlations (Section 5.3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The six event-pair types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventPairType {
    /// `R`: both events on the same edge (`u1=u2, v1=v2`).
    Repetition,
    /// `P`: second event reverses the first (`u1=v2, v1=u2`).
    PingPong,
    /// `I`: same target, different sources (`u1≠u2, v1=v2`).
    InBurst,
    /// `O`: same source, different targets (`u1=u2, v1≠v2`).
    OutBurst,
    /// `C`: second source is first target (`v1=u2, u1≠v2`).
    Convey,
    /// `W`: second target is first source (`u1=v2, v1≠u2`).
    WeaklyConnected,
}

pub use EventPairType::*;

/// All six types in the paper's presentation order (R, P, I, O, C, W).
pub const ALL_PAIR_TYPES: [EventPairType; 6] =
    [Repetition, PingPong, InBurst, OutBurst, Convey, WeaklyConnected];

impl EventPairType {
    /// Classifies the ordered pair of events `(a, b)` given as `(src, dst)`
    /// node pairs. Returns `None` when the events share no node.
    ///
    /// The conditions are mutually exclusive: exactly one type applies to
    /// any two node-sharing events (given no self-loops).
    pub fn classify<N: Copy + Eq>(a: (N, N), b: (N, N)) -> Option<EventPairType> {
        let (u1, v1) = a;
        let (u2, v2) = b;
        if u1 == u2 && v1 == v2 {
            Some(Repetition)
        } else if u1 == v2 && v1 == u2 {
            Some(PingPong)
        } else if v1 == v2 {
            Some(InBurst)
        } else if u1 == u2 {
            Some(OutBurst)
        } else if v1 == u2 {
            Some(Convey)
        } else if u1 == v2 {
            Some(WeaklyConnected)
        } else {
            None
        }
    }

    /// One-letter code used across the paper's tables and our reports.
    pub fn letter(self) -> char {
        match self {
            Repetition => 'R',
            PingPong => 'P',
            InBurst => 'I',
            OutBurst => 'O',
            Convey => 'C',
            WeaklyConnected => 'W',
        }
    }

    /// Parses the one-letter code (case-insensitive).
    pub fn from_letter(c: char) -> Option<EventPairType> {
        match c.to_ascii_uppercase() {
            'R' => Some(Repetition),
            'P' => Some(PingPong),
            'I' => Some(InBurst),
            'O' => Some(OutBurst),
            'C' => Some(Convey),
            'W' => Some(WeaklyConnected),
            _ => None,
        }
    }

    /// Full name as printed in the paper's Figure 2.
    pub fn name(self) -> &'static str {
        match self {
            Repetition => "Repetition",
            PingPong => "Ping-pong",
            InBurst => "In-burst",
            OutBurst => "Out-burst",
            Convey => "Convey",
            WeaklyConnected => "Weakly-connected",
        }
    }

    /// Dense index `0..6` in R, P, I, O, C, W order (for array-backed
    /// counters and the Figure 6 heat maps).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Repetition => 0,
            PingPong => 1,
            InBurst => 2,
            OutBurst => 3,
            Convey => 4,
            WeaklyConnected => 5,
        }
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: usize) -> Option<EventPairType> {
        ALL_PAIR_TYPES.get(i).copied()
    }

    /// True for the `{R, P, I, O}` group that Table 5 shows is amplified
    /// by only-ΔW configurations (the `{C, W}` group is the complement).
    pub fn is_rpio(self) -> bool {
        !matches!(self, Convey | WeaklyConnected)
    }
}

impl fmt::Display for EventPairType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A fixed-size counter over the six event-pair types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventPairCounts {
    counts: [u64; 6],
}

impl EventPairCounts {
    /// An all-zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` observations of `ty`.
    #[inline]
    pub fn add(&mut self, ty: EventPairType, n: u64) {
        self.counts[ty.index()] += n;
    }

    /// Count for one type.
    #[inline]
    pub fn get(&self, ty: EventPairType) -> u64 {
        self.counts[ty.index()]
    }

    /// Sum over all six types.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum over the `{R, P, I, O}` group (Table 5 rows).
    pub fn rpio_total(&self) -> u64 {
        ALL_PAIR_TYPES.iter().filter(|t| t.is_rpio()).map(|&t| self.get(t)).sum()
    }

    /// Sum over the `{C, W}` group (Table 5 rows).
    pub fn cw_total(&self) -> u64 {
        self.get(Convey) + self.get(WeaklyConnected)
    }

    /// Proportion of each type (zeros if empty), in R,P,I,O,C,W order.
    pub fn ratios(&self) -> [f64; 6] {
        let total = self.total();
        if total == 0 {
            return [0.0; 6];
        }
        let mut out = [0.0; 6];
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = c as f64 / total as f64;
        }
        out
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &EventPairCounts) {
        for i in 0..6 {
            self.counts[i] += other.counts[i];
        }
    }

    /// Iterates `(type, count)` in R,P,I,O,C,W order.
    pub fn iter(&self) -> impl Iterator<Item = (EventPairType, u64)> + '_ {
        ALL_PAIR_TYPES.iter().map(move |&t| (t, self.get(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_all_six() {
        assert_eq!(EventPairType::classify((0, 1), (0, 1)), Some(Repetition));
        assert_eq!(EventPairType::classify((0, 1), (1, 0)), Some(PingPong));
        assert_eq!(EventPairType::classify((0, 1), (2, 1)), Some(InBurst));
        assert_eq!(EventPairType::classify((0, 1), (0, 2)), Some(OutBurst));
        assert_eq!(EventPairType::classify((0, 1), (1, 2)), Some(Convey));
        assert_eq!(EventPairType::classify((0, 1), (2, 0)), Some(WeaklyConnected));
        assert_eq!(EventPairType::classify((0, 1), (2, 3)), None);
    }

    #[test]
    fn letters_roundtrip() {
        for ty in ALL_PAIR_TYPES {
            assert_eq!(EventPairType::from_letter(ty.letter()), Some(ty));
            assert_eq!(EventPairType::from_index(ty.index()), Some(ty));
        }
        assert_eq!(EventPairType::from_letter('x'), None);
        assert_eq!(EventPairType::from_index(6), None);
    }

    #[test]
    fn group_membership() {
        assert!(Repetition.is_rpio());
        assert!(PingPong.is_rpio());
        assert!(InBurst.is_rpio());
        assert!(OutBurst.is_rpio());
        assert!(!Convey.is_rpio());
        assert!(!WeaklyConnected.is_rpio());
    }

    #[test]
    fn counts_accumulate_and_merge() {
        let mut c = EventPairCounts::new();
        c.add(Repetition, 5);
        c.add(Convey, 2);
        assert_eq!(c.total(), 7);
        assert_eq!(c.rpio_total(), 5);
        assert_eq!(c.cw_total(), 2);
        let mut d = EventPairCounts::new();
        d.add(Repetition, 1);
        d.add(WeaklyConnected, 1);
        c.merge(&d);
        assert_eq!(c.get(Repetition), 6);
        assert_eq!(c.total(), 9);
        let r = c.ratios();
        assert!((r[0] - 6.0 / 9.0).abs() < 1e-12);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        assert_eq!(EventPairCounts::new().ratios(), [0.0; 6]);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Repetition.name(), "Repetition");
        assert_eq!(WeaklyConnected.to_string(), "W");
    }
}
