//! Exhaustive catalogs of canonical motif types.
//!
//! The paper explores "all three-event two-/three-nodes (36 in total) and
//! four-event two-/three-/four-nodes (696 in total) motifs", always
//! restricted to motifs that *grow as a single component* (each event
//! shares a node with an earlier one). This module generates those
//! catalogs so experiments can report complete spectra and rankings.

use crate::notation::{MotifSignature, MAX_EVENTS};

/// Generates every canonical motif with exactly `num_events` events and at
/// most `max_nodes` nodes that grows as a single component, in
/// lexicographic signature order.
///
/// # Panics
///
/// Panics if `num_events` is 0 or exceeds [`MAX_EVENTS`], or if
/// `max_nodes < 2`.
pub fn all_motifs(num_events: usize, max_nodes: usize) -> Vec<MotifSignature> {
    assert!((1..=MAX_EVENTS).contains(&num_events), "unsupported motif size");
    assert!(max_nodes >= 2, "motifs need at least two nodes");
    let mut out = Vec::new();
    let mut pairs: Vec<(u8, u8)> = vec![(0, 1)];
    extend(&mut pairs, 2, num_events, max_nodes, &mut out);
    out.sort();
    out
}

fn extend(
    pairs: &mut Vec<(u8, u8)>,
    used_nodes: u8,
    target: usize,
    max_nodes: usize,
    out: &mut Vec<MotifSignature>,
) {
    if pairs.len() == target {
        out.push(MotifSignature::from_pairs(pairs).expect("generator emits canonical pairs"));
        return;
    }
    // Existing-node pairs: any ordered pair of distinct used nodes.
    for a in 0..used_nodes {
        for b in 0..used_nodes {
            if a != b {
                pairs.push((a, b));
                extend(pairs, used_nodes, target, max_nodes, out);
                pairs.pop();
            }
        }
    }
    // Introduce one fresh node (labelled `used_nodes`), attached to any
    // existing node in either direction. Introducing two fresh nodes at
    // once would break single-component growth.
    if (used_nodes as usize) < max_nodes {
        let fresh = used_nodes;
        for old in 0..used_nodes {
            for pair in [(old, fresh), (fresh, old)] {
                pairs.push(pair);
                extend(pairs, used_nodes + 1, target, max_nodes, out);
                pairs.pop();
            }
        }
    }
}

/// Motifs with exactly `num_events` events and exactly `num_nodes` nodes.
pub fn motifs_with_exact_nodes(num_events: usize, num_nodes: usize) -> Vec<MotifSignature> {
    all_motifs(num_events, num_nodes).into_iter().filter(|s| s.num_nodes() == num_nodes).collect()
}

/// The 32 three-node three-event motifs of Tables 3, 6, and 7.
pub fn all_3n3e() -> Vec<MotifSignature> {
    motifs_with_exact_nodes(3, 3)
}

/// The 4 two-node three-event motifs.
pub fn all_2n3e() -> Vec<MotifSignature> {
    motifs_with_exact_nodes(3, 2)
}

/// All 36 three-event motifs (two or three nodes).
pub fn all_3e() -> Vec<MotifSignature> {
    all_motifs(3, 3)
}

/// All 216 four-event motifs on two or three nodes.
pub fn all_4e_up_to_3n() -> Vec<MotifSignature> {
    all_motifs(4, 3)
}

/// All 696 four-event motifs on two, three, or four nodes.
pub fn all_4e() -> Vec<MotifSignature> {
    all_motifs(4, 4)
}

/// The 480 four-node four-event motifs.
pub fn all_4n4e() -> Vec<MotifSignature> {
    motifs_with_exact_nodes(4, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use std::collections::HashSet;

    #[test]
    fn paper_catalog_sizes() {
        // Section 1: 36 three-event and 696 four-event motifs.
        assert_eq!(all_3e().len(), 36);
        assert_eq!(all_4e().len(), 696);
        // Section 5: "all 32 3n3e motifs"; event pairs exactly represent
        // 216 (6^3) 2n4e/3n4e motifs; 480 4n4e motifs.
        assert_eq!(all_2n3e().len(), 4);
        assert_eq!(all_3n3e().len(), 32);
        assert_eq!(all_4e_up_to_3n().len(), 216);
        assert_eq!(all_4n4e().len(), 480);
    }

    #[test]
    fn catalogs_are_sorted_and_unique() {
        let m = all_4e();
        let set: HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), m.len());
        let mut sorted = m.clone();
        sorted.sort();
        assert_eq!(m, sorted);
    }

    #[test]
    fn all_generated_motifs_are_single_component() {
        assert!(all_4e().iter().all(|s| s.is_single_component_growth()));
    }

    #[test]
    fn known_motifs_present() {
        let m3 = all_3n3e();
        for s in ["010210", "011210", "012010", "012110", "011202", "012020"] {
            assert!(m3.contains(&sig(s)), "missing {s}");
        }
        let m2 = all_2n3e();
        assert_eq!(m2, vec![sig("010101"), sig("010110"), sig("011001"), sig("011010")]);
    }

    #[test]
    fn two_event_catalog_matches_event_pairs() {
        // With <= 3 nodes, 2-event motifs are exactly the 6 event pairs.
        assert_eq!(all_motifs(2, 3).len(), 6);
        // With <= 4 nodes there is no extra 2-event motif (two fresh nodes
        // would be disconnected).
        assert_eq!(all_motifs(2, 4).len(), 6);
    }

    #[test]
    fn event_pair_sequences_are_exact_for_3e() {
        // The 36 3e motifs map bijectively onto the 36 pair sequences.
        let seqs: HashSet<Vec<_>> = all_3e()
            .iter()
            .map(|s| s.event_pair_sequence().into_iter().map(Option::unwrap).collect::<Vec<_>>())
            .collect();
        assert_eq!(seqs.len(), 36);
    }

    #[test]
    fn event_pair_sequences_are_exact_for_4e_up_to_3n() {
        let seqs: HashSet<Vec<_>> = all_4e_up_to_3n()
            .iter()
            .map(|s| s.event_pair_sequence().into_iter().map(Option::unwrap).collect::<Vec<_>>())
            .collect();
        assert_eq!(seqs.len(), 216);
    }

    #[test]
    #[should_panic(expected = "unsupported motif size")]
    fn zero_events_rejected() {
        all_motifs(0, 3);
    }
}
