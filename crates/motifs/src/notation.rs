//! The paper's digit-pair motif notation (Section 5, Figure 2).
//!
//! A temporal motif with `n` events is written as `2n` digits; each digit
//! pair is one event, source digit first. Nodes are numbered by first
//! appearance in chronological order, so the first pair is always `01`.
//! For example `011202` is the triangle whose events are `0→1`, `1→2`,
//! `0→2` in time order.
//!
//! [`MotifSignature`] is the canonical, hashable representation of a motif
//! *type*. [`MotifSignature::from_events`] canonicalizes a concrete
//! time-ordered event sequence into its type.

use crate::event_pair::EventPairType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum number of events a signature can carry. The paper explores
/// 3- and 4-event motifs; 8 leaves room for extensions.
pub const MAX_EVENTS: usize = 8;

/// A canonical temporal-motif type in the paper's digit-pair notation.
///
/// Invariants (checked on construction):
/// * 1 ..= [`MAX_EVENTS`] events;
/// * no self-pairs (`aa`);
/// * the first pair is `01`;
/// * node digits appear in chronological first-appearance order (digit `d`
///   only occurs after `d - 1` has occurred).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MotifSignature {
    len: u8,
    pairs: [(u8, u8); MAX_EVENTS],
}

/// Errors from parsing or constructing a [`MotifSignature`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotationError {
    /// Empty input or zero events.
    Empty,
    /// More than [`MAX_EVENTS`] events.
    TooLong,
    /// The string length is odd or contains a non-digit.
    Malformed,
    /// An event pair has identical source and target.
    SelfPair,
    /// The first pair is not `01`, or digits skip ahead of appearance order.
    NotCanonical,
}

impl fmt::Display for NotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotationError::Empty => write!(f, "signature has no events"),
            NotationError::TooLong => write!(f, "signature exceeds {MAX_EVENTS} events"),
            NotationError::Malformed => write!(f, "signature must be an even number of digits"),
            NotationError::SelfPair => write!(f, "signature contains a self-loop pair"),
            NotationError::NotCanonical => {
                write!(f, "digits must follow chronological first-appearance order")
            }
        }
    }
}

impl std::error::Error for NotationError {}

impl MotifSignature {
    /// Builds a signature from digit pairs, validating canonical form.
    pub fn from_pairs(pairs: &[(u8, u8)]) -> Result<Self, NotationError> {
        if pairs.is_empty() {
            return Err(NotationError::Empty);
        }
        if pairs.len() > MAX_EVENTS {
            return Err(NotationError::TooLong);
        }
        let mut next_fresh = 0u8;
        for &(a, b) in pairs {
            if a == b {
                return Err(NotationError::SelfPair);
            }
            for d in [a, b] {
                if d > next_fresh {
                    return Err(NotationError::NotCanonical);
                }
                if d == next_fresh {
                    next_fresh += 1;
                }
            }
        }
        if pairs[0] != (0, 1) {
            return Err(NotationError::NotCanonical);
        }
        let mut arr = [(0u8, 0u8); MAX_EVENTS];
        arr[..pairs.len()].copy_from_slice(pairs);
        Ok(MotifSignature { len: pairs.len() as u8, pairs: arr })
    }

    /// Canonicalizes a concrete sequence of `(src, dst)` node pairs,
    /// assumed already in chronological order, by renaming nodes in
    /// first-appearance order.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty, longer than [`MAX_EVENTS`], or
    /// contains a self-loop — callers (the enumeration engine) guarantee
    /// none of these occur.
    pub fn canonicalize<N: Copy + Eq>(pairs: &[(N, N)]) -> Self {
        assert!(!pairs.is_empty() && pairs.len() <= MAX_EVENTS, "bad motif size");
        let mut names: [Option<N>; 2 * MAX_EVENTS] = [None; 2 * MAX_EVENTS];
        let mut n_names = 0usize;
        let digit = |v: N, names: &mut [Option<N>; 2 * MAX_EVENTS], n: &mut usize| -> u8 {
            for (i, slot) in names[..*n].iter().enumerate() {
                if *slot == Some(v) {
                    return i as u8;
                }
            }
            names[*n] = Some(v);
            *n += 1;
            (*n - 1) as u8
        };
        let mut arr = [(0u8, 0u8); MAX_EVENTS];
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let a = digit(s, &mut names, &mut n_names);
            let b = digit(d, &mut names, &mut n_names);
            assert!(a != b, "self-loop event in motif");
            arr[i] = (a, b);
        }
        MotifSignature { len: pairs.len() as u8, pairs: arr }
    }

    /// Canonicalizes a time-ordered slice of graph events.
    pub fn from_events(events: &[tnm_graph::Event]) -> Self {
        let pairs: Vec<(u32, u32)> = events.iter().map(|e| (e.src.0, e.dst.0)).collect();
        Self::canonicalize(&pairs)
    }

    /// Number of events (`e` in the paper's `XnYe` class names).
    #[inline]
    pub fn num_events(&self) -> usize {
        self.len as usize
    }

    /// Number of distinct nodes (`n` in `XnYe`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.pairs().iter().map(|&(a, b)| a.max(b)).max().map_or(0, |m| m as usize + 1)
    }

    /// The digit pairs, one per event.
    #[inline]
    pub fn pairs(&self) -> &[(u8, u8)] {
        &self.pairs[..self.len as usize]
    }

    /// Class label in the paper's style, e.g. `3n3e`.
    pub fn class_name(&self) -> String {
        format!("{}n{}e", self.num_nodes(), self.num_events())
    }

    /// True if the motif grows as a single component when its events are
    /// added one at a time (the only motifs the paper considers): every
    /// event after the first shares a node with an earlier event.
    pub fn is_single_component_growth(&self) -> bool {
        let pairs = self.pairs();
        let mut seen = 0u16; // bitset over digits
        seen |= 1 << pairs[0].0;
        seen |= 1 << pairs[0].1;
        for &(a, b) in &pairs[1..] {
            if seen & ((1 << a) | (1 << b)) == 0 {
                return false;
            }
            seen |= (1 << a) | (1 << b);
        }
        true
    }

    /// The event-pair sequence (Figure 2, right): one entry per pair of
    /// consecutive events; `None` when the two events share no node (can
    /// only happen for ≥ 4 nodes, which is why the paper calls the 4n4e
    /// descriptions "broad").
    pub fn event_pair_sequence(&self) -> Vec<Option<EventPairType>> {
        self.pairs().windows(2).map(|w| EventPairType::classify(w[0], w[1])).collect()
    }

    /// True if the last event is the reverse of the first (the "ask-reply"
    /// shape that the consecutive events restriction amplifies, Sec 5.1.1).
    pub fn first_last_reciprocal(&self) -> bool {
        let p = self.pairs();
        let first = p[0];
        let last = p[p.len() - 1];
        last == (first.1, first.0)
    }
}

impl fmt::Display for MotifSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(a, b) in self.pairs() {
            write!(f, "{a}{b}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for MotifSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MotifSignature({self})")
    }
}

impl FromStr for MotifSignature {
    type Err = NotationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(NotationError::Empty);
        }
        let digits: Vec<u8> = s
            .chars()
            .map(|c| c.to_digit(10).map(|d| d as u8).ok_or(NotationError::Malformed))
            .collect::<Result<_, _>>()?;
        if !digits.len().is_multiple_of(2) {
            return Err(NotationError::Malformed);
        }
        let pairs: Vec<(u8, u8)> = digits.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        Self::from_pairs(&pairs)
    }
}

/// Parses a signature, panicking on invalid input. Intended for literals
/// in tests, examples, and experiment definitions.
pub fn sig(s: &str) -> MotifSignature {
    s.parse().unwrap_or_else(|e| panic!("invalid motif signature `{s}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_pair::EventPairType::*;
    use tnm_graph::Event;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["01", "0110", "011202", "010210", "01023132", "01212303"] {
            assert_eq!(sig(s).to_string(), s);
        }
    }

    #[test]
    fn class_names() {
        assert_eq!(sig("010101").class_name(), "2n3e");
        assert_eq!(sig("011202").class_name(), "3n3e");
        assert_eq!(sig("01023132").class_name(), "4n4e");
        assert_eq!(sig("01").class_name(), "2n1e");
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!("".parse::<MotifSignature>(), Err(NotationError::Empty));
        assert_eq!("0".parse::<MotifSignature>(), Err(NotationError::Malformed));
        assert_eq!("0a".parse::<MotifSignature>(), Err(NotationError::Malformed));
        assert_eq!("00".parse::<MotifSignature>(), Err(NotationError::SelfPair));
        assert_eq!("10".parse::<MotifSignature>(), Err(NotationError::NotCanonical));
        assert_eq!("0102".parse::<MotifSignature>().unwrap(), sig("0102"));
        // Digit 3 before 2 has appeared:
        assert_eq!("0113".parse::<MotifSignature>(), Err(NotationError::NotCanonical));
        let long = "01".repeat(MAX_EVENTS + 1);
        assert_eq!(long.parse::<MotifSignature>(), Err(NotationError::TooLong));
    }

    #[test]
    fn canonicalize_relabels_by_appearance() {
        // Nodes 9 -> 4 -> 7, then 9 -> 7: becomes 01, 12, 02.
        let s = MotifSignature::canonicalize(&[(9u32, 4), (4, 7), (9, 7)]);
        assert_eq!(s, sig("011202"));
    }

    #[test]
    fn canonicalize_from_events() {
        let events =
            [Event::new(5u32, 3u32, 10), Event::new(3u32, 5u32, 12), Event::new(5u32, 3u32, 19)];
        assert_eq!(MotifSignature::from_events(&events), sig("011001"));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn canonicalize_rejects_self_loop() {
        MotifSignature::canonicalize(&[(1u32, 1)]);
    }

    #[test]
    fn single_component_growth() {
        assert!(sig("011202").is_single_component_growth());
        assert!(sig("01023132").is_single_component_growth());
        // 0->1 then 2->3 is disconnected growth.
        assert!(!sig("0123").is_single_component_growth());
        assert!(!sig("01232031").is_single_component_growth());
    }

    #[test]
    fn event_pair_sequences_match_figure2() {
        // Figure 2 bottom-left: 011202 = repetition? No: 01,12 share node 1
        // => convey; 12,02 share node 2 => in-burst.
        assert_eq!(sig("011202").event_pair_sequence(), vec![Some(Convey), Some(InBurst)]);
        // Figure 2: "Repetition, Out-burst" example 010102:
        assert_eq!(sig("010102").event_pair_sequence(), vec![Some(Repetition), Some(OutBurst)]);
        // Figure 2: "Repetition, Convey, Ping-pong" example 01011221:
        assert_eq!(
            sig("01011221").event_pair_sequence(),
            vec![Some(Repetition), Some(Convey), Some(PingPong)]
        );
        // Disjoint consecutive pair in a 4-node motif:
        assert_eq!(sig("01232031").event_pair_sequence()[0], None);
    }

    #[test]
    fn ask_reply_detection() {
        for s in ["010210", "011210", "012010", "012110"] {
            assert!(sig(s).first_last_reciprocal(), "{s} should be ask-reply");
        }
        assert!(!sig("010102").first_last_reciprocal());
        assert!(!sig("011202").first_last_reciprocal());
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut v = [sig("011202"), sig("010102"), sig("0110")];
        v.sort();
        assert_eq!(v[0], sig("0110"));
    }
}
