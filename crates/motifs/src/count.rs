//! Motif count containers and spectrum analytics.
//!
//! The paper's evaluation never uses a null model (Section 5, Comparison
//! criteria): counts themselves are the significance indicator, compared
//! via *rankings* (Table 3/6), *proportions* (Table 4/7), and event-pair
//! aggregates (Table 5, Figures 3/6). This module provides those
//! derived views over a raw signature → count map.

use crate::event_pair::{EventPairCounts, EventPairType};
use crate::notation::MotifSignature;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counts of motif instances keyed by canonical signature.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MotifCounts {
    map: HashMap<MotifSignature, u64>,
}

impl MotifCounts {
    /// An empty count table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` occurrences of `sig`.
    #[inline]
    pub fn add(&mut self, sig: MotifSignature, n: u64) {
        *self.map.entry(sig).or_insert(0) += n;
    }

    /// Count for one signature (0 if never seen).
    #[inline]
    pub fn get(&self, sig: MotifSignature) -> u64 {
        self.map.get(&sig).copied().unwrap_or(0)
    }

    /// Number of distinct signatures observed.
    pub fn num_signatures(&self) -> usize {
        self.map.len()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// True if nothing was counted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &MotifCounts) {
        for (&sig, &n) in &other.map {
            self.add(sig, n);
        }
    }

    /// Iterates `(signature, count)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (MotifSignature, u64)> + '_ {
        self.map.iter().map(|(&s, &c)| (s, c))
    }

    /// `(signature, count)` sorted by descending count, ties broken by
    /// signature order — the deterministic ranking used by Table 3/6.
    pub fn ranking(&self) -> Vec<(MotifSignature, u64)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// 0-based rank of `sig` in [`Self::ranking`] over the given universe:
    /// signatures absent from the table count as zero, so every universe
    /// member has a rank. Returns `None` if `sig` is not in `universe`.
    pub fn rank_within(&self, sig: MotifSignature, universe: &[MotifSignature]) -> Option<usize> {
        if !universe.contains(&sig) {
            return None;
        }
        let mut v: Vec<(MotifSignature, u64)> =
            universe.iter().map(|&s| (s, self.get(s))).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.iter().position(|&(s, _)| s == sig)
    }

    /// Proportion of each universe signature (count / total-over-universe).
    pub fn proportions(&self, universe: &[MotifSignature]) -> HashMap<MotifSignature, f64> {
        let total: u64 = universe.iter().map(|&s| self.get(s)).sum();
        universe
            .iter()
            .map(|&s| {
                let p = if total == 0 { 0.0 } else { self.get(s) as f64 / total as f64 };
                (s, p)
            })
            .collect()
    }

    /// The `k` most frequent signatures.
    pub fn top_k(&self, k: usize) -> Vec<(MotifSignature, u64)> {
        let mut v = self.ranking();
        v.truncate(k);
        v
    }

    /// Aggregates event-pair occurrences across all counted motifs: each
    /// instance of a signature contributes every node-sharing consecutive
    /// pair of its events (Table 5's unit of measurement).
    pub fn event_pair_counts(&self) -> EventPairCounts {
        let mut out = EventPairCounts::new();
        for (sig, n) in self.iter() {
            for pair in sig.event_pair_sequence().into_iter().flatten() {
                out.add(pair, n);
            }
        }
        out
    }

    /// Counts ordered *sequences* of event pairs for 3-event motifs: the
    /// 6×6 matrix behind Figure 6's heat maps (first pair × second pair).
    /// Motifs that are not 3-event or have a disjoint pair are skipped.
    pub fn pair_sequence_matrix(&self) -> [[u64; 6]; 6] {
        let mut m = [[0u64; 6]; 6];
        for (sig, n) in self.iter() {
            if sig.num_events() != 3 {
                continue;
            }
            let seq = sig.event_pair_sequence();
            if let (Some(a), Some(b)) = (seq[0], seq[1]) {
                m[a.index()][b.index()] += n;
            }
        }
        m
    }
}

impl FromIterator<(MotifSignature, u64)> for MotifCounts {
    fn from_iter<T: IntoIterator<Item = (MotifSignature, u64)>>(iter: T) -> Self {
        let mut c = MotifCounts::new();
        for (s, n) in iter {
            c.add(s, n);
        }
        c
    }
}

/// Rank changes between two count tables over a universe of signatures:
/// positive = ascended after going from `before` to `after` (the
/// convention of Table 6).
pub fn ranking_changes(
    before: &MotifCounts,
    after: &MotifCounts,
    universe: &[MotifSignature],
) -> HashMap<MotifSignature, i64> {
    universe
        .iter()
        .map(|&s| {
            let rb = before.rank_within(s, universe).expect("universe member") as i64;
            let ra = after.rank_within(s, universe).expect("universe member") as i64;
            (s, rb - ra)
        })
        .collect()
}

/// Per-signature proportion changes in **percentage points** when going
/// from `before` to `after` (Table 4/7), plus their variance over the
/// universe (Table 4's "Variance" column).
pub fn proportion_changes(
    before: &MotifCounts,
    after: &MotifCounts,
    universe: &[MotifSignature],
) -> (HashMap<MotifSignature, f64>, f64) {
    let pb = before.proportions(universe);
    let pa = after.proportions(universe);
    let changes: HashMap<MotifSignature, f64> =
        universe.iter().map(|&s| (s, (pa[&s] - pb[&s]) * 100.0)).collect();
    let n = universe.len() as f64;
    let mean: f64 = changes.values().sum::<f64>() / n;
    let var: f64 = changes.values().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
    (changes, var)
}

/// Event-pair occurrence counts grouped as Table 5 groups them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairGroupCounts {
    /// Combined count of R, P, I, O pairs.
    pub rpio: u64,
    /// Combined count of C, W pairs.
    pub cw: u64,
}

impl PairGroupCounts {
    /// Groups a full pair-type counter.
    pub fn from_counts(c: &EventPairCounts) -> Self {
        PairGroupCounts { rpio: c.rpio_total(), cw: c.cw_total() }
    }

    /// `self / baseline`, per group, as ratios in `[0, 1]` (Table 5's
    /// "Ratio" columns use the only-ΔW configuration as baseline).
    pub fn ratio_vs(&self, baseline: &PairGroupCounts) -> (f64, f64) {
        let f = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        (f(self.rpio, baseline.rpio), f(self.cw, baseline.cw))
    }
}

/// Proportion of each pair type among all pair occurrences — the pie
/// charts of Figure 3 (and appendix Figures 7–8).
pub fn pair_type_ratios(c: &EventPairCounts) -> [(EventPairType, f64); 6] {
    let r = c.ratios();
    let mut out = [(EventPairType::Repetition, 0.0); 6];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = (EventPairType::from_index(i).unwrap(), r[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;

    #[test]
    fn add_get_merge() {
        let mut a = MotifCounts::new();
        a.add(sig("010102"), 3);
        a.add(sig("010102"), 2);
        a.add(sig("011202"), 1);
        assert_eq!(a.get(sig("010102")), 5);
        assert_eq!(a.get(sig("012020")), 0);
        assert_eq!(a.total(), 6);
        assert_eq!(a.num_signatures(), 2);
        let mut b = MotifCounts::new();
        b.add(sig("011202"), 4);
        a.merge(&b);
        assert_eq!(a.get(sig("011202")), 5);
    }

    #[test]
    fn ranking_is_deterministic() {
        let c: MotifCounts =
            [(sig("010102"), 5), (sig("011202"), 5), (sig("012020"), 9)].into_iter().collect();
        let r = c.ranking();
        assert_eq!(r[0].0, sig("012020"));
        // Tie broken by signature order: 010102 < 011202.
        assert_eq!(r[1].0, sig("010102"));
        assert_eq!(r[2].0, sig("011202"));
    }

    #[test]
    fn rank_within_universe_includes_zeros() {
        let c: MotifCounts = [(sig("010102"), 5)].into_iter().collect();
        let universe = [sig("010102"), sig("011202"), sig("012020")];
        assert_eq!(c.rank_within(sig("010102"), &universe), Some(0));
        // Zero-count members ranked by signature order after non-zero.
        assert_eq!(c.rank_within(sig("011202"), &universe), Some(1));
        assert_eq!(c.rank_within(sig("012020"), &universe), Some(2));
        assert_eq!(c.rank_within(sig("0110"), &universe), None);
    }

    #[test]
    fn ranking_changes_sign_convention() {
        let universe = [sig("010102"), sig("011202")];
        let before: MotifCounts = [(sig("010102"), 10), (sig("011202"), 1)].into_iter().collect();
        let after: MotifCounts = [(sig("010102"), 1), (sig("011202"), 10)].into_iter().collect();
        let ch = ranking_changes(&before, &after, &universe);
        assert_eq!(ch[&sig("011202")], 1); // ascended one position
        assert_eq!(ch[&sig("010102")], -1);
    }

    #[test]
    fn proportion_changes_and_variance() {
        let universe = [sig("010102"), sig("011202")];
        let before: MotifCounts = [(sig("010102"), 50), (sig("011202"), 50)].into_iter().collect();
        let after: MotifCounts = [(sig("010102"), 60), (sig("011202"), 40)].into_iter().collect();
        let (ch, var) = proportion_changes(&before, &after, &universe);
        assert!((ch[&sig("010102")] - 10.0).abs() < 1e-9);
        assert!((ch[&sig("011202")] + 10.0).abs() < 1e-9);
        assert!((var - 100.0).abs() < 1e-9);
    }

    #[test]
    fn event_pair_aggregation() {
        // 010102 = R then O; two instances contribute 2 R and 2 O.
        let c: MotifCounts = [(sig("010102"), 2)].into_iter().collect();
        let pairs = c.event_pair_counts();
        assert_eq!(pairs.get(EventPairType::Repetition), 2);
        assert_eq!(pairs.get(EventPairType::OutBurst), 2);
        assert_eq!(pairs.total(), 4);
        let groups = PairGroupCounts::from_counts(&pairs);
        assert_eq!(groups.rpio, 4);
        assert_eq!(groups.cw, 0);
    }

    #[test]
    fn pair_sequence_matrix_entries() {
        let c: MotifCounts =
            [(sig("010102"), 3), (sig("011202"), 2), (sig("01021323"), 9)].into_iter().collect();
        let m = c.pair_sequence_matrix();
        use EventPairType::*;
        assert_eq!(m[Repetition.index()][OutBurst.index()], 3);
        assert_eq!(m[Convey.index()][InBurst.index()], 2);
        // 4-event motifs are excluded from the 3e matrix.
        let total: u64 = m.iter().flatten().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn group_ratio_vs_baseline() {
        let a = PairGroupCounts { rpio: 50, cw: 9 };
        let b = PairGroupCounts { rpio: 100, cw: 10 };
        let (r, c) = a.ratio_vs(&b);
        assert!((r - 0.5).abs() < 1e-12);
        assert!((c - 0.9).abs() < 1e-12);
        let z = PairGroupCounts { rpio: 0, cw: 0 };
        assert_eq!(a.ratio_vs(&z), (0.0, 0.0));
    }
}
