//! [`ShardedEngine`] — exact counting over time-slice shards, in memory
//! or out of core.
//!
//! The engine splits the event log into contiguous time slices with the
//! [`tnm_graph::shard`] planner, materializes each slice (plus its
//! equal-timestamp left pad and ΔW/duration-aware trailing halo) as an
//! independent [`TemporalGraph`](tnm_graph::TemporalGraph), and counts
//! each shard with the shared walker — launching walks **only from the
//! shard's owned start events**, which partitions the instance space
//! exactly: every instance is counted in precisely one shard, so totals
//! match the serial engines bit for bit
//! (`tests/engine_equivalence.rs`).
//!
//! Two execution axes:
//!
//! * **Residency.** By default evicted shards rematerialize from the
//!   parent's buffer and at most one shard is resident beyond the
//!   parent. With [`ShardedEngine::with_max_resident`] the store runs in
//!   **spill mode**: every shard is serialized to disk up front and
//!   (re)loaded under the budget, so the engine's working set stays at
//!   `max_resident_shards × (shard events + pad + halo)` events no
//!   matter how large the log is — the out-of-core regime the paper's
//!   scaling discussion calls for.
//! * **Threads.** Within a shard, counting reuses the work-stealing
//!   executor of [`ParallelEngine`](crate::engine::ParallelEngine)
//!   (atomic cursor over the owned starts, per-worker tables merged at
//!   join). Shards themselves are processed sequentially — that is what
//!   keeps residency bounded.
//!
//! ## Exactness at the boundaries
//!
//! A shard answers every time-windowed query an instance evaluation
//! needs (candidates, consecutive-events counts, constrained-freshness
//! counts) identically to the parent, because its materialized range
//! covers the full closed interval an owned walk can reach (see
//! [`tnm_graph::shard`]). The one graph-global predicate — **static
//! inducedness**, which asks whether an edge exists anywhere in the
//! timeline — is stripped from the per-shard walk and re-checked against
//! the parent graph through [`Shard::to_global`](tnm_graph::Shard)
//! index translation. Per-shard [`WindowIndex`]es are built directly
//! rather than through the global cache: shard graphs are transient, and
//! letting them churn the LRU would evict the long-lived parent indexes
//! other engines share.

mod driver;

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::{CountEngine, EngineCaps, ParallelEngine, WindowedEngine};
use tnm_graph::shard::{plan_shards, ShardGoal, ShardStore};
use tnm_graph::TemporalGraph;

/// Default target for owned start events per shard (CLI
/// `--engine sharded` without `--shard-events`).
pub const DEFAULT_SHARD_EVENTS: usize = 16_384;

/// Tuning of the sharded executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Target owned start events per shard (clamped to at least 1).
    pub shard_events: usize,
    /// `0` = in-memory (evicted shards rematerialize from the parent);
    /// `n > 0` = spill mode with at most `n` shards resident.
    pub max_resident_shards: usize,
    /// Worker threads for the within-shard work-stealing loop.
    pub threads: usize,
}

/// Observability of one sharded run, for memory-bound assertions in
/// tests and benches. The residency high-water mark is read from the
/// obs registry (`shard.resident_events` gauge peak) — this struct
/// carries only the run's plan geometry and backing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedRunStats {
    /// Shards the plan produced.
    pub shards: usize,
    /// Largest materialized shard (owned + pad + halo events).
    pub max_shard_events: usize,
    /// True when the run (re)loaded shards from disk.
    pub spilled: bool,
}

/// Exact sharded counting engine. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedEngine {
    config: ShardedConfig,
}

impl ShardedEngine {
    /// An in-memory sharded engine with the given owned-events-per-shard
    /// target.
    pub fn new(shard_events: usize) -> Self {
        ShardedEngine {
            config: ShardedConfig {
                shard_events: shard_events.max(1),
                max_resident_shards: 0,
                threads: 1,
            },
        }
    }

    /// Enables spill mode: shards are serialized to a temporary
    /// directory and at most `max_resident` (≥ 1) stay loaded
    /// (chainable).
    pub fn with_max_resident(mut self, max_resident: usize) -> Self {
        self.config.max_resident_shards = max_resident.max(1);
        self
    }

    /// Sets the within-shard worker thread count (chainable).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    fn plan(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> tnm_graph::shard::ShardPlan {
        plan_shards(
            graph,
            cfg.admissible_reach(graph),
            ShardGoal::EventsPerShard(self.config.shard_events),
        )
    }

    fn store<'g>(
        &self,
        graph: &'g TemporalGraph,
        plan: tnm_graph::shard::ShardPlan,
    ) -> ShardStore<'g> {
        if self.config.max_resident_shards > 0 {
            ShardStore::spill(graph, plan, self.config.max_resident_shards)
                .expect("sharded engine: spilling shards to disk failed")
        } else {
            // Sequential single-pass counting needs only the shard in
            // hand; a budget of 1 keeps in-memory runs lean too.
            ShardStore::in_memory_bounded(graph, plan, 1)
        }
    }

    /// Counts and reports the run's shard/residency statistics — what
    /// the out-of-core memory-bound tests assert against.
    pub fn count_with_stats(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
    ) -> (MotifCounts, ShardedRunStats) {
        let plan = self.plan(graph, cfg);
        // Degenerate plan — one shard spanning the whole log (unbounded
        // reach, or a shard target at or above the graph size).
        // Materializing it would clone the entire event buffer and
        // rebuild a full-size index for nothing: run the monolithic
        // engine on the parent instead, sharing the global index cache.
        if plan.len() == 1 {
            let counts = if self.config.threads > 1 {
                ParallelEngine::new(self.config.threads).count(graph, cfg)
            } else {
                WindowedEngine.count(graph, cfg)
            };
            let stats =
                ShardedRunStats { shards: 1, max_shard_events: graph.num_events(), spilled: false };
            return (counts, stats);
        }
        let mut store = self.store(graph, plan);
        let mut counts = MotifCounts::new();
        for id in 0..store.num_shards() {
            let _span = tnm_obs::span!("walk.shard", shard = id);
            let shard = store.get(id).expect("sharded engine: loading a shard failed");
            counts.merge(&driver::count_shard(graph, shard, cfg, self.config.threads));
        }
        let stats = ShardedRunStats {
            shards: store.num_shards(),
            max_shard_events: store.plan().max_shard_events(),
            spilled: store.is_spilled(),
        };
        (counts, stats)
    }
}

impl CountEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps {
            parallel: self.config.threads > 1,
            windowed_pruning: true,
            deterministic_enumeration: true,
            supports_signature_filter: true,
        }
    }

    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        self.count_with_stats(graph, cfg).0
    }

    /// Sequential per-shard enumeration with event indices translated
    /// back to the parent graph. Shards are visited in time order and
    /// owned starts in index order, so callbacks observe exactly the
    /// serial engines' deterministic enumeration order.
    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    ) {
        let plan = self.plan(graph, cfg);
        if plan.len() == 1 {
            // Same degenerate-plan shortcut as `count_with_stats`; the
            // windowed engine already produces the serial order this
            // engine guarantees.
            WindowedEngine.enumerate(graph, cfg, callback);
            return;
        }
        let mut store = self.store(graph, plan);
        for id in 0..store.num_shards() {
            let _span = tnm_obs::span!("walk.shard", shard = id);
            let shard = store.get(id).expect("sharded engine: loading a shard failed");
            driver::enumerate_shard(graph, shard, cfg, callback);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use crate::engine::{BacktrackEngine, WindowedEngine};
    use tnm_graph::TemporalGraphBuilder;

    /// Deterministic LCG graph with timestamp ties.
    fn lcg_graph(events: usize, nodes: u32, span: i64) -> tnm_graph::TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..events {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) % nodes as u64) as u32;
            let v = (u + 1 + ((x >> 13) % (nodes as u64 - 2)) as u32) % nodes;
            let t = (i as i64 * span) / events as i64;
            b.push(tnm_graph::Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_reference_across_shard_sizes() {
        let g = lcg_graph(300, 14, 400);
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(20, 45));
        let reference = BacktrackEngine.count(&g, &cfg);
        for shard_events in [1usize, 7, 64, 1000] {
            assert_eq!(
                ShardedEngine::new(shard_events).count(&g, &cfg),
                reference,
                "shard_events={shard_events}"
            );
        }
        assert_eq!(ShardedEngine::new(32).with_threads(4).count(&g, &cfg), reference);
        assert_eq!(ShardedEngine::new(48).with_max_resident(1).count(&g, &cfg), reference);
    }

    #[test]
    fn unbounded_timing_degenerates_to_one_shard() {
        let g = lcg_graph(120, 10, 200);
        let cfg = EnumConfig::new(3, 4);
        let (counts, stats) = ShardedEngine::new(16).count_with_stats(&g, &cfg);
        assert_eq!(stats.shards, 1);
        assert_eq!(counts, WindowedEngine.count(&g, &cfg));
    }

    #[test]
    fn enumeration_order_matches_serial_engines() {
        let g = lcg_graph(200, 12, 250);
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::only_w(30));
        let mut serial: Vec<Vec<u32>> = Vec::new();
        WindowedEngine.enumerate(&g, &cfg, &mut |inst| serial.push(inst.events.to_vec()));
        let mut sharded: Vec<Vec<u32>> = Vec::new();
        ShardedEngine::new(13).enumerate(&g, &cfg, &mut |inst| sharded.push(inst.events.to_vec()));
        assert_eq!(serial, sharded, "global event indices in identical order");
    }

    #[test]
    fn stats_expose_residency() {
        let _obs = tnm_obs::test_guard();
        tnm_obs::set_enabled(true);
        tnm_obs::global().reset();
        let g = lcg_graph(400, 16, 600);
        let cfg = EnumConfig::new(2, 2).with_timing(Timing::only_w(15));
        let engine = ShardedEngine::new(50).with_max_resident(2);
        let (_, stats) = engine.count_with_stats(&g, &cfg);
        let spill_snap = tnm_obs::global().snapshot();
        assert!(stats.spilled);
        assert!(stats.shards >= 8);
        // Residency high-water mark comes from the registry: with a
        // two-shard budget the gauge peak honors `2 × max_shard`.
        let peak = spill_snap.gauges["shard.resident_events"].peak as usize;
        assert!(peak <= 2 * stats.max_shard_events);
        tnm_obs::global().reset();
        let (_, in_mem) = ShardedEngine::new(50).count_with_stats(&g, &cfg);
        let mem_snap = tnm_obs::global().snapshot();
        tnm_obs::set_enabled(false);
        assert!(!in_mem.spilled);
        let peak = mem_snap.gauges["shard.resident_events"].peak as usize;
        assert!(peak <= in_mem.max_shard_events);
    }
}
