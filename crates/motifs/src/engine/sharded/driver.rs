//! Per-shard execution: serial and work-stealing walks over a shard's
//! owned start events, with the static-inducedness check routed back to
//! the parent graph.

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::parallel::{work_steal_count, DEFAULT_STEAL_CHUNK};
use crate::engine::walker::{Walker, WindowedCandidates};
use crate::induced::static_induced_ok;
use tnm_graph::shard::Shard;
use tnm_graph::window_index::WindowIndex;
use tnm_graph::{EventIdx, TemporalGraph};

/// The configuration a shard walk runs under: identical to the caller's
/// except that static inducedness is stripped — a time slice cannot
/// answer whole-timeline `has_edge` queries, so that check happens
/// against the parent at emission ([`induced_in_parent`]).
fn shard_local_config(cfg: &EnumConfig) -> EnumConfig {
    let mut local = cfg.clone();
    local.static_induced = false;
    local
}

/// Evaluates static inducedness of a shard-local instance against the
/// **parent** graph by translating its event indices.
fn induced_in_parent(parent: &TemporalGraph, shard: &Shard, local_events: &[EventIdx]) -> bool {
    const STACK_EVENTS: usize = 16;
    let n = local_events.len();
    if n <= STACK_EVENTS {
        let mut buf = [0 as EventIdx; STACK_EVENTS];
        for (b, &l) in buf.iter_mut().zip(local_events) {
            *b = shard.to_global(l);
        }
        static_induced_ok(parent, &buf[..n])
    } else {
        let global: Vec<EventIdx> = local_events.iter().map(|&l| shard.to_global(l)).collect();
        static_induced_ok(parent, &global)
    }
}

/// Counts one shard's owned instances, serially or via the shared
/// work-stealing executor when `threads > 1`.
pub(super) fn count_shard(
    parent: &TemporalGraph,
    shard: &Shard,
    cfg: &EnumConfig,
    threads: usize,
) -> MotifCounts {
    let local_cfg = shard_local_config(cfg);
    let index = WindowIndex::build(shard.graph());
    let own = shard.own_local();
    let need_induced = cfg.static_induced;
    let tally = |counts: &mut MotifCounts, inst: &MotifInstance<'_>| {
        if need_induced && !induced_in_parent(parent, shard, inst.events) {
            return;
        }
        counts.add(inst.signature, 1);
    };
    if threads > 1 && own.len() > 1 {
        work_steal_count(
            shard.graph(),
            &local_cfg,
            own,
            threads,
            DEFAULT_STEAL_CHUNK,
            || WindowedCandidates::new(&index),
            tally,
        )
    } else {
        let mut counts = MotifCounts::new();
        let mut walker = Walker::new(shard.graph(), &local_cfg, WindowedCandidates::new(&index));
        walker.run_range(own, |inst| tally(&mut counts, inst));
        counts
    }
}

/// Enumerates one shard's owned instances in serial start order,
/// handing the callback instances whose event indices are translated to
/// the parent graph.
pub(super) fn enumerate_shard(
    parent: &TemporalGraph,
    shard: &Shard,
    cfg: &EnumConfig,
    callback: &mut dyn FnMut(&MotifInstance<'_>),
) {
    let local_cfg = shard_local_config(cfg);
    let index = WindowIndex::build(shard.graph());
    let need_induced = cfg.static_induced;
    let mut global = vec![0 as EventIdx; cfg.num_events];
    let mut walker = Walker::new(shard.graph(), &local_cfg, WindowedCandidates::new(&index));
    walker.run_range(shard.own_local(), |inst| {
        if need_induced && !induced_in_parent(parent, shard, inst.events) {
            return;
        }
        for (g, &l) in global.iter_mut().zip(inst.events) {
            *g = shard.to_global(l);
        }
        let translated =
            MotifInstance { events: &global[..inst.events.len()], signature: inst.signature };
        callback(&translated);
    });
}
