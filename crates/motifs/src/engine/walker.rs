//! The shared backtracking walker, generic over candidate generation.
//!
//! Every engine drives the same depth-first walk over time-ordered,
//! single-component event sequences: what varies is only **where the
//! candidate events come from** at each extension step. That seam is the
//! [`CandidateSource`] trait — [`NodeListCandidates`] scans the graph's
//! plain node index (the original behaviour), while
//! [`WindowedCandidates`] answers the same query from a prebuilt
//! [`WindowIndex`] with binary searches on inline timestamps. Keeping the
//! walk itself shared is what makes the engines provably equivalent: the
//! emission filters, signature canonicalisation, and ordering rules are
//! one piece of code.
//!
//! Correctness relies on three facts:
//!
//! * instances are *sets* of events visited in strictly increasing time
//!   order, so each set is enumerated exactly once;
//! * events with equal timestamps never co-occur in a motif (the paper's
//!   total-ordering rule), enforced by strict `>` on timestamps;
//! * candidate events are drawn from the node set of the partial motif,
//!   which is exactly the "grows as a single component" rule.

use crate::consecutive::{consecutive_ok, ConsecutiveScratch};
use crate::constrained::constrained_ok;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::induced::static_induced_ok;
use crate::notation::MotifSignature;
use tnm_graph::window_index::WindowIndex;
use tnm_graph::{EventIdx, NodeId, TemporalGraph, Time};

/// Supplies the candidate events adjacent to the current node set with
/// time in `(t_last, bound]`. Implementations must append **every**
/// qualifying event exactly once, **sorted ascending by event index** —
/// the walker consumes the list as-is, so engines are interchangeable
/// only because this contract is exact. (Per-node event lists are
/// already index-sorted — events are stored in time order — so sources
/// either sort a concatenation or merge sorted runs.)
pub trait CandidateSource {
    /// Appends candidates for each node in `nodes` to `out`, sorted and
    /// deduplicated.
    fn gather(
        &self,
        graph: &TemporalGraph,
        nodes: &[NodeId],
        t_last: Time,
        bound: Option<Time>,
        out: &mut Vec<EventIdx>,
    );
}

/// Candidate generation over [`TemporalGraph`]'s plain node index: one
/// `partition_point` for the lower bound, then a linear scan until the
/// upper bound breaks, then a sort + dedup of the concatenation. This is
/// the seed repo's original strategy, with the per-probe time checks
/// resolved against the dense SoA time column (8-byte rows) instead of
/// chasing `events[i].time` through 24-byte structs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeListCandidates;

impl CandidateSource for NodeListCandidates {
    fn gather(
        &self,
        graph: &TemporalGraph,
        nodes: &[NodeId],
        t_last: Time,
        bound: Option<Time>,
        out: &mut Vec<EventIdx>,
    ) {
        let times = graph.times();
        for &node in nodes {
            let list = graph.node_events(node);
            let start = list.partition_point(|&i| times[i as usize] <= t_last);
            for &i in &list[start..] {
                if let Some(b) = bound {
                    if times[i as usize] > b {
                        break;
                    }
                }
                out.push(i);
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Candidate generation over a prebuilt [`WindowIndex`]: both window
/// endpoints resolve with binary searches on dense inline timestamps,
/// each node answers with a ready-made **sorted run** of event indices,
/// and the runs are k-way merged (k = current motif nodes, ≤ 4) with
/// inline deduplication — replacing the `O(c log c)` per-descend sort of
/// the node-list strategy with an `O(c·k)` merge.
#[derive(Debug, Clone, Copy)]
pub struct WindowedCandidates<'ix> {
    index: &'ix WindowIndex,
}

impl<'ix> WindowedCandidates<'ix> {
    /// Wraps a prebuilt index (shareable across worker threads).
    pub fn new(index: &'ix WindowIndex) -> Self {
        WindowedCandidates { index }
    }
}

impl CandidateSource for WindowedCandidates<'_> {
    fn gather(
        &self,
        _graph: &TemporalGraph,
        nodes: &[NodeId],
        t_last: Time,
        bound: Option<Time>,
        out: &mut Vec<EventIdx>,
    ) {
        if nodes.len() > MAX_RUNS {
            // Digit-pair signatures cap motifs at 10 nodes, so this is
            // unreachable from any paper config; stay correct anyway.
            for &node in nodes {
                out.extend_from_slice(self.index.events_in(node, t_last, bound));
            }
            out.sort_unstable();
            out.dedup();
            return;
        }
        // A fixed-size run table keeps the merge allocation-free.
        let mut runs = [[].as_slice(); MAX_RUNS];
        let mut k = 0;
        for &node in nodes {
            let run = self.index.events_in(node, t_last, bound);
            if !run.is_empty() {
                runs[k] = run;
                k += 1;
            }
        }
        merge_sorted_runs(&mut runs[..k], out);
    }
}

/// Upper bound on simultaneously merged runs (motif node budget; the
/// digit-pair notation itself caps signatures at ≤ 10 nodes).
const MAX_RUNS: usize = 10;

/// Merges ascending runs into `out`, deduplicating across runs. Each
/// event index appears in at most two runs (its endpoints), and runs are
/// few and short, so the simple head-scan merge beats both a heap and a
/// concat-sort.
fn merge_sorted_runs(runs: &mut [&[EventIdx]], out: &mut Vec<EventIdx>) {
    match runs {
        [] => {}
        [only] => out.extend_from_slice(only),
        [a, b] => {
            // Two-pointer fast path: the overwhelmingly common case
            // (most walks hold 2–3 digits; one run is often empty).
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                let (x, y) = (a[i], b[j]);
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => {
                        out.push(x);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(y);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(x);
                        i += 1;
                        j += 1;
                    }
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
        }
        runs => loop {
            let mut min: Option<EventIdx> = None;
            for r in runs.iter() {
                if let Some(&head) = r.first() {
                    min = Some(min.map_or(head, |m: EventIdx| m.min(head)));
                }
            }
            let Some(min) = min else { break };
            out.push(min);
            for r in runs.iter_mut() {
                if r.first() == Some(&min) {
                    *r = &r[1..];
                }
            }
        },
    }
}

/// Union-of-targets signature prefix filter for batch walks.
///
/// [`EnumConfig::signature_filter`] prunes a walk to one target's pair
/// prefix; a batch group of targeted configs shares one walk, so the
/// walk must keep any partial sequence that is a prefix of *at least
/// one* member's target. The filter tracks, per depth, the set of
/// targets whose first `depth` pairs match the current partial sequence
/// (a bitmask over targets); a push is rejected as soon as that set
/// empties. Backtracking needs no undo — level `d + 1` is recomputed
/// from level `d` on every push.
#[derive(Debug, Clone)]
pub struct PrefixFilter {
    targets: Vec<Vec<(u8, u8)>>,
    /// `alive[d]` = bitmask (64-bit words) of targets whose first `d`
    /// pairs match the current partial sequence; `alive[0]` = all.
    alive: Vec<Vec<u64>>,
}

impl PrefixFilter {
    /// Builds a filter over the union of `targets` for a walk of
    /// `num_events` events. Returns `None` when the list is empty or any
    /// target's length differs from the walk depth (such a config can
    /// never emit and must not prune its group-mates).
    pub fn new<'a>(
        targets: impl IntoIterator<Item = &'a MotifSignature>,
        num_events: usize,
    ) -> Option<Self> {
        let targets: Vec<Vec<(u8, u8)>> = targets.into_iter().map(|t| t.pairs().to_vec()).collect();
        if targets.is_empty() || targets.iter().any(|t| t.len() != num_events) {
            return None;
        }
        let words = targets.len().div_ceil(64);
        let mut alive = vec![vec![0u64; words]; num_events + 1];
        for i in 0..targets.len() {
            alive[0][i / 64] |= 1 << (i % 64);
        }
        Some(PrefixFilter { targets, alive })
    }

    /// Filters the push of `pair` at `depth`: recomputes level
    /// `depth + 1` from level `depth` and reports whether any target
    /// still matches.
    fn advance(&mut self, depth: usize, pair: (u8, u8)) -> bool {
        let (lo, hi) = self.alive.split_at_mut(depth + 1);
        let prev = &lo[depth];
        let next = &mut hi[0];
        next.iter_mut().for_each(|w| *w = 0);
        let mut any = false;
        for (ti, t) in self.targets.iter().enumerate() {
            if prev[ti / 64] >> (ti % 64) & 1 == 1 && t[depth] == pair {
                next[ti / 64] |= 1 << (ti % 64);
                any = true;
            }
        }
        any
    }
}

/// One depth-first enumeration state machine. Reusable across start
/// ranges; create one per worker thread.
pub struct Walker<'g, C: CandidateSource> {
    graph: &'g TemporalGraph,
    cfg: &'g EnumConfig,
    source: C,
    prefix: Option<PrefixFilter>,
    seq: Vec<EventIdx>,
    digits: Vec<NodeId>,
    pairs: Vec<(u8, u8)>,
    cand_bufs: Vec<Vec<EventIdx>>,
    scratch: ConsecutiveScratch,
    /// `tnm_obs::enabled()` captured at construction: per-candidate
    /// instrumentation is one branch on a plain bool, and the tallies
    /// below stay thread-local until [`Drop`] flushes them to the
    /// global registry (`engine.events_scanned` /
    /// `engine.candidates_pruned` / `engine.instances_emitted`).
    obs: bool,
    scanned: u64,
    pruned: u64,
    emitted: u64,
}

impl<'g, C: CandidateSource> Walker<'g, C> {
    /// Builds a walker for one `(graph, config)` pair.
    pub fn new(graph: &'g TemporalGraph, cfg: &'g EnumConfig, source: C) -> Self {
        let k = cfg.num_events;
        Walker {
            graph,
            cfg,
            source,
            prefix: None,
            seq: Vec::with_capacity(k),
            digits: Vec::with_capacity(cfg.max_nodes),
            pairs: Vec::with_capacity(k),
            cand_bufs: (0..k).map(|_| Vec::new()).collect(),
            scratch: ConsecutiveScratch::new(),
            obs: tnm_obs::enabled(),
            scanned: 0,
            pruned: 0,
            emitted: 0,
        }
    }

    /// Attaches a union-of-targets [`PrefixFilter`] (chainable). Used by
    /// the batch executor when every group member targets a signature —
    /// the shared walk then prunes to the union of their pair prefixes.
    pub fn with_prefix_filter(mut self, filter: PrefixFilter) -> Self {
        self.prefix = Some(filter);
        self
    }

    /// Appends `node` as a fresh digit, returning it.
    #[inline]
    fn fresh_digit(&mut self, node: NodeId) -> u8 {
        self.digits.push(node);
        (self.digits.len() - 1) as u8
    }

    /// Attempts to push `idx`; returns how many fresh digits were added
    /// (`None` if rejected by node budget or the signature filter).
    fn try_push(&mut self, idx: EventIdx) -> Option<usize> {
        let e = self.graph.event(idx);
        // One scan of the digit list resolves both endpoints; the hits
        // are reused for the node-budget check and the digit mapping
        // (self-loops cannot occur, so the endpoints are distinct and a
        // fresh src never shadows the dst lookup).
        let mut src_digit = None;
        let mut dst_digit = None;
        for (i, &n) in self.digits.iter().enumerate() {
            if n == e.src {
                src_digit = Some(i as u8);
            } else if n == e.dst {
                dst_digit = Some(i as u8);
            }
        }
        let new_needed = src_digit.is_none() as usize + dst_digit.is_none() as usize;
        if self.digits.len() + new_needed > self.cfg.max_nodes {
            return None;
        }
        let depth = self.seq.len();
        let a = src_digit.unwrap_or_else(|| self.fresh_digit(e.src));
        let b = dst_digit.unwrap_or_else(|| self.fresh_digit(e.dst));
        let added = new_needed;
        if let Some(target) = &self.cfg.signature_filter {
            if target.pairs()[depth] != (a, b) {
                self.digits.truncate(self.digits.len() - added);
                return None;
            }
        }
        if let Some(prefix) = &mut self.prefix {
            if !prefix.advance(depth, (a, b)) {
                self.digits.truncate(self.digits.len() - added);
                return None;
            }
        }
        self.pairs.push((a, b));
        self.seq.push(idx);
        Some(added)
    }

    fn pop(&mut self, added: usize) {
        self.seq.pop();
        self.pairs.pop();
        self.digits.truncate(self.digits.len() - added);
    }

    fn descend<F: FnMut(&MotifInstance<'_>)>(&mut self, emit: &mut F) {
        if self.seq.len() == self.cfg.num_events {
            self.try_emit(emit);
            return;
        }
        let first = self.graph.event(self.seq[0]);
        let last = self.graph.event(*self.seq.last().expect("non-empty seq"));
        let t_last = last.time;
        let c_base = if self.cfg.duration_aware { last.end_time() } else { last.time };
        let bound: Option<Time> = match (self.cfg.timing.delta_c, self.cfg.timing.delta_w) {
            (Some(c), Some(w)) => Some((c_base + c).min(first.time + w)),
            (Some(c), None) => Some(c_base + c),
            (None, Some(w)) => Some(first.time + w),
            (None, None) => None,
        };
        if let Some(b) = bound {
            if b <= t_last {
                return; // no strictly-later event can qualify
            }
        }
        // Gather candidate events adjacent to the current node set with
        // time in (t_last, bound]; the source returns them sorted and
        // deduplicated (see the `CandidateSource` contract).
        let depth = self.seq.len();
        let mut cands = std::mem::take(&mut self.cand_bufs[depth]);
        cands.clear();
        self.source.gather(self.graph, &self.digits, t_last, bound, &mut cands);
        debug_assert!(cands.windows(2).all(|w| w[0] < w[1]), "candidates sorted+deduped");
        let mut pos = 0;
        while pos < cands.len() {
            let idx = cands[pos];
            if self.obs {
                self.scanned += 1;
            }
            if let Some(added) = self.try_push(idx) {
                self.descend(emit);
                self.pop(added);
            } else if self.obs {
                self.pruned += 1;
            }
            pos += 1;
        }
        self.cand_bufs[depth] = cands;
    }

    fn try_emit<F: FnMut(&MotifInstance<'_>)>(&mut self, emit: &mut F) {
        if self.digits.len() < self.cfg.min_nodes {
            return;
        }
        if self.cfg.consecutive_events && !consecutive_ok(self.graph, &self.seq, &mut self.scratch)
        {
            return;
        }
        if self.cfg.constrained_dynamic && !constrained_ok(self.graph, &self.seq) {
            return;
        }
        if self.cfg.static_induced && !static_induced_ok(self.graph, &self.seq) {
            return;
        }
        let signature =
            MotifSignature::from_pairs(&self.pairs).expect("walker builds canonical pairs");
        let inst = MotifInstance { events: &self.seq, signature };
        emit(&inst);
        if self.obs {
            self.emitted += 1;
        }
    }

    /// Walks every instance whose first event index lies in `start_range`.
    pub fn run_range<F: FnMut(&MotifInstance<'_>)>(
        &mut self,
        start_range: std::ops::Range<usize>,
        mut emit: F,
    ) {
        self.run_range_by_ref(start_range, &mut emit);
    }

    /// `run_range` taking the callback by reference (dyn-friendly).
    pub fn run_range_by_ref<F: FnMut(&MotifInstance<'_>) + ?Sized>(
        &mut self,
        start_range: std::ops::Range<usize>,
        emit: &mut F,
    ) {
        for start in start_range {
            debug_assert!(self.seq.is_empty() && self.digits.is_empty());
            if self.obs {
                self.scanned += 1;
            }
            if let Some(added) = self.try_push(start as EventIdx) {
                self.descend(&mut |inst| emit(inst));
                self.pop(added);
            } else if self.obs {
                self.pruned += 1;
            }
        }
    }
}

impl<C: CandidateSource> Drop for Walker<'_, C> {
    fn drop(&mut self) {
        // Flush the thread-local tallies in one registry round-trip per
        // walker lifetime — never per event.
        if self.obs && (self.scanned | self.pruned | self.emitted) != 0 {
            let reg = tnm_obs::global();
            reg.counter("engine.events_scanned").add(self.scanned);
            reg.counter("engine.candidates_pruned").add(self.pruned);
            reg.counter("engine.instances_emitted").add(self.emitted);
        }
    }
}
