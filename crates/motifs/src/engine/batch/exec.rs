//! Shared-walk execution for batch walk groups.
//!
//! One walk under the group's widest timing visits a superset of every
//! member's instances; membership of an individual instance in a
//! member's answer decomposes into
//!
//! * a **structural** part — signature node count against the member's
//!   node bounds, signature-target equality — that depends only on the
//!   instance's canonical signature, so it is computed once per
//!   *distinct signature* and cached ([`GroupAcc::accept`]);
//! * a **timing** part — first-to-last span against the member's ΔW,
//!   maximum consecutive gap against its ΔC — computed once per
//!   *instance* and compared against each structurally accepted
//!   member's bounds. When no member's timing is tighter than the
//!   walk's, the walk bound already proved admissibility and the scan
//!   is skipped entirely.
//!
//! The restriction flags (consecutive/induced/constrained/duration) are
//! group-key equal, so the shared walker applies them exactly as each
//! member's own walk would. The parallel driver reuses the
//! work-stealing executor with a per-worker `(accumulator, walker)`
//! pair — the same shape as [`work_steal_count`]
//! (crate::engine::parallel) — and merges per-slot tables after join
//! (u64 additions commute, so scheduling never leaks into results).

use std::collections::HashMap;

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::parallel::{work_steal_map, DEFAULT_STEAL_CHUNK};
use crate::engine::walker::{
    CandidateSource, NodeListCandidates, PrefixFilter, Walker, WindowedCandidates,
};
use crate::notation::MotifSignature;
use tnm_graph::index_cache::global_index_cache;
use tnm_graph::{TemporalGraph, Time};

use super::WalkDriver;

/// One member's emission-time predicate, with unbounded windows mapped
/// to `Time::MAX` so the checks are branch-free comparisons.
struct MemberMask {
    slot: usize,
    min_nodes: usize,
    max_nodes: usize,
    delta_c: Time,
    delta_w: Time,
    target: Option<MotifSignature>,
}

fn masks_of(cfgs: &[EnumConfig], members: &[usize]) -> Vec<MemberMask> {
    members
        .iter()
        .map(|&i| {
            let c = &cfgs[i];
            MemberMask {
                slot: i,
                min_nodes: c.min_nodes,
                max_nodes: c.max_nodes,
                delta_c: c.timing.delta_c.unwrap_or(Time::MAX),
                delta_w: c.timing.delta_w.unwrap_or(Time::MAX),
                target: c.signature_filter,
            }
        })
        .collect()
}

/// Whether any member's window is tighter than the walk's — if not,
/// every visited instance is admissible for every structurally accepted
/// member and the per-instance span/gap scan can be skipped.
fn any_tighter(masks: &[MemberMask], walk_cfg: &EnumConfig) -> bool {
    let walk_c = walk_cfg.timing.delta_c.unwrap_or(Time::MAX);
    let walk_w = walk_cfg.timing.delta_w.unwrap_or(Time::MAX);
    masks.iter().any(|m| m.delta_c < walk_c || m.delta_w < walk_w)
}

fn structural_ok(mask: &MemberMask, sig: MotifSignature) -> bool {
    let n = sig.num_nodes();
    n >= mask.min_nodes && n <= mask.max_nodes && mask.target.is_none_or(|t| t == sig)
}

/// `(span, max consecutive gap)` of one instance, with gaps measured
/// from the previous event's end when the group is duration-aware —
/// mirroring the walker's own bound arithmetic exactly.
fn timing_of(
    graph: &TemporalGraph,
    events: &[tnm_graph::EventIdx],
    duration_aware: bool,
) -> (Time, Time) {
    let first = graph.event(events[0]);
    let mut prev_base = if duration_aware { first.end_time() } else { first.time };
    let mut last_t = first.time;
    let mut max_gap: Time = 0;
    for &i in &events[1..] {
        let e = graph.event(i);
        max_gap = max_gap.max(e.time - prev_base);
        prev_base = if duration_aware { e.end_time() } else { e.time };
        last_t = e.time;
    }
    (last_t - first.time, max_gap)
}

/// Per-worker accumulator: one count table per member plus the lazy
/// per-signature structural acceptance cache.
struct GroupAcc {
    counts: Vec<MotifCounts>,
    accept: HashMap<MotifSignature, Vec<u32>>,
}

impl GroupAcc {
    fn new(n_members: usize) -> Self {
        GroupAcc {
            counts: (0..n_members).map(|_| MotifCounts::new()).collect(),
            accept: HashMap::new(),
        }
    }
}

fn tally(
    graph: &TemporalGraph,
    masks: &[MemberMask],
    duration_aware: bool,
    check_timing: bool,
    acc: &mut GroupAcc,
    inst: &MotifInstance<'_>,
) {
    let sig = inst.signature;
    let accepted = acc.accept.entry(sig).or_insert_with(|| {
        masks
            .iter()
            .enumerate()
            .filter(|(_, m)| structural_ok(m, sig))
            .map(|(i, _)| i as u32)
            .collect()
    });
    if accepted.is_empty() {
        return;
    }
    if !check_timing {
        for &mi in accepted.iter() {
            acc.counts[mi as usize].add(sig, 1);
        }
        return;
    }
    let (span, max_gap) = timing_of(graph, inst.events, duration_aware);
    for &mi in accepted.iter() {
        let m = &masks[mi as usize];
        if max_gap <= m.delta_c && span <= m.delta_w {
            acc.counts[mi as usize].add(sig, 1);
        }
    }
}

fn make_walker<'g, C: CandidateSource>(
    graph: &'g TemporalGraph,
    walk_cfg: &'g EnumConfig,
    prefix: Option<&PrefixFilter>,
    source: C,
) -> Walker<'g, C> {
    let walker = Walker::new(graph, walk_cfg, source);
    match prefix {
        Some(pf) => walker.with_prefix_filter(pf.clone()),
        None => walker,
    }
}

/// Counts one walk group: a single traversal under `walk_cfg`, with
/// per-member masks folding into `out[member]`.
#[allow(clippy::too_many_arguments)]
pub(super) fn count_walk_group(
    graph: &TemporalGraph,
    cfgs: &[EnumConfig],
    members: &[usize],
    walk_cfg: &EnumConfig,
    prefix_targets: Option<&[MotifSignature]>,
    driver: WalkDriver,
    threads: usize,
    out: &mut [MotifCounts],
) {
    let masks = masks_of(cfgs, members);
    let check_timing = any_tighter(&masks, walk_cfg);
    let duration_aware = walk_cfg.duration_aware;
    let prefix = prefix_targets
        .map(|t| PrefixFilter::new(t.iter(), walk_cfg.num_events).expect("planner validated"));
    let m = graph.num_events();
    let merged: GroupAcc = match driver {
        WalkDriver::SerialNodeList => {
            let mut acc = GroupAcc::new(masks.len());
            let mut walker = make_walker(graph, walk_cfg, prefix.as_ref(), NodeListCandidates);
            walker.run_range(0..m, |inst| {
                tally(graph, &masks, duration_aware, check_timing, &mut acc, inst)
            });
            acc
        }
        WalkDriver::SerialWindowed => {
            let index = global_index_cache().get_or_build(graph);
            let mut acc = GroupAcc::new(masks.len());
            let mut walker =
                make_walker(graph, walk_cfg, prefix.as_ref(), WindowedCandidates::new(&index));
            walker.run_range(0..m, |inst| {
                tally(graph, &masks, duration_aware, check_timing, &mut acc, inst)
            });
            acc
        }
        WalkDriver::Parallel => {
            let index = global_index_cache().get_or_build(graph);
            let locals = work_steal_map(
                m,
                threads,
                DEFAULT_STEAL_CHUNK,
                || {
                    (
                        GroupAcc::new(masks.len()),
                        make_walker(
                            graph,
                            walk_cfg,
                            prefix.as_ref(),
                            WindowedCandidates::new(&index),
                        ),
                    )
                },
                |state, claimed| {
                    let (acc, walker) = state;
                    walker.run_range(claimed, |inst| {
                        tally(graph, &masks, duration_aware, check_timing, acc, inst)
                    });
                },
            );
            let mut merged = GroupAcc::new(masks.len());
            for (local, _walker) in &locals {
                for (slot, counts) in local.counts.iter().enumerate() {
                    merged.counts[slot].merge(counts);
                }
            }
            merged
        }
    };
    for (pos, mask) in masks.iter().enumerate() {
        out[mask.slot].merge(&merged.counts[pos]);
    }
}

/// Enumerates one walk group serially over the window index, invoking
/// `callback(config_index, instance)` for each member that admits each
/// visited instance (ascending member order within one instance — the
/// members were planned in ascending config order).
pub(super) fn enumerate_walk_group<F: FnMut(usize, &MotifInstance<'_>)>(
    graph: &TemporalGraph,
    cfgs: &[EnumConfig],
    members: &[usize],
    walk_cfg: &EnumConfig,
    prefix_targets: Option<&[MotifSignature]>,
    callback: &mut F,
) {
    let masks = masks_of(cfgs, members);
    let check_timing = any_tighter(&masks, walk_cfg);
    let duration_aware = walk_cfg.duration_aware;
    let prefix = prefix_targets
        .map(|t| PrefixFilter::new(t.iter(), walk_cfg.num_events).expect("planner validated"));
    let index = global_index_cache().get_or_build(graph);
    let mut accept: HashMap<MotifSignature, Vec<u32>> = HashMap::new();
    let mut walker = make_walker(graph, walk_cfg, prefix.as_ref(), WindowedCandidates::new(&index));
    walker.run_range(0..graph.num_events(), |inst| {
        let sig = inst.signature;
        let accepted = accept.entry(sig).or_insert_with(|| {
            masks
                .iter()
                .enumerate()
                .filter(|(_, m)| structural_ok(m, sig))
                .map(|(i, _)| i as u32)
                .collect()
        });
        if accepted.is_empty() {
            return;
        }
        let timing =
            if check_timing { Some(timing_of(graph, inst.events, duration_aware)) } else { None };
        for &mi in accepted.iter() {
            let m = &masks[mi as usize];
            if let Some((span, max_gap)) = timing {
                if max_gap > m.delta_c || span > m.delta_w {
                    continue;
                }
            }
            callback(m.slot, inst);
        }
    });
}
