//! Batch multi-query planning: answer many configurations in few
//! traversals.
//!
//! Every figure/table reproduction and every production-shaped workload
//! asks many questions of one graph — all 36 Paranjape 3-event motifs,
//! ΔW/ΔC-ratio sweeps, restricted-vs-unrestricted model comparisons —
//! yet a naive loop pays a full independent traversal per
//! [`EnumConfig`]. Both traversal families already do the work for the
//! whole batch:
//!
//! * a **walk** with the *widest* timing of a group visits a superset
//!   of every member's instances — the members' tighter ΔC/ΔW windows,
//!   node bounds, and signature targets are per-instance predicates,
//!   not walk shapes;
//! * the **stream DP** pass computes all 2-/3-node sequence counts at
//!   once — a single config's answer was always a final projection of
//!   the pair/star/triad tables.
//!
//! [`BatchPlanner`] exploits both: it groups configs by shared walk
//! shape (identical restriction flags, event budget, and node budget —
//! the parts that change *which* sequences a walk may extend or emit)
//! and answers each group in **one traversal**, demoting the per-config
//! differences to emission-time masks:
//!
//! * members' ΔC/ΔW windows → once-per-instance span / max-gap checks
//!   against the group walk's component-wise widest timing;
//! * members' `min_nodes` / signature targets → a per-signature
//!   acceptance set, computed lazily once per distinct signature;
//! * when *every* member targets a signature, the shared walk prunes to
//!   the union of their pair prefixes via
//!   [`PrefixFilter`](crate::engine::walker::PrefixFilter).
//!
//! Stream-eligible ΔW-only configs group by `(ΔW, num_events)` instead
//! and share a single [`StreamEngine::spectrum`] DP pass, each member's
//! counts projected from the shared tables — so the canonical "all 36
//! Paranjape motifs" batch costs one DP pass plus 36 projections
//! instead of 36 passes.
//!
//! Two guardrails keep a plan from ever being *worse* than the loop:
//!
//! * a config only joins a walk group if the merged timing still bounds
//!   the admissible span (unless every member is individually
//!   unbounded) — merging `only_c` with `only_w` configs would widen
//!   the walk to *unbounded* timing, which can cost asymptotically more
//!   than both separate walks;
//! * kinds whose execution is not an in-process traversal
//!   ([sharded](crate::engine::ShardedEngine),
//!   [distributed](crate::engine::DistributedEngine), sampling) run
//!   each config solo with that engine — their per-run setup (shard
//!   spill, worker processes, seeded draws) is not shareable across
//!   different configs, and estimates must stay bit-identical to the
//!   per-config API.
//!
//! Entry points: [`count_batch`] (auto-selected engines),
//! [`EngineKind::count_batch`] (explicit kind), and [`enumerate_batch`]
//! (serial shared-walk enumeration with a `(config index, instance)`
//! callback — what the fig5 driver uses to histogram three timing
//! regimes in one walk). Results are bit-identical to per-config
//! [`EngineKind::count`] calls, enforced by `tests/batch_planner.rs`.

mod exec;

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::stream::StreamEngine;
use crate::engine::walker::PrefixFilter;
use crate::engine::{auto_select, EngineKind};
use crate::notation::MotifSignature;
use tnm_graph::{TemporalGraph, Time};

/// Counts every configuration in `cfgs` against `graph`, sharing
/// traversals across compatible configs, with engines auto-selected per
/// group (equivalent to [`EngineKind::Auto`]`.count_batch(..)`).
/// `out[i]` is bit-identical to `EngineKind::Auto.count(graph,
/// &cfgs[i], threads)`.
pub fn count_batch(graph: &TemporalGraph, cfgs: &[EnumConfig], threads: usize) -> Vec<MotifCounts> {
    EngineKind::Auto.count_batch(graph, cfgs, threads)
}

/// Enumerates every configuration in `cfgs` against `graph` through
/// shared serial walks, invoking `callback(config_index, instance)` for
/// each instance each config admits. Each config receives exactly the
/// instances its own [`enumerate`](crate::engine::CountEngine::enumerate)
/// would, in the same deterministic start-event order; configs sharing
/// a group are interleaved instance-by-instance (ascending config index
/// within one instance).
pub fn enumerate_batch<F: FnMut(usize, &MotifInstance<'_>)>(
    graph: &TemporalGraph,
    cfgs: &[EnumConfig],
    mut callback: F,
) {
    // Planning with the windowed kind yields pure serial walk groups —
    // exactly what per-instance callbacks need (the stream fast path
    // has no instances to visit, and solo kinds delegate to walkers for
    // enumeration anyway).
    let plan = BatchPlanner::plan(graph, cfgs, EngineKind::Windowed, 1);
    for group in &plan.groups {
        match &group.exec {
            GroupExec::Walk { walk_cfg, prefix_targets, .. } => {
                exec::enumerate_walk_group(
                    graph,
                    cfgs,
                    &group.members,
                    walk_cfg,
                    prefix_targets.as_deref(),
                    &mut callback,
                );
            }
            _ => unreachable!("windowed planning produces only walk groups"),
        }
    }
}

/// Plans and executes a batch for an explicit engine kind; the
/// implementation behind [`EngineKind::count_batch`].
pub(crate) fn count_batch_with(
    graph: &TemporalGraph,
    cfgs: &[EnumConfig],
    kind: EngineKind,
    threads: usize,
) -> Vec<MotifCounts> {
    BatchPlanner::plan(graph, cfgs, kind, threads).execute(graph, cfgs, threads)
}

/// How a walk group drives its single traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkDriver {
    /// Serial walk over the plain node index ([`BacktrackEngine`]
    /// (crate::engine::BacktrackEngine) semantics).
    SerialNodeList,
    /// Serial walk over the shared [`WindowIndex`](tnm_graph::WindowIndex).
    SerialWindowed,
    /// Work-stealing workers over the shared window index.
    Parallel,
}

/// One planned group: the member config indices plus how their shared
/// traversal runs.
#[derive(Debug, Clone)]
struct PlanGroup {
    members: Vec<usize>,
    exec: GroupExec,
}

#[derive(Debug, Clone)]
enum GroupExec {
    /// One shared stream-DP pass; members project from the spectrum.
    Stream { delta_w: Time, num_events: usize },
    /// One shared walk under the group's widest timing; members filter
    /// per instance.
    Walk {
        walk_cfg: EnumConfig,
        driver: WalkDriver,
        /// Set when every member targets a signature: the shared walk
        /// prunes to the union of the targets' pair prefixes.
        prefix_targets: Option<Vec<MotifSignature>>,
    },
    /// Unshareable execution (sharded/distributed/sampling): the single
    /// member runs its own engine.
    Solo { kind: EngineKind },
}

/// The execution plan for one batch: groups of config indices, each
/// answered by one traversal (or one solo engine run). Produced by
/// [`BatchPlanner::plan`]; mostly useful for introspection — counting
/// callers go through [`count_batch`] / [`EngineKind::count_batch`].
#[derive(Debug, Clone)]
pub struct BatchPlan {
    groups: Vec<PlanGroup>,
    n_configs: usize,
}

impl BatchPlan {
    /// Number of planned groups — each is one traversal (walk or stream
    /// pass) or one solo engine run. The amortization claim in a
    /// nutshell: all 36 Paranjape 3-event motifs plan to **1**.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The member config indices of each group, in plan order.
    pub fn group_members(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.groups.iter().map(|g| g.members.as_slice())
    }

    /// One human-readable line per group (what `tnm count-batch`
    /// prints): traversal kind, timing, and member count.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .groups
            .iter()
            .map(|g| match &g.exec {
                GroupExec::Stream { delta_w, num_events } => {
                    format!("stream ΔW={delta_w} {num_events}e ×{}", g.members.len())
                }
                GroupExec::Walk { walk_cfg, driver, prefix_targets } => {
                    let d = match driver {
                        WalkDriver::SerialNodeList => "backtrack",
                        WalkDriver::SerialWindowed => "windowed",
                        WalkDriver::Parallel => "parallel",
                    };
                    let pf = match prefix_targets {
                        Some(t) => format!(" prefix[{}]", t.len()),
                        None => String::new(),
                    };
                    format!("walk({d}) {}{pf} ×{}", walk_cfg.timing, g.members.len())
                }
                GroupExec::Solo { kind } => format!("solo({kind}) ×{}", g.members.len()),
            })
            .collect();
        format!("{} group(s): {}", self.groups.len(), parts.join("; "))
    }

    /// Runs the plan. `cfgs` must be the slice the plan was built from.
    pub fn execute(
        &self,
        graph: &TemporalGraph,
        cfgs: &[EnumConfig],
        threads: usize,
    ) -> Vec<MotifCounts> {
        assert_eq!(cfgs.len(), self.n_configs, "plan built for a different batch");
        let mut out: Vec<MotifCounts> = (0..cfgs.len()).map(|_| MotifCounts::new()).collect();
        for group in &self.groups {
            match &group.exec {
                GroupExec::Solo { kind } => {
                    for &i in &group.members {
                        out[i] = kind.count(graph, &cfgs[i], threads);
                    }
                }
                GroupExec::Stream { delta_w, num_events } => {
                    let mut wants = (false, false, false);
                    for &i in &group.members {
                        let w = StreamEngine::class_wants(&cfgs[i]);
                        wants = (wants.0 || w.0, wants.1 || w.1, wants.2 || w.2);
                    }
                    let spectrum = StreamEngine::spectrum(graph, *delta_w, *num_events, wants);
                    for &i in &group.members {
                        out[i] = StreamEngine::project(&spectrum, &cfgs[i]);
                    }
                }
                GroupExec::Walk { walk_cfg, driver, prefix_targets } => {
                    exec::count_walk_group(
                        graph,
                        cfgs,
                        &group.members,
                        walk_cfg,
                        prefix_targets.as_deref(),
                        *driver,
                        threads,
                        &mut out,
                    );
                }
            }
        }
        out
    }
}

/// Walk-shape key: the config parts that change which sequences the
/// walk may extend or emit, rather than merely which instances a member
/// keeps. Configs must match on all of these to share a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupKey {
    num_events: usize,
    max_nodes: usize,
    consecutive_events: bool,
    static_induced: bool,
    constrained_dynamic: bool,
    duration_aware: bool,
}

impl GroupKey {
    fn of(cfg: &EnumConfig) -> Self {
        GroupKey {
            num_events: cfg.num_events,
            max_nodes: cfg.max_nodes,
            consecutive_events: cfg.consecutive_events,
            static_induced: cfg.static_induced,
            constrained_dynamic: cfg.constrained_dynamic,
            duration_aware: cfg.duration_aware,
        }
    }
}

/// Component-wise widest timing: the merged walk must reach everything
/// either side admits, so a bound survives only when both sides have
/// one.
fn widest(
    a: crate::constraints::Timing,
    b: crate::constraints::Timing,
) -> crate::constraints::Timing {
    let max_opt = |x: Option<Time>, y: Option<Time>| match (x, y) {
        (Some(x), Some(y)) => Some(x.max(y)),
        _ => None,
    };
    crate::constraints::Timing {
        delta_c: max_opt(a.delta_c, b.delta_c),
        delta_w: max_opt(a.delta_w, b.delta_w),
    }
}

/// Groups configurations into shared traversals for `kind`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchPlanner;

impl BatchPlanner {
    /// Builds the plan: stream buckets for `(ΔW, num_events)`-matching
    /// eligible configs (under `Auto`, exactly those [`auto_select`]
    /// would route to the stream engine; under explicit `Stream`, every
    /// [`StreamEngine::eligible`] config), walk groups keyed by
    /// [`GroupKey`]-equality plus the bounded-span guardrail, solo
    /// groups for sharded/distributed/sampling kinds. Group order is
    /// deterministic (first-member order).
    pub fn plan(
        graph: &TemporalGraph,
        cfgs: &[EnumConfig],
        kind: EngineKind,
        threads: usize,
    ) -> BatchPlan {
        let mut groups: Vec<PlanGroup> = Vec::new();
        // (delta_w, num_events) -> group index
        let mut stream_buckets: Vec<(Time, usize, usize)> = Vec::new();
        // (key, merged timing, all members span-unbounded) -> group index
        let mut walk_buckets: Vec<(GroupKey, crate::constraints::Timing, bool, usize)> = Vec::new();

        for (i, cfg) in cfgs.iter().enumerate() {
            if matches!(
                kind,
                EngineKind::Sharded { .. }
                    | EngineKind::Distributed { .. }
                    | EngineKind::Sampling { .. }
            ) {
                groups.push(PlanGroup { members: vec![i], exec: GroupExec::Solo { kind } });
                continue;
            }
            let streamed = match kind {
                EngineKind::Auto => auto_select(graph, cfg, threads) == EngineKind::Stream,
                EngineKind::Stream => StreamEngine::eligible(cfg),
                _ => false,
            };
            if streamed {
                let dw = cfg.timing.delta_w.expect("stream-eligible config has ΔW");
                let k = cfg.num_events;
                let gi = stream_buckets
                    .iter()
                    .find(|&&(w, e, _)| w == dw && e == k)
                    .map(|&(_, _, gi)| gi);
                match gi {
                    Some(gi) => groups[gi].members.push(i),
                    None => {
                        stream_buckets.push((dw, k, groups.len()));
                        groups.push(PlanGroup {
                            members: vec![i],
                            exec: GroupExec::Stream { delta_w: dw, num_events: k },
                        });
                    }
                }
                continue;
            }
            let key = GroupKey::of(cfg);
            let unbounded = cfg.max_admissible_span().is_none();
            let mut placed = false;
            for bucket in walk_buckets.iter_mut() {
                if bucket.0 != key {
                    continue;
                }
                let merged = widest(bucket.1, cfg.timing);
                // Bounded-span guardrail: joining must not unbound the
                // merged walk unless every member (this one included)
                // is individually unbounded anyway.
                let merged_span =
                    EnumConfig { timing: merged, ..cfg.clone() }.max_admissible_span();
                if merged_span.is_some() || (bucket.2 && unbounded) {
                    bucket.1 = merged;
                    bucket.2 &= unbounded;
                    groups[bucket.3].members.push(i);
                    placed = true;
                    break;
                }
            }
            if !placed {
                walk_buckets.push((key, cfg.timing, unbounded, groups.len()));
                groups.push(PlanGroup {
                    members: vec![i],
                    // Timing/driver/prefix are finalized below, once the
                    // bucket's membership is complete.
                    exec: GroupExec::Walk {
                        walk_cfg: cfg.clone(),
                        driver: WalkDriver::SerialWindowed,
                        prefix_targets: None,
                    },
                });
            }
        }

        // Finalize walk groups now that memberships are complete.
        for &(key, merged, _, gi) in &walk_buckets {
            let members = &groups[gi].members;
            let min_nodes =
                members.iter().map(|&i| cfgs[i].min_nodes).min().expect("non-empty group");
            let mut walk_cfg = EnumConfig::new(key.num_events, key.max_nodes);
            walk_cfg.min_nodes = min_nodes;
            walk_cfg.timing = merged;
            walk_cfg.consecutive_events = key.consecutive_events;
            walk_cfg.static_induced = key.static_induced;
            walk_cfg.constrained_dynamic = key.constrained_dynamic;
            walk_cfg.duration_aware = key.duration_aware;
            // When every member targets a signature the shared walk can
            // prune to the union of their pair prefixes; one untargeted
            // member forces the full walk.
            let prefix_targets: Option<Vec<MotifSignature>> = members
                .iter()
                .map(|&i| cfgs[i].signature_filter)
                .collect::<Option<Vec<_>>>()
                .filter(|targets| PrefixFilter::new(targets.iter(), key.num_events).is_some());
            let driver = Self::walk_driver(graph, &walk_cfg, kind, threads);
            groups[gi].exec = GroupExec::Walk { walk_cfg, driver, prefix_targets };
        }

        BatchPlan { groups, n_configs: cfgs.len() }
    }

    /// Picks the traversal driver for one walk group. Under `Auto` the
    /// group's **widest-reach** walk config drives [`auto_select`];
    /// selections whose execution cannot share an in-process walk
    /// (sharded/distributed) degrade to the work-stealing in-memory
    /// walk — the graph is already resident, so the batch keeps the
    /// amortization and only gives up the bounded working set.
    fn walk_driver(
        graph: &TemporalGraph,
        walk_cfg: &EnumConfig,
        kind: EngineKind,
        threads: usize,
    ) -> WalkDriver {
        let parallel_or_serial = |threads: usize| {
            if threads > 1 {
                WalkDriver::Parallel
            } else {
                WalkDriver::SerialWindowed
            }
        };
        match kind {
            EngineKind::Backtrack => WalkDriver::SerialNodeList,
            EngineKind::Windowed | EngineKind::Stream => WalkDriver::SerialWindowed,
            EngineKind::Parallel => parallel_or_serial(threads),
            EngineKind::Auto => match auto_select(graph, walk_cfg, threads) {
                EngineKind::Backtrack => WalkDriver::SerialNodeList,
                EngineKind::Parallel
                | EngineKind::Sharded { .. }
                | EngineKind::Distributed { .. } => parallel_or_serial(threads),
                _ => WalkDriver::SerialWindowed,
            },
            EngineKind::Sharded { .. }
            | EngineKind::Distributed { .. }
            | EngineKind::Sampling { .. } => {
                unreachable!("solo kinds never reach walk planning")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::all_motifs;
    use crate::constraints::Timing;
    use tnm_graph::TemporalGraphBuilder;

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(tnm_graph::Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    fn toy() -> TemporalGraph {
        graph(&[(0, 1, 3), (1, 2, 7), (1, 3, 8), (2, 0, 9), (0, 2, 11), (2, 3, 15)])
    }

    #[test]
    fn all_36_paranjape_motifs_plan_to_one_stream_pass() {
        let g = toy();
        let cfgs: Vec<EnumConfig> = all_motifs(3, 3)
            .into_iter()
            .map(|m| EnumConfig::for_signature(m).with_timing(Timing::only_w(3000)))
            .collect();
        assert_eq!(cfgs.len(), 36);
        let plan = BatchPlanner::plan(&g, &cfgs, EngineKind::Auto, 1);
        assert_eq!(plan.num_groups(), 1, "{}", plan.describe());
        assert_eq!(plan.group_members().next().unwrap().len(), 36);
    }

    #[test]
    fn walker_groups_get_union_prefix_targets() {
        let g = toy();
        // ΔC forces the walker path; identical shape ⇒ one group with a
        // 2-target prefix union.
        let cfgs = [
            EnumConfig::for_signature(crate::notation::sig("010102"))
                .with_timing(Timing::both(5, 10)),
            EnumConfig::for_signature(crate::notation::sig("010201"))
                .with_timing(Timing::both(3, 10)),
        ];
        let plan = BatchPlanner::plan(&g, &cfgs, EngineKind::Auto, 1);
        assert_eq!(plan.num_groups(), 1, "{}", plan.describe());
        assert!(plan.describe().contains("prefix[2]"), "{}", plan.describe());
    }

    #[test]
    fn span_guardrail_splits_unbounding_merges() {
        let g = toy();
        // only_c + only_w share a GroupKey but merging them would
        // unbound the walk: the guardrail keeps them separate.
        let cfgs = [
            EnumConfig::new(3, 4).with_timing(Timing::only_c(100)),
            EnumConfig::new(3, 4).with_timing(Timing::only_w(500)),
        ];
        let plan = BatchPlanner::plan(&g, &cfgs, EngineKind::Windowed, 1);
        assert_eq!(plan.num_groups(), 2, "{}", plan.describe());
        // ...while two unbounded configs may share the unbounded walk
        // (min_nodes is an emission mask, not part of the walk shape).
        let mut three_plus = EnumConfig::new(3, 4);
        three_plus.min_nodes = 3;
        let unbounded = [EnumConfig::new(3, 4), three_plus];
        let plan = BatchPlanner::plan(&g, &unbounded, EngineKind::Windowed, 1);
        assert_eq!(plan.num_groups(), 1, "{}", plan.describe());
        // ...and bounded merges stay grouped (table5's walker ratios).
        let ratios = [
            EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::both(1980, 3000)),
            EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::both(1500, 3000)),
        ];
        let plan = BatchPlanner::plan(&g, &ratios, EngineKind::Windowed, 1);
        assert_eq!(plan.num_groups(), 1, "{}", plan.describe());
    }

    #[test]
    fn solo_kinds_never_share() {
        let g = toy();
        let cfgs = [
            EnumConfig::new(3, 3).with_timing(Timing::only_w(10)),
            EnumConfig::new(3, 3).with_timing(Timing::only_w(10)),
        ];
        let kind = EngineKind::sharded(4, 0);
        let plan = BatchPlanner::plan(&g, &cfgs, kind, 1);
        assert_eq!(plan.num_groups(), 2, "{}", plan.describe());
        assert!(plan.describe().contains("solo(sharded)"), "{}", plan.describe());
    }

    #[test]
    fn empty_batch_is_empty() {
        let g = toy();
        assert!(count_batch(&g, &[], 1).is_empty());
        assert_eq!(BatchPlanner::plan(&g, &[], EngineKind::Auto, 1).num_groups(), 0);
    }

    #[test]
    fn mixed_restriction_flags_split_groups() {
        let g = toy();
        let base = EnumConfig::new(3, 3).exact_nodes(3).with_timing(Timing::only_c(1500));
        let cfgs = [base.clone(), base.with_consecutive(true)];
        let plan = BatchPlanner::plan(&g, &cfgs, EngineKind::Windowed, 1);
        assert_eq!(plan.num_groups(), 2, "{}", plan.describe());
    }
}
