//! 2-node sequence counting: the sliding-ΔW-window DP over each ordered
//! node pair.
//!
//! For one unordered pair `{u, v}`, every admissible 2-node motif is a
//! strictly-time-increasing sequence of events drawn from the pair's
//! merged event list, each event carrying one bit of information — its
//! direction. The classic Paranjape window DP counts all of them in one
//! pass: `counts1[d]` holds the events currently inside the window,
//! `counts2[(d1 << 1) | d2]` the strictly-ordered pairs, and each
//! event, acting as the *last* element, closes `counts1`/`counts2` into
//! the 2- and 3-event accumulators before being pushed.
//!
//! The data layout is the arena contract (see [`super::arena`]): the
//! merged direction-tagged list lives in reusable SoA scratch (the
//! `times` and `tags` columns), window expiry advances an amortized
//! group cursor over the dense time column against precomputed group
//! boundaries instead of per-event compare-and-pop, and the
//! accumulators are flat bit-indexed arrays so every close/push is an
//! unconditional indexed add.
//!
//! Equal timestamps never co-occur (the paper's total-ordering rule), so
//! all pushes, pops, and closes operate on whole timestamp *groups*
//! against pre-group snapshots: two events of one group never pair.
//!
//! When the log is tie-free ([`tnm_graph::EventColumns::has_time_ties`]
//! is false — the common case for real corpora), every group is a
//! single event and the DP skips materialization entirely: it runs
//! fused over the pair's two directed event-index lists with two
//! cursor pairs walking the virtual merge (see [`pair_fused_dp`]).

use super::arena::{expiry_cut, DpArena, SealedGroups};
use super::two_node_signature;
use crate::count::MotifCounts;
use tnm_graph::{Edge, EventIdx, NodeId, TemporalGraph, Time};

/// Accumulated direction sequences for one pair list: `two` is indexed
/// `(d1 << 1) | d2`, `three` is `(d1 << 2) | (d2 << 1) | d3`.
#[derive(Default)]
struct PairAcc {
    two: [u64; 4],
    three: [u64; 8],
}

/// Counts all 2-event 2-node sequences within `delta` into `out`.
pub(crate) fn count_pairs(
    graph: &TemporalGraph,
    delta: Time,
    out: &mut MotifCounts,
    arena: &mut DpArena,
) {
    let acc = accumulate::<false>(graph, delta, arena);
    for (slot, &n) in acc.two.iter().enumerate() {
        if n > 0 {
            out.add(two_node_signature(&[(slot >> 1) as u8 & 1, slot as u8 & 1]), n);
        }
    }
}

/// Counts all 3-event 2-node sequences within `delta` into `out`.
pub(crate) fn count_triples(
    graph: &TemporalGraph,
    delta: Time,
    out: &mut MotifCounts,
    arena: &mut DpArena,
) {
    let acc = accumulate::<true>(graph, delta, arena);
    for (slot, &n) in acc.three.iter().enumerate() {
        if n > 0 {
            let dirs = [(slot >> 2) as u8 & 1, (slot >> 1) as u8 & 1, slot as u8 & 1];
            out.add(two_node_signature(&dirs), n);
        }
    }
}

/// Runs the window DP over every unordered node pair with events.
/// `TRIPLES` switches on the `counts2`/3-event machinery, which 2-event
/// counting never reads; as a const generic the disabled branches
/// vanish at compile time.
fn accumulate<const TRIPLES: bool>(
    graph: &TemporalGraph,
    delta: Time,
    arena: &mut DpArena,
) -> PairAcc {
    let obs = tnm_obs::enabled();
    let (mut pairs_swept, mut groups_advanced, mut peak_window) = (0u64, 0u64, 0u64);
    let mut acc = PairAcc::default();
    let times = graph.times();
    // A tie-free log (no two events anywhere share a timestamp) makes
    // every group a single event: the DP then runs fused over the two
    // directed index lists — no merged list is materialized at all.
    let tie_free = !graph.columns().has_time_ties();
    for edge in graph.static_edges() {
        let (lo, hi) = (edge.src.min(edge.dst), edge.src.max(edge.dst));
        // Visit each unordered pair once: from its lo→hi edge when that
        // exists, else from the hi→lo edge (which then exists alone).
        if edge.src > edge.dst && graph.has_edge(Edge { src: lo, dst: hi }) {
            continue;
        }
        if tie_free {
            let fwd = graph.edge_events(Edge { src: lo, dst: hi });
            let rev = graph.edge_events(Edge { src: hi, dst: lo });
            if obs {
                pairs_swept += 1;
                groups_advanced += (fwd.len() + rev.len()) as u64;
                peak_window = peak_window.max((fwd.len() + rev.len()) as u64);
            }
            pair_fused_dp::<TRIPLES>(times, fwd, rev, delta, &mut acc);
        } else {
            merge_pair_events(graph, times, lo, hi, arena);
            if obs {
                pairs_swept += 1;
                groups_advanced += arena.num_groups() as u64;
                peak_window = peak_window.max(arena.times.len() as u64);
            }
            pair_window_dp::<TRIPLES>(&arena.times, &arena.tags, &arena.bounds, delta, &mut acc);
        }
    }
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.pair.pairs_swept").add(pairs_swept);
        reg.counter("stream.pair.groups_advanced").add(groups_advanced);
        reg.gauge("stream.pair.window_events").set(peak_window);
    }
    acc
}

/// Merges the two directed event lists of `{lo, hi}` into the arena's
/// SoA scratch as a time-ordered direction-tagged list and seals its
/// group boundaries. Event-index order is global time order, so a
/// two-pointer merge on indices suffices; timestamps are resolved
/// against the dense SoA time column.
fn merge_pair_events(
    graph: &TemporalGraph,
    times: &[Time],
    lo: NodeId,
    hi: NodeId,
    arena: &mut DpArena,
) {
    arena.clear();
    let fwd = graph.edge_events(Edge { src: lo, dst: hi });
    let rev = graph.edge_events(Edge { src: hi, dst: lo });
    arena.times.reserve(fwd.len() + rev.len());
    arena.tags.reserve(fwd.len() + rev.len());
    let (mut i, mut j) = (0, 0);
    while i < fwd.len() || j < rev.len() {
        let take_fwd = match (fwd.get(i), rev.get(j)) {
            (Some(&a), Some(&b)) => a < b,
            (Some(_), None) => true,
            _ => false,
        };
        let idx = if take_fwd {
            i += 1;
            fwd[i - 1]
        } else {
            j += 1;
            rev[j - 1]
        };
        arena.times.push(times[idx as usize]);
        arena.tags.push(!take_fwd as u8);
    }
    arena.seal_groups();
}

/// The window DP fused over the pair's two directed index lists — the
/// tie-free fast path. Event indices are globally time-ordered, so a
/// two-pointer walk over `(fwd, rev)` *is* the merged list; a second
/// cursor pair replays the same virtual merge as the expiring window
/// front. Nothing is written anywhere: per event the loop costs two
/// 4-byte index reads, two 8-byte gathers from the dense time column,
/// and the unconditional indexed adds.
fn pair_fused_dp<const TRIPLES: bool>(
    times: &[Time],
    fwd: &[EventIdx],
    rev: &[EventIdx],
    delta: Time,
    acc: &mut PairAcc,
) {
    let mut counts1 = [0u64; 2];
    let mut counts2 = [0u64; 4];
    // Window-front cursors (expiry) and tail cursors (arrival), each
    // pair walking the virtual merge independently. Exhausted cursors
    // read the `EventIdx::MAX` sentinel, which always loses the
    // min-select — so each select is a branch-free compare/min instead
    // of a data-dependent jump (a near-coin-flip the predictor would
    // otherwise miss on).
    const DONE: EventIdx = EventIdx::MAX;
    let peek = |list: &[EventIdx], at: usize| list.get(at).copied().unwrap_or(DONE);
    let (mut ff, mut fr) = (0usize, 0usize);
    let (mut tf, mut tr) = (0usize, 0usize);
    for _ in 0..fwd.len() + rev.len() {
        let (a, b) = (peek(fwd, tf), peek(rev, tr));
        let take_fwd = a < b;
        let idx = a.min(b);
        let d = !take_fwd as usize;
        tf += take_fwd as usize;
        tr += !take_fwd as usize;
        let wstart = times[idx as usize] - delta;
        // Expire: pop the virtual merge's front while it is out the back
        // of the window. The front never overtakes the tail — the tail
        // event itself is always in-window, so the sentinel never
        // reaches the time gather.
        loop {
            let (pa, pb) = (peek(fwd, ff), peek(rev, fr));
            let pop_fwd = pa < pb;
            let pidx = pa.min(pb);
            if times[pidx as usize] >= wstart {
                break;
            }
            ff += pop_fwd as usize;
            fr += !pop_fwd as usize;
            let pd = !pop_fwd as usize;
            counts1[pd] -= 1;
            if TRIPLES {
                let b = pd << 1;
                counts2[b] -= counts1[0];
                counts2[b | 1] -= counts1[1];
            }
        }
        // Close (the window state excludes the event itself), then push.
        acc.two[d] += counts1[0];
        acc.two[2 | d] += counts1[1];
        if TRIPLES {
            acc.three[d] += counts2[0];
            acc.three[2 | d] += counts2[1];
            acc.three[4 | d] += counts2[2];
            acc.three[6 | d] += counts2[3];
            counts2[d] += counts1[0];
            counts2[2 | d] += counts1[1];
        }
        counts1[d] += 1;
    }
}

/// The sliding-window DP over one merged pair list, advancing by whole
/// timestamp groups against the precomputed boundary array — the
/// tie-handling path, where whole timestamp groups push, pop, and close
/// together against pre-group snapshots.
fn pair_window_dp<const TRIPLES: bool>(
    times: &[Time],
    dirs: &[u8],
    bounds: &[u32],
    delta: Time,
    acc: &mut PairAcc,
) {
    let mut counts1 = [0u64; 2];
    let mut counts2 = [0u64; 4];
    let mut front = 0usize; // group index of the oldest in-window group
    let num_groups = bounds.len() - 1;
    for g in 0..num_groups {
        let (start, end) = (bounds[g] as usize, bounds[g + 1] as usize);
        let t = times[start];
        // Expire whole groups older than the window start t − ΔW: the
        // amortized front cursor finds the cut in the dense time column.
        let cut = expiry_cut(times, &SealedGroups(bounds), front, g, t - delta);
        while front < cut {
            let (gs, ge) = (bounds[front] as usize, bounds[front + 1] as usize);
            for &d in &dirs[gs..ge] {
                counts1[d as usize] -= 1;
            }
            if TRIPLES {
                // Everything left in counts1 is strictly later than the
                // expired group, so each expired event retracts exactly
                // its open pairs.
                for &d in &dirs[gs..ge] {
                    let b = (d as usize) << 1;
                    counts2[b] -= counts1[0];
                    counts2[b | 1] -= counts1[1];
                }
            }
            front += 1;
        }
        // Close: each group member is a candidate last event; the window
        // state excludes its own group, enforcing strict time increase.
        for &d in &dirs[start..end] {
            let d = d as usize;
            acc.two[d] += counts1[0];
            acc.two[2 | d] += counts1[1];
            if TRIPLES {
                acc.three[d] += counts2[0];
                acc.three[2 | d] += counts2[1];
                acc.three[4 | d] += counts2[2];
                acc.three[6 | d] += counts2[3];
            }
        }
        // Push: pair each group member with the pre-group snapshot
        // (counts1 is untouched until the second loop), then admit the
        // group itself.
        if TRIPLES {
            for &d in &dirs[start..end] {
                let d = d as usize;
                counts2[d] += counts1[0];
                counts2[2 | d] += counts1[1];
            }
        }
        for &d in &dirs[start..end] {
            counts1[d as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use tnm_graph::{Event, TemporalGraphBuilder};

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    fn pairs(g: &TemporalGraph, delta: Time) -> MotifCounts {
        let mut c = MotifCounts::new();
        count_pairs(g, delta, &mut c, &mut DpArena::default());
        c
    }

    fn triples(g: &TemporalGraph, delta: Time) -> MotifCounts {
        let mut c = MotifCounts::new();
        count_triples(g, delta, &mut c, &mut DpArena::default());
        c
    }

    #[test]
    fn ping_pong_triples() {
        // 0→1 at 1, 1→0 at 2, 0→1 at 4: within ΔW=3 the only triple is
        // (1,2,4) = 011001; pairs are (1,2)=0110, (2,4)=0110... wait
        // (2,4) is 1→0 then 0→1 → canonical 0110 too; (1,4) = 010101? No:
        // (1,4) is 0→1 then 0→1 = 0101.
        let g = graph(&[(0, 1, 1), (1, 0, 2), (0, 1, 4)]);
        let c3 = triples(&g, 3);
        assert_eq!(c3.get(sig("011001")), 1);
        assert_eq!(c3.total(), 1);
        let c2 = pairs(&g, 3);
        assert_eq!(c2.get(sig("0110")), 2);
        assert_eq!(c2.get(sig("0101")), 1);
    }

    #[test]
    fn window_excludes_wide_spans() {
        let g = graph(&[(0, 1, 0), (0, 1, 10), (0, 1, 20)]);
        let c = triples(&g, 20);
        assert_eq!(c.get(sig("010101")), 1);
        let c = triples(&g, 19);
        assert!(c.is_empty());
        let c = pairs(&g, 10);
        assert_eq!(c.get(sig("0101")), 2);
    }

    #[test]
    fn reverse_only_edge_is_still_visited() {
        // Only the hi→lo direction exists: the pair must be processed
        // exactly once through the hi→lo branch.
        let g = graph(&[(5, 2, 1), (5, 2, 2)]);
        let c = pairs(&g, 5);
        assert_eq!(c.get(sig("0101")), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn ties_processed_as_groups() {
        let g = graph(&[(0, 1, 1), (1, 0, 1), (0, 1, 2), (1, 0, 2)]);
        let c = pairs(&g, 5);
        // Cross-group pairs only: (1a,2a)=0101, (1a,2b)=0110,
        // (1b,2a)=0110, (1b,2b)=0101.
        assert_eq!(c.get(sig("0101")), 2);
        assert_eq!(c.get(sig("0110")), 2);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn fused_and_grouped_dps_agree() {
        // A dense tie-free ping-pong history: both DP shapes are legal,
        // so they must produce identical accumulators at several ΔW.
        let mut events = Vec::new();
        let mut x = 7u64;
        let mut t = 0i64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            t += 1 + ((x >> 60) as i64);
            if x & 1 == 0 {
                events.push((0, 1, t));
            } else {
                events.push((1, 0, t));
            }
        }
        let g = graph(&events);
        let times = g.times();
        let fwd = g.edge_events(Edge { src: NodeId(0), dst: NodeId(1) });
        let rev = g.edge_events(Edge { src: NodeId(1), dst: NodeId(0) });
        let mut arena = DpArena::default();
        merge_pair_events(&g, times, NodeId(0), NodeId(1), &mut arena);
        for delta in [0, 3, 25, 10_000] {
            let mut grouped = PairAcc::default();
            pair_window_dp::<true>(&arena.times, &arena.tags, &arena.bounds, delta, &mut grouped);
            let mut fused = PairAcc::default();
            pair_fused_dp::<true>(times, fwd, rev, delta, &mut fused);
            assert_eq!(grouped.two, fused.two, "two-event counts at ΔW={delta}");
            assert_eq!(grouped.three, fused.three, "three-event counts at ΔW={delta}");
        }
    }

    #[test]
    fn arena_reuse_across_pairs_is_clean() {
        // Two disjoint pairs with different list lengths: the second
        // sweep must not see residue from the first.
        let g = graph(&[(0, 1, 1), (0, 1, 2), (0, 1, 3), (2, 3, 1), (3, 2, 2)]);
        let c = pairs(&g, 10);
        assert_eq!(c.get(sig("0101")), 3);
        assert_eq!(c.get(sig("0110")), 1);
        assert_eq!(c.total(), 4);
    }
}
