//! 2-node sequence counting: the sliding-ΔW-window DP over each ordered
//! node pair.
//!
//! For one unordered pair `{u, v}`, every admissible 2-node motif is a
//! strictly-time-increasing sequence of events drawn from the pair's
//! merged event list, each event carrying one bit of information — its
//! direction. The classic Paranjape window DP counts all of them in one
//! pass: `counts1[d]` holds the events currently inside the window,
//! `counts2[d1][d2]` the strictly-ordered pairs, and each event, acting
//! as the *last* element, closes `counts1`/`counts2` into the 2- and
//! 3-event accumulators before being pushed. Expiry pops the oldest
//! timestamp group and retracts exactly the pairs that started there.
//!
//! Equal timestamps never co-occur (the paper's total-ordering rule), so
//! all pushes, pops, and closes operate on whole timestamp *groups*
//! against pre-group snapshots: two events of one group never pair.

// The DP tables are indexed by direction bits used across several
// tables per loop body; iterator forms would obscure the recurrences.
#![allow(clippy::needless_range_loop)]

use super::{group_end_by, two_node_signature};
use crate::count::MotifCounts;
use tnm_graph::{Edge, NodeId, TemporalGraph, Time};

/// One event on the pair: timestamp plus direction bit
/// (0 = `lo → hi`, 1 = `hi → lo` for the pair's sorted node ids).
type PairEvent = (Time, u8);

/// Accumulated direction sequences for one pair list.
#[derive(Default)]
struct PairAcc {
    two: [[u64; 2]; 2],
    three: [[[u64; 2]; 2]; 2],
}

/// Counts all 2-event 2-node sequences within `delta` into `out`.
pub fn count_pairs(graph: &TemporalGraph, delta: Time, out: &mut MotifCounts) {
    let acc = accumulate(graph, delta, false);
    for d1 in 0..2 {
        for d2 in 0..2 {
            let n = acc.two[d1][d2];
            if n > 0 {
                out.add(two_node_signature(&[d1 as u8, d2 as u8]), n);
            }
        }
    }
}

/// Counts all 3-event 2-node sequences within `delta` into `out`.
pub fn count_triples(graph: &TemporalGraph, delta: Time, out: &mut MotifCounts) {
    let acc = accumulate(graph, delta, true);
    for d1 in 0..2 {
        for d2 in 0..2 {
            for d3 in 0..2 {
                let n = acc.three[d1][d2][d3];
                if n > 0 {
                    out.add(two_node_signature(&[d1 as u8, d2 as u8, d3 as u8]), n);
                }
            }
        }
    }
}

/// Runs the window DP over every unordered node pair with events.
/// `triples` switches on the `counts2`/3-event machinery, which 2-event
/// counting never reads.
fn accumulate(graph: &TemporalGraph, delta: Time, triples: bool) -> PairAcc {
    let obs = tnm_obs::enabled();
    let (mut pairs_swept, mut groups_advanced, mut peak_window) = (0u64, 0u64, 0u64);
    let mut acc = PairAcc::default();
    let mut merged: Vec<PairEvent> = Vec::new();
    for edge in graph.static_edges() {
        let (lo, hi) = (edge.src.min(edge.dst), edge.src.max(edge.dst));
        // Visit each unordered pair once: from its lo→hi edge when that
        // exists, else from the hi→lo edge (which then exists alone).
        if edge.src > edge.dst && graph.has_edge(Edge { src: lo, dst: hi }) {
            continue;
        }
        merge_pair_events(graph, lo, hi, &mut merged);
        if obs {
            pairs_swept += 1;
            groups_advanced += super::distinct_groups(&merged, |e| e.0);
            peak_window = peak_window.max(merged.len() as u64);
        }
        pair_window_dp(&merged, delta, triples, &mut acc);
    }
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.pair.pairs_swept").add(pairs_swept);
        reg.counter("stream.pair.groups_advanced").add(groups_advanced);
        reg.gauge("stream.pair.window_events").set(peak_window);
    }
    acc
}

/// Merges the two directed event lists of `{lo, hi}` into one
/// time-ordered direction-tagged list. Event-index order is global time
/// order, so a two-pointer merge on indices suffices.
fn merge_pair_events(graph: &TemporalGraph, lo: NodeId, hi: NodeId, out: &mut Vec<PairEvent>) {
    out.clear();
    let fwd = graph.edge_events(Edge { src: lo, dst: hi });
    let rev = graph.edge_events(Edge { src: hi, dst: lo });
    let (mut i, mut j) = (0, 0);
    while i < fwd.len() || j < rev.len() {
        let take_fwd = match (fwd.get(i), rev.get(j)) {
            (Some(&a), Some(&b)) => a < b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_fwd {
            out.push((graph.event(fwd[i]).time, 0));
            i += 1;
        } else {
            out.push((graph.event(rev[j]).time, 1));
            j += 1;
        }
    }
}

/// The sliding-window DP over one merged pair list.
fn pair_window_dp(evs: &[PairEvent], delta: Time, triples: bool, acc: &mut PairAcc) {
    let mut counts1 = [0u64; 2];
    let mut counts2 = [[0u64; 2]; 2];
    let mut front = 0usize; // start of the oldest in-window timestamp group
    let mut i = 0usize;
    while i < evs.len() {
        let t = evs[i].0;
        let group_end = group_end_by(evs, i, |e| e.0);
        // Expire whole groups older than the window start t − ΔW.
        while front < i && evs[front].0 < t - delta {
            let expire_end = group_end_by(evs, front, |e| e.0);
            for &(_, d) in &evs[front..expire_end] {
                counts1[d as usize] -= 1;
            }
            if triples {
                // Everything left in counts1 is strictly later than the
                // expired group, so each expired event retracts exactly
                // its open pairs.
                for &(_, d) in &evs[front..expire_end] {
                    for d2 in 0..2 {
                        counts2[d as usize][d2] -= counts1[d2];
                    }
                }
            }
            front = expire_end;
        }
        // Close: each group member is a candidate last event; the window
        // state excludes its own group, enforcing strict time increase.
        for &(_, d) in &evs[i..group_end] {
            for d1 in 0..2 {
                acc.two[d1][d as usize] += counts1[d1];
            }
            if triples {
                for d1 in 0..2 {
                    for d2 in 0..2 {
                        acc.three[d1][d2][d as usize] += counts2[d1][d2];
                    }
                }
            }
        }
        // Push: pair each group member with the pre-group snapshot
        // (counts1 is untouched until the second loop), then admit the
        // group itself.
        if triples {
            for &(_, d) in &evs[i..group_end] {
                for d1 in 0..2 {
                    counts2[d1][d as usize] += counts1[d1];
                }
            }
        }
        for &(_, d) in &evs[i..group_end] {
            counts1[d as usize] += 1;
        }
        i = group_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use tnm_graph::{Event, TemporalGraphBuilder};

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn ping_pong_triples() {
        // 0→1 at 1, 1→0 at 2, 0→1 at 4: within ΔW=3 the only triple is
        // (1,2,4) = 011001; pairs are (1,2)=0110, (2,4)=0110... wait
        // (2,4) is 1→0 then 0→1 → canonical 0110 too; (1,4) = 010101? No:
        // (1,4) is 0→1 then 0→1 = 0101.
        let g = graph(&[(0, 1, 1), (1, 0, 2), (0, 1, 4)]);
        let mut c3 = MotifCounts::new();
        count_triples(&g, 3, &mut c3);
        assert_eq!(c3.get(sig("011001")), 1);
        assert_eq!(c3.total(), 1);
        let mut c2 = MotifCounts::new();
        count_pairs(&g, 3, &mut c2);
        assert_eq!(c2.get(sig("0110")), 2);
        assert_eq!(c2.get(sig("0101")), 1);
    }

    #[test]
    fn window_excludes_wide_spans() {
        let g = graph(&[(0, 1, 0), (0, 1, 10), (0, 1, 20)]);
        let mut c = MotifCounts::new();
        count_triples(&g, 20, &mut c);
        assert_eq!(c.get(sig("010101")), 1);
        let mut c = MotifCounts::new();
        count_triples(&g, 19, &mut c);
        assert!(c.is_empty());
        let mut c = MotifCounts::new();
        count_pairs(&g, 10, &mut c);
        assert_eq!(c.get(sig("0101")), 2);
    }

    #[test]
    fn reverse_only_edge_is_still_visited() {
        // Only the hi→lo direction exists: the pair must be processed
        // exactly once through the hi→lo branch.
        let g = graph(&[(5, 2, 1), (5, 2, 2)]);
        let mut c = MotifCounts::new();
        count_pairs(&g, 5, &mut c);
        assert_eq!(c.get(sig("0101")), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn ties_processed_as_groups() {
        let g = graph(&[(0, 1, 1), (1, 0, 1), (0, 1, 2), (1, 0, 2)]);
        let mut c = MotifCounts::new();
        count_pairs(&g, 5, &mut c);
        // Cross-group pairs only: (1a,2a)=0101, (1a,2b)=0110,
        // (1b,2a)=0110, (1b,2b)=0101.
        assert_eq!(c.get(sig("0101")), 2);
        assert_eq!(c.get(sig("0110")), 2);
        assert_eq!(c.total(), 4);
    }
}
