//! Reusable SoA arena scratch shared by the stream DP classes.
//!
//! Every stream DP runs over a *merged, time-sorted event list* — per
//! node pair, per star center, or per static triangle — and advances in
//! whole timestamp groups. [`DpArena`] is the one allocation all of
//! them write into:
//!
//! * `times` — the merged timestamps, dense and ascending, so window
//!   expiry probes one flat `i64` array (see [`expiry_cut`]);
//! * `tags` — a parallel byte payload (direction bit for the pair DP,
//!   6-valued label for the triad DP);
//! * `aux` — a parallel `u32` payload (packed `nbr << 1 | dir` for the
//!   star sweeps, whose neighbor ids do not fit a byte);
//! * `bounds` — the timestamp-group boundary array, computed **once**
//!   per merged list by [`DpArena::seal_groups`] and reused by every
//!   sweep over it, replacing per-event group scans.
//!
//! The contract: a class clears the arena, appends its merged list
//! (times plus whichever payload it uses), calls `seal_groups`, and
//! runs its DP over `(times, tags/aux, bounds)` slices. One arena is
//! created per [`super::StreamEngine::spectrum`] call and threaded
//! through every class, so a full spectrum pass performs O(1) scratch
//! allocations total instead of one per pair/center/triangle.

use tnm_graph::Time;

/// The shared scratch. See the [module docs](self) for the contract.
#[derive(Debug, Default)]
pub(crate) struct DpArena {
    /// Merged event timestamps, ascending.
    pub times: Vec<Time>,
    /// Byte payload parallel to `times` (direction bit / triad label).
    pub tags: Vec<u8>,
    /// `u32` payload parallel to `times` (star: `nbr << 1 | dir`).
    pub aux: Vec<u32>,
    /// Group boundaries: `bounds[g]..bounds[g + 1]` is timestamp group
    /// `g`; the last entry is `times.len()`. `bounds.len() - 1` groups.
    pub bounds: Vec<u32>,
}

impl DpArena {
    /// Empties the merged list (capacity is retained).
    #[inline]
    pub fn clear(&mut self) {
        self.times.clear();
        self.tags.clear();
        self.aux.clear();
    }

    /// Recomputes `bounds` from `times` in one linear pass. Equal
    /// timestamps form one group — the unit every DP pushes, pops, and
    /// closes by, enforcing the ties-never-co-occur rule.
    pub fn seal_groups(&mut self) {
        self.bounds.clear();
        let times = &self.times;
        let mut i = 0usize;
        while i < times.len() {
            self.bounds.push(i as u32);
            let t = times[i];
            i += 1;
            while i < times.len() && times[i] == t {
                i += 1;
            }
        }
        self.bounds.push(times.len() as u32);
    }

    /// Number of timestamp groups in the sealed list.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

/// Maps timestamp-group indices to event offsets. The sweeps are
/// generic over this so one source compiles to two shapes: the
/// tie-handling one reading the sealed boundary array, and the
/// tie-free one ([`DenseGroups`]) where `start(g) == g` folds every
/// per-group inner loop into a single-event body with no boundary
/// loads at all.
pub(crate) trait GroupMap {
    /// First event offset of group `g`; `start(num_groups())` is the
    /// total event count.
    fn start(&self, g: usize) -> usize;
    /// Number of timestamp groups.
    fn num_groups(&self) -> usize;
}

/// Tie-free list: every event is its own group.
pub(crate) struct DenseGroups(pub usize);

impl GroupMap for DenseGroups {
    #[inline]
    fn start(&self, g: usize) -> usize {
        g
    }

    #[inline]
    fn num_groups(&self) -> usize {
        self.0
    }
}

/// A sealed boundary array from [`DpArena::seal_groups`].
pub(crate) struct SealedGroups<'a>(pub &'a [u32]);

impl GroupMap for SealedGroups<'_> {
    #[inline]
    fn start(&self, g: usize) -> usize {
        self.0[g] as usize
    }

    #[inline]
    fn num_groups(&self) -> usize {
        self.0.len() - 1
    }
}

/// Finds the first group index in `front..upto` whose events survive
/// the window starting at `wstart` (i.e. whose shared timestamp is
/// `>= wstart`). One dense-column read per probe — a group's first
/// event speaks for the whole group because ties share one timestamp.
/// Callers feed each returned cut back in as the next `front`, so the
/// walk is amortized O(1) per group across a sweep; their pop loops
/// traverse the expired prefix anyway, which is why this beats a
/// per-group binary search.
#[inline]
pub(crate) fn expiry_cut<B: GroupMap>(
    times: &[Time],
    groups: &B,
    front: usize,
    upto: usize,
    wstart: Time,
) -> usize {
    let mut g = front;
    while g < upto && times[groups.start(g)] < wstart {
        g += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_groups_boundaries() {
        let mut a = DpArena::default();
        a.times.extend_from_slice(&[1, 1, 3, 5, 5, 5, 9]);
        a.seal_groups();
        assert_eq!(a.bounds, vec![0, 2, 3, 6, 7]);
        assert_eq!(a.num_groups(), 4);
    }

    #[test]
    fn seal_groups_empty() {
        let mut a = DpArena::default();
        a.seal_groups();
        assert_eq!(a.bounds, vec![0]);
        assert_eq!(a.num_groups(), 0);
    }

    #[test]
    fn clear_keeps_capacity_resets_lists() {
        let mut a = DpArena::default();
        a.times.extend_from_slice(&[1, 2]);
        a.tags.extend_from_slice(&[0, 1]);
        a.aux.extend_from_slice(&[7, 9]);
        a.seal_groups();
        a.clear();
        assert!(a.times.is_empty() && a.tags.is_empty() && a.aux.is_empty());
    }

    #[test]
    fn expiry_cut_lands_on_group_boundaries() {
        let mut a = DpArena::default();
        a.times.extend_from_slice(&[1, 1, 3, 5, 5, 9]);
        a.seal_groups(); // bounds = [0, 2, 3, 5, 6]
        let g = SealedGroups(&a.bounds);
        // Window start 3: group 0 (t=1) expires, cut at group 1.
        assert_eq!(expiry_cut(&a.times, &g, 0, 3, 3), 1);
        // Window start 4: groups 0..2 expire (t=1, t=3).
        assert_eq!(expiry_cut(&a.times, &g, 0, 3, 4), 2);
        // Nothing expires.
        assert_eq!(expiry_cut(&a.times, &g, 0, 3, 0), 0);
        // Monotone fronts: starting from group 1.
        assert_eq!(expiry_cut(&a.times, &g, 1, 3, 6), 3);
    }

    #[test]
    fn dense_groups_are_the_identity_map() {
        let times = [2i64, 4, 9, 11];
        let d = DenseGroups(times.len());
        assert_eq!(d.num_groups(), 4);
        assert_eq!(d.start(2), 2);
        assert_eq!(expiry_cut(&times, &d, 0, 3, 5), 2);
        // Matches the sealed map over the same (tie-free) list.
        let mut a = DpArena::default();
        a.times.extend_from_slice(&times);
        a.seal_groups();
        assert_eq!(expiry_cut(&times, &SealedGroups(&a.bounds), 0, 3, 5), 2);
    }
}
