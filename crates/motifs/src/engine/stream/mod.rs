//! [`StreamEngine`] — exact δ-window counting **without enumerating
//! instances** (Paranjape, Benson & Leskovec, WSDM 2017).
//!
//! Every walker engine pays cost proportional to the number of motif
//! *instances*: the depth-first walk visits each one. For the Paranjape
//! model — non-induced, single ΔW window, ≤ 3 events, ≤ 3 nodes — the
//! spectrum can instead be computed in time near-linear in the number of
//! *events*, by decomposing it into three exactly-once classes:
//!
//! 1. **2-node sequences** ([`pair`]): for each unordered node pair, a
//!    sliding-ΔW-window dynamic program over the pair's merged event
//!    list maintains per-direction prefix counts (`counts1`, `counts2`)
//!    as events enter and leave the window, accumulating every 2- and
//!    3-event direction sequence in `O(events on the pair)`.
//! 2. **Stars and wedges** ([`star`]): for each center node, its
//!    incident events stream through past/future windows that maintain
//!    the *pre*, *post*, and *peri* count tables — same-leaf pair counts
//!    before, after, and straddling each event — from which the 24
//!    2-leaf star signatures (and the 2-event wedges) follow by
//!    inclusion–exclusion against the all-same-leaf counts.
//! 3. **Triads** ([`triad`]): static triangles are enumerated once via
//!    [`StaticProjection::for_each_undirected_triangle`], and each
//!    triangle's merged event list runs the generic 6-label window DP,
//!    keeping only label triples that use all three node pairs.
//!
//! No class ever materializes an instance, and the classes partition the
//! ≤ 3-node spectrum (a sequence touches 1, 2, or 3 undirected node
//! pairs respectively), so the totals are bit-identical to the walker
//! engines' — enforced by `tests/engine_equivalence.rs`.
//!
//! All three classes share one data-oriented execution shape: merged
//! per-pair/per-center/per-triangle event lists live in a reusable SoA
//! arena scratch (`arena::DpArena`) fed from the graph's dense column
//! view ([`TemporalGraph::columns`]), window expiry advances an
//! amortized cursor over precomputed timestamp-group boundaries, and
//! the DP tables are flat bit-indexed accumulators so the inner loops
//! are branchless indexed adds. One arena is created per spectrum pass
//! and threaded through every class.
//!
//! ## Eligibility and fallback
//!
//! [`StreamEngine::eligible`] accepts exactly the Paranjape-model shape:
//! ΔW set, no ΔC, no duration-awareness, no consecutive/constrained/
//! induced restrictions, ≤ 3 events, and a node budget the three classes
//! cover (≤ 3 nodes — automatic for ≤ 2-event motifs). Everything else
//! falls back to [`WindowedEngine`] inside `count`, so the engine is
//! exact for *any* configuration and safe to include in blanket sweeps;
//! [`auto_select`](crate::engine::auto_select) only routes eligible jobs
//! here — and keeps triangle-bearing jobs on the walkers when the ΔW
//! window is starved, since the triad class's cost follows projection
//! density, not the window (see
//! [`STREAM_MIN_WINDOW_EVENTS`](crate::engine::STREAM_MIN_WINDOW_EVENTS)).
//! `enumerate` always delegates to the walker — there are no instances
//! to visit on the fast path.
//!
//! Equal timestamps follow the paper's total-ordering rule exactly as
//! the walker does: events with equal timestamps never co-occur in a
//! motif, which the DPs enforce by processing timestamp *groups* against
//! pre-group snapshots.

mod arena;
mod pair;
mod star;
mod triad;

use arena::DpArena;

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::windowed::WindowedEngine;
use crate::engine::{CountEngine, EngineCaps};
use crate::notation::MotifSignature;
use tnm_graph::TemporalGraph;

/// Exact count-without-enumerating engine for eligible Paranjape-model
/// configurations; transparent [`WindowedEngine`] fallback otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamEngine;

impl StreamEngine {
    /// True if `cfg` is in the shape the streaming decomposition covers:
    /// the Paranjape δ-window model (ΔW set, no ΔC, no
    /// duration-awareness, no consecutive/constrained/induced
    /// restriction, non-induced) with at most 3 events, on a node budget
    /// the 2-node/star/triad classes span (≤ 3 nodes; a ≤ 2-event motif
    /// cannot exceed 3 nodes, so any budget is fine there).
    pub fn eligible(cfg: &EnumConfig) -> bool {
        cfg.timing.delta_w.is_some()
            && cfg.timing.delta_c.is_none()
            && !cfg.consecutive_events
            && !cfg.static_induced
            && !cfg.constrained_dynamic
            && !cfg.duration_aware
            && (1..=3).contains(&cfg.num_events)
            && (cfg.num_events <= 2 || cfg.max_nodes <= 3)
    }

    /// True if the fast path would run its triangle class for `cfg`: a
    /// 3-event spectrum whose node budget admits 3-node motifs and whose
    /// signature target (if any) is a triangle. This is the one class
    /// whose cost scales with projection density — Σ over static
    /// triangles of their event counts, independent of ΔW — rather than
    /// with the event count alone, which is why
    /// [`auto_select`](crate::engine::auto_select) checks window
    /// occupancy before routing triad-bearing jobs here.
    pub fn needs_triads(cfg: &EnumConfig) -> bool {
        cfg.num_events == 3
            && cfg.max_nodes >= 3
            && cfg.min_nodes <= 3
            && cfg
                .signature_filter
                .as_ref()
                .is_none_or(|t| t.num_nodes() == 3 && undirected_pairs_of(t) == 3)
    }

    /// Which of the three DP classes an eligible `cfg` needs, as
    /// `(two_node, star, triad)` flags: every class produces signatures
    /// of one known node count (pairs: 2; wedges/stars/triads: 3), and a
    /// signature target pins the class further — a triangle target (3
    /// distinct undirected digit pairs) never needs the star sweeps and
    /// vice versa. A 2-node-only budget skips the triangle enumeration
    /// entirely. The batch executor ORs these flags across a group to
    /// run one shared [`StreamEngine::spectrum`] pass.
    pub(crate) fn class_wants(cfg: &EnumConfig) -> (bool, bool, bool) {
        let mut want_two = cfg.min_nodes <= 2 && cfg.max_nodes >= 2;
        let mut want_star = cfg.min_nodes <= 3 && cfg.max_nodes >= 3;
        let want_triad = Self::needs_triads(cfg);
        if let Some(target) = &cfg.signature_filter {
            want_two &= target.num_nodes() == 2;
            want_star &= target.num_nodes() == 3 && undirected_pairs_of(target) < 3;
        }
        (want_two, want_star, want_triad)
    }

    /// One full DP pass over the graph at window `delta`, computing
    /// every signature the requested classes produce for `num_events`
    /// events. This is the expensive half of the fast path; the split
    /// into per-config results is a pure table projection
    /// ([`StreamEngine::project`]), which is what lets a batch of
    /// eligible configs share a single pass.
    pub(crate) fn spectrum(
        graph: &TemporalGraph,
        delta: tnm_graph::Time,
        num_events: usize,
        (want_two, want_star, want_triad): (bool, bool, bool),
    ) -> MotifCounts {
        let mut spectrum = MotifCounts::new();
        // One arena serves every class: each DP clears and refills the
        // same scratch, so a full pass allocates O(1) times total (see
        // the [`arena`] module docs for the layout contract).
        let mut arena = DpArena::default();
        match num_events {
            1 => {
                if want_two {
                    // Every single event is a 01 instance (span 0 ≤ ΔW).
                    let sig = MotifSignature::from_pairs(&[(0, 1)]).expect("01 is canonical");
                    spectrum.add(sig, graph.num_events() as u64);
                }
            }
            2 => {
                if want_two {
                    pair::count_pairs(graph, delta, &mut spectrum, &mut arena);
                }
                if want_star {
                    star::count_wedges(graph, delta, &mut spectrum, &mut arena);
                }
            }
            3 => {
                if want_two {
                    pair::count_triples(graph, delta, &mut spectrum, &mut arena);
                }
                if want_star {
                    star::count_stars(graph, delta, &mut spectrum, &mut arena);
                }
                if want_triad {
                    triad::count_triads(graph, delta, &mut spectrum, &mut arena);
                }
            }
            _ => unreachable!("eligibility caps num_events at 3"),
        }
        spectrum
    }

    /// Projects one configuration's counts out of a computed spectrum:
    /// the classes overshoot both node bounds and signature targets (a
    /// star target computes all 24 star signatures), so the final split
    /// is this per-signature filter. Exact as long as `spectrum` was
    /// computed with at least [`StreamEngine::class_wants`]`(cfg)` —
    /// classes a config does not want only produce signatures this
    /// filter drops.
    pub(crate) fn project(spectrum: &MotifCounts, cfg: &EnumConfig) -> MotifCounts {
        spectrum
            .iter()
            .filter(|&(sig, n)| {
                n > 0
                    && sig.num_nodes() >= cfg.min_nodes
                    && sig.num_nodes() <= cfg.max_nodes
                    && cfg.signature_filter.is_none_or(|target| target == sig)
            })
            .collect()
    }

    /// The streaming fast path. Must only be called for eligible
    /// configurations.
    fn stream_count(graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        let delta = cfg.timing.delta_w.expect("eligible config has ΔW");
        let spectrum = Self::spectrum(graph, delta, cfg.num_events, Self::class_wants(cfg));
        Self::project(&spectrum, cfg)
    }
}

impl CountEngine for StreamEngine {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps {
            parallel: false,
            windowed_pruning: true,
            deterministic_enumeration: true,
            supports_signature_filter: true,
        }
    }

    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        if Self::eligible(cfg) {
            Self::stream_count(graph, cfg)
        } else {
            WindowedEngine.count(graph, cfg)
        }
    }

    /// Delegates to the walker: the fast path never materializes
    /// instances, so per-instance callbacks always run the windowed
    /// enumeration (deterministic serial start-event order).
    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    ) {
        WindowedEngine.enumerate(graph, cfg, callback);
    }
}

/// Number of distinct undirected digit pairs a signature touches (a
/// 3-node 3-event signature is a triangle iff this is 3, a star iff 2).
fn undirected_pairs_of(sig: &MotifSignature) -> usize {
    let mut seen: Vec<(u8, u8)> = Vec::with_capacity(sig.num_events());
    for &(a, b) in sig.pairs() {
        let key = (a.min(b), a.max(b));
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    seen.len()
}

/// Direct entry points into the three DP classes for benchmarks: each
/// runs one class end-to-end (arena included) and returns its counts.
/// Not part of the public API — the supported surface is
/// [`StreamEngine`]; these exist so the `hotpath_*` bench groups can
/// time one class without the spectrum dispatch around it.
#[doc(hidden)]
pub mod hotpath {
    use super::*;

    /// 3-event 2-node sequence DP over every node pair.
    pub fn pair_triples(graph: &TemporalGraph, delta: tnm_graph::Time) -> MotifCounts {
        let mut out = MotifCounts::new();
        pair::count_triples(graph, delta, &mut out, &mut DpArena::default());
        out
    }

    /// 3-event star sweeps over every center node.
    pub fn star_stars(graph: &TemporalGraph, delta: tnm_graph::Time) -> MotifCounts {
        let mut out = MotifCounts::new();
        star::count_stars(graph, delta, &mut out, &mut DpArena::default());
        out
    }

    /// 6-label triangle DP over every static triangle.
    pub fn triad_triads(graph: &TemporalGraph, delta: tnm_graph::Time) -> MotifCounts {
        let mut out = MotifCounts::new();
        triad::count_triads(graph, delta, &mut out, &mut DpArena::default());
        out
    }
}

/// Canonical signature of a direction sequence on one node pair: `dirs`
/// holds one bit per event (0 = same direction as a fixed pair
/// orientation, 1 = reversed). The canonical relabeling makes the result
/// orientation-independent.
fn two_node_signature(dirs: &[u8]) -> MotifSignature {
    let pairs: Vec<(u8, u8)> = dirs.iter().map(|&d| if d == 0 { (0, 1) } else { (1, 0) }).collect();
    MotifSignature::canonicalize(&pairs)
}

/// Canonical signature of a star/wedge event sequence at a center `C`
/// with leaves `A`/`B`: `legs[i]` names event `i`'s leaf and `dirs[i]`
/// its direction (0 = center → leaf).
fn star_signature(legs: &[u8], dirs: &[u8]) -> MotifSignature {
    const CENTER: u8 = 0;
    let pairs: Vec<(u8, u8)> = legs
        .iter()
        .zip(dirs)
        .map(|(&leaf, &d)| {
            let leaf = leaf + 1; // A = 1, B = 2; center is 0
            if d == 0 {
                (CENTER, leaf)
            } else {
                (leaf, CENTER)
            }
        })
        .collect();
    MotifSignature::canonicalize(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Timing;
    use crate::engine::BacktrackEngine;
    use crate::notation::sig;
    use tnm_graph::TemporalGraphBuilder;

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(tnm_graph::Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    fn w(delta: i64, k: usize, nodes: usize) -> EnumConfig {
        EnumConfig::new(k, nodes).with_timing(Timing::only_w(delta))
    }

    #[test]
    fn eligibility_predicate() {
        assert!(StreamEngine::eligible(&w(10, 3, 3)));
        assert!(StreamEngine::eligible(&w(10, 2, 4))); // 2e can't reach 4 nodes
        assert!(StreamEngine::eligible(&w(10, 1, 2)));
        assert!(!StreamEngine::eligible(&w(10, 3, 4))); // 4-node 3e exists
        assert!(!StreamEngine::eligible(&w(10, 4, 3))); // too many events
        assert!(!StreamEngine::eligible(&EnumConfig::new(3, 3))); // no ΔW
        assert!(!StreamEngine::eligible(
            &EnumConfig::new(3, 3).with_timing(Timing::both(5, 10)) // ΔC set
        ));
        assert!(!StreamEngine::eligible(&w(10, 3, 3).with_consecutive(true)));
        assert!(!StreamEngine::eligible(&w(10, 3, 3).with_static_induced(true)));
        assert!(!StreamEngine::eligible(&w(10, 3, 3).with_constrained(true)));
        let mut aware = w(10, 3, 3);
        aware.duration_aware = true;
        assert!(!StreamEngine::eligible(&aware));
    }

    #[test]
    fn triad_class_gating() {
        // Full 3-event spectrum on 3 nodes needs triangles...
        assert!(StreamEngine::needs_triads(&w(10, 3, 3)));
        // ...but a 2-node budget, a 2-event run, or an exact-2 slice
        // gates them off.
        assert!(!StreamEngine::needs_triads(&w(10, 3, 2)));
        assert!(!StreamEngine::needs_triads(&w(10, 2, 3)));
        assert!(!StreamEngine::needs_triads(&w(10, 3, 3).exact_nodes(2)));
        // Signature targets: triangles run only for triangle targets.
        let tri = EnumConfig::for_signature(sig("011202")).with_timing(Timing::only_w(10));
        let star = EnumConfig::for_signature(sig("010102")).with_timing(Timing::only_w(10));
        let two = EnumConfig::for_signature(sig("010101")).with_timing(Timing::only_w(10));
        assert!(StreamEngine::needs_triads(&tri));
        assert!(!StreamEngine::needs_triads(&star));
        assert!(!StreamEngine::needs_triads(&two));
    }

    #[test]
    fn figure1_network_matches_backtrack() {
        let g = graph(&[(0, 1, 3), (1, 2, 7), (1, 3, 8), (2, 0, 9), (0, 2, 11), (2, 3, 15)]);
        for k in [1usize, 2, 3] {
            for delta in [0i64, 2, 5, 8, 12, 100] {
                let cfg = w(delta, k, 3);
                assert!(StreamEngine::eligible(&cfg));
                assert_eq!(
                    StreamEngine.count(&g, &cfg),
                    BacktrackEngine.count(&g, &cfg),
                    "k={k} ΔW={delta}"
                );
            }
        }
    }

    #[test]
    fn equal_timestamps_never_co_occur() {
        // All events share one timestamp: nothing but 1-event motifs.
        let g = graph(&[(0, 1, 5), (1, 0, 5), (1, 2, 5), (2, 0, 5)]);
        let cfg = w(1000, 3, 3);
        let counts = StreamEngine.count(&g, &cfg);
        assert!(counts.is_empty(), "ties must not chain: {counts:?}");
        assert_eq!(StreamEngine.count(&g, &w(1000, 1, 2)).total(), 4);
    }

    #[test]
    fn node_bounds_and_signature_filter() {
        let g = graph(&[(0, 1, 1), (1, 2, 2), (0, 2, 3), (1, 0, 4), (2, 1, 5)]);
        let reference = BacktrackEngine.count(&g, &w(10, 3, 3));
        assert_eq!(StreamEngine.count(&g, &w(10, 3, 3)), reference);
        // Exact-3-node slice.
        let three = w(10, 3, 3).exact_nodes(3);
        assert_eq!(StreamEngine.count(&g, &three), BacktrackEngine.count(&g, &three));
        // 2-node-only budget skips stars and triads entirely.
        let two = w(10, 3, 2);
        assert_eq!(StreamEngine.count(&g, &two), BacktrackEngine.count(&g, &two));
        // Signature targeting is a post-filter on the fast path.
        let target = EnumConfig::for_signature(sig("011202")).with_timing(Timing::only_w(10));
        assert!(StreamEngine::eligible(&target));
        assert_eq!(StreamEngine.count(&g, &target), BacktrackEngine.count(&g, &target));
    }

    #[test]
    fn ineligible_configs_fall_back_to_windowed() {
        let g = graph(&[(0, 1, 1), (1, 2, 3), (0, 2, 5), (2, 0, 6)]);
        let cfg = EnumConfig::new(3, 3).with_timing(Timing::both(2, 5));
        assert!(!StreamEngine::eligible(&cfg));
        assert_eq!(StreamEngine.count(&g, &cfg), WindowedEngine.count(&g, &cfg));
        // enumerate always walks, even for eligible configs.
        let mut seen = 0usize;
        StreamEngine.enumerate(&g, &w(10, 3, 3), &mut |_| seen += 1);
        assert_eq!(seen as u64, BacktrackEngine.count(&g, &w(10, 3, 3)).total());
    }

    #[test]
    fn signature_helpers_are_canonical() {
        assert_eq!(two_node_signature(&[0, 0, 0]), sig("010101"));
        assert_eq!(two_node_signature(&[1, 0]), sig("0110")); // orientation-free
        assert_eq!(star_signature(&[0, 0, 1], &[0, 0, 0]), sig("010102"));
        assert_eq!(star_signature(&[0, 1, 0], &[0, 0, 1]), sig("010210"));
        // First event leaf-to-center: the leaf takes digit 0.
        assert_eq!(star_signature(&[0, 1], &[1, 0]), sig("0112"));
    }
}
