//! Triad counting: the 6-label δ-window merge DP per static triangle.
//!
//! A 3-node, 3-event motif that is neither a 2-node sequence nor a star
//! uses all three undirected node pairs of its node set — a temporal
//! triangle. Static triangles are enumerated once from the
//! [`StaticProjection`]; each triangle's events (up to six directed
//! edges) merge into one time-ordered list where every event carries a
//! 6-valued label — (undirected pair, direction) — and the generic
//! Paranjape window DP counts every strictly-ordered label triple within
//! ΔW. Only triples whose three labels cover all three pairs are folded
//! into signatures; the rest belong to the pair/star classes and are
//! discarded for free (their accumulator slots simply map to no
//! signature).
//!
//! Cost: `O(Σ_triangles events-on-the-triangle · 6)` — the WSDM'17
//! triangle bound — with a 48-entry label-triple → signature table
//! computed once per count.

// The DP tables are indexed by label/pair ids used across several
// tables per loop body; iterator forms would obscure the recurrences.
#![allow(clippy::needless_range_loop)]

use super::group_end_by;
use crate::count::MotifCounts;
use crate::notation::MotifSignature;
use tnm_graph::static_proj::global_projection_cache;
use tnm_graph::{Edge, NodeId, TemporalGraph, Time};

/// Labels: `pair * 2 + dir`, pairs 0 = {a,b}, 1 = {a,c}, 2 = {b,c} for
/// the triangle's sorted nodes `a < b < c`; dir 0 = lower → higher id.
const LABELS: usize = 6;

/// Counts every δ-window temporal triangle into `out`. The static
/// projection comes from the shared
/// [`global_projection_cache`], so a ΔW sweep over one graph builds it
/// (and can re-list its triangles) once per graph instead of once per
/// count.
pub fn count_triads(graph: &TemporalGraph, delta: Time, out: &mut MotifCounts) {
    let proj = global_projection_cache().get_or_build(graph);
    let sig_table = label_triple_signatures();
    let combos = closing_combos();
    // One flat accumulator over label triples, shared by all triangles:
    // the signature of a label triple is triangle-independent.
    let mut acc = [0u64; LABELS * LABELS * LABELS];
    let mut merged: Vec<(Time, u8)> = Vec::new(); // (timestamp, label)
    let obs = tnm_obs::enabled();
    let (mut triangles_swept, mut groups_advanced, mut peak_window) = (0u64, 0u64, 0u64);
    proj.for_each_undirected_triangle(|nodes| {
        collect_triangle_events(graph, nodes, &mut merged);
        if obs {
            triangles_swept += 1;
            groups_advanced += super::distinct_groups(&merged, |e| e.0);
            peak_window = peak_window.max(merged.len() as u64);
        }
        triangle_window_dp(&merged, delta, &combos, &mut acc);
    });
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.triad.triangles_swept").add(triangles_swept);
        reg.counter("stream.triad.groups_advanced").add(groups_advanced);
        reg.gauge("stream.triad.window_events").set(peak_window);
    }
    for (slot, &n) in acc.iter().enumerate() {
        if n > 0 {
            let sig = sig_table[slot].expect("only all-three-pairs slots accumulate");
            out.add(sig, n);
        }
    }
}

/// Gathers the triangle's events as `(timestamp, label)`, time-sorted.
/// The DP only needs timestamp *groups* — within-group order is
/// immaterial under the ties-never-co-occur rule — so the inline
/// timestamps both serve as the sort key and spare the DP a
/// per-comparison event-table indirection.
fn collect_triangle_events(graph: &TemporalGraph, nodes: [NodeId; 3], out: &mut Vec<(Time, u8)>) {
    out.clear();
    let [a, b, c] = nodes;
    for (pair, (lo, hi)) in [(a, b), (a, c), (b, c)].into_iter().enumerate() {
        for (dir, edge) in
            [Edge { src: lo, dst: hi }, Edge { src: hi, dst: lo }].into_iter().enumerate()
        {
            let label = (pair * 2 + dir) as u8;
            out.extend(graph.edge_events(edge).iter().map(|&idx| (graph.event(idx).time, label)));
        }
    }
    out.sort_unstable();
}

/// The label pairs `(l1, l2)` that close a triangle with a final event
/// on pair `p3`: both orders of the two other pairs, all four direction
/// combinations — eight per `p3`.
fn closing_combos() -> [[(usize, usize); 8]; 3] {
    let mut out = [[(0, 0); 8]; 3];
    for p3 in 0..3 {
        let [pa, pb]: [usize; 2] = match p3 {
            0 => [1, 2],
            1 => [0, 2],
            _ => [0, 1],
        };
        let mut slot = 0;
        for (x, y) in [(pa, pb), (pb, pa)] {
            for dx in 0..2 {
                for dy in 0..2 {
                    out[p3][slot] = (x * 2 + dx, y * 2 + dy);
                    slot += 1;
                }
            }
        }
    }
    out
}

/// The 6-label window DP: strictly-ordered in-window triples by label,
/// accumulated only into all-three-pairs slots.
fn triangle_window_dp(
    evs: &[(Time, u8)],
    delta: Time,
    combos: &[[(usize, usize); 8]; 3],
    acc: &mut [u64; LABELS * LABELS * LABELS],
) {
    let group_end = |i: usize| group_end_by(evs, i, |e| e.0);
    let mut counts1 = [0u64; LABELS];
    let mut counts2 = [[0u64; LABELS]; LABELS];
    let mut front = 0usize;
    let mut i = 0usize;
    while i < evs.len() {
        let t = evs[i].0;
        let g_end = group_end(i);
        while front < i && evs[front].0 < t - delta {
            let expire_end = group_end(front);
            for &(_, l) in &evs[front..expire_end] {
                counts1[l as usize] -= 1;
            }
            for &(_, l) in &evs[front..expire_end] {
                for l2 in 0..LABELS {
                    counts2[l as usize][l2] -= counts1[l2];
                }
            }
            front = expire_end;
        }
        // Close: only pair-disjoint (l1, l2) prefixes can complete a
        // triangle with this event's pair — the eight precomputed combos;
        // the other prefixes stay pure DP state.
        for &(_, l3) in &evs[i..g_end] {
            for &(l1, l2) in &combos[(l3 / 2) as usize] {
                acc[(l1 * LABELS + l2) * LABELS + l3 as usize] += counts2[l1][l2];
            }
        }
        // Push against the pre-group snapshot, then admit the group.
        for &(_, l) in &evs[i..g_end] {
            for l1 in 0..LABELS {
                counts2[l1][l as usize] += counts1[l1];
            }
        }
        for &(_, l) in &evs[i..g_end] {
            counts1[l as usize] += 1;
        }
        i = g_end;
    }
}

/// Signature per label triple; `None` unless the three labels cover all
/// three undirected pairs (those triples are stars or 2-node sequences,
/// counted by their own classes).
fn label_triple_signatures() -> Vec<Option<MotifSignature>> {
    // Symbolic endpoints per label: pair {a,b} → (0,1), {a,c} → (0,2),
    // {b,c} → (1,2); odd labels reverse.
    const ENDPOINTS: [(u8, u8); LABELS] = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
    let mut table = vec![None; LABELS * LABELS * LABELS];
    for l1 in 0..LABELS {
        for l2 in 0..LABELS {
            for l3 in 0..LABELS {
                let pairs = [l1 / 2, l2 / 2, l3 / 2];
                let covers_all = pairs.contains(&0) && pairs.contains(&1) && pairs.contains(&2);
                if covers_all {
                    let seq = [ENDPOINTS[l1], ENDPOINTS[l2], ENDPOINTS[l3]];
                    table[(l1 * LABELS + l2) * LABELS + l3] =
                        Some(MotifSignature::canonicalize(&seq));
                }
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use tnm_graph::{Event, TemporalGraphBuilder};

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn single_triangle() {
        let g = graph(&[(0, 1, 1), (1, 2, 2), (0, 2, 3)]);
        let mut c = MotifCounts::new();
        count_triads(&g, 10, &mut c);
        assert_eq!(c.get(sig("011202")), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn star_and_pair_prefixes_do_not_leak() {
        // Extra events on one pair create star/2-node triples that must
        // not surface as triangles.
        let g = graph(&[(0, 1, 1), (0, 1, 2), (1, 2, 3), (0, 2, 4)]);
        let mut c = MotifCounts::new();
        count_triads(&g, 10, &mut c);
        // Triangles: {e at 1 or 2} × (1→2) × (0→2) = 2 instances of 011202.
        assert_eq!(c.get(sig("011202")), 2);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn window_and_ties_respected() {
        let g = graph(&[(0, 1, 0), (1, 2, 0), (0, 2, 5)]);
        let mut c = MotifCounts::new();
        count_triads(&g, 10, &mut c);
        assert!(c.is_empty(), "tied first two events cannot chain: {c:?}");
        let g = graph(&[(0, 1, 0), (1, 2, 4), (0, 2, 9)]);
        for (delta, expect) in [(9i64, 1u64), (8, 0)] {
            let mut c = MotifCounts::new();
            count_triads(&g, delta, &mut c);
            assert_eq!(c.total(), expect, "ΔW={delta}");
        }
    }

    #[test]
    fn signature_table_has_48_entries() {
        let table = label_triple_signatures();
        assert_eq!(table.iter().flatten().count(), 48);
        // Directions matter: a→b, b→c, a→c is the feed-forward triangle.
        let idx = |l1: usize, l2: usize, l3: usize| (l1 * LABELS + l2) * LABELS + l3;
        assert_eq!(table[idx(0, 4, 2)], Some(sig("011202")));
        // a→b, c→b, a→c: 01, 21, 02.
        assert_eq!(table[idx(0, 5, 2)], Some(sig("012102")));
        assert_eq!(table[idx(0, 1, 2)], None, "two labels on one pair");
    }
}
