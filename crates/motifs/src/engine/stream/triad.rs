//! Triad counting: the 6-label δ-window merge DP per static triangle.
//!
//! A 3-node, 3-event motif that is neither a 2-node sequence nor a star
//! uses all three undirected node pairs of its node set — a temporal
//! triangle. Static triangles are enumerated once from the
//! [`StaticProjection`]; each triangle's events (up to six directed
//! edges) merge into one time-ordered list where every event carries a
//! 6-valued label — (undirected pair, direction) — and the generic
//! Paranjape window DP counts every strictly-ordered label triple within
//! ΔW. Only triples whose three labels cover all three pairs are folded
//! into signatures; the rest belong to the pair/star classes and are
//! discarded for free (their accumulator slots simply map to no
//! signature).
//!
//! Cost: `O(Σ_triangles events-on-the-triangle · 6)` — the WSDM'17
//! triangle bound — with a 48-entry label-triple → signature table
//! computed once per count.
//!
//! Data layout (see [`super::arena`]): each triangle's merged list is
//! built by a six-way cursor merge over its directed edge-event index
//! lists (event indices are globally time-ordered, so no sort is
//! needed) straight into the arena's SoA scratch — dense `times` plus
//! the 6-valued label in `tags`. Triangles are processed in
//! **footprint-sorted, cache-sized blocks**: work items carry their
//! merged-list length, are sorted ascending, and run in blocks whose
//! combined footprint fits [`BLOCK_EVENT_BUDGET`], so the arena and DP
//! tables stay resident while the bulk of small triangles stream
//! through, and the few giant lists are quarantined at the end instead
//! of evicting the scratch mid-stream. Accumulation is commutative
//! sums, so the reordering cannot change any count.

// The DP tables are indexed by label/pair ids used across several
// tables per loop body; iterator forms would obscure the recurrences.
#![allow(clippy::needless_range_loop)]

use super::arena::{expiry_cut, DenseGroups, DpArena, GroupMap, SealedGroups};
use crate::count::MotifCounts;
use crate::notation::MotifSignature;
use tnm_graph::static_proj::global_projection_cache;
use tnm_graph::{Edge, EventIdx, NodeId, TemporalGraph, Time};

/// Labels: `pair * 2 + dir`, pairs 0 = {a,b}, 1 = {a,c}, 2 = {b,c} for
/// the triangle's sorted nodes `a < b < c`; dir 0 = lower → higher id.
const LABELS: usize = 6;

/// Combined merged-event budget per processing block: 2^15 events ≈
/// 0.75 MiB of arena scratch (8 B time + 1 B tag, doubled for slack) —
/// comfortably L2-resident on the targeted cores.
const BLOCK_EVENT_BUDGET: usize = 1 << 15;

/// Counts every δ-window temporal triangle into `out`. The static
/// projection comes from the shared
/// [`global_projection_cache`], so a ΔW sweep over one graph builds it
/// (and can re-list its triangles) once per graph instead of once per
/// count.
pub(crate) fn count_triads(
    graph: &TemporalGraph,
    delta: Time,
    out: &mut MotifCounts,
    arena: &mut DpArena,
) {
    let proj = global_projection_cache().get_or_build(graph);
    let sig_table = label_triple_signatures();
    let combos = closing_combos();
    // One flat accumulator over label triples, shared by all triangles:
    // the signature of a label triple is triangle-independent.
    let mut acc = [0u64; LABELS * LABELS * LABELS];
    let obs = tnm_obs::enabled();
    let (mut triangles_swept, mut groups_advanced, mut peak_window) = (0u64, 0u64, 0u64);
    let tie_free = !graph.columns().has_time_ties();
    // Gather work items with their merged-list footprint, then sort so
    // blocks hold triangles of similar size (see module docs).
    let mut work: Vec<(u32, [NodeId; 3])> = Vec::new();
    proj.for_each_undirected_triangle(|nodes| {
        work.push((triangle_footprint(graph, nodes), nodes));
    });
    work.sort_unstable_by_key(|&(footprint, _)| footprint);
    let mut i = 0usize;
    while i < work.len() {
        let start = i;
        let mut block_events = 0usize;
        // A block always advances (the first item is admitted even when
        // it alone exceeds the budget).
        while i < work.len()
            && (i == start || block_events + work[i].0 as usize <= BLOCK_EVENT_BUDGET)
        {
            block_events += work[i].0 as usize;
            i += 1;
        }
        // The block's largest footprint comes last (sorted order): one
        // reserve covers every triangle in the block.
        arena.times.reserve(work[i - 1].0 as usize);
        arena.tags.reserve(work[i - 1].0 as usize);
        for &(_, nodes) in &work[start..i] {
            merge_triangle_events(graph, nodes, arena);
            if tie_free {
                let groups = DenseGroups(arena.times.len());
                if obs {
                    triangles_swept += 1;
                    groups_advanced += groups.num_groups() as u64;
                    peak_window = peak_window.max(arena.times.len() as u64);
                }
                triangle_window_dp(&arena.times, &arena.tags, &groups, delta, &combos, &mut acc);
            } else {
                arena.seal_groups();
                if obs {
                    triangles_swept += 1;
                    groups_advanced += arena.num_groups() as u64;
                    peak_window = peak_window.max(arena.times.len() as u64);
                }
                let groups = SealedGroups(&arena.bounds);
                triangle_window_dp(&arena.times, &arena.tags, &groups, delta, &combos, &mut acc);
            }
        }
    }
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.triad.triangles_swept").add(triangles_swept);
        reg.counter("stream.triad.groups_advanced").add(groups_advanced);
        reg.gauge("stream.triad.window_events").set(peak_window);
    }
    for (slot, &n) in acc.iter().enumerate() {
        if n > 0 {
            let sig = sig_table[slot].expect("only all-three-pairs slots accumulate");
            out.add(sig, n);
        }
    }
}

/// The triangle's six directed edge-event lists, labels 0..=5 in the
/// canonical (pair, dir) order.
fn edge_lists(graph: &TemporalGraph, nodes: [NodeId; 3]) -> [&[EventIdx]; LABELS] {
    let [a, b, c] = nodes;
    let mut lists: [&[EventIdx]; LABELS] = [&[]; LABELS];
    for (pair, (lo, hi)) in [(a, b), (a, c), (b, c)].into_iter().enumerate() {
        lists[pair * 2] = graph.edge_events(Edge { src: lo, dst: hi });
        lists[pair * 2 + 1] = graph.edge_events(Edge { src: hi, dst: lo });
    }
    lists
}

/// Total merged-list length for a triangle — its work-item footprint.
fn triangle_footprint(graph: &TemporalGraph, nodes: [NodeId; 3]) -> u32 {
    edge_lists(graph, nodes).iter().map(|l| l.len() as u32).sum()
}

/// Merges the triangle's six directed edge-event lists into the arena
/// as a time-ordered labeled list. Event indices are assigned in
/// global time order, so a six-cursor min-merge on the indices
/// replaces the old collect-then-sort; the DP only needs timestamp
/// *groups* (within-group order is immaterial under the
/// ties-never-co-occur rule), and timestamps come from the dense SoA
/// time column. Callers seal the group boundaries only when the log
/// has timestamp ties.
fn merge_triangle_events(graph: &TemporalGraph, nodes: [NodeId; 3], arena: &mut DpArena) {
    arena.clear();
    let lists = edge_lists(graph, nodes);
    let times = graph.times();
    let mut cursor = [0usize; LABELS];
    loop {
        let mut best: Option<(u32, usize)> = None;
        for l in 0..LABELS {
            if let Some(&idx) = lists[l].get(cursor[l]) {
                if best.is_none_or(|(min_idx, _)| idx < min_idx) {
                    best = Some((idx, l));
                }
            }
        }
        let Some((idx, l)) = best else { break };
        cursor[l] += 1;
        arena.times.push(times[idx as usize]);
        arena.tags.push(l as u8);
    }
}

/// The label pairs `(l1, l2)` that close a triangle with a final event
/// on pair `p3`: both orders of the two other pairs, all four direction
/// combinations — eight per `p3`.
fn closing_combos() -> [[(usize, usize); 8]; 3] {
    let mut out = [[(0, 0); 8]; 3];
    for p3 in 0..3 {
        let [pa, pb]: [usize; 2] = match p3 {
            0 => [1, 2],
            1 => [0, 2],
            _ => [0, 1],
        };
        let mut slot = 0;
        for (x, y) in [(pa, pb), (pb, pa)] {
            for dx in 0..2 {
                for dy in 0..2 {
                    out[p3][slot] = (x * 2 + dx, y * 2 + dy);
                    slot += 1;
                }
            }
        }
    }
    out
}

/// The 6-label window DP: strictly-ordered in-window triples by label,
/// accumulated only into all-three-pairs slots. Runs over the arena's
/// SoA slices, advancing by whole timestamp groups through the group
/// map; `counts2` is a flat 36-slot table so every push, pop, and
/// close is an unconditional indexed add.
fn triangle_window_dp<B: GroupMap>(
    times: &[Time],
    labels: &[u8],
    groups: &B,
    delta: Time,
    combos: &[[(usize, usize); 8]; 3],
    acc: &mut [u64; LABELS * LABELS * LABELS],
) {
    let mut counts1 = [0u64; LABELS];
    let mut counts2 = [0u64; LABELS * LABELS]; // [l1 * LABELS + l2]
    let mut front = 0usize;
    for g in 0..groups.num_groups() {
        let (start, end) = (groups.start(g), groups.start(g + 1));
        let t = times[start];
        let cut = expiry_cut(times, groups, front, g, t - delta);
        while front < cut {
            let (gs, ge) = (groups.start(front), groups.start(front + 1));
            for &l in &labels[gs..ge] {
                counts1[l as usize] -= 1;
            }
            for &l in &labels[gs..ge] {
                let base = l as usize * LABELS;
                for l2 in 0..LABELS {
                    counts2[base + l2] -= counts1[l2];
                }
            }
            front += 1;
        }
        // Close: only pair-disjoint (l1, l2) prefixes can complete a
        // triangle with this event's pair — the eight precomputed combos;
        // the other prefixes stay pure DP state.
        for &l3 in &labels[start..end] {
            for &(l1, l2) in &combos[(l3 / 2) as usize] {
                acc[(l1 * LABELS + l2) * LABELS + l3 as usize] += counts2[l1 * LABELS + l2];
            }
        }
        // Push against the pre-group snapshot, then admit the group.
        for &l in &labels[start..end] {
            for l1 in 0..LABELS {
                counts2[l1 * LABELS + l as usize] += counts1[l1];
            }
        }
        for &l in &labels[start..end] {
            counts1[l as usize] += 1;
        }
    }
}

/// Signature per label triple; `None` unless the three labels cover all
/// three undirected pairs (those triples are stars or 2-node sequences,
/// counted by their own classes).
fn label_triple_signatures() -> Vec<Option<MotifSignature>> {
    // Symbolic endpoints per label: pair {a,b} → (0,1), {a,c} → (0,2),
    // {b,c} → (1,2); odd labels reverse.
    const ENDPOINTS: [(u8, u8); LABELS] = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
    let mut table = vec![None; LABELS * LABELS * LABELS];
    for l1 in 0..LABELS {
        for l2 in 0..LABELS {
            for l3 in 0..LABELS {
                let pairs = [l1 / 2, l2 / 2, l3 / 2];
                let covers_all = pairs.contains(&0) && pairs.contains(&1) && pairs.contains(&2);
                if covers_all {
                    let seq = [ENDPOINTS[l1], ENDPOINTS[l2], ENDPOINTS[l3]];
                    table[(l1 * LABELS + l2) * LABELS + l3] =
                        Some(MotifSignature::canonicalize(&seq));
                }
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use tnm_graph::{Event, TemporalGraphBuilder};

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    fn triads(g: &TemporalGraph, delta: Time) -> MotifCounts {
        let mut c = MotifCounts::new();
        count_triads(g, delta, &mut c, &mut DpArena::default());
        c
    }

    #[test]
    fn single_triangle() {
        let g = graph(&[(0, 1, 1), (1, 2, 2), (0, 2, 3)]);
        let c = triads(&g, 10);
        assert_eq!(c.get(sig("011202")), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn star_and_pair_prefixes_do_not_leak() {
        // Extra events on one pair create star/2-node triples that must
        // not surface as triangles.
        let g = graph(&[(0, 1, 1), (0, 1, 2), (1, 2, 3), (0, 2, 4)]);
        let c = triads(&g, 10);
        // Triangles: {e at 1 or 2} × (1→2) × (0→2) = 2 instances of 011202.
        assert_eq!(c.get(sig("011202")), 2);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn window_and_ties_respected() {
        let g = graph(&[(0, 1, 0), (1, 2, 0), (0, 2, 5)]);
        let c = triads(&g, 10);
        assert!(c.is_empty(), "tied first two events cannot chain: {c:?}");
        let g = graph(&[(0, 1, 0), (1, 2, 4), (0, 2, 9)]);
        for (delta, expect) in [(9i64, 1u64), (8, 0)] {
            let c = triads(&g, delta);
            assert_eq!(c.total(), expect, "ΔW={delta}");
        }
    }

    #[test]
    fn merge_matches_sort_order() {
        // Interleaved events across all six directed edges: the cursor
        // merge must produce the same time order a sort would.
        let g = graph(&[
            (0, 1, 1),
            (1, 0, 2),
            (0, 2, 3),
            (2, 0, 4),
            (1, 2, 5),
            (2, 1, 6),
            (0, 1, 7),
            (2, 1, 7),
        ]);
        let mut arena = DpArena::default();
        merge_triangle_events(&g, [NodeId(0), NodeId(1), NodeId(2)], &mut arena);
        assert_eq!(arena.times, vec![1, 2, 3, 4, 5, 6, 7, 7]);
        let mut sorted = arena.times.clone();
        sorted.sort_unstable();
        assert_eq!(arena.times, sorted);
        arena.seal_groups();
        assert_eq!(arena.num_groups(), 7);
    }

    #[test]
    fn signature_table_has_48_entries() {
        let table = label_triple_signatures();
        assert_eq!(table.iter().flatten().count(), 48);
        // Directions matter: a→b, b→c, a→c is the feed-forward triangle.
        let idx = |l1: usize, l2: usize, l3: usize| (l1 * LABELS + l2) * LABELS + l3;
        assert_eq!(table[idx(0, 4, 2)], Some(sig("011202")));
        // a→b, c→b, a→c: 01, 21, 02.
        assert_eq!(table[idx(0, 5, 2)], Some(sig("012102")));
        assert_eq!(table[idx(0, 1, 2)], None, "two labels on one pair");
    }
}
