//! Star and wedge counting: per-center streaming over incident events.
//!
//! A 3-node star motif has a center `C` and two distinct leaves; all
//! three events run between the center and a leaf. Counting them without
//! enumeration follows Paranjape et al.'s decomposition by the position
//! of the *lone* event (the one on the minority leaf):
//!
//! * **pre** — the same-leaf pair comes first (`lone` is event 3):
//!   `E12 − E123`,
//! * **post** — the same-leaf pair comes last (`lone` is event 1):
//!   `E23 − E123`,
//! * **peri** — the pair straddles the lone event (`lone` is event 2):
//!   `E13 − E123`,
//!
//! where `E12`/`E23`/`E13` count strictly-ordered in-window event
//! triples incident to the center whose named positions share a leaf
//! (the third position unconstrained) and `E123` counts the all-one-leaf
//! triples. The subtraction removes exactly the 2-node sequences, which
//! the [`pair`](super::pair) class counts instead; triples with three
//! distinct leaves (4-node motifs) never enter any `E` table, and a
//! triangle's third edge is not incident to the center at all — so the
//! classes stay disjoint.
//!
//! `E12` falls out of a past-window sweep (same-leaf pair counts before
//! each event), `E23` of a future-window sweep, and the coupled `E13` of
//! a prefix identity: the same-leaf δ-pairs straddling time `t` are
//! those *started* before `t` minus those *finished* by `t`, both of
//! which are running sums over the per-event pair counts (`pstart`,
//! `pend`) the two sweeps already produced. Everything is `O(events at
//! the center)` per center with `O(nodes)` reusable scratch.
//!
//! Data layout (see [`super::arena`]): the center's incident list lives
//! in the arena's SoA scratch — dense `times` plus `aux` packing
//! `nbr << 1 | dir` — with the timestamp-group boundary array computed
//! **once** per center and shared by all three sweeps; tie-free logs
//! never build it at all, sweeping per-event through the identity
//! [`DenseGroups`] map instead. The straddle
//! tables are flat bit-indexed `[u64; K]` accumulators (`(d1 << 2) |
//! (d2 << 1) | d3` for triples), merged into per-lone-position totals
//! once per center, so every table update is an unconditional indexed
//! add.

use super::arena::{expiry_cut, DenseGroups, DpArena, GroupMap, SealedGroups};
use super::star_signature;
use crate::count::MotifCounts;
use tnm_graph::{NodeId, TemporalGraph, Time};

/// Per-direction triple counts, indexed `(d1 << 2) | (d2 << 1) | d3`.
type Triples = [u64; 8];

/// Reusable per-center tables; neighbor-indexed scratch is sized once
/// to the graph's node count and wiped via the center's own event list.
struct CenterScratch {
    /// In-window events per `(neighbor << 1) | dir`.
    cnt_nbr: Vec<u64>,
    /// In-window same-leaf ordered pairs per `nbr * 4 + ((d1 << 1) | d2)`.
    per_nbr_pair: Vec<u64>,
    /// Same-leaf δ-pairs ending at each event (`[d1]` of the earlier).
    pend: Vec<[u64; 2]>,
    /// Same-leaf δ-pairs starting at each event (`[d3]` of the later).
    pstart: Vec<[u64; 2]>,
}

impl CenterScratch {
    fn new(num_nodes: usize) -> Self {
        CenterScratch {
            cnt_nbr: vec![0; num_nodes * 2],
            per_nbr_pair: vec![0; num_nodes * 4],
            pend: Vec::new(),
            pstart: Vec::new(),
        }
    }

    /// Zeroes the neighbor-indexed tables touched by this center.
    fn wipe_nbr_tables(&mut self, aux: &[u32]) {
        for &a in aux {
            let nbr = (a >> 1) as usize;
            self.cnt_nbr[nbr * 2] = 0;
            self.cnt_nbr[nbr * 2 + 1] = 0;
            self.per_nbr_pair[nbr * 4..nbr * 4 + 4].fill(0);
        }
    }
}

/// Unpacks an `aux` entry into `(nbr_base2, nbr_base4, dir)` — the two
/// table base offsets plus the direction bit.
#[inline]
fn unpack(a: u32) -> (usize, usize, usize) {
    let nbr = (a >> 1) as usize;
    (nbr * 2, nbr * 4, (a & 1) as usize)
}

/// Loads the center's incident events into the arena (already
/// time-ordered: the node index stores event indices in global time
/// order), reading endpoints from the dense SoA columns. Callers seal
/// the group boundaries only when the log has timestamp ties; tie-free
/// centers sweep with the identity [`DenseGroups`] map instead.
fn load(graph: &TemporalGraph, center: NodeId, arena: &mut DpArena) {
    arena.clear();
    let cols = graph.columns();
    let (times, srcs, dsts) = (cols.times(), cols.srcs(), cols.dsts());
    let list = graph.node_events(center);
    arena.times.reserve(list.len());
    arena.aux.reserve(list.len());
    for &idx in list {
        let i = idx as usize;
        let (nbr, dir) = if srcs[i] == center.0 { (dsts[i], 0u32) } else { (srcs[i], 1u32) };
        arena.times.push(times[i]);
        arena.aux.push((nbr << 1) | dir);
    }
}

/// Runs the three sweeps of one center under the given group map.
fn center_sweeps<B: GroupMap>(
    scratch: &mut CenterScratch,
    arena: &DpArena,
    delta: Time,
    groups: &B,
) -> (Triples, Triples, Triples, Triples) {
    let (e12, e123) = forward_sweep(scratch, arena, delta, groups);
    let e23 = future_sweep(scratch, arena, delta, groups);
    let e13 = straddle_sweep(scratch, arena, groups);
    (e12, e123, e23, e13)
}

/// Counts every 3-event, exactly-2-leaf star into `out`.
pub(crate) fn count_stars(
    graph: &TemporalGraph,
    delta: Time,
    out: &mut MotifCounts,
    arena: &mut DpArena,
) {
    let mut scratch = CenterScratch::new(graph.num_nodes() as usize);
    // lone[pos][(d1 << 2) | (d2 << 1) | d3]: stars whose minority-leaf
    // event sits at `pos`, summed over all centers.
    let mut lone = [Triples::default(); 3];
    let obs = tnm_obs::enabled();
    let (mut centers_swept, mut peak_events) = (0u64, 0u64);
    let tie_free = !graph.columns().has_time_ties();
    for c in 0..graph.num_nodes() {
        load(graph, NodeId(c), arena);
        if arena.times.len() < 3 {
            continue;
        }
        if obs {
            centers_swept += 1;
            peak_events = peak_events.max(arena.times.len() as u64);
        }
        let (e12, e123, e23, e13) = if tie_free {
            center_sweeps(&mut scratch, arena, delta, &DenseGroups(arena.times.len()))
        } else {
            arena.seal_groups();
            let groups = SealedGroups(&arena.bounds);
            center_sweeps(&mut scratch, arena, delta, &groups)
        };
        // Merge the per-center tables into the lone-position totals in
        // one flat pass — one add per signature slot, no bit unpacking.
        for s in 0..8 {
            lone[2][s] += e12[s] - e123[s];
            lone[0][s] += e23[s] - e123[s];
            lone[1][s] += e13[s] - e123[s];
        }
    }
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.star.centers_swept").add(centers_swept);
        reg.gauge("stream.star.center_events").set(peak_events);
    }
    // Leaf layout per lone position: the minority leaf is B, the pair
    // leaf A; canonicalization makes the naming immaterial.
    const LEGS: [[u8; 3]; 3] = [[1, 0, 0], [0, 1, 0], [0, 0, 1]];
    for (pos, legs) in LEGS.iter().enumerate() {
        for (slot, &n) in lone[pos].iter().enumerate() {
            if n > 0 {
                let dirs = [(slot >> 2) as u8 & 1, (slot >> 1) as u8 & 1, slot as u8 & 1];
                out.add(star_signature(legs, &dirs), n);
            }
        }
    }
}

/// Counts every 2-event wedge (two events sharing exactly the center)
/// into `out`.
pub(crate) fn count_wedges(
    graph: &TemporalGraph,
    delta: Time,
    out: &mut MotifCounts,
    arena: &mut DpArena,
) {
    let mut scratch = CenterScratch::new(graph.num_nodes() as usize);
    // acc[(d1 << 1) | d2].
    let mut acc = [0u64; 4];
    let obs = tnm_obs::enabled();
    let (mut centers_swept, mut peak_events) = (0u64, 0u64);
    let tie_free = !graph.columns().has_time_ties();
    for c in 0..graph.num_nodes() {
        load(graph, NodeId(c), arena);
        if arena.times.len() < 2 {
            continue;
        }
        if obs {
            centers_swept += 1;
            peak_events = peak_events.max(arena.times.len() as u64);
        }
        if tie_free {
            wedge_center_dp(&mut scratch, arena, delta, &DenseGroups(arena.times.len()), &mut acc);
        } else {
            arena.seal_groups();
            let groups = SealedGroups(&arena.bounds);
            wedge_center_dp(&mut scratch, arena, delta, &groups, &mut acc);
        }
    }
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.star.centers_swept").add(centers_swept);
        reg.gauge("stream.star.center_events").set(peak_events);
    }
    for (slot, &n) in acc.iter().enumerate() {
        if n > 0 {
            out.add(star_signature(&[0, 1], &[(slot >> 1) as u8 & 1, slot as u8 & 1]), n);
        }
    }
}

/// One center's wedge DP under the given group map.
fn wedge_center_dp<B: GroupMap>(
    scratch: &mut CenterScratch,
    arena: &DpArena,
    delta: Time,
    groups: &B,
    acc: &mut [u64; 4],
) {
    let (times, aux) = (&arena.times[..], &arena.aux[..]);
    let mut cnt_any = [0u64; 2];
    let mut front = 0usize;
    for g in 0..groups.num_groups() {
        let (start, end) = (groups.start(g), groups.start(g + 1));
        let t = times[start];
        let cut = expiry_cut(times, groups, front, g, t - delta);
        while front < cut {
            let (gs, ge) = (groups.start(front), groups.start(front + 1));
            for &a in &aux[gs..ge] {
                let (b2, _, dir) = unpack(a);
                cnt_any[dir] -= 1;
                scratch.cnt_nbr[b2 | dir] -= 1;
            }
            front += 1;
        }
        for &a in &aux[start..end] {
            let (b2, _, dir) = unpack(a);
            // Any in-window predecessor on a *different* leaf.
            acc[dir] += cnt_any[0] - scratch.cnt_nbr[b2];
            acc[2 | dir] += cnt_any[1] - scratch.cnt_nbr[b2 | 1];
        }
        for &a in &aux[start..end] {
            let (b2, _, dir) = unpack(a);
            cnt_any[dir] += 1;
            scratch.cnt_nbr[b2 | dir] += 1;
        }
    }
    scratch.wipe_nbr_tables(aux);
}

/// Past-window sweep: fills `pend` and returns `(E12, E123)`.
fn forward_sweep<B: GroupMap>(
    scratch: &mut CenterScratch,
    arena: &DpArena,
    delta: Time,
    groups: &B,
) -> (Triples, Triples) {
    let (times, aux) = (&arena.times[..], &arena.aux[..]);
    let mut e12 = Triples::default();
    let mut e123 = Triples::default();
    // same_pair[(d1 << 1) | d2].
    let mut same_pair = [0u64; 4];
    scratch.pend.clear();
    scratch.pend.resize(times.len(), [0; 2]);
    let mut front = 0usize;
    for g in 0..groups.num_groups() {
        let (start, end) = (groups.start(g), groups.start(g + 1));
        let t = times[start];
        // Expire whole timestamp groups below the window start.
        let cut = expiry_cut(times, groups, front, g, t - delta);
        while front < cut {
            let (gs, ge) = (groups.start(front), groups.start(front + 1));
            for &a in &aux[gs..ge] {
                let (b2, _, dir) = unpack(a);
                scratch.cnt_nbr[b2 | dir] -= 1;
            }
            for &a in &aux[gs..ge] {
                let (b2, b4, dir) = unpack(a);
                // Retract the expired event's open pairs: everything
                // left on its leaf is strictly later.
                let (c0, c1) = (scratch.cnt_nbr[b2], scratch.cnt_nbr[b2 | 1]);
                let d = dir << 1;
                same_pair[d] -= c0;
                same_pair[d | 1] -= c1;
                scratch.per_nbr_pair[b4 + d] -= c0;
                scratch.per_nbr_pair[b4 + d + 1] -= c1;
            }
            front += 1;
        }
        // Close each group member as the last event of a triple.
        for (&a, slot) in aux[start..end].iter().zip(&mut scratch.pend[start..end]) {
            let (b2, b4, dir) = unpack(a);
            *slot = [scratch.cnt_nbr[b2], scratch.cnt_nbr[b2 | 1]];
            e12[dir] += same_pair[0];
            e12[2 | dir] += same_pair[1];
            e12[4 | dir] += same_pair[2];
            e12[6 | dir] += same_pair[3];
            e123[dir] += scratch.per_nbr_pair[b4];
            e123[2 | dir] += scratch.per_nbr_pair[b4 + 1];
            e123[4 | dir] += scratch.per_nbr_pair[b4 + 2];
            e123[6 | dir] += scratch.per_nbr_pair[b4 + 3];
        }
        // Push: pair against the pre-group snapshot, then admit.
        for &a in &aux[start..end] {
            let (b2, b4, dir) = unpack(a);
            let (c0, c1) = (scratch.cnt_nbr[b2], scratch.cnt_nbr[b2 | 1]);
            same_pair[dir] += c0;
            same_pair[2 | dir] += c1;
            scratch.per_nbr_pair[b4 + dir] += c0;
            scratch.per_nbr_pair[b4 + 2 + dir] += c1;
        }
        for &a in &aux[start..end] {
            let (b2, _, dir) = unpack(a);
            scratch.cnt_nbr[b2 | dir] += 1;
        }
    }
    scratch.wipe_nbr_tables(aux);
    (e12, e123)
}

/// Future-window sweep: fills `pstart` and returns `E23`.
fn future_sweep<B: GroupMap>(
    scratch: &mut CenterScratch,
    arena: &DpArena,
    delta: Time,
    groups: &B,
) -> Triples {
    let (times, aux) = (&arena.times[..], &arena.aux[..]);
    let num_groups = groups.num_groups();
    let mut e23 = Triples::default();
    let mut same_pair = [0u64; 4];
    scratch.pstart.clear();
    scratch.pstart.resize(times.len(), [0; 2]);
    // Window edges as *group* indices over the shared group map.
    let (mut ws, mut we) = (0usize, 0usize);
    for g in 0..num_groups {
        let (start, end) = (groups.start(g), groups.start(g + 1));
        let t = times[start];
        // Drop everything at or before the current time: pop pushed
        // groups (retracting their open pairs), skip never-pushed ones.
        while ws < num_groups && times[groups.start(ws)] <= t {
            if ws < we {
                let (gs, ge) = (groups.start(ws), groups.start(ws + 1));
                for &a in &aux[gs..ge] {
                    let (b2, _, dir) = unpack(a);
                    scratch.cnt_nbr[b2 | dir] -= 1;
                }
                for &a in &aux[gs..ge] {
                    let (b2, _, dir) = unpack(a);
                    let d = dir << 1;
                    same_pair[d] -= scratch.cnt_nbr[b2];
                    same_pair[d | 1] -= scratch.cnt_nbr[b2 | 1];
                }
            } else {
                we = ws + 1;
            }
            ws += 1;
        }
        // Admit groups within (t, t + ΔW], newest-last.
        while we < num_groups && times[groups.start(we)] <= t + delta {
            let (gs, ge) = (groups.start(we), groups.start(we + 1));
            for &a in &aux[gs..ge] {
                let (b2, _, dir) = unpack(a);
                same_pair[dir] += scratch.cnt_nbr[b2];
                same_pair[2 | dir] += scratch.cnt_nbr[b2 | 1];
            }
            for &a in &aux[gs..ge] {
                let (b2, _, dir) = unpack(a);
                scratch.cnt_nbr[b2 | dir] += 1;
            }
            we += 1;
        }
        // Close each group member as the first event of a triple.
        for (&a, slot) in aux[start..end].iter().zip(&mut scratch.pstart[start..end]) {
            let (b2, _, dir) = unpack(a);
            *slot = [scratch.cnt_nbr[b2], scratch.cnt_nbr[b2 | 1]];
            let d = dir << 2;
            e23[d] += same_pair[0];
            e23[d | 1] += same_pair[1];
            e23[d | 2] += same_pair[2];
            e23[d | 3] += same_pair[3];
        }
    }
    scratch.wipe_nbr_tables(aux);
    e23
}

/// Running-sum sweep over `pend`/`pstart`: returns `E13`.
///
/// The same-leaf δ-pairs straddling an event at time `t` are exactly
/// those whose first element lies before `t` (`F`, the running sum of
/// `pstart` over events with time < `t`) minus those fully finished by
/// `t` (`G`, the running sum of `pend` over events with time ≤ `t` —
/// a pair ending *at* `t` cannot straddle it under strict ordering).
fn straddle_sweep<B: GroupMap>(scratch: &CenterScratch, arena: &DpArena, groups: &B) -> Triples {
    let (times, aux) = (&arena.times[..], &arena.aux[..]);
    let mut e13 = Triples::default();
    // f[(d1 << 1) | d3], g[(d1 << 1) | d3].
    let mut f = [0u64; 4];
    let mut gsum = [0u64; 4];
    let (mut fx, mut gy) = (0usize, 0usize);
    for g in 0..groups.num_groups() {
        let (start, end) = (groups.start(g), groups.start(g + 1));
        let t = times[start];
        while fx < times.len() && times[fx] < t {
            let d = (aux[fx] & 1) << 1;
            f[d as usize] += scratch.pstart[fx][0];
            f[(d | 1) as usize] += scratch.pstart[fx][1];
            fx += 1;
        }
        while gy < times.len() && times[gy] <= t {
            let d = aux[gy] & 1;
            gsum[d as usize] += scratch.pend[gy][0];
            gsum[(2 | d) as usize] += scratch.pend[gy][1];
            gy += 1;
        }
        for &a in &aux[start..end] {
            let dir = (a & 1) as usize;
            let d = dir << 1;
            e13[d] += f[0] - gsum[0];
            e13[d | 1] += f[1] - gsum[1];
            e13[4 | d] += f[2] - gsum[2];
            e13[4 | d | 1] += f[3] - gsum[3];
        }
    }
    e13
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use tnm_graph::{Event, TemporalGraphBuilder};

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    fn stars(g: &TemporalGraph, delta: Time) -> MotifCounts {
        let mut c = MotifCounts::new();
        count_stars(g, delta, &mut c, &mut DpArena::default());
        c
    }

    #[test]
    fn out_star_pre_post_peri() {
        // Center 0 sends to leaves 1, 1, 2 — lone event last: 010102.
        let g = graph(&[(0, 1, 1), (0, 1, 2), (0, 2, 3)]);
        let c = stars(&g, 10);
        assert_eq!(c.get(sig("010102")), 1);
        assert_eq!(c.total(), 1);
        // Lone event in the middle: 0→1, 0→2, 0→1 = 010201.
        let g = graph(&[(0, 1, 1), (0, 2, 2), (0, 1, 3)]);
        let c = stars(&g, 10);
        assert_eq!(c.get(sig("010201")), 1);
        assert_eq!(c.total(), 1);
        // Lone event first: 0→2, 0→1, 0→1 = 010202.
        let g = graph(&[(0, 2, 1), (0, 1, 2), (0, 1, 3)]);
        let c = stars(&g, 10);
        assert_eq!(c.get(sig("010202")), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn two_node_triples_are_subtracted() {
        // All three events on one leaf: a 2-node sequence, not a star.
        let g = graph(&[(0, 1, 1), (0, 1, 2), (1, 0, 3)]);
        let c = stars(&g, 10);
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn three_distinct_leaves_are_excluded() {
        // A 4-node star: no exactly-2-leaf triple exists.
        let g = graph(&[(0, 1, 1), (0, 2, 2), (0, 3, 3)]);
        let c = stars(&g, 10);
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn window_bounds_the_whole_triple() {
        let g = graph(&[(0, 1, 0), (0, 1, 5), (0, 2, 10)]);
        for (delta, expect) in [(10i64, 1u64), (9, 0)] {
            let c = stars(&g, delta);
            assert_eq!(c.total(), expect, "ΔW={delta}");
        }
    }

    #[test]
    fn wedges_by_direction_and_ties() {
        // 0→1 then 2→0 share only node 0: 0120... wait: events (0,1),(2,0)
        // canonicalize to 01, 20 = "0120". A tie at t=1 contributes nothing.
        let g = graph(&[(0, 1, 1), (2, 0, 1), (2, 0, 3)]);
        let mut c = MotifCounts::new();
        count_wedges(&g, 5, &mut c, &mut DpArena::default());
        assert_eq!(c.get(sig("0120")), 1);
        assert_eq!(c.total(), 1);
    }
}
