//! Star and wedge counting: per-center streaming over incident events.
//!
//! A 3-node star motif has a center `C` and two distinct leaves; all
//! three events run between the center and a leaf. Counting them without
//! enumeration follows Paranjape et al.'s decomposition by the position
//! of the *lone* event (the one on the minority leaf):
//!
//! * **pre** — the same-leaf pair comes first (`lone` is event 3):
//!   `E12 − E123`,
//! * **post** — the same-leaf pair comes last (`lone` is event 1):
//!   `E23 − E123`,
//! * **peri** — the pair straddles the lone event (`lone` is event 2):
//!   `E13 − E123`,
//!
//! where `E12`/`E23`/`E13` count strictly-ordered in-window event
//! triples incident to the center whose named positions share a leaf
//! (the third position unconstrained) and `E123` counts the all-one-leaf
//! triples. The subtraction removes exactly the 2-node sequences, which
//! the [`pair`](super::pair) class counts instead; triples with three
//! distinct leaves (4-node motifs) never enter any `E` table, and a
//! triangle's third edge is not incident to the center at all — so the
//! classes stay disjoint.
//!
//! `E12` falls out of a past-window sweep (same-leaf pair counts before
//! each event), `E23` of a future-window sweep, and the coupled `E13` of
//! a prefix identity: the same-leaf δ-pairs straddling time `t` are
//! those *started* before `t` minus those *finished* by `t`, both of
//! which are running sums over the per-event pair counts (`pstart`,
//! `pend`) the two sweeps already produced. Everything is `O(events at
//! the center)` per center with `O(nodes)` reusable scratch.

// The count tables are indexed by direction bits used across several
// tables per loop body; iterator forms would obscure the recurrences.
#![allow(clippy::needless_range_loop)]

use super::{group_end_by, star_signature};
use crate::count::MotifCounts;
use tnm_graph::{NodeId, TemporalGraph, Time};

/// One event incident to the current center.
#[derive(Clone, Copy)]
struct Incident {
    time: Time,
    nbr: u32,
    /// 0 = center → leaf, 1 = leaf → center.
    dir: usize,
}

/// Per-direction counts, indexed `[d1][d2][d3]`.
type Triples = [[[u64; 2]; 2]; 2];

/// Reusable per-center state; neighbor-indexed scratch is sized once to
/// the graph's node count and wiped via the center's own event list.
struct CenterScratch {
    evs: Vec<Incident>,
    /// In-window events per neighbor and direction.
    cnt_nbr: Vec<[u64; 2]>,
    /// In-window same-leaf ordered pairs per neighbor.
    per_nbr_pair: Vec<[[u64; 2]; 2]>,
    /// Same-leaf δ-pairs ending at each event (`[d1]` of the earlier).
    pend: Vec<[u64; 2]>,
    /// Same-leaf δ-pairs starting at each event (`[d3]` of the later).
    pstart: Vec<[u64; 2]>,
}

impl CenterScratch {
    fn new(num_nodes: usize) -> Self {
        CenterScratch {
            evs: Vec::new(),
            cnt_nbr: vec![[0; 2]; num_nodes],
            per_nbr_pair: vec![[[0; 2]; 2]; num_nodes],
            pend: Vec::new(),
            pstart: Vec::new(),
        }
    }

    /// Loads the center's incident events (already time-ordered: the
    /// node index stores event indices in global time order).
    fn load(&mut self, graph: &TemporalGraph, center: NodeId) {
        self.evs.clear();
        for &idx in graph.node_events(center) {
            let e = graph.event(idx);
            let (nbr, dir) = if e.src == center { (e.dst.0, 0) } else { (e.src.0, 1) };
            self.evs.push(Incident { time: e.time, nbr, dir });
        }
    }

    /// Zeroes the neighbor-indexed tables touched by this center.
    fn wipe_nbr_tables(&mut self) {
        for e in &self.evs {
            self.cnt_nbr[e.nbr as usize] = [0; 2];
            self.per_nbr_pair[e.nbr as usize] = [[0; 2]; 2];
        }
    }

    /// End of the timestamp group starting at `i`.
    fn group_end(&self, i: usize) -> usize {
        group_end_by(&self.evs, i, |e| e.time)
    }
}

/// Counts every 3-event, exactly-2-leaf star into `out`.
pub fn count_stars(graph: &TemporalGraph, delta: Time, out: &mut MotifCounts) {
    let mut scratch = CenterScratch::new(graph.num_nodes() as usize);
    // lone[pos][d1][d2][d3]: stars whose minority-leaf event sits at
    // `pos`, summed over all centers.
    let mut lone = [Triples::default(); 3];
    let obs = tnm_obs::enabled();
    let (mut centers_swept, mut peak_events) = (0u64, 0u64);
    for c in 0..graph.num_nodes() {
        scratch.load(graph, NodeId(c));
        if scratch.evs.len() < 3 {
            continue;
        }
        if obs {
            centers_swept += 1;
            peak_events = peak_events.max(scratch.evs.len() as u64);
        }
        let (e12, e123) = forward_sweep(&mut scratch, delta);
        let e23 = future_sweep(&mut scratch, delta);
        let e13 = straddle_sweep(&scratch);
        for d1 in 0..2 {
            for d2 in 0..2 {
                for d3 in 0..2 {
                    lone[2][d1][d2][d3] += e12[d1][d2][d3] - e123[d1][d2][d3];
                    lone[0][d1][d2][d3] += e23[d1][d2][d3] - e123[d1][d2][d3];
                    lone[1][d1][d2][d3] += e13[d1][d2][d3] - e123[d1][d2][d3];
                }
            }
        }
    }
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.star.centers_swept").add(centers_swept);
        reg.gauge("stream.star.center_events").set(peak_events);
    }
    // Leaf layout per lone position: the minority leaf is B, the pair
    // leaf A; canonicalization makes the naming immaterial.
    const LEGS: [[u8; 3]; 3] = [[1, 0, 0], [0, 1, 0], [0, 0, 1]];
    for (pos, legs) in LEGS.iter().enumerate() {
        for d1 in 0..2 {
            for d2 in 0..2 {
                for d3 in 0..2 {
                    let n = lone[pos][d1][d2][d3];
                    if n > 0 {
                        out.add(star_signature(legs, &[d1 as u8, d2 as u8, d3 as u8]), n);
                    }
                }
            }
        }
    }
}

/// Counts every 2-event wedge (two events sharing exactly the center)
/// into `out`.
pub fn count_wedges(graph: &TemporalGraph, delta: Time, out: &mut MotifCounts) {
    let mut scratch = CenterScratch::new(graph.num_nodes() as usize);
    let mut acc = [[0u64; 2]; 2];
    let obs = tnm_obs::enabled();
    let (mut centers_swept, mut peak_events) = (0u64, 0u64);
    for c in 0..graph.num_nodes() {
        scratch.load(graph, NodeId(c));
        if scratch.evs.len() < 2 {
            continue;
        }
        if obs {
            centers_swept += 1;
            peak_events = peak_events.max(scratch.evs.len() as u64);
        }
        let mut cnt_any = [0u64; 2];
        let mut front = 0usize;
        let mut i = 0usize;
        while i < scratch.evs.len() {
            let t = scratch.evs[i].time;
            let group_end = scratch.group_end(i);
            while front < i && scratch.evs[front].time < t - delta {
                let expire_end = scratch.group_end(front);
                for e in &scratch.evs[front..expire_end] {
                    cnt_any[e.dir] -= 1;
                    scratch.cnt_nbr[e.nbr as usize][e.dir] -= 1;
                }
                front = expire_end;
            }
            for e in &scratch.evs[i..group_end] {
                for d1 in 0..2 {
                    // Any in-window predecessor on a *different* leaf.
                    acc[d1][e.dir] += cnt_any[d1] - scratch.cnt_nbr[e.nbr as usize][d1];
                }
            }
            for e in &scratch.evs[i..group_end] {
                cnt_any[e.dir] += 1;
                scratch.cnt_nbr[e.nbr as usize][e.dir] += 1;
            }
            i = group_end;
        }
        scratch.wipe_nbr_tables();
    }
    if obs {
        let reg = tnm_obs::global();
        reg.counter("stream.star.centers_swept").add(centers_swept);
        reg.gauge("stream.star.center_events").set(peak_events);
    }
    for d1 in 0..2 {
        for d2 in 0..2 {
            if acc[d1][d2] > 0 {
                out.add(star_signature(&[0, 1], &[d1 as u8, d2 as u8]), acc[d1][d2]);
            }
        }
    }
}

/// Past-window sweep: fills `pend` and returns `(E12, E123)`.
fn forward_sweep(scratch: &mut CenterScratch, delta: Time) -> (Triples, Triples) {
    let mut e12 = Triples::default();
    let mut e123 = Triples::default();
    let mut same_pair = [[0u64; 2]; 2];
    scratch.pend.clear();
    scratch.pend.resize(scratch.evs.len(), [0; 2]);
    let mut front = 0usize;
    let mut i = 0usize;
    while i < scratch.evs.len() {
        let t = scratch.evs[i].time;
        let group_end = scratch.group_end(i);
        // Expire whole timestamp groups below the window start.
        while front < i && scratch.evs[front].time < t - delta {
            let expire_end = scratch.group_end(front);
            for e in &scratch.evs[front..expire_end] {
                scratch.cnt_nbr[e.nbr as usize][e.dir] -= 1;
            }
            for e in &scratch.evs[front..expire_end] {
                let v = e.nbr as usize;
                for d2 in 0..2 {
                    // Retract the expired event's open pairs: everything
                    // left on its leaf is strictly later.
                    same_pair[e.dir][d2] -= scratch.cnt_nbr[v][d2];
                    scratch.per_nbr_pair[v][e.dir][d2] -= scratch.cnt_nbr[v][d2];
                }
            }
            front = expire_end;
        }
        // Close each group member as the last event of a triple.
        for (idx, e) in scratch.evs[i..group_end].iter().enumerate() {
            let v = e.nbr as usize;
            scratch.pend[i + idx] = scratch.cnt_nbr[v];
            for d1 in 0..2 {
                for d2 in 0..2 {
                    e12[d1][d2][e.dir] += same_pair[d1][d2];
                    e123[d1][d2][e.dir] += scratch.per_nbr_pair[v][d1][d2];
                }
            }
        }
        // Push: pair against the pre-group snapshot, then admit.
        for e in &scratch.evs[i..group_end] {
            let v = e.nbr as usize;
            for d1 in 0..2 {
                same_pair[d1][e.dir] += scratch.cnt_nbr[v][d1];
                scratch.per_nbr_pair[v][d1][e.dir] += scratch.cnt_nbr[v][d1];
            }
        }
        for e in &scratch.evs[i..group_end] {
            scratch.cnt_nbr[e.nbr as usize][e.dir] += 1;
        }
        i = group_end;
    }
    scratch.wipe_nbr_tables();
    (e12, e123)
}

/// Future-window sweep: fills `pstart` and returns `E23`.
fn future_sweep(scratch: &mut CenterScratch, delta: Time) -> Triples {
    let mut e23 = Triples::default();
    let mut same_pair = [[0u64; 2]; 2];
    scratch.pstart.clear();
    scratch.pstart.resize(scratch.evs.len(), [0; 2]);
    let (mut wstart, mut wend) = (0usize, 0usize);
    let mut i = 0usize;
    while i < scratch.evs.len() {
        let t = scratch.evs[i].time;
        let group_end = scratch.group_end(i);
        // Drop everything at or before the current time: pop pushed
        // groups (retracting their open pairs), skip never-pushed ones.
        while wstart < scratch.evs.len() && scratch.evs[wstart].time <= t {
            let g_end = scratch.group_end(wstart);
            if wstart < wend {
                for e in &scratch.evs[wstart..g_end] {
                    scratch.cnt_nbr[e.nbr as usize][e.dir] -= 1;
                }
                for e in &scratch.evs[wstart..g_end] {
                    for d2 in 0..2 {
                        same_pair[e.dir][d2] -= scratch.cnt_nbr[e.nbr as usize][d2];
                    }
                }
            } else {
                wend = g_end;
            }
            wstart = g_end;
        }
        // Admit groups within (t, t + ΔW], newest-last.
        while wend < scratch.evs.len() && scratch.evs[wend].time <= t + delta {
            let g_end = scratch.group_end(wend);
            for e in &scratch.evs[wend..g_end] {
                for d1 in 0..2 {
                    same_pair[d1][e.dir] += scratch.cnt_nbr[e.nbr as usize][d1];
                }
            }
            for e in &scratch.evs[wend..g_end] {
                scratch.cnt_nbr[e.nbr as usize][e.dir] += 1;
            }
            wend = g_end;
        }
        // Close each group member as the first event of a triple.
        for (idx, e) in scratch.evs[i..group_end].iter().enumerate() {
            scratch.pstart[i + idx] = scratch.cnt_nbr[e.nbr as usize];
            for d2 in 0..2 {
                for d3 in 0..2 {
                    e23[e.dir][d2][d3] += same_pair[d2][d3];
                }
            }
        }
        i = group_end;
    }
    scratch.wipe_nbr_tables();
    e23
}

/// Running-sum sweep over `pend`/`pstart`: returns `E13`.
///
/// The same-leaf δ-pairs straddling an event at time `t` are exactly
/// those whose first element lies before `t` (`F`, the running sum of
/// `pstart` over events with time < `t`) minus those fully finished by
/// `t` (`G`, the running sum of `pend` over events with time ≤ `t` —
/// a pair ending *at* `t` cannot straddle it under strict ordering).
fn straddle_sweep(scratch: &CenterScratch) -> Triples {
    let mut e13 = Triples::default();
    let mut f = [[0u64; 2]; 2];
    let mut g = [[0u64; 2]; 2];
    let (mut fx, mut gy) = (0usize, 0usize);
    let mut i = 0usize;
    while i < scratch.evs.len() {
        let t = scratch.evs[i].time;
        let group_end = scratch.group_end(i);
        while fx < scratch.evs.len() && scratch.evs[fx].time < t {
            for d3 in 0..2 {
                f[scratch.evs[fx].dir][d3] += scratch.pstart[fx][d3];
            }
            fx += 1;
        }
        while gy < scratch.evs.len() && scratch.evs[gy].time <= t {
            for d1 in 0..2 {
                g[d1][scratch.evs[gy].dir] += scratch.pend[gy][d1];
            }
            gy += 1;
        }
        for e in &scratch.evs[i..group_end] {
            for d1 in 0..2 {
                for d3 in 0..2 {
                    e13[d1][e.dir][d3] += f[d1][d3] - g[d1][d3];
                }
            }
        }
        i = group_end;
    }
    e13
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;
    use tnm_graph::{Event, TemporalGraphBuilder};

    fn graph(events: &[(u32, u32, i64)]) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for &(u, v, t) in events {
            b.push(Event::new(u, v, t));
        }
        b.build().unwrap()
    }

    #[test]
    fn out_star_pre_post_peri() {
        // Center 0 sends to leaves 1, 1, 2 — lone event last: 010102.
        let g = graph(&[(0, 1, 1), (0, 1, 2), (0, 2, 3)]);
        let mut c = MotifCounts::new();
        count_stars(&g, 10, &mut c);
        assert_eq!(c.get(sig("010102")), 1);
        assert_eq!(c.total(), 1);
        // Lone event in the middle: 0→1, 0→2, 0→1 = 010201.
        let g = graph(&[(0, 1, 1), (0, 2, 2), (0, 1, 3)]);
        let mut c = MotifCounts::new();
        count_stars(&g, 10, &mut c);
        assert_eq!(c.get(sig("010201")), 1);
        assert_eq!(c.total(), 1);
        // Lone event first: 0→2, 0→1, 0→1 = 010202.
        let g = graph(&[(0, 2, 1), (0, 1, 2), (0, 1, 3)]);
        let mut c = MotifCounts::new();
        count_stars(&g, 10, &mut c);
        assert_eq!(c.get(sig("010202")), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn two_node_triples_are_subtracted() {
        // All three events on one leaf: a 2-node sequence, not a star.
        let g = graph(&[(0, 1, 1), (0, 1, 2), (1, 0, 3)]);
        let mut c = MotifCounts::new();
        count_stars(&g, 10, &mut c);
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn three_distinct_leaves_are_excluded() {
        // A 4-node star: no exactly-2-leaf triple exists.
        let g = graph(&[(0, 1, 1), (0, 2, 2), (0, 3, 3)]);
        let mut c = MotifCounts::new();
        count_stars(&g, 10, &mut c);
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn window_bounds_the_whole_triple() {
        let g = graph(&[(0, 1, 0), (0, 1, 5), (0, 2, 10)]);
        for (delta, expect) in [(10i64, 1u64), (9, 0)] {
            let mut c = MotifCounts::new();
            count_stars(&g, delta, &mut c);
            assert_eq!(c.total(), expect, "ΔW={delta}");
        }
    }

    #[test]
    fn wedges_by_direction_and_ties() {
        // 0→1 then 2→0 share only node 0: 0120... wait: events (0,1),(2,0)
        // canonicalize to 01, 20 = "0120". A tie at t=1 contributes nothing.
        let g = graph(&[(0, 1, 1), (2, 0, 1), (2, 0, 3)]);
        let mut c = MotifCounts::new();
        count_wedges(&g, 5, &mut c);
        assert_eq!(c.get(sig("0120")), 1);
        assert_eq!(c.total(), 1);
    }
}
