//! [`WindowedEngine`] — the backtracking walk driven by a
//! [`WindowIndex`](tnm_graph::WindowIndex).
//!
//! Identical walk, different candidate generation: the per-node CSR
//! timestamp arrays let both ΔC/ΔW window endpoints resolve with binary
//! searches and the candidates arrive as a ready slice, so under bounded
//! timing the walker never touches an event outside the admissible
//! window. The `O(m)` index is obtained through the
//! [global index cache](tnm_graph::index_cache::global_index_cache), so
//! repeated counts of the same graph build it once — but see
//! [`BacktrackEngine`](crate::engine::BacktrackEngine) for the
//! degenerate cases where even a cached index is not worth consulting.

use crate::count::MotifCounts;
use crate::engine::config::{EnumConfig, MotifInstance};
use crate::engine::walker::{Walker, WindowedCandidates};
use crate::engine::{CountEngine, EngineCaps};
use tnm_graph::index_cache::global_index_cache;
use tnm_graph::TemporalGraph;

/// Serial backtracking engine over a time-windowed candidate index.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowedEngine;

impl CountEngine for WindowedEngine {
    fn name(&self) -> &'static str {
        "windowed"
    }

    fn capabilities(&self) -> EngineCaps {
        EngineCaps {
            parallel: false,
            windowed_pruning: true,
            deterministic_enumeration: true,
            supports_signature_filter: true,
        }
    }

    fn count(&self, graph: &TemporalGraph, cfg: &EnumConfig) -> MotifCounts {
        let mut counts = MotifCounts::new();
        self.enumerate(graph, cfg, &mut |inst| counts.add(inst.signature, 1));
        counts
    }

    fn enumerate(
        &self,
        graph: &TemporalGraph,
        cfg: &EnumConfig,
        callback: &mut dyn FnMut(&MotifInstance<'_>),
    ) {
        let index = global_index_cache().get_or_build(graph);
        let mut walker = Walker::new(graph, cfg, WindowedCandidates::new(&index));
        walker.run_range_by_ref(0..graph.num_events(), callback);
    }
}
