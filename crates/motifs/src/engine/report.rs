//! Engine result reporting: point estimates with confidence intervals.
//!
//! [`CountEngine::count`](crate::engine::CountEngine::count) returns
//! integral [`MotifCounts`], which is the right shape for exact engines
//! but loses everything an *approximate* engine knows about its own
//! uncertainty. [`EngineReport`] is the widened result type: per-motif
//! point estimates paired with a normal-approximation confidence
//! interval ([`Estimate`]). Exact engines report their counts with
//! zero-width intervals via the default
//! [`CountEngine::report`](crate::engine::CountEngine::report)
//! implementation, so callers can treat every engine uniformly:
//! `report.estimate(sig).contains(x)` is `x == count` for exact engines
//! and a genuine interval test for sampled ones.

use crate::count::MotifCounts;
use crate::notation::MotifSignature;
use std::collections::HashMap;

/// Two-sided z-value of the ~95 % normal confidence interval used by the
/// sampling engine's reports.
pub const Z_95: f64 = 1.96;

/// A per-motif point estimate with a symmetric confidence interval.
///
/// For exact engines the interval is degenerate (`half_width == 0`). For
/// the sampling engine it is the normal-approximation 95 % interval
/// `point ± Z_95 · SE`, where `SE` is the standard error of the mean
/// over the per-window estimates. The normal approximation is good once
/// a few dozen windows contribute; at very small sample budgets the
/// interval under-covers slightly (a t-distribution would widen it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Unbiased point estimate of the instance count.
    pub point: f64,
    /// Half-width of the ~95 % confidence interval (0 when exact).
    pub half_width: f64,
}

impl Estimate {
    /// A zero-width estimate for an exactly known count.
    pub fn exact(count: u64) -> Self {
        Estimate { point: count as f64, half_width: 0.0 }
    }

    /// Lower interval endpoint (may be negative for noisy estimates of
    /// near-zero counts; clamp at the call site if that matters).
    pub fn lo(&self) -> f64 {
        self.point - self.half_width
    }

    /// Upper interval endpoint.
    pub fn hi(&self) -> f64 {
        self.point + self.half_width
    }

    /// True if `value` lies within the interval (inclusive). For exact
    /// estimates this is an equality test on the point.
    pub fn contains(&self, value: f64) -> bool {
        self.lo() <= value && value <= self.hi()
    }

    /// True for zero-width (exactly known) estimates.
    pub fn is_exact(&self) -> bool {
        self.half_width == 0.0
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "{:.0}", self.point)
        } else {
            write!(f, "{:.1} ± {:.1}", self.point, self.half_width)
        }
    }
}

/// The widened result of one counting run: integral counts plus
/// per-motif interval estimates and run metadata.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Name of the engine that produced the report.
    pub engine: &'static str,
    /// True when the counts are exact (all intervals zero-width).
    pub exact: bool,
    /// Number of sample draws behind the estimates (`None` for exact
    /// engines).
    pub samples: Option<usize>,
    /// Integral counts: the exact counts, or rounded point estimates.
    pub counts: MotifCounts,
    /// Estimate of the total instance count across all signatures, with
    /// its own interval (tighter than summing per-motif half-widths).
    pub total: Estimate,
    estimates: HashMap<MotifSignature, Estimate>,
}

impl EngineReport {
    /// Wraps exactly known counts in zero-width intervals.
    pub fn from_exact(engine: &'static str, counts: MotifCounts) -> Self {
        let estimates = counts.iter().map(|(s, n)| (s, Estimate::exact(n))).collect();
        let total = Estimate::exact(counts.total());
        EngineReport { engine, exact: true, samples: None, counts, total, estimates }
    }

    /// Builds an approximate report from per-motif estimates; integral
    /// counts are the rounded (non-negative) points.
    pub fn from_estimates(
        engine: &'static str,
        samples: usize,
        estimates: HashMap<MotifSignature, Estimate>,
        total: Estimate,
    ) -> Self {
        let counts = estimates
            .iter()
            .map(|(&s, e)| (s, e.point.round().max(0.0) as u64))
            .filter(|&(_, n)| n > 0)
            .collect();
        EngineReport { engine, exact: false, samples: Some(samples), counts, total, estimates }
    }

    /// The estimate for one signature (zero-point, zero-width when the
    /// signature was never observed).
    pub fn estimate(&self, sig: MotifSignature) -> Estimate {
        self.estimates.get(&sig).copied().unwrap_or_default()
    }

    /// Iterates `(signature, estimate)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (MotifSignature, Estimate)> + '_ {
        self.estimates.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of signatures with an estimate.
    pub fn num_signatures(&self) -> usize {
        self.estimates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;

    #[test]
    fn exact_estimates_are_zero_width() {
        let mut counts = MotifCounts::new();
        counts.add(sig("0112"), 7);
        counts.add(sig("0110"), 3);
        let r = EngineReport::from_exact("windowed", counts);
        assert!(r.exact);
        assert_eq!(r.samples, None);
        let e = r.estimate(sig("0112"));
        assert!(e.is_exact());
        assert!(e.contains(7.0) && !e.contains(7.5));
        assert_eq!(r.total, Estimate::exact(10));
        assert_eq!(r.estimate(sig("010203")), Estimate::default());
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn estimated_report_rounds_counts() {
        let mut est = HashMap::new();
        est.insert(sig("0112"), Estimate { point: 6.6, half_width: 2.0 });
        est.insert(sig("0110"), Estimate { point: 0.2, half_width: 0.5 });
        let total = Estimate { point: 6.8, half_width: 2.1 };
        let r = EngineReport::from_estimates("sampling", 50, est, total);
        assert!(!r.exact);
        assert_eq!(r.samples, Some(50));
        assert_eq!(r.counts.get(sig("0112")), 7);
        assert_eq!(r.counts.get(sig("0110")), 0, "0.2 rounds away");
        assert!(r.estimate(sig("0112")).contains(5.0));
        assert!(!r.estimate(sig("0112")).contains(4.0));
        assert_eq!(format!("{}", r.total), "6.8 ± 2.1");
    }
}
