//! Engine result reporting: point estimates with confidence intervals.
//!
//! [`CountEngine::count`](crate::engine::CountEngine::count) returns
//! integral [`MotifCounts`], which is the right shape for exact engines
//! but loses everything an *approximate* engine knows about its own
//! uncertainty. [`EngineReport`] is the widened result type: per-motif
//! point estimates paired with a normal-approximation confidence
//! interval ([`Estimate`]). Exact engines report their counts with
//! zero-width intervals via the default
//! [`CountEngine::report`](crate::engine::CountEngine::report)
//! implementation, so callers can treat every engine uniformly:
//! `report.estimate(sig).contains(x)` is `x == count` for exact engines
//! and a genuine interval test for sampled ones.

use crate::count::MotifCounts;
use crate::notation::MotifSignature;
use std::collections::HashMap;

/// Two-sided z-value of the ~95 % normal confidence interval used by the
/// sampling engine's reports at comfortable sample budgets.
pub const Z_95: f64 = 1.96;

/// Two-sided 95 % critical values of Student's t distribution for
/// `1..=28` degrees of freedom (`t_{0.975, df}`), pinned to the standard
/// statistical tables. Indexed by `df - 1`; beyond the table the normal
/// approximation [`Z_95`] takes over.
const T_95_SMALL_N: [f64; 28] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048,
];

/// The two-sided 95 % critical value for a mean estimated from
/// `samples` i.i.d. draws: Student's t with `samples − 1` degrees of
/// freedom for small budgets (`samples < 30`, where the normal
/// approximation under-covers noticeably), [`Z_95`] from 30 draws up.
/// Zero or one draw admits no variance estimate at all — the value is
/// infinite, matching the sampler's honest infinite interval.
pub fn t_critical_95(samples: usize) -> f64 {
    match samples {
        0 | 1 => f64::INFINITY,
        n if n < 30 => T_95_SMALL_N[n - 2],
        _ => Z_95,
    }
}

/// A per-motif point estimate with a symmetric confidence interval.
///
/// For exact engines the interval is degenerate (`half_width == 0`). For
/// the sampling engine it is the 95 % interval `point ± crit · SE`,
/// where `SE` is the standard error of the mean over the per-window
/// estimates and `crit` is [`t_critical_95`]: Student's t for small
/// sample budgets (under 30 windows, where the normal approximation
/// under-covers), [`Z_95`] once a few dozen windows contribute.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Unbiased point estimate of the instance count.
    pub point: f64,
    /// Half-width of the ~95 % confidence interval (0 when exact).
    pub half_width: f64,
}

impl Estimate {
    /// A zero-width estimate for an exactly known count.
    pub fn exact(count: u64) -> Self {
        Estimate { point: count as f64, half_width: 0.0 }
    }

    /// Lower interval endpoint (may be negative for noisy estimates of
    /// near-zero counts; clamp at the call site if that matters).
    pub fn lo(&self) -> f64 {
        self.point - self.half_width
    }

    /// Upper interval endpoint.
    pub fn hi(&self) -> f64 {
        self.point + self.half_width
    }

    /// True if `value` lies within the interval (inclusive). For exact
    /// estimates this is an equality test on the point.
    pub fn contains(&self, value: f64) -> bool {
        self.lo() <= value && value <= self.hi()
    }

    /// True for zero-width (exactly known) estimates.
    pub fn is_exact(&self) -> bool {
        self.half_width == 0.0
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "{:.0}", self.point)
        } else {
            write!(f, "{:.1} ± {:.1}", self.point, self.half_width)
        }
    }
}

/// The widened result of one counting run: integral counts plus
/// per-motif interval estimates and run metadata.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Name of the engine that produced the report.
    pub engine: &'static str,
    /// True when the counts are exact (all intervals zero-width).
    pub exact: bool,
    /// Number of sample draws behind the estimates (`None` for exact
    /// engines).
    pub samples: Option<usize>,
    /// Integral counts: the exact counts, or rounded point estimates.
    pub counts: MotifCounts,
    /// Estimate of the total instance count across all signatures, with
    /// its own interval (tighter than summing per-motif half-widths).
    pub total: Estimate,
    estimates: HashMap<MotifSignature, Estimate>,
}

impl EngineReport {
    /// Wraps exactly known counts in zero-width intervals.
    pub fn from_exact(engine: &'static str, counts: MotifCounts) -> Self {
        let estimates = counts.iter().map(|(s, n)| (s, Estimate::exact(n))).collect();
        let total = Estimate::exact(counts.total());
        EngineReport { engine, exact: true, samples: None, counts, total, estimates }
    }

    /// Builds an approximate report from per-motif estimates; integral
    /// counts are the rounded (non-negative) points.
    pub fn from_estimates(
        engine: &'static str,
        samples: usize,
        estimates: HashMap<MotifSignature, Estimate>,
        total: Estimate,
    ) -> Self {
        let counts = estimates
            .iter()
            .map(|(&s, e)| (s, e.point.round().max(0.0) as u64))
            .filter(|&(_, n)| n > 0)
            .collect();
        EngineReport { engine, exact: false, samples: Some(samples), counts, total, estimates }
    }

    /// The estimate for one signature (zero-point, zero-width when the
    /// signature was never observed).
    pub fn estimate(&self, sig: MotifSignature) -> Estimate {
        self.estimates.get(&sig).copied().unwrap_or_default()
    }

    /// Iterates `(signature, estimate)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (MotifSignature, Estimate)> + '_ {
        self.estimates.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of signatures with an estimate.
    pub fn num_signatures(&self) -> usize {
        self.estimates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::sig;

    #[test]
    fn t_critical_values_pinned() {
        // Degenerate budgets: no variance estimate exists.
        assert!(t_critical_95(0).is_infinite());
        assert!(t_critical_95(1).is_infinite());
        // Table endpoints against the standard t table.
        assert_eq!(t_critical_95(2), 12.706, "df=1");
        assert_eq!(t_critical_95(3), 4.303, "df=2");
        assert_eq!(t_critical_95(29), 2.048, "df=28");
        // From 30 draws up, the normal approximation takes over.
        assert_eq!(t_critical_95(30), Z_95);
        assert_eq!(t_critical_95(10_000), Z_95);
        // Monotone non-increasing toward Z_95: a bigger budget never
        // widens the interval multiplier.
        for n in 2..40usize {
            assert!(t_critical_95(n) >= t_critical_95(n + 1), "n={n}");
            assert!(t_critical_95(n) >= Z_95, "n={n}");
        }
    }

    #[test]
    fn exact_estimates_are_zero_width() {
        let mut counts = MotifCounts::new();
        counts.add(sig("0112"), 7);
        counts.add(sig("0110"), 3);
        let r = EngineReport::from_exact("windowed", counts);
        assert!(r.exact);
        assert_eq!(r.samples, None);
        let e = r.estimate(sig("0112"));
        assert!(e.is_exact());
        assert!(e.contains(7.0) && !e.contains(7.5));
        assert_eq!(r.total, Estimate::exact(10));
        assert_eq!(r.estimate(sig("010203")), Estimate::default());
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn estimated_report_rounds_counts() {
        let mut est = HashMap::new();
        est.insert(sig("0112"), Estimate { point: 6.6, half_width: 2.0 });
        est.insert(sig("0110"), Estimate { point: 0.2, half_width: 0.5 });
        let total = Estimate { point: 6.8, half_width: 2.1 };
        let r = EngineReport::from_estimates("sampling", 50, est, total);
        assert!(!r.exact);
        assert_eq!(r.samples, Some(50));
        assert_eq!(r.counts.get(sig("0112")), 7);
        assert_eq!(r.counts.get(sig("0110")), 0, "0.2 rounds away");
        assert!(r.estimate(sig("0112")).contains(5.0));
        assert!(!r.estimate(sig("0112")).contains(4.0));
        assert_eq!(format!("{}", r.total), "6.8 ± 2.1");
    }
}
