//! `tnm serve`: a resident motif-counting service.
//!
//! The server is the jump from CLI to system: a long-running TCP daemon
//! holding a **registry of loaded graphs** as its resident working set,
//! answering framed [`Query`] requests (count / report / enumerate /
//! batch, any [`EngineKind`](crate::engine::EngineKind)) and keeping
//! subscription counts **live under event appends** via
//! [`IncrementalStream`] — O(new events) per append instead of a
//! recount. Protocol details live in [`protocol`] (same
//! [`tnm_graph::wire`] framing as the distributed worker protocol,
//! disjoint kind space); the client half in [`client`].
//!
//! ## Resident working set
//!
//! Each registry entry keeps its canonical event log plus a lazily
//! (re)built [`TemporalGraph`]. The `Arc<TemporalGraph>` is held for as
//! long as the entry goes unmodified, so the identity-keyed global
//! [`WindowIndexCache`](tnm_graph::index_cache) /
//! `StaticProjectionCache` keep their entries hot across queries — the
//! second query against a loaded graph pays no index rebuild. An
//! append invalidates the cached graph (its event buffer changes
//! identity); subscriptions are *not* invalidated, which is the point:
//! their counts advance incrementally from the ΔW tail alone.
//!
//! ## Observability
//!
//! Each server owns a private [`tnm_obs::Registry`] recording
//! `serve.queries` / `serve.appends` counters, per-query-kind latency
//! histograms (`serve.query.{count,report,enumerate,batch}_ns`),
//! `serve.subscription_advance_ns`, and a `serve.connection_frames`
//! histogram observed as each connection closes. The full snapshot is
//! served over the wire as a Metrics response
//! ([`ServeClient::metrics`], `tnm client --metrics` renders it as
//! Prometheus text) and rides along inside [`ServerStats`] as a
//! versioned optional section. Being per-request rather than per-event,
//! these records bypass the process-global [`tnm_obs::enabled`] gate.
//!
//! ## Operating `tnm serve`
//!
//! The daemon's operational surface, end to end:
//!
//! * **HTTP scrape endpoint** — [`ServeOptions::http_port`] binds a
//!   second, std-only HTTP/1.1 listener on the wire listener's
//!   interface (0 picks a free port; read it back with
//!   [`MotifServer::http_addr`]). `GET /metrics` serves the merged
//!   process + server registry snapshot as Prometheus text
//!   ([`tnm_obs::Snapshot::to_prometheus`]), `GET /healthz` answers
//!   `ok`, and `GET /timeseries` serves the retained sample ring as
//!   JSON. The listener never speaks the framed wire protocol, so a
//!   scraper can't corrupt a session and a wire peer can't reach the
//!   scrape surface.
//! * **Time series** — a background sampler folds the merged metrics
//!   snapshot into a [`tnm_obs::TimeSeries`] ring every
//!   [`ServeOptions::sample_interval_ms`] (default 1 s), retaining
//!   [`ServeOptions::timeseries_cap`] windows (default 120 ≈ the last
//!   two minutes). Each retained [`tnm_obs::TimePoint`] is the *delta*
//!   over its window, so rates and per-window latency quantiles fall
//!   out directly — `tnm top` polls `/timeseries` and renders QPS,
//!   p50/p99 per query kind, cache hit rates, and shard residency.
//! * **Per-query tracing** — a client can set the trace request flag
//!   ([`ServeClient::query_traced`] / `tnm client --trace FILE` /
//!   `--profile`): the daemon runs that one query under a fresh
//!   [`tnm_obs::TraceCtx`], collects the span tree (including spans
//!   stitched back from distributed workers), and ships it in the
//!   response as a versioned [`TraceReply`] section together with the
//!   request's metrics delta. Untraced requests stay byte-identical to
//!   the legacy encoding and pay one atomic load. Tracing is a
//!   diagnostic: the trace context is process-global, so two
//!   *concurrently traced* requests may cross-attach spans.
//! * **Slow queries and the flight recorder** — every completed query
//!   lands in two in-memory logs surfaced through [`ServerStats`]
//!   (`tnm client --slow-queries`): a worst-latency table capped at
//!   [`ServeOptions::slow_queries`] entries that *keeps span trees*
//!   (traced entries stay inspectable after the fact), and a ring of
//!   the last [`ServeOptions::flight_recorder`] queries with spans
//!   dropped (constant-size, always on). Either log disables at
//!   capacity 0.
//!
//! ## Concurrency and failure model
//!
//! One thread per connection; each query clones the entry's graph
//! `Arc` and counts outside the registry locks, so slow queries never
//! block loads or appends on other graphs (engines additionally spread
//! across the work-stealing executor under the request's thread
//! budget, clamped by [`ServeOptions::max_threads`]). Application
//! errors (unknown graph, invalid config, non-monotone append) are
//! answered with an error frame and the connection stays usable;
//! wire-level garbage (bad magic, oversized length, truncation) closes
//! that connection only — the daemon itself never dies from a bad
//! peer, which `tests/serve_loop.rs` pins.

mod client;
mod http;
mod incremental;
pub(crate) mod protocol;

pub use client::{ClientError, ServeClient};
pub use incremental::{AppendError, IncrementalStream};
pub use protocol::{AppendAck, GraphStat, QueryLogEntry, ServerStats, TraceReply};

use crate::engine::distributed::protocol::get_config;
use crate::engine::query::Query;
use crate::engine::serve::incremental::check_batch;
use protocol::*;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::Duration;
use tnm_graph::wire::{read_frame, write_frame, WireWriter, MAX_FRAME_PAYLOAD};
use tnm_graph::{Event, TemporalGraph};

/// Tunables for a [`MotifServer`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Ceiling on any single request's thread budget (requests ask for
    /// their own budget; the server clamps it here).
    pub max_threads: usize,
    /// Ceiling on instances materialized per enumerate response, so a
    /// reply always fits the frame-payload limit.
    pub enumerate_cap: usize,
    /// Maximum accepted request frame payload.
    pub max_frame: usize,
    /// Port for the HTTP scrape surface (`/metrics`, `/healthz`,
    /// `/timeseries`), bound on the same interface as the wire
    /// listener. `None` (the default) disables it; 0 picks a free port
    /// (read it back with [`MotifServer::http_addr`]).
    pub http_port: Option<u16>,
    /// How often the background sampler folds the merged metrics
    /// snapshot into the time series.
    pub sample_interval_ms: u64,
    /// Retained [`tnm_obs::TimePoint`] samples (a ring: 120 × 1 s =
    /// the last two minutes).
    pub timeseries_cap: usize,
    /// Capacity of the worst-latency query table in [`ServerStats`].
    pub slow_queries: usize,
    /// Capacity of the completed-query flight recorder in
    /// [`ServerStats`].
    pub flight_recorder: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_threads: thread::available_parallelism().map_or(4, |n| n.get()),
            enumerate_cap: 100_000,
            max_frame: MAX_FRAME_PAYLOAD,
            http_port: None,
            sample_interval_ms: 1_000,
            timeseries_cap: 120,
            slow_queries: 8,
            flight_recorder: 32,
        }
    }
}

/// Milliseconds since the Unix epoch (sample and query-log timestamps).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// One live subscription: an id plus its incrementally-maintained
/// counts.
struct Subscription {
    id: u32,
    stream: IncrementalStream,
}

/// One loaded graph: the canonical sorted event log, a lazily rebuilt
/// graph (kept alive so the identity-keyed index caches stay hot), and
/// the subscriptions riding on it.
struct GraphEntry {
    events: Vec<Event>,
    num_nodes: u32,
    /// Rebuilt on demand after appends; held while the entry is
    /// unmodified so cache identity is preserved across queries.
    graph: Option<Arc<TemporalGraph>>,
    subscriptions: Vec<Subscription>,
    next_sub_id: u32,
}

impl GraphEntry {
    /// The entry's graph, (re)built if an append invalidated it.
    fn graph(&mut self) -> Arc<TemporalGraph> {
        if self.graph.is_none() {
            self.graph = Some(Arc::new(TemporalGraph::from_sorted_events(
                self.events.clone(),
                self.num_nodes,
            )));
        }
        Arc::clone(self.graph.as_ref().expect("just built"))
    }
}

struct ServerState {
    registry: RwLock<HashMap<String, Arc<Mutex<GraphEntry>>>>,
    options: ServeOptions,
    /// The server's own metrics registry (`serve.*` names): request
    /// counters and per-query-kind latency histograms. Per-instance and
    /// recorded unconditionally — serve call sites are per-request, not
    /// per-event, so they bypass the process-global enabled gate.
    obs: tnm_obs::Registry,
    /// Ring of periodic merged-metrics samples for `/timeseries` and
    /// `tnm top`, fed by the background sampler thread.
    timeseries: Mutex<tnm_obs::TimeSeries>,
    /// Worst-latency completed queries, latency-descending, capped at
    /// [`ServeOptions::slow_queries`]. Traced entries keep their span
    /// tree.
    slow: Mutex<Vec<QueryLogEntry>>,
    /// Last [`ServeOptions::flight_recorder`] completed queries, oldest
    /// first, span trees dropped.
    flight: Mutex<VecDeque<QueryLogEntry>>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl ServerState {
    fn entry(&self, name: &str) -> Result<Arc<Mutex<GraphEntry>>, String> {
        self.registry
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| format!("no graph named `{name}` is loaded"))
    }

    fn stats(&self) -> ServerStats {
        let registry = self.registry.read().expect("registry lock");
        let mut graphs: Vec<GraphStat> = registry
            .iter()
            .map(|(name, entry)| {
                let entry = entry.lock().expect("entry lock");
                GraphStat {
                    name: name.clone(),
                    events: entry.events.len() as u64,
                    nodes: entry.num_nodes,
                    subscriptions: entry.subscriptions.len() as u32,
                }
            })
            .collect();
        graphs.sort_by(|a, b| a.name.cmp(&b.name));
        let obs = self.obs.snapshot();
        ServerStats {
            queries: obs.counters.get("serve.queries").copied().unwrap_or(0),
            appends: obs.counters.get("serve.appends").copied().unwrap_or(0),
            graphs,
            obs,
            slow: self.slow.lock().expect("slow lock").clone(),
            flight: self.flight.lock().expect("flight lock").iter().cloned().collect(),
        }
    }

    /// Folds one completed query into the flight recorder (span tree
    /// dropped — the ring is a cheap recent-history view) and the
    /// worst-N slow table (span tree kept, so a slow traced query can
    /// be inspected after the fact).
    fn record_query(&self, entry: QueryLogEntry) {
        if self.options.flight_recorder > 0 {
            let mut flight = self.flight.lock().expect("flight lock");
            if flight.len() == self.options.flight_recorder {
                flight.pop_front();
            }
            let mut light = entry.clone();
            light.spans = Vec::new();
            flight.push_back(light);
        }
        if self.options.slow_queries == 0 {
            return;
        }
        let mut slow = self.slow.lock().expect("slow lock");
        let pos = slow.partition_point(|e| e.latency_ns >= entry.latency_ns);
        if pos < self.options.slow_queries {
            slow.insert(pos, entry);
            slow.truncate(self.options.slow_queries);
        }
    }

    /// One snapshot spanning both metric domains: the server's private
    /// `serve.*` registry and the process-global registry the engines
    /// record into (when [`tnm_obs::enabled`]). This is what `/metrics`
    /// renders and the sampler feeds into the time series.
    fn merged_snapshot(&self) -> tnm_obs::Snapshot {
        let merged = tnm_obs::Registry::new();
        merged.apply(&tnm_obs::global().snapshot());
        merged.apply(&self.obs.snapshot());
        merged.snapshot()
    }
}

/// The resident counting daemon. Bind, then either [`run`](Self::run)
/// the accept loop on the current thread (the CLI verb) or
/// [`spawn`](Self::spawn) it onto a background thread (tests, the
/// example).
pub struct MotifServer {
    listener: TcpListener,
    /// Bound HTTP scrape listener ([`ServeOptions::http_port`]); served
    /// from a background thread once [`run`](Self::run) starts.
    http: Option<TcpListener>,
    state: Arc<ServerState>,
}

/// Handle to a [`MotifServer::spawn`]ed accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    join: thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP scrape address, when enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Waits for the accept loop to exit (a client's Shutdown request
    /// ends it).
    pub fn join(self) -> std::io::Result<()> {
        self.join.join().expect("server thread panicked")
    }
}

impl MotifServer {
    /// Binds the daemon with default options. Port 0 picks a free port;
    /// read it back with [`local_addr`](Self::local_addr).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::bind_with(addr, ServeOptions::default())
    }

    /// Binds with explicit [`ServeOptions`].
    pub fn bind_with<A: ToSocketAddrs>(addr: A, options: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let http = match options.http_port {
            Some(port) => Some(TcpListener::bind((addr.ip(), port))?),
            None => None,
        };
        let timeseries = tnm_obs::TimeSeries::new(options.timeseries_cap.max(1));
        let state = Arc::new(ServerState {
            registry: RwLock::new(HashMap::new()),
            options,
            obs: tnm_obs::Registry::new(),
            timeseries: Mutex::new(timeseries),
            slow: Mutex::new(Vec::new()),
            flight: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            addr,
        });
        Ok(MotifServer { listener, http, state })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The bound HTTP scrape address, when
    /// [`http_port`](ServeOptions::http_port) is set.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Runs the accept loop until a client requests shutdown. Each
    /// connection gets its own thread; a connection's wire errors never
    /// affect the loop. On shutdown, connections still parked in a read
    /// are unblocked (their sockets are shut down) so the loop never
    /// hangs on an idle client that forgot to disconnect.
    pub fn run(self) -> std::io::Result<()> {
        let sampler = spawn_sampler(Arc::clone(&self.state));
        let http = self.http.map(|listener| http::spawn(listener, Arc::clone(&self.state)));
        let mut workers: Vec<(thread::JoinHandle<()>, TcpStream)> = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // Reap finished connections as we go, so a long-lived daemon
            // never accumulates dead threads or their socket handles.
            workers.retain(|(handle, _)| !handle.is_finished());
            let Ok(peer) = stream.try_clone() else { continue };
            let state = Arc::clone(&self.state);
            workers.push((thread::spawn(move || handle_connection(stream, &state)), peer));
        }
        for (_, peer) in &workers {
            let _ = peer.shutdown(std::net::Shutdown::Both);
        }
        for (handle, _) in workers {
            let _ = handle.join();
        }
        // The sampler and HTTP threads poll the shutdown flag (set
        // before the accept loop exits) and return within one poll
        // interval.
        let _ = sampler.join();
        if let Some(handle) = http {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let http_addr = self.http_addr();
        let join = thread::spawn(move || self.run());
        ServerHandle { addr, http_addr, join }
    }
}

/// Spawns the time-series sampler: every
/// [`sample_interval_ms`](ServeOptions::sample_interval_ms) it folds
/// the merged metrics snapshot into the ring, polling the shutdown flag
/// between short sleeps so daemon exit is never delayed by a full
/// interval.
fn spawn_sampler(state: Arc<ServerState>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let interval = state.options.sample_interval_ms.max(10);
        loop {
            let mut waited = 0;
            while waited < interval {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let step = 50.min(interval - waited);
                thread::sleep(Duration::from_millis(step));
                waited += step;
            }
            let snap = state.merged_snapshot();
            state.timeseries.lock().expect("timeseries lock").record(unix_ms(), snap);
        }
    })
}

/// Answer for one request frame, plus whether this connection asked the
/// whole server to stop.
enum Outcome {
    Reply(u8, Vec<u8>),
    Shutdown,
}

fn err_frame(msg: String) -> Outcome {
    let mut w = WireWriter::new();
    w.put_str(&msg);
    Outcome::Reply(KIND_RESP_ERR, w.into_bytes())
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    serve_connection(&mut reader, &mut writer, state);
    // Close the TCP connection explicitly: the accept loop holds its
    // own clone of this socket (to unblock parked reads at shutdown),
    // and a clone must not keep a finished connection half-open.
    let _ = writer.flush();
    let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
}

fn serve_connection(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    state: &ServerState,
) {
    let mut frames = 0u64;
    'conn: loop {
        // Wire-level garbage (bad magic, oversized length, truncation
        // mid-frame) is unrecoverable on this connection — the stream
        // position is lost — so close it; the daemon lives on.
        let frame = match read_frame(&mut *reader, state.options.max_frame) {
            Ok(Some(frame)) => frame,
            Ok(None) => break 'conn,
            Err(e) => {
                let mut w = WireWriter::new();
                w.put_str(&format!("wire error: {e}"));
                let _ = write_frame(&mut *writer, KIND_RESP_ERR, &w.into_bytes());
                let _ = writer.flush();
                break 'conn;
            }
        };
        frames += 1;
        let outcome = dispatch(state, frame.0, &frame.1);
        match outcome {
            Outcome::Reply(kind, payload) => {
                if write_frame(&mut *writer, kind, &payload).is_err() || writer.flush().is_err() {
                    break 'conn;
                }
            }
            Outcome::Shutdown => {
                let _ = write_frame(&mut *writer, KIND_RESP_BYE, &[]);
                let _ = writer.flush();
                state.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(state.addr);
                break 'conn;
            }
        }
    }
    state.obs.histogram("serve.connection_frames").record(frames);
}

/// Decodes and serves one request frame. Application-level failures
/// (unknown graph, invalid batch, unrunnable query) come back as error
/// frames; only undecodable payloads bubble up as wire errors.
fn dispatch(state: &ServerState, kind: u8, payload: &[u8]) -> Outcome {
    use tnm_graph::wire::WireReader;
    let mut r = WireReader::new(payload);
    let result: Result<Outcome, String> = match kind {
        KIND_REQ_LOAD => (|| {
            let name = r.str().map_err(|e| e.to_string())?.to_string();
            let num_nodes = r.u32().map_err(|e| e.to_string())?;
            let block = r.bytes().map_err(|e| e.to_string())?;
            let mut events = tnm_graph::wire::decode_events(block).map_err(|e| e.to_string())?;
            r.finish().map_err(|e| e.to_string())?;
            if name.is_empty() {
                return Err("graph name must be non-empty".into());
            }
            if events.iter().any(Event::is_self_loop) {
                return Err("event block contains self-loops".into());
            }
            events.sort_unstable();
            let max_node = events.iter().map(|e| e.src.0.max(e.dst.0) + 1).max().unwrap_or(0);
            let num_nodes = num_nodes.max(max_node);
            let entry = GraphEntry {
                events,
                num_nodes,
                graph: None,
                subscriptions: Vec::new(),
                next_sub_id: 0,
            };
            let mut registry = state.registry.write().expect("registry lock");
            if registry.contains_key(&name) {
                return Err(format!("graph `{name}` is already loaded"));
            }
            let (n_events, n_nodes) = (entry.events.len() as u64, entry.num_nodes);
            registry.insert(name.clone(), Arc::new(Mutex::new(entry)));
            let mut w = WireWriter::new();
            w.put_str(&name);
            w.put_u64(n_events);
            w.put_u32(n_nodes);
            Ok(Outcome::Reply(KIND_RESP_LOADED, w.into_bytes()))
        })(),
        KIND_REQ_APPEND => (|| {
            let name = r.str().map_err(|e| e.to_string())?.to_string();
            let block = r.bytes().map_err(|e| e.to_string())?;
            let batch = tnm_graph::wire::decode_events(block).map_err(|e| e.to_string())?;
            r.finish().map_err(|e| e.to_string())?;
            let entry = state.entry(&name)?;
            let mut entry = entry.lock().expect("entry lock");
            let last = entry.events.last().map(|e| e.time);
            check_batch(&batch, last).map_err(|e| e.to_string())?;
            // Fold into every subscription first: a failure there (all
            // shapes already checked above) must not leave the log and
            // the counts disagreeing.
            if !entry.subscriptions.is_empty() {
                let t0 = std::time::Instant::now();
                for sub in &mut entry.subscriptions {
                    sub.stream.append(&batch).map_err(|e| e.to_string())?;
                }
                state
                    .obs
                    .histogram("serve.subscription_advance_ns")
                    .record(t0.elapsed().as_nanos() as u64);
            }
            // Splice-merge at the boundary timestamp: batch times are
            // ≥ the last log time, but equal-time runs must stay fully
            // sorted for `from_sorted_events`.
            let idx = match batch.first() {
                Some(first) => entry.events.partition_point(|e| e.time < first.time),
                None => entry.events.len(),
            };
            let mut tail: Vec<Event> = entry.events.split_off(idx);
            tail.extend_from_slice(&batch);
            tail.sort_unstable();
            entry.events.extend(tail);
            let max_node = batch.iter().map(|e| e.src.0.max(e.dst.0) + 1).max().unwrap_or(0);
            entry.num_nodes = entry.num_nodes.max(max_node);
            entry.graph = None; // identity changed: rebuild lazily
            state.obs.counter("serve.appends").add(batch.len() as u64);
            let ack = AppendAck {
                total_events: entry.events.len() as u64,
                subscriptions: entry
                    .subscriptions
                    .iter()
                    .map(|s| (s.id, s.stream.counts()))
                    .collect(),
            };
            Ok(Outcome::Reply(KIND_RESP_APPENDED, encode_append_ack(&ack)))
        })(),
        KIND_REQ_QUERY => (|| {
            let name = r.str().map_err(|e| e.to_string())?.to_string();
            let query = get_query(&mut r).map_err(|e| e.to_string())?;
            let flags = get_request_flags(&mut r).map_err(|e| e.to_string())?;
            r.finish().map_err(|e| e.to_string())?;
            let traced = flags & REQ_FLAG_TRACE != 0;
            let entry = state.entry(&name)?;
            let graph = entry.lock().expect("entry lock").graph();
            // Count outside the locks: a slow query must not block
            // loads/appends (or other clients' queries).
            let query = clamp(query, &state.options);
            let (kind, latency) = match &query {
                Query::Count { .. } => ("count", "serve.query.count_ns"),
                Query::Report { .. } => ("report", "serve.query.report_ns"),
                Query::Enumerate { .. } => ("enumerate", "serve.query.enumerate_ns"),
                Query::Batch { .. } => ("batch", "serve.query.batch_ns"),
            };
            // The merged baseline lets the trace's metrics delta cover
            // engine counters (events scanned, cache hits) too when the
            // process-global registry is enabled, not just `serve.*`.
            let before = traced.then(|| state.merged_snapshot());
            let t0 = std::time::Instant::now();
            let (run, spans, trace_id) = if traced {
                run_traced("serve.query", &[("graph", &name), ("kind", kind)], || query.run(&graph))
            } else {
                (query.run(&graph), Vec::new(), 0)
            };
            let latency_ns = t0.elapsed().as_nanos() as u64;
            let response = run.map_err(|e| e.to_string())?;
            state.obs.histogram(latency).record(latency_ns);
            state.obs.counter("serve.queries").incr();
            let trace = before.map(|before| TraceReply {
                spans: spans.clone(),
                metrics: state.merged_snapshot().delta(&before),
            });
            state.record_query(QueryLogEntry {
                kind: kind.to_string(),
                graph: name,
                latency_ns,
                trace_id,
                at_unix_ms: unix_ms(),
                spans,
            });
            Ok(Outcome::Reply(KIND_RESP_QUERY, encode_query_reply(&response, trace.as_ref())))
        })(),
        KIND_REQ_SUBSCRIBE => (|| {
            let name = r.str().map_err(|e| e.to_string())?.to_string();
            let cfg = get_config(&mut r).map_err(|e| e.to_string())?;
            let flags = get_request_flags(&mut r).map_err(|e| e.to_string())?;
            r.finish().map_err(|e| e.to_string())?;
            cfg.validate().map_err(|e| e.to_string())?;
            let traced = flags & REQ_FLAG_TRACE != 0;
            let entry = state.entry(&name)?;
            let mut entry = entry.lock().expect("entry lock");
            let graph = entry.graph();
            let before = traced.then(|| state.merged_snapshot());
            let (run, spans, _) = if traced {
                run_traced("serve.subscribe", &[("graph", &name)], || {
                    IncrementalStream::new(&graph, &cfg)
                })
            } else {
                (IncrementalStream::new(&graph, &cfg), Vec::new(), 0)
            };
            let stream = run?;
            let trace = before.map(|before| TraceReply {
                spans,
                metrics: state.merged_snapshot().delta(&before),
            });
            let id = entry.next_sub_id;
            entry.next_sub_id += 1;
            let counts = stream.counts();
            entry.subscriptions.push(Subscription { id, stream });
            let mut w = WireWriter::new();
            w.put_u32(id);
            put_counts(&mut w, &counts);
            put_trace_section(&mut w, trace.as_ref());
            Ok(Outcome::Reply(KIND_RESP_SUBSCRIBED, w.into_bytes()))
        })(),
        KIND_REQ_STATS => (|| {
            r.finish().map_err(|e| e.to_string())?;
            Ok(Outcome::Reply(KIND_RESP_STATS, encode_stats(&state.stats())))
        })(),
        KIND_REQ_METRICS => (|| {
            r.finish().map_err(|e| e.to_string())?;
            let mut w = WireWriter::new();
            tnm_graph::wire::put_obs_snapshot(&mut w, &state.obs.snapshot());
            Ok(Outcome::Reply(KIND_RESP_METRICS, w.into_bytes()))
        })(),
        KIND_REQ_SHUTDOWN => Ok(Outcome::Shutdown),
        other => Err(format!("unknown request kind {other}")),
    };
    result.unwrap_or_else(err_frame)
}

/// Runs `f` under a fresh request-scoped trace: mints a trace id, opens
/// a root span, re-points the ambient [`tnm_obs::TraceCtx`] at the root
/// so every child — engine phase spans on walker threads, and spans
/// shipped back from distributed worker processes — attaches beneath
/// it, then collects the request's complete span tree. Returns `f`'s
/// result, the spans, and the trace id.
///
/// The trace context is process-global (that is what lets spawned
/// threads and worker processes inherit it), so two concurrent traced
/// requests can cross-attach spans; tracing is an opt-in diagnostic,
/// and the last writer wins.
fn run_traced<T>(
    root: &'static str,
    args: &[(&str, &str)],
    f: impl FnOnce() -> T,
) -> (T, Vec<tnm_obs::SpanRecord>, u64) {
    let ctx = tnm_obs::TraceCtx::new();
    tnm_obs::set_trace(Some(ctx));
    let mut span = tnm_obs::Span::start(root);
    for (key, value) in args {
        span = span.arg(key, value);
    }
    tnm_obs::set_trace(Some(tnm_obs::TraceCtx { trace_id: ctx.trace_id, parent_span: span.id() }));
    let out = f();
    drop(span);
    tnm_obs::set_trace(None);
    (out, tnm_obs::take_trace_spans(ctx.trace_id), ctx.trace_id)
}

/// Applies the server's resource ceilings to a decoded query.
fn clamp(query: Query, options: &ServeOptions) -> Query {
    let cap = options.max_threads.max(1);
    match query {
        Query::Count { cfg, engine, threads } => {
            Query::Count { cfg, engine, threads: threads.clamp(1, cap) }
        }
        Query::Report { cfg, engine, threads } => {
            Query::Report { cfg, engine, threads: threads.clamp(1, cap) }
        }
        Query::Enumerate { cfg, engine, threads, limit } => Query::Enumerate {
            cfg,
            engine,
            threads: threads.clamp(1, cap),
            limit: limit.min(options.enumerate_cap),
        },
        Query::Batch { cfgs, engine, threads } => {
            Query::Batch { cfgs, engine, threads: threads.clamp(1, cap) }
        }
    }
}
