//! The library/CLI client half of the `tnm serve` protocol.
//!
//! [`ServeClient`] wraps one TCP connection in typed request/response
//! calls: load a graph, run a [`Query`], append a live batch, register
//! an incremental subscription, read stats, shut the daemon down. Every
//! call writes one request frame and reads exactly one response frame;
//! a [`KIND_RESP_ERR`](super::protocol::KIND_RESP_ERR) frame surfaces
//! as [`ClientError::Server`] and the connection stays usable for the
//! next call — mirroring the server's recoverable-error contract.
//!
//! Large initial loads are chunked automatically: a graph bigger than
//! [`LOAD_CHUNK_EVENTS`] ships as one LoadGraph frame plus time-ordered
//! AppendEvents frames, so no request ever approaches the wire's
//! frame-payload ceiling.

use super::protocol::*;
use crate::count::MotifCounts;
use crate::engine::distributed::protocol::put_config;
use crate::engine::query::{Query, QueryResponse};
use crate::engine::EnumConfig;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tnm_graph::wire::{
    encode_events, read_frame, write_frame, WireError, WireReader, WireWriter, MAX_FRAME_PAYLOAD,
};
use tnm_graph::Event;

/// Events per frame when [`ServeClient::load_graph`] chunks a large
/// initial load: 1M events ≈ 20 MB of event block, comfortably under
/// the 64 MiB frame ceiling.
pub const LOAD_CHUNK_EVENTS: usize = 1 << 20;

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// Connection-level I/O failure.
    Io(std::io::Error),
    /// The response could not be decoded (or the server closed the
    /// connection mid-exchange).
    Wire(WireError),
    /// The server answered with an error frame; the message is its
    /// reason and the connection remains usable.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve connection error: {e}"),
            ClientError::Wire(e) => write!(f, "serve protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server rejected request: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One client connection to a [`MotifServer`](super::MotifServer).
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient { reader, writer: BufWriter::new(stream) })
    }

    /// Connects with retries — for scripted sessions racing a daemon's
    /// startup (the CI smoke step starts `tnm serve` in the background
    /// and connects as soon as the port opens).
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        attempts: usize,
        delay: Duration,
    ) -> Result<Self, ClientError> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(delay);
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// One request/response exchange. The server keeps the connection
    /// open after an error frame, so `Err(Server(_))` does not poison
    /// the client.
    fn exchange(&mut self, kind: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        write_frame(&mut self.writer, kind, payload)?;
        self.writer.flush()?;
        let Some((kind, payload)) = read_frame(&mut self.reader, MAX_FRAME_PAYLOAD)? else {
            return Err(ClientError::Wire(WireError::Truncated { needed: 1, available: 0 }));
        };
        if kind == KIND_RESP_ERR {
            let mut r = WireReader::new(&payload);
            let msg = r.str().map(str::to_string)?;
            r.finish()?;
            return Err(ClientError::Server(msg));
        }
        Ok((kind, payload))
    }

    fn expect(
        &mut self,
        req_kind: u8,
        payload: &[u8],
        resp_kind: u8,
    ) -> Result<Vec<u8>, ClientError> {
        let (kind, payload) = self.exchange(req_kind, payload)?;
        if kind != resp_kind {
            return Err(ClientError::Wire(WireError::Malformed(format!(
                "expected response kind {resp_kind}, got {kind}"
            ))));
        }
        Ok(payload)
    }

    /// Loads `events` into the server's registry under `name`,
    /// returning the loaded `(events, nodes)` totals. Oversized loads
    /// are chunked through time-ordered appends automatically.
    pub fn load_graph(
        &mut self,
        name: &str,
        events: &[Event],
        num_nodes: u32,
    ) -> Result<(u64, u32), ClientError> {
        let mut sorted = events.to_vec();
        sorted.sort_unstable();
        let first = &sorted[..sorted.len().min(LOAD_CHUNK_EVENTS)];
        let mut w = WireWriter::new();
        w.put_str(name);
        w.put_u32(num_nodes);
        w.put_bytes(&encode_events(first));
        let payload = self.expect(KIND_REQ_LOAD, &w.into_bytes(), KIND_RESP_LOADED)?;
        let mut r = WireReader::new(&payload);
        let _echo = r.str()?;
        let mut total = r.u64()?;
        let mut nodes = r.u32()?;
        r.finish()?;
        for chunk in sorted[first.len()..].chunks(LOAD_CHUNK_EVENTS) {
            let ack = self.append_events(name, chunk)?;
            total = ack.total_events;
        }
        nodes = nodes.max(sorted.iter().map(|e| e.src.0.max(e.dst.0) + 1).max().unwrap_or(0));
        Ok((total, nodes))
    }

    /// Appends a time-monotone batch to a loaded graph. The ack carries
    /// every subscription's live counts, already updated incrementally
    /// on the server.
    pub fn append_events(&mut self, name: &str, batch: &[Event]) -> Result<AppendAck, ClientError> {
        let mut w = WireWriter::new();
        w.put_str(name);
        w.put_bytes(&encode_events(batch));
        let payload = self.expect(KIND_REQ_APPEND, &w.into_bytes(), KIND_RESP_APPENDED)?;
        Ok(decode_append_ack(&payload)?)
    }

    /// Runs a [`Query`] against a loaded graph. Validation happens
    /// server-side through the same [`Query::run`] path the CLI uses.
    pub fn query(&mut self, name: &str, query: &Query) -> Result<QueryResponse, ClientError> {
        let mut w = WireWriter::new();
        w.put_str(name);
        put_query(&mut w, query);
        let payload = self.expect(KIND_REQ_QUERY, &w.into_bytes(), KIND_RESP_QUERY)?;
        Ok(decode_response(&payload)?)
    }

    /// Runs a [`Query`] with request tracing: the server executes it
    /// under a fresh trace id and ships back the request's complete
    /// span tree (serve root, engine phases, distributed worker spans)
    /// plus the server-metrics delta it caused. Render the spans with
    /// [`tnm_obs::chrome_trace`] — that is what `tnm client --trace`
    /// writes.
    pub fn query_traced(
        &mut self,
        name: &str,
        query: &Query,
    ) -> Result<(QueryResponse, TraceReply), ClientError> {
        let mut w = WireWriter::new();
        w.put_str(name);
        put_query(&mut w, query);
        put_request_flags(&mut w, REQ_FLAG_TRACE);
        let payload = self.expect(KIND_REQ_QUERY, &w.into_bytes(), KIND_RESP_QUERY)?;
        let (response, trace) = decode_query_reply(&payload)?;
        let trace = trace.ok_or_else(|| {
            ClientError::Wire(WireError::Malformed(
                "server did not answer a traced query with a trace section".into(),
            ))
        })?;
        Ok((response, trace))
    }

    /// Registers an incremental subscription (stream-eligible configs
    /// only), returning its id and initial counts.
    pub fn subscribe(
        &mut self,
        name: &str,
        cfg: &EnumConfig,
    ) -> Result<(u32, MotifCounts), ClientError> {
        let mut w = WireWriter::new();
        w.put_str(name);
        put_config(&mut w, cfg);
        let payload = self.expect(KIND_REQ_SUBSCRIBE, &w.into_bytes(), KIND_RESP_SUBSCRIBED)?;
        let mut r = WireReader::new(&payload);
        let id = r.u32()?;
        let counts = get_counts(&mut r)?;
        r.finish()?;
        Ok((id, counts))
    }

    /// Registers a subscription with request tracing: like
    /// [`subscribe`](Self::subscribe), plus the span tree and metrics
    /// delta of the initial count.
    pub fn subscribe_traced(
        &mut self,
        name: &str,
        cfg: &EnumConfig,
    ) -> Result<(u32, MotifCounts, TraceReply), ClientError> {
        let mut w = WireWriter::new();
        w.put_str(name);
        put_config(&mut w, cfg);
        put_request_flags(&mut w, REQ_FLAG_TRACE);
        let payload = self.expect(KIND_REQ_SUBSCRIBE, &w.into_bytes(), KIND_RESP_SUBSCRIBED)?;
        let mut r = WireReader::new(&payload);
        let id = r.u32()?;
        let counts = get_counts(&mut r)?;
        let trace = get_trace_section(&mut r)?.ok_or_else(|| {
            ClientError::Wire(WireError::Malformed(
                "server did not answer a traced subscribe with a trace section".into(),
            ))
        })?;
        r.finish()?;
        Ok((id, counts, trace))
    }

    /// Server statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let payload = self.expect(KIND_REQ_STATS, &[], KIND_RESP_STATS)?;
        Ok(decode_stats(&payload)?)
    }

    /// The server's full metrics snapshot (`serve.*` counters and
    /// latency histograms). Render it with
    /// [`to_prometheus`](tnm_obs::Snapshot::to_prometheus) for
    /// scrape-style output — that is what `tnm client --metrics` prints.
    pub fn metrics(&mut self) -> Result<tnm_obs::Snapshot, ClientError> {
        let payload = self.expect(KIND_REQ_METRICS, &[], KIND_RESP_METRICS)?;
        let mut r = WireReader::new(&payload);
        let snap = tnm_graph::wire::get_obs_snapshot(&mut r)?;
        r.finish()?;
        Ok(snap)
    }

    /// Asks the daemon to stop accepting connections and exit its
    /// accept loop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let payload = self.expect(KIND_REQ_SHUTDOWN, &[], KIND_RESP_BYE)?;
        let r = WireReader::new(&payload);
        r.finish()?;
        Ok(())
    }
}
